"""The structure-of-arrays cache kernels (PR-4/PR-7 acceptance).

Covers the fused flat-store replay path: coverage dispatch
(:func:`repro.core.kernels.supports` and the ``kernel_disabled`` pin),
three-way bit-identity between the object path, ``run_packed``, and
``run_kernel`` — including the 2P2L family (dense and sparse block
fill, duplicate-copy coherence) and dynamic orientation prediction —
the flat-store replacement edge cases (LRU age saturation and
compaction, eviction tie-breaking, orientation-bit preservation across
evictions in same-set mode), the packed presence/dirty block-word
round-trips, and the numpy / pure-Python predecode equivalence.
"""

from __future__ import annotations

import pytest

from repro.cache.cache_2p2l import (
    BlockState,
    pack_block_word,
    unpack_block_word,
)
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import SimulationError
from repro.common.stats import StatRegistry
from repro.common.types import (
    AccessWidth,
    Orientation,
    PackedTrace,
    Request,
)
from repro.core import kernels, vector
from repro.core.cpu import TraceDrivenCpu
from repro.core.simulator import run_trace
from repro.core.system import make_system
from repro.sw.tracegen import generate_packed_trace, generate_trace
from repro.workloads.registry import build_workload

try:
    from hypothesis import given, settings
    from hypothesis import strategies as some
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the env
    HAVE_HYPOTHESIS = False

#: Designs the fused kernel covers (a physically 1-D L1, optionally a
#: 2P2L last level and dynamic orientation, LRU) and the ones that must
#: fall back to run_packed (a physically 2-D L1 needs per-request
#: block-state bookkeeping the flat stores do not model at L1).
COVERED = ("1P1L", "1P2L", "1P2L_SameSet", "1P2L_Dyn", "2P2L",
           "2P2L_Dense", "2P2L_SlowWrite")
UNCOVERED = ("2P2L_L1",)


def _hierarchy(design, replacement="lru"):
    system = make_system(design, 1.0)
    return system, CacheHierarchy(system, StatRegistry(), replacement)


class TestSupports:
    @pytest.mark.parametrize("design", COVERED)
    def test_covered_designs(self, design):
        _, hierarchy = _hierarchy(design)
        assert kernels.supports(hierarchy)

    @pytest.mark.parametrize("design", UNCOVERED)
    def test_uncovered_designs_fall_back(self, design):
        _, hierarchy = _hierarchy(design)
        assert not kernels.supports(hierarchy)

    def test_non_lru_replacement_falls_back(self):
        _, hierarchy = _hierarchy("1P2L", replacement="fifo")
        assert not kernels.supports(hierarchy)

    def test_kernel_disabled_pin(self):
        _, hierarchy = _hierarchy("1P2L")
        assert kernels.supports(hierarchy)
        with kernels.kernel_disabled():
            assert not kernels.supports(hierarchy)
        assert kernels.supports(hierarchy)

    def test_kernel_disabled_restores_on_exception(self):
        # A failing test body inside the pin must not leak the pin
        # into the rest of the process.
        prior = kernels.KERNEL_ENABLED
        with pytest.raises(RuntimeError, match="boom"):
            with kernels.kernel_disabled():
                assert not kernels.KERNEL_ENABLED
                raise RuntimeError("boom")
        assert kernels.KERNEL_ENABLED == prior

    def test_kernel_disabled_nests(self):
        # Each block restores what *it* saw, so nesting is safe.
        with kernels.kernel_disabled():
            with kernels.kernel_disabled():
                assert not kernels.KERNEL_ENABLED
            assert not kernels.KERNEL_ENABLED
        assert kernels.KERNEL_ENABLED

    def test_kernel_disabled_rejects_reentry(self):
        cm = kernels.kernel_disabled()
        with cm:
            with pytest.raises(RuntimeError, match="entered twice"):
                cm.__enter__()
        assert kernels.KERNEL_ENABLED

    def test_kernel_disabled_restores_on_gc(self):
        # Belt-and-braces: an abandoned, entered context restores the
        # pin when collected (e.g. a generator-holding test that never
        # reached __exit__).
        cm = kernels.kernel_disabled()
        cm.__enter__()
        assert not kernels.KERNEL_ENABLED
        del cm
        assert kernels.KERNEL_ENABLED

    def test_sampler_falls_back_to_packed(self):
        # Occupancy sampling needs per-request callbacks the fused
        # loop elides; cpu.run must route sampled runs to run_packed
        # (observable: the kernel path never invokes the sampler).
        system = make_system("1P2L", 1.0)
        packed = generate_packed_trace(build_workload("sobel", "small"),
                                       system.logical_dims)
        stats = StatRegistry()
        cpu = TraceDrivenCpu(system.cpu,
                             CacheHierarchy(system, stats), stats)
        samples = []
        cpu.run(packed, sampler=lambda ops, now: samples.append(ops),
                sample_every=256)
        assert samples


class TestKernelParity:
    @pytest.mark.parametrize("design", COVERED)
    @pytest.mark.parametrize("workload", ["sobel", "htap1"])
    def test_three_way_bit_identity(self, design, workload):
        """Object path, run_packed, and run_kernel agree exactly."""
        system = make_system(design, 1.0)
        dims = system.logical_dims
        program = build_workload(workload, "small")
        objects = list(generate_trace(program, dims))
        packed = generate_packed_trace(program, dims)

        via_objects = run_trace(make_system(design, 1.0), objects,
                                name="t")
        with kernels.kernel_disabled():
            via_packed = run_trace(make_system(design, 1.0), packed,
                                   name="t")
        # Pin the vector engine off so this leg really exercises the
        # scalar run_kernel loop (tests/test_vector.py covers the
        # vector leg of the same identity).
        with vector.vector_disabled():
            via_kernel = run_trace(make_system(design, 1.0), packed,
                                   name="t")
        assert via_kernel.cycles == via_objects.cycles
        assert via_kernel.ops == via_objects.ops
        assert via_kernel.stats.flat() == via_objects.stats.flat()
        assert via_kernel.stats.flat() == via_packed.stats.flat()

    @pytest.mark.parametrize("design", COVERED)
    def test_age_saturation_compacts_and_preserves_order(
            self, monkeypatch, design):
        """Hitting AGE_LIMIT mid-run must not disturb LRU order.

        Shrinking the limit forces many in-place compactions over a
        real workload; the run must stay bit-identical to the object
        path, whose LruSet never saturates.
        """
        compactions = []
        original = kernels._FlatStore._compact_ages

        def counting(store):
            compactions.append(store.level_index)
            original(store)

        monkeypatch.setattr(kernels, "AGE_LIMIT", 300)
        monkeypatch.setattr(kernels._FlatStore, "_compact_ages",
                            counting)
        system = make_system(design, 1.0)
        packed = generate_packed_trace(build_workload("sgemm", "small"),
                                       system.logical_dims)
        with vector.vector_disabled():
            via_kernel = run_trace(make_system(design, 1.0), packed,
                                   name="t")
        assert compactions, "AGE_LIMIT=300 must force compactions"
        with kernels.kernel_disabled():
            reference = run_trace(make_system(design, 1.0), packed,
                                  name="t")
        assert via_kernel.cycles == reference.cycles
        assert via_kernel.stats.flat() == reference.stats.flat()


def _row_vector(tile, row):
    """A vector read of row line ``row`` in ``tile`` (see decoder.py)."""
    return Request(addr=((tile << 6) | (row << 3)) << 3,
                   orientation=Orientation.ROW,
                   width=AccessWidth.VECTOR,
                   is_write=False, ref_id=0)


class TestReplacementEdgeCases:
    def test_lru_eviction_order_and_tie_break(self):
        """The single victim scan reproduces exact LRU order.

        Fill one L1 set, touch the oldest line (now MRU), then force
        two evictions; which lines survive pins down the victim choice
        (a first-minimal tie-break over the flat set scan, matching
        the insertion-ordered LruSet).
        """
        system = make_system("1P1L", 1.0)
        l1_cfg = system.levels[0]
        assoc, stride = l1_cfg.assoc, l1_cfg.num_sets
        # Tiles ``k * stride`` all map their row 0 to L1 set 0.
        tiles = [k * stride for k in range(assoc + 1)]
        reqs = [_row_vector(t, 0) for t in tiles[:assoc]]
        reqs.append(_row_vector(tiles[0], 0))   # touch A -> MRU
        reqs.append(_row_vector(tiles[-1], 0))  # miss: evicts B
        reqs.append(_row_vector(tiles[1], 0))   # B again: miss, evicts C
        reqs.append(_row_vector(tiles[0], 0))   # A survived: hit
        packed = PackedTrace.from_requests(reqs)

        via_kernel = run_trace(make_system("1P1L", 1.0), packed,
                               name="t")
        with kernels.kernel_disabled():
            reference = run_trace(make_system("1P1L", 1.0), packed,
                                  name="t")
        assert via_kernel.stats.flat() == reference.stats.flat()
        flat = via_kernel.stats.flat()
        assert flat["cache.L1.hits"] == 2
        assert flat["cache.L1.misses"] == assoc + 2
        assert flat["cache.L1.evictions"] == 2

    def test_orientation_bits_preserved_across_evictions(self):
        """Same-set mode: meta orientation always mirrors the tag.

        Rows and columns share sets under the same-set mapping, so
        evictions constantly replace one orientation with the other;
        every valid slot's orientation bit (meta bit 1) must track the
        installed tag's orientation bit, and ``slot_of`` must stay a
        perfect inverse of the tag array.
        """
        system = make_system("1P2L_SameSet", 1.0)
        stats = StatRegistry()
        hierarchy = CacheHierarchy(system, stats)
        packed = generate_packed_trace(build_workload("sgemm", "small"),
                                       system.logical_dims)
        engine = kernels.KernelEngine(hierarchy)
        engine.replay(packed, system.cpu, stats.group("cpu"))

        assert stats.flat()["cache.L1.evictions"] > 0
        l1_orients = set()
        for store in engine.levels:
            if not isinstance(store, kernels._Kernel2L):
                continue
            valid = 0
            for slot, meta in enumerate(store.meta):
                if not meta & 1:
                    continue
                valid += 1
                line = store.tags[slot]
                assert (meta >> 1) & 1 == (line >> 3) & 1
                assert store.slot_of[line] == slot
                if store is engine.levels[0]:
                    l1_orients.add((line >> 3) & 1)
            assert valid == len(store.slot_of)
        # The check is only meaningful if both orientations are live.
        assert l1_orients == {0, 1}


def _word(r, c, tile=0):
    """Byte address of tile cell (r, c) (see decoder.py)."""
    return ((tile << 6) | (r << 3) | c) << 3


def _scalar(addr, orientation, is_write=False, ref_id=0):
    return Request(addr=addr, orientation=orientation,
                   width=AccessWidth.SCALAR, is_write=is_write,
                   ref_id=ref_id)


class TestKernel2P2L:
    """The 2P2L family on the kernel path (PR-7 tentpole)."""

    def _three_way(self, design, reqs):
        packed = PackedTrace.from_requests(reqs)
        via_objects = run_trace(make_system(design, 1.0), list(reqs),
                                name="t")
        with vector.vector_disabled():
            via_kernel = run_trace(make_system(design, 1.0), packed,
                                   name="t")
        via_vector = run_trace(make_system(design, 1.0), packed,
                               name="t")
        assert via_kernel.cycles == via_objects.cycles
        assert via_kernel.stats.flat() == via_objects.stats.flat()
        assert via_vector.cycles == via_objects.cycles
        assert via_vector.stats.flat() == via_objects.stats.flat()
        return via_objects.stats.flat()

    def test_duplicate_coherence_counters(self, monkeypatch):
        """Duplicate evictions and cleans stay bit-identical.

        The trace forces both Fig. 9 transitions in the 1P2L levels
        above the 2P2L last level: a scalar write to a word resident
        in both orientations (Clean -> Invalid, ``duplicate_evictions``)
        and a vector-read fill crossing a dirty perpendicular line
        (Modified -> Clean, ``duplicate_cleans``).
        """
        monkeypatch.setattr(vector, "MIN_VECTOR_TRACE", 0)
        R, C = Orientation.ROW, Orientation.COLUMN
        reqs = [
            _scalar(_word(0, 0), R),                  # row 0 resident
            _scalar(_word(1, 0), C),                  # col 0 resident
            _scalar(_word(0, 0), R, is_write=True),   # dup eviction
            _scalar(_word(2, 1), C, is_write=True),   # dirty col 1
            _row_vector(0, 2),                        # fill cleans it
        ]
        flat = self._three_way("2P2L", reqs)
        assert flat["cache.L1.duplicate_evictions"] == 1
        assert flat["cache.L1.duplicate_cleans"] == 1

    @pytest.mark.parametrize("design,key", [
        ("2P2L", "partial_block_hits"),
        ("2P2L_Dense", "dense_fill_lines"),
    ])
    def test_fill_mode_counters_exercised(self, design, key):
        """Sparse fills take partial-block hits; dense fills stream
        whole blocks — each mode's signature counter must fire (and
        match the object path bit for bit) on a real workload."""
        system = make_system(design, 1.0)
        packed = generate_packed_trace(build_workload("sgemm", "small"),
                                       system.logical_dims)
        with vector.vector_disabled():
            via_kernel = run_trace(make_system(design, 1.0), packed,
                                   name="t")
        with kernels.kernel_disabled():
            reference = run_trace(make_system(design, 1.0), packed,
                                  name="t")
        assert via_kernel.stats.flat() == reference.stats.flat()
        llc = system.levels[-1].name
        assert via_kernel.stats.flat()[f"cache.{llc}.{key}"] > 0

    def test_block_words_mirror_object_state(self):
        """The kernel's packed presence/dirty words reproduce the
        object path's per-block masks slot for slot after a replay."""
        system = make_system("2P2L", 1.0)
        stats = StatRegistry()
        hierarchy = CacheHierarchy(system, stats)
        packed = generate_packed_trace(build_workload("sgemm", "small"),
                                       system.logical_dims)
        engine = kernels.KernelEngine(hierarchy)
        engine.replay(packed, system.cpu, stats.group("cpu"))
        store = engine.levels[-1]
        assert isinstance(store, kernels._Kernel2P2L)

        ref_stats = StatRegistry()
        ref_hierarchy = CacheHierarchy(make_system("2P2L", 1.0),
                                       ref_stats)
        with kernels.kernel_disabled():
            cpu = TraceDrivenCpu(system.cpu, ref_hierarchy, ref_stats)
            cpu.run(packed)
        blocks = ref_hierarchy.levels[-1]._blocks
        assert blocks, "the workload must leave resident blocks"
        assert set(blocks) == set(store.slot_of)
        for tile, state in blocks.items():
            slot = store.slot_of[tile]
            assert store.present[slot] == state.presence_word()
            assert store.dirty[slot] == state.dirty_word()


class TestDynamicOrientation:
    """The flat orientation-predictor mirror (PR-7 tentpole)."""

    def _two_way(self, reqs):
        packed = PackedTrace.from_requests(reqs)
        via_objects = run_trace(make_system("1P2L_Dyn", 1.0),
                                list(reqs), name="t")
        via_kernel = run_trace(make_system("1P2L_Dyn", 1.0), packed,
                               name="t")
        assert via_kernel.cycles == via_objects.cycles
        assert via_kernel.stats.flat() == via_objects.stats.flat()
        return via_objects.stats.flat()

    def test_phase_relearning(self):
        """A column-walk phase overrides the static row preference;
        the following row-walk phase decays through the neutral band
        (static fallbacks) and re-learns ROW — counters bit-identical
        to the object predictor throughout."""
        R = Orientation.ROW
        reqs = [_scalar(_word(i % 8, 0), R, ref_id=7)
                for i in range(24)]
        reqs += [_scalar(_word(0, i % 8), R, ref_id=7)
                 for i in range(24)]
        flat = self._two_way(reqs)
        assert flat["cache.L1.orientation.overrides"] > 0
        assert flat["cache.L1.orientation.static_fallbacks"] > 0
        assert flat["cache.L1.orientation.predictions"] > 0

    def test_table_fifo_eviction(self):
        """More live references than table entries: the flat mirror
        must reproduce the object table's FIFO eviction order (and
        the resulting re-learning churn) exactly."""
        R = Orientation.ROW
        reqs = []
        for ref in range(100):
            for i in range(2):
                reqs.append(_scalar(_word(i, ref % 8, tile=ref % 4),
                                    R, ref_id=ref))
        flat = self._two_way(reqs)
        assert flat["cache.L1.orientation.table_evictions"] > 0

    def test_vector_rejects_dynamic_orientation(self):
        """The predictor trains on every scalar access in order, so
        the vector engine must refuse predictor-enabled designs."""
        _, hierarchy = _hierarchy("1P2L_Dyn")
        assert kernels.supports(hierarchy)
        assert not vector.supports(hierarchy)
        with pytest.raises(SimulationError, match="dynamic"):
            vector.VectorEngine(hierarchy)


class TestPackedBlockWords:
    """Packed presence/dirty block words (cache_2p2l helpers)."""

    def test_known_packing(self):
        assert pack_block_word(0, 0) == 0
        assert pack_block_word(0xFF, 0) == 0x00FF
        assert pack_block_word(0, 0xFF) == 0xFF00
        assert unpack_block_word(0xA55A) == (0x5A, 0xA5)

    def test_bit_layout_matches_line_ids(self):
        # Bit ``line & 15``: rows (orientation 0) in the low byte,
        # columns (orientation 1) in the high byte.
        word = pack_block_word(1 << 3, 1 << 5)
        assert word & (1 << 3)        # row index 3
        assert word & (1 << (8 + 5))  # column index 5

    if HAVE_HYPOTHESIS:
        @settings(max_examples=200, deadline=None)
        @given(some.integers(0, 0xFF), some.integers(0, 0xFF))
        def test_pack_round_trip(self, rows, cols):
            word = pack_block_word(rows, cols)
            assert 0 <= word < (1 << 16)
            assert unpack_block_word(word) == (rows, cols)

        @settings(max_examples=200, deadline=None)
        @given(some.integers(0, 0xFFFF), some.integers(0, 0xFFFF))
        def test_block_state_round_trip(self, presence, dirty):
            state = BlockState.from_words(presence, dirty)
            assert state.presence_word() == presence
            assert state.dirty_word() == dirty


class TestPredecode:
    @pytest.mark.skipif(kernels._np is None, reason="numpy not present")
    def test_numpy_and_fallback_agree(self, monkeypatch):
        program = build_workload("sobel", "small")
        packed_2d = generate_packed_trace(program, 2)
        packed_1d = generate_packed_trace(program, 1)
        with_np_2l = kernels._predecode_2l(packed_2d.words)
        with_np_1l = kernels._predecode_1l(packed_1d.words)
        monkeypatch.setattr(kernels, "_np", None)
        assert kernels._predecode_2l(packed_2d.words) == with_np_2l
        assert kernels._predecode_1l(packed_1d.words) == with_np_1l

    def test_1l_rejects_column_lines(self, monkeypatch):
        column = Request(addr=0, orientation=Orientation.COLUMN,
                         width=AccessWidth.VECTOR, is_write=False,
                         ref_id=0)
        words = PackedTrace.from_requests([column]).words
        if kernels._np is not None:
            with pytest.raises(SimulationError):
                kernels._predecode_1l(words)
        monkeypatch.setattr(kernels, "_np", None)
        with pytest.raises(SimulationError):
            kernels._predecode_1l(words)
