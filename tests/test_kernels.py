"""The structure-of-arrays cache kernels (PR-4 acceptance).

Covers the fused flat-store replay path: coverage dispatch
(:func:`repro.core.kernels.supports` and the ``kernel_disabled`` pin),
three-way bit-identity between the object path, ``run_packed``, and
``run_kernel``, the flat-store replacement edge cases (LRU age
saturation and compaction, eviction tie-breaking, orientation-bit
preservation across evictions in same-set mode), and the numpy /
pure-Python predecode equivalence.
"""

from __future__ import annotations

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import SimulationError
from repro.common.stats import StatRegistry
from repro.common.types import (
    AccessWidth,
    Orientation,
    PackedTrace,
    Request,
)
from repro.core import kernels, vector
from repro.core.cpu import TraceDrivenCpu
from repro.core.simulator import run_trace
from repro.core.system import make_system
from repro.sw.tracegen import generate_packed_trace, generate_trace
from repro.workloads.registry import build_workload

#: Designs the fused kernel covers (every level physically 1-D, static
#: orientation, LRU) and the ones that must fall back to run_packed.
COVERED = ("1P1L", "1P2L", "1P2L_SameSet")
UNCOVERED = ("1P2L_Dyn", "2P2L", "2P2L_Dense", "2P2L_SlowWrite",
             "2P2L_L1")


def _hierarchy(design, replacement="lru"):
    system = make_system(design, 1.0)
    return system, CacheHierarchy(system, StatRegistry(), replacement)


class TestSupports:
    @pytest.mark.parametrize("design", COVERED)
    def test_covered_designs(self, design):
        _, hierarchy = _hierarchy(design)
        assert kernels.supports(hierarchy)

    @pytest.mark.parametrize("design", UNCOVERED)
    def test_uncovered_designs_fall_back(self, design):
        _, hierarchy = _hierarchy(design)
        assert not kernels.supports(hierarchy)

    def test_non_lru_replacement_falls_back(self):
        _, hierarchy = _hierarchy("1P2L", replacement="fifo")
        assert not kernels.supports(hierarchy)

    def test_kernel_disabled_pin(self):
        _, hierarchy = _hierarchy("1P2L")
        assert kernels.supports(hierarchy)
        with kernels.kernel_disabled():
            assert not kernels.supports(hierarchy)
        assert kernels.supports(hierarchy)

    def test_kernel_disabled_restores_on_exception(self):
        # A failing test body inside the pin must not leak the pin
        # into the rest of the process.
        prior = kernels.KERNEL_ENABLED
        with pytest.raises(RuntimeError, match="boom"):
            with kernels.kernel_disabled():
                assert not kernels.KERNEL_ENABLED
                raise RuntimeError("boom")
        assert kernels.KERNEL_ENABLED == prior

    def test_kernel_disabled_nests(self):
        # Each block restores what *it* saw, so nesting is safe.
        with kernels.kernel_disabled():
            with kernels.kernel_disabled():
                assert not kernels.KERNEL_ENABLED
            assert not kernels.KERNEL_ENABLED
        assert kernels.KERNEL_ENABLED

    def test_kernel_disabled_rejects_reentry(self):
        cm = kernels.kernel_disabled()
        with cm:
            with pytest.raises(RuntimeError, match="entered twice"):
                cm.__enter__()
        assert kernels.KERNEL_ENABLED

    def test_kernel_disabled_restores_on_gc(self):
        # Belt-and-braces: an abandoned, entered context restores the
        # pin when collected (e.g. a generator-holding test that never
        # reached __exit__).
        cm = kernels.kernel_disabled()
        cm.__enter__()
        assert not kernels.KERNEL_ENABLED
        del cm
        assert kernels.KERNEL_ENABLED

    def test_sampler_falls_back_to_packed(self):
        # Occupancy sampling needs per-request callbacks the fused
        # loop elides; cpu.run must route sampled runs to run_packed
        # (observable: the kernel path never invokes the sampler).
        system = make_system("1P2L", 1.0)
        packed = generate_packed_trace(build_workload("sobel", "small"),
                                       system.logical_dims)
        stats = StatRegistry()
        cpu = TraceDrivenCpu(system.cpu,
                             CacheHierarchy(system, stats), stats)
        samples = []
        cpu.run(packed, sampler=lambda ops, now: samples.append(ops),
                sample_every=256)
        assert samples


class TestKernelParity:
    @pytest.mark.parametrize("design", COVERED)
    @pytest.mark.parametrize("workload", ["sobel", "htap1"])
    def test_three_way_bit_identity(self, design, workload):
        """Object path, run_packed, and run_kernel agree exactly."""
        system = make_system(design, 1.0)
        dims = system.logical_dims
        program = build_workload(workload, "small")
        objects = list(generate_trace(program, dims))
        packed = generate_packed_trace(program, dims)

        via_objects = run_trace(make_system(design, 1.0), objects,
                                name="t")
        with kernels.kernel_disabled():
            via_packed = run_trace(make_system(design, 1.0), packed,
                                   name="t")
        # Pin the vector engine off so this leg really exercises the
        # scalar run_kernel loop (tests/test_vector.py covers the
        # vector leg of the same identity).
        with vector.vector_disabled():
            via_kernel = run_trace(make_system(design, 1.0), packed,
                                   name="t")
        assert via_kernel.cycles == via_objects.cycles
        assert via_kernel.ops == via_objects.ops
        assert via_kernel.stats.flat() == via_objects.stats.flat()
        assert via_kernel.stats.flat() == via_packed.stats.flat()

    @pytest.mark.parametrize("design", COVERED)
    def test_age_saturation_compacts_and_preserves_order(
            self, monkeypatch, design):
        """Hitting AGE_LIMIT mid-run must not disturb LRU order.

        Shrinking the limit forces many in-place compactions over a
        real workload; the run must stay bit-identical to the object
        path, whose LruSet never saturates.
        """
        compactions = []
        original = kernels._FlatStore._compact_ages

        def counting(store):
            compactions.append(store.level_index)
            original(store)

        monkeypatch.setattr(kernels, "AGE_LIMIT", 300)
        monkeypatch.setattr(kernels._FlatStore, "_compact_ages",
                            counting)
        system = make_system(design, 1.0)
        packed = generate_packed_trace(build_workload("sgemm", "small"),
                                       system.logical_dims)
        with vector.vector_disabled():
            via_kernel = run_trace(make_system(design, 1.0), packed,
                                   name="t")
        assert compactions, "AGE_LIMIT=300 must force compactions"
        with kernels.kernel_disabled():
            reference = run_trace(make_system(design, 1.0), packed,
                                  name="t")
        assert via_kernel.cycles == reference.cycles
        assert via_kernel.stats.flat() == reference.stats.flat()


def _row_vector(tile, row):
    """A vector read of row line ``row`` in ``tile`` (see decoder.py)."""
    return Request(addr=((tile << 6) | (row << 3)) << 3,
                   orientation=Orientation.ROW,
                   width=AccessWidth.VECTOR,
                   is_write=False, ref_id=0)


class TestReplacementEdgeCases:
    def test_lru_eviction_order_and_tie_break(self):
        """The single victim scan reproduces exact LRU order.

        Fill one L1 set, touch the oldest line (now MRU), then force
        two evictions; which lines survive pins down the victim choice
        (a first-minimal tie-break over the flat set scan, matching
        the insertion-ordered LruSet).
        """
        system = make_system("1P1L", 1.0)
        l1_cfg = system.levels[0]
        assoc, stride = l1_cfg.assoc, l1_cfg.num_sets
        # Tiles ``k * stride`` all map their row 0 to L1 set 0.
        tiles = [k * stride for k in range(assoc + 1)]
        reqs = [_row_vector(t, 0) for t in tiles[:assoc]]
        reqs.append(_row_vector(tiles[0], 0))   # touch A -> MRU
        reqs.append(_row_vector(tiles[-1], 0))  # miss: evicts B
        reqs.append(_row_vector(tiles[1], 0))   # B again: miss, evicts C
        reqs.append(_row_vector(tiles[0], 0))   # A survived: hit
        packed = PackedTrace.from_requests(reqs)

        via_kernel = run_trace(make_system("1P1L", 1.0), packed,
                               name="t")
        with kernels.kernel_disabled():
            reference = run_trace(make_system("1P1L", 1.0), packed,
                                  name="t")
        assert via_kernel.stats.flat() == reference.stats.flat()
        flat = via_kernel.stats.flat()
        assert flat["cache.L1.hits"] == 2
        assert flat["cache.L1.misses"] == assoc + 2
        assert flat["cache.L1.evictions"] == 2

    def test_orientation_bits_preserved_across_evictions(self):
        """Same-set mode: meta orientation always mirrors the tag.

        Rows and columns share sets under the same-set mapping, so
        evictions constantly replace one orientation with the other;
        every valid slot's orientation bit (meta bit 1) must track the
        installed tag's orientation bit, and ``slot_of`` must stay a
        perfect inverse of the tag array.
        """
        system = make_system("1P2L_SameSet", 1.0)
        stats = StatRegistry()
        hierarchy = CacheHierarchy(system, stats)
        packed = generate_packed_trace(build_workload("sgemm", "small"),
                                       system.logical_dims)
        engine = kernels.KernelEngine(hierarchy)
        engine.replay(packed, system.cpu, stats.group("cpu"))

        assert stats.flat()["cache.L1.evictions"] > 0
        l1_orients = set()
        for store in engine.levels:
            if not isinstance(store, kernels._Kernel2L):
                continue
            valid = 0
            for slot, meta in enumerate(store.meta):
                if not meta & 1:
                    continue
                valid += 1
                line = store.tags[slot]
                assert (meta >> 1) & 1 == (line >> 3) & 1
                assert store.slot_of[line] == slot
                if store is engine.levels[0]:
                    l1_orients.add((line >> 3) & 1)
            assert valid == len(store.slot_of)
        # The check is only meaningful if both orientations are live.
        assert l1_orients == {0, 1}


class TestPredecode:
    @pytest.mark.skipif(kernels._np is None, reason="numpy not present")
    def test_numpy_and_fallback_agree(self, monkeypatch):
        program = build_workload("sobel", "small")
        packed_2d = generate_packed_trace(program, 2)
        packed_1d = generate_packed_trace(program, 1)
        with_np_2l = kernels._predecode_2l(packed_2d.words)
        with_np_1l = kernels._predecode_1l(packed_1d.words)
        monkeypatch.setattr(kernels, "_np", None)
        assert kernels._predecode_2l(packed_2d.words) == with_np_2l
        assert kernels._predecode_1l(packed_1d.words) == with_np_1l

    def test_1l_rejects_column_lines(self, monkeypatch):
        column = Request(addr=0, orientation=Orientation.COLUMN,
                         width=AccessWidth.VECTOR, is_write=False,
                         ref_id=0)
        words = PackedTrace.from_requests([column]).words
        if kernels._np is not None:
            with pytest.raises(SimulationError):
                kernels._predecode_1l(words)
        monkeypatch.setattr(kernels, "_np", None)
        with pytest.raises(SimulationError):
            kernels._predecode_1l(words)
