"""Unit tests for iteration-space tiling (paper Section X extension)."""

import pytest

from repro.common.errors import ProgramError
from repro.sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program
from repro.sw.tiling import TILE_SUFFIX, tile_nest, tile_program
from repro.sw.tracegen import generate_trace, trace_mix
from repro.workloads.blas import build_sgemm, build_ssyrk, build_strmm


def rect_nest(n=16):
    a = ArrayDecl("A", n, n)
    return LoopNest("n", [Loop.over("i", n), Loop.over("j", n)],
                    [ArrayRef(a, Affine.of("i"), Affine.of("j"))]), a


class TestTileNest:
    def test_loop_structure(self):
        nest, _ = rect_nest(16)
        tiled = tile_nest(nest, {"i": 8, "j": 8})
        assert [lp.var for lp in tiled.loops] == \
            [f"i{TILE_SUFFIX}", f"j{TILE_SUFFIX}", "i", "j"]
        assert tiled.loops[0].upper.const == 2  # 16 / 8 tiles

    def test_point_loop_bounds_follow_tile_var(self):
        nest, _ = rect_nest(16)
        tiled = tile_nest(nest, {"i": 8})
        point = next(lp for lp in tiled.loops if lp.var == "i")
        assert point.lower.coeff(f"i{TILE_SUFFIX}") == 8
        assert point.upper.const - point.lower.const == 8

    def test_iteration_space_preserved(self):
        """Tiling permutes the iteration order but visits the same
        (i, j) set, so the trace touches the same words."""
        nest, a = rect_nest(16)
        program = Program("p", [a], [nest])
        tiled = tile_program(program, {"i": 8, "j": 8})
        words = set()
        for req in generate_trace(program, 2):
            words.update(req.words())
        tiled_words = set()
        for req in generate_trace(tiled, 2):
            tiled_words.update(req.words())
        assert words == tiled_words

    def test_untiled_var_kept(self):
        nest, _ = rect_nest(16)
        tiled = tile_nest(nest, {"i": 8})
        assert [lp.var for lp in tiled.loops] == \
            [f"i{TILE_SUFFIX}", "i", "j"]

    def test_rejects_unknown_loop(self):
        nest, _ = rect_nest()
        with pytest.raises(ProgramError):
            tile_nest(nest, {"z": 8})

    def test_rejects_indivisible_tile(self):
        nest, _ = rect_nest(16)
        with pytest.raises(ProgramError):
            tile_nest(nest, {"i": 5})

    def test_rejects_triangular_loop(self):
        program = build_strmm(16)
        with pytest.raises(ProgramError):
            tile_nest(program.nests[0], {"k": 8})

    def test_shallow_ref_depth_shifted(self):
        program = build_sgemm(16)
        tiled = tile_nest(program.nests[0], {"i": 8, "j": 8, "k": 8})
        store = [r for r in tiled.refs if r.is_write][0]
        # Originally depth 2 of 3; now under 3 tile loops as well.
        assert store.depth == 5


class TestTileProgram:
    def test_all_rectangular_nests_tiled(self):
        program = build_sgemm(16)
        tiled = tile_program(program, {"i": 8, "j": 8, "k": 8})
        assert tiled.nests[0].name.endswith("_tiled")
        assert tiled.name.endswith("_tiled")

    def test_triangular_nest_skipped_gracefully(self):
        program = build_strmm(16)
        tiled = tile_program(program, {"i": 8, "j": 8, "k": 8})
        # strmm's k loop is triangular: the nest survives untiled.
        assert tiled.nests[0].name == "trmm"

    def test_strict_mode_raises(self):
        program = build_strmm(16)
        with pytest.raises(ProgramError):
            tile_program(program, {"k": 8}, only_rectangular=False)

    def test_mixed_program_tiles_where_possible(self):
        program = build_ssyrk(16)
        tiled = tile_program(program, {"i": 8, "j": 8, "k": 8})
        names = [nest.name for nest in tiled.nests]
        assert names == ["syrk_tiled", "rescale_tiled"]

    def test_tiled_trace_volume_not_smaller(self):
        """Tiling re-reads the accumulator per k-tile, so total volume
        grows (the win is reuse, not fewer accesses)."""
        program = build_sgemm(16)
        tiled = tile_program(program, {"i": 8, "j": 8, "k": 8})
        plain_bytes = trace_mix(generate_trace(program, 2)).total
        tiled_bytes = trace_mix(generate_trace(tiled, 2)).total
        assert tiled_bytes >= plain_bytes
