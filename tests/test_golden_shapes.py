"""Golden-shape regression tests.

Loose bands around the headline small-input results, so refactors that
silently change the model's behavior fail fast.  The bands are wide
enough to survive benign tweaks (latency constants, replacement
details) but not a broken mechanism.
"""

import pytest

from repro.core.simulator import run_simulation
from repro.core.system import make_system


@pytest.fixture(scope="module")
def runs():
    out = {}
    for design in ("1P1L", "1P2L", "2P2L"):
        for workload in ("sgemm", "sobel", "htap1"):
            out[(design, workload)] = run_simulation(
                make_system(design), workload=workload, size="small")
    return out


def ratio(runs, design, workload, metric):
    return (getattr(runs[(design, workload)], metric)()
            / max(1, getattr(runs[("1P1L", workload)], metric)()))


class TestCycleShapes:
    @pytest.mark.parametrize("workload,lo,hi", [
        ("sgemm", 0.1, 0.7),
        ("sobel", 0.2, 0.8),
        ("htap1", 0.05, 0.5),
    ])
    def test_1p2l_reduction_band(self, runs, workload, lo, hi):
        value = (runs[("1P2L", workload)].cycles
                 / runs[("1P1L", workload)].cycles)
        assert lo < value < hi, f"{workload}: {value:.3f}"

    def test_2p2l_competitive_with_1p2l(self, runs):
        for workload in ("sgemm", "sobel", "htap1"):
            p1 = runs[("1P2L", workload)].cycles
            p2 = runs[("2P2L", workload)].cycles
            assert 0.5 < p2 / p1 < 2.0, workload


class TestTrafficShapes:
    def test_htap1_memory_bytes_band(self, runs):
        value = ratio(runs, "1P2L", "htap1", "memory_bytes")
        assert 0.1 < value < 0.5, value

    def test_llc_requests_collapse(self, runs):
        for workload in ("sgemm", "sobel", "htap1"):
            value = ratio(runs, "1P2L", workload, "llc_requests")
            assert value < 0.35, f"{workload}: {value:.3f}"


class TestHitRateShapes:
    def test_baseline_hit_rates_sane(self, runs):
        # sgemm's column walks alias on the power-of-two pitch, so its
        # baseline rate is legitimately low (EXPERIMENTS.md, Fig. 11).
        for workload, floor in (("sgemm", 0.02), ("sobel", 0.2),
                                ("htap1", 0.2)):
            rate = runs[("1P1L", workload)].l1_hit_rate()
            assert floor < rate < 0.99, f"{workload}: {rate:.3f}"

    def test_sobel_mda_hit_rate_high(self, runs):
        assert runs[("1P2L", "sobel")].l1_hit_rate() > 0.8
