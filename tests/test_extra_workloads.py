"""Unit tests for the non-paper extra kernels."""

import pytest

from repro.common.types import Orientation
from repro.core.simulator import run_simulation
from repro.core.system import make_system
from repro.sw.directions import analyze_ref
from repro.sw.tracegen import generate_trace, trace_mix
from repro.workloads.extra import (
    build_backsub,
    build_conv1d_col,
    build_covariance,
    build_jacobi2d,
    build_transpose,
)
from repro.workloads.registry import (
    build_workload,
    extended_workload_names,
    workload_names,
)

EXTRAS = ("transpose", "jacobi2d", "conv1d_col", "covariance",
          "backsub")


class TestRegistry:
    def test_paper_list_unchanged(self):
        assert len(workload_names()) == 7
        for name in EXTRAS:
            assert name not in workload_names()

    def test_extended_list_includes_extras(self):
        names = extended_workload_names()
        for name in EXTRAS:
            assert name in names

    @pytest.mark.parametrize("name", EXTRAS)
    def test_buildable_via_registry(self, name):
        program = build_workload(name, "small")
        assert program.name == name


class TestKernelProperties:
    def test_transpose_mixes_orientations(self):
        mix = trace_mix(generate_trace(build_transpose(16), 2))
        assert 0.4 < mix.column_fraction < 0.6

    def test_transpose_write_is_columnar(self):
        program = build_transpose(16)
        nest = program.nests[0]
        write = [r for r in nest.refs if r.is_write][0]
        info = analyze_ref(nest, write)
        assert info.orientation is Orientation.COLUMN

    def test_jacobi_is_row_oriented(self):
        mix = trace_mix(generate_trace(build_jacobi2d(16), 2))
        assert mix.column_fraction == 0.0

    def test_jacobi_ping_pongs_grids(self):
        program = build_jacobi2d(16, sweeps=2)
        first_dst = [r for r in program.nests[0].refs if r.is_write][0]
        second_dst = [r for r in program.nests[1].refs if r.is_write][0]
        assert first_dst.array.name != second_dst.array.name

    def test_conv1d_col_is_pure_column(self):
        mix = trace_mix(generate_trace(build_conv1d_col(16), 2))
        assert mix.column_fraction == 1.0

    def test_covariance_has_three_phases(self):
        program = build_covariance(16)
        assert [nest.name for nest in program.nests] == \
            ["col_means", "center", "outer_product"]

    def test_backsub_triangular_column(self):
        program = build_backsub(16)
        loop = program.nests[0].loops[-1]
        assert loop.upper.coeff("i") == 1  # j < i
        mix = trace_mix(generate_trace(program, 2))
        assert mix.column_fraction > 0.5


class TestEndToEnd:
    @pytest.mark.parametrize("name", EXTRAS)
    def test_runs_on_mda_hierarchy(self, name):
        result = run_simulation(make_system("1P2L"),
                                program=build_workload(name, "small"))
        assert result.cycles > 0

    def test_transpose_benefits_from_mda(self):
        program = build_workload("transpose", "small")
        base = run_simulation(make_system("1P1L"), program=program)
        mda = run_simulation(make_system("1P2L"), program=program)
        assert mda.cycles < base.cycles
