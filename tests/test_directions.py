"""Unit tests for direction analysis — the paper's Section V examples."""

from repro.common.types import Orientation
from repro.sw.directions import analyze_ref, analyze_ref_1d
from repro.sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest

A = ArrayDecl("X", 64, 64)


def nest_with(ref: ArrayRef) -> LoopNest:
    """The paper's canonical nest: i outer, j innermost."""
    return LoopNest("n", [Loop.over("i", 64), Loop.over("j", 64)], [ref])


class TestPaperExamples:
    def test_x_i_j_is_row_wise(self):
        """X[i][j] with j innermost: row-wise (paper Section V)."""
        ref = ArrayRef(A, Affine.of("i"), Affine.of("j"))
        info = analyze_ref(nest_with(ref), ref)
        assert info.orientation is Orientation.ROW
        assert info.discerned
        assert info.unit_stride

    def test_y_j_i_is_column_wise(self):
        """Y[j][i] with j innermost: column-wise (paper Section V)."""
        ref = ArrayRef(A, Affine.of("j"), Affine.of("i"))
        info = analyze_ref(nest_with(ref), ref)
        assert info.orientation is Orientation.COLUMN
        assert info.discerned
        assert info.unit_stride

    def test_z_i_plus_j_i_plus_2_is_column_wise(self):
        """Z[i+j][i+2] with j innermost: column-wise (paper Section V)."""
        ref = ArrayRef(A, Affine.of("i") + Affine.of("j"),
                       Affine.of("i") + 2)
        info = analyze_ref(nest_with(ref), ref)
        assert info.orientation is Orientation.COLUMN
        assert info.discerned

    def test_undiscerned_defaults_to_row(self):
        """j in both subscripts: marked row preference (paper IV-B)."""
        ref = ArrayRef(A, Affine.of("j"), Affine.of("j"))
        info = analyze_ref(nest_with(ref), ref)
        assert info.orientation is Orientation.ROW
        assert not info.discerned

    def test_invariant_ref(self):
        ref = ArrayRef(A, Affine.of("i"), Affine.constant(3))
        info = analyze_ref(nest_with(ref), ref)
        assert info.invariant
        assert info.moving_stride == 0


class TestStrides:
    def test_non_unit_stride_detected(self):
        ref = ArrayRef(A, Affine.of("i"), Affine.of("j", coeff=2))
        info = analyze_ref(nest_with(ref), ref)
        assert info.orientation is Orientation.ROW
        assert not info.unit_stride
        assert info.moving_stride == 2

    def test_negative_unit_stride_is_unit(self):
        ref = ArrayRef(A, Affine.of("i"), Affine.of("j", coeff=-1,
                                                    const=63))
        info = analyze_ref(nest_with(ref), ref)
        assert info.unit_stride


class TestDesign0Analysis:
    def test_column_walk_forced_to_row_non_unit(self):
        """In a logically 1-D world a column walk is a pitch-strided
        row access: not vectorizable (paper Section V)."""
        ref = ArrayRef(A, Affine.of("j"), Affine.of("i"))
        info = analyze_ref_1d(nest_with(ref), ref)
        assert info.orientation is Orientation.ROW
        assert not info.unit_stride
        assert not info.discerned

    def test_row_walk_unchanged(self):
        ref = ArrayRef(A, Affine.of("i"), Affine.of("j"))
        info = analyze_ref_1d(nest_with(ref), ref)
        assert info.orientation is Orientation.ROW
        assert info.unit_stride

    def test_invariant_unchanged(self):
        ref = ArrayRef(A, Affine.of("i"), Affine.constant(3))
        info = analyze_ref_1d(nest_with(ref), ref)
        assert info.invariant
