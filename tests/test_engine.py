"""The parallel experiment engine and persistent run cache.

Covers the ISSUE acceptance criteria: ``--jobs N`` produces
bit-identical statistics to the sequential path, the persistent cache
round-trips results across runner instances and invalidates when the
configuration changes, and the runner's hit/miss introspection and
``clear()`` behave.
"""

from __future__ import annotations

import dataclasses
import os
import pickle

import pytest

from repro.common.config import CacheLevelConfig, MemoryConfig
from repro.core.simulator import (
    clear_trace_cache,
    configure_trace_store,
    run_simulation,
    trace_cache_info,
)
from repro.core.system import make_system
from repro.experiments import plans
from repro.experiments.runner import (
    CACHE_FORMAT_VERSION,
    ExperimentRunner,
    RunCache,
    RunKey,
    cache_key,
    config_fingerprint,
    simulate_run_key,
    system_for_key,
    trace_key_for,
)
from repro.sw.tracestore import TraceStore

GRID = tuple(RunKey(design, workload, "small", 1.0, False, "default", 0)
             for design in ("1P1L", "1P2L")
             for workload in ("sobel", "htap1"))


def _run(runner: ExperimentRunner, key: RunKey):
    return runner.run(key.design, key.workload, key.size, key.llc_mb,
                      resident=key.resident, memory=key.memory,
                      sample_every=key.sample_every)


class TestParallelParity:
    def test_jobs4_matches_sequential_stats(self):
        sequential = ExperimentRunner()
        expected = {key: _run(sequential, key) for key in GRID}

        parallel = ExperimentRunner(jobs=4)
        assert parallel.prefetch(GRID) == len(GRID)
        for key in GRID:
            got = _run(parallel, key)
            want = expected[key]
            assert got.cycles == want.cycles
            assert got.ops == want.ops
            assert got.stats.flat() == want.stats.flat()

    def test_prefetch_fills_memo(self):
        runner = ExperimentRunner(jobs=2)
        runner.prefetch(GRID)
        assert runner.runs_completed == len(GRID)
        before = runner.cache_info()
        _run(runner, GRID[0])
        after = runner.cache_info()
        assert after.memory_hits == before.memory_hits + 1
        assert after.misses == before.misses

    def test_prefetch_dedupes_repeated_keys(self):
        runner = ExperimentRunner(jobs=2)
        assert runner.prefetch(list(GRID) * 3) == len(GRID)

    def test_prefetch_sequential_path_identical(self):
        par = ExperimentRunner(jobs=4)
        par.prefetch(GRID)
        seq = ExperimentRunner(jobs=1)
        seq.prefetch(GRID)
        for key in GRID:
            assert _run(par, key).cycles == _run(seq, key).cycles


class TestPersistentCache:
    def test_round_trip_across_runners(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        first = ExperimentRunner(cache_dir=cache_dir)
        results = {key: _run(first, key) for key in GRID}
        assert first.cache_info().misses == len(GRID)
        assert len(first.run_cache) == len(GRID)

        second = ExperimentRunner(cache_dir=cache_dir)
        second.prefetch(GRID)
        info = second.cache_info()
        assert info.misses == 0
        assert info.disk_hits == len(GRID)
        assert info.hit_fraction() == 1.0
        for key in GRID:
            got = _run(second, key)
            assert got.cycles == results[key].cycles
            assert got.stats.flat() == results[key].stats.flat()

    def test_refresh_resimulates(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        key = GRID[0]
        _run(ExperimentRunner(cache_dir=cache_dir), key)
        fresh = ExperimentRunner(cache_dir=cache_dir, refresh=True)
        _run(fresh, key)
        assert fresh.cache_info().misses == 1
        assert fresh.cache_info().disk_hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        key = GRID[0]
        runner = ExperimentRunner(cache_dir=cache_dir)
        _run(runner, key)
        path = runner.run_cache.path_for(key)
        # Two corruption flavors: raw bytes raise UnpicklingError,
        # text like "garbage\n" parses as a protocol-0 pickle and
        # raises ValueError from int().  Both must read as misses.
        for garbage in (b"not a pickle", b"garbage\n"):
            with open(path, "wb") as handle:
                handle.write(garbage)
            again = ExperimentRunner(cache_dir=cache_dir)
            _run(again, key)
            assert again.cache_info().misses == 1

    def test_format_version_mismatch_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        key = GRID[0]
        runner = ExperimentRunner(cache_dir=cache_dir)
        result = _run(runner, key)
        path = runner.run_cache.path_for(key)
        with open(path, "wb") as handle:
            pickle.dump({"format": CACHE_FORMAT_VERSION + 1,
                         "result": result}, handle)
        assert RunCache(cache_dir).load(key) is None

    def test_no_cache_dir_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        runner = ExperimentRunner()
        _run(runner, GRID[0])
        assert runner.run_cache is None
        assert os.listdir(tmp_path) == []

    def test_store_is_atomic_no_tmp_left_behind(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        runner = ExperimentRunner(cache_dir=cache_dir)
        _run(runner, GRID[0])
        assert all(name.endswith(".pkl")
                   for name in os.listdir(cache_dir)
                   if name != ".lock")


class TestCacheKey:
    def test_stable_across_calls(self):
        key = GRID[0]
        assert cache_key(key) == cache_key(key)

    def test_distinct_per_run_key(self):
        seen = {cache_key(key) for key in GRID}
        assert len(seen) == len(GRID)

    def test_memory_variant_changes_key(self):
        base = GRID[0]
        fast = dataclasses.replace(base, memory="fast")
        assert cache_key(base) != cache_key(fast)

    def test_fingerprint_changes_with_memory_config(self):
        system = make_system("1P2L", 1.0)
        slower = dataclasses.replace(
            system,
            memory=dataclasses.replace(system.memory,
                                       activate_cycles=99))
        assert config_fingerprint(system) != config_fingerprint(slower)

    def test_fingerprint_changes_with_cache_level_config(self):
        system = make_system("1P2L", 1.0)
        levels = list(system.levels)
        levels[0] = dataclasses.replace(
            levels[0], tag_latency=levels[0].tag_latency + 1)
        slower = dataclasses.replace(system, levels=tuple(levels))
        assert config_fingerprint(system) != config_fingerprint(slower)

    def test_fingerprint_covers_every_level_field(self):
        # A sentinel change to any CacheLevelConfig field must
        # invalidate; spot-check a latency field too.
        system = make_system("1P1L", 1.0)
        levels = list(system.levels)
        levels[-1] = dataclasses.replace(levels[-1],
                                         data_latency=levels[-1]
                                         .data_latency + 7)
        changed = dataclasses.replace(system, levels=tuple(levels))
        assert config_fingerprint(system) != config_fingerprint(changed)


class TestIntrospection:
    def test_counts_by_source(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        runner = ExperimentRunner(cache_dir=cache_dir)
        key = GRID[0]
        _run(runner, key)          # miss
        _run(runner, key)          # memo hit
        other = ExperimentRunner(cache_dir=cache_dir)
        _run(other, key)           # disk hit
        assert runner.cache_info().misses == 1
        assert runner.cache_info().memory_hits == 1
        assert other.cache_info().disk_hits == 1
        assert "simulated" in runner.cache_info().describe()

    def test_clear_resets_memo_and_stats(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        runner = ExperimentRunner(cache_dir=cache_dir)
        _run(runner, GRID[0])
        runner.clear()
        assert runner.runs_completed == 0
        assert runner.cache_info().requests == 0
        assert len(runner.run_cache) == 1  # disk untouched
        _run(runner, GRID[0])
        assert runner.cache_info().disk_hits == 1

    def test_clear_disk_removes_entries(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        runner = ExperimentRunner(cache_dir=cache_dir)
        _run(runner, GRID[0])
        runner.clear(disk=True)
        assert len(runner.run_cache) == 0
        _run(runner, GRID[0])
        assert runner.cache_info().misses == 1


class TestPlans:
    def test_plans_cover_every_figure_key(self):
        # Replaying a figure's run loop against a prefetched runner
        # must be pure memo hits — the plan is exactly the loop.
        from repro.experiments.fig13 import run_fig13
        runner = ExperimentRunner()
        runner.prefetch(plans.plan_fig13(workloads=["sobel", "htap1"]))
        before = runner.cache_info()
        run_fig13(runner, workloads=["sobel", "htap1"])
        after = runner.cache_info()
        assert after.misses == before.misses

    def test_plan_for_dedupes_across_figures(self):
        fig11 = plans.plan_for(["fig11"])
        both = plans.plan_for(["fig11", "fig12"])
        # Fig. 11's 1 MB points are a subset of Fig. 12's sweep.
        assert set(fig11) <= set(both)
        assert len(both) == len(plans.plan_for(["fig12"]))

    def test_plan_for_unknown_names_skipped(self):
        assert plans.plan_for(["table1", "fig10"]) == []

    def test_planned_key_simulates_like_runner(self):
        key = GRID[1]
        direct = simulate_run_key(key)
        via_runner = _run(ExperimentRunner(), key)
        assert direct.cycles == via_runner.cycles
        assert direct.stats.flat() == via_runner.stats.flat()

    def test_system_for_key_resident(self):
        key = RunKey("1P2L", "sobel", "small", 1.0, True, "default", 0)
        assert system_for_key(key).name.endswith("resident")


class TestTraceCache:
    def test_trace_reused_across_designs(self):
        clear_trace_cache()
        run_simulation(make_system("1P1L", 1.0), workload="sobel",
                       size="small")
        run_simulation(make_system("1P1L", 1.0), workload="sobel",
                       size="small")
        info = trace_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1
        clear_trace_cache()
        assert trace_cache_info() == {"hits": 0, "misses": 0,
                                      "entries": 0, "store_hits": 0,
                                      "store_misses": 0,
                                      "corrupt_quarantined": 0,
                                      "generated": 0}

    def test_explicit_layout_bypasses_cache(self):
        from repro.sw.layout import make_layout
        from repro.workloads.registry import build_workload
        clear_trace_cache()
        program = build_workload("sobel", "small")
        layout = make_layout(program.arrays, 1)
        run_simulation(make_system("1P1L", 1.0), workload="sobel",
                       size="small", layout=layout)
        assert trace_cache_info()["entries"] == 0

    def test_cached_and_uncached_traces_identical(self):
        clear_trace_cache()
        first = run_simulation(make_system("1P2L", 1.0),
                               workload="htap1", size="small")
        second = run_simulation(make_system("1P2L", 1.0),
                                workload="htap1", size="small")
        assert trace_cache_info()["hits"] == 1
        assert first.cycles == second.cycles
        assert first.stats.flat() == second.stats.flat()


class TestTraceProcessTree:
    """A parallel sweep generates each trace at most once per tree."""

    def teardown_method(self):
        configure_trace_store(None)
        clear_trace_cache()

    def test_cold_parallel_sweep_generates_each_trace_once(self, tmp_path):
        clear_trace_cache()
        trace_dir = str(tmp_path / ".tracecache")
        runner = ExperimentRunner(jobs=2, trace_dir=trace_dir)
        distinct = len(dict.fromkeys(trace_key_for(key)
                                     for key in GRID))
        assert runner.prefetch(GRID) == len(GRID)

        # The parent materialized every distinct (workload, size, dims)
        # trace exactly once, before forking: each was a store miss
        # (cold store) followed by a kernel walk.
        parent = trace_cache_info()
        assert parent["generated"] == distinct
        assert parent["store_misses"] == distinct
        assert parent["store_hits"] == 0
        # ... and persisted each to the store.
        assert len(TraceStore(trace_dir)) == distinct

        # Forked workers inherited the packed buffers copy-on-write:
        # every replay was a memo hit — no worker regenerated or even
        # re-read a trace from disk.
        snapshots = runner.worker_trace_info()
        assert snapshots, "pool workers reported no trace snapshots"
        for info in snapshots.values():
            assert info["generated"] == 0
            assert info["store_hits"] == 0
            assert info["store_misses"] == 0
            assert info["hits"] >= 1

    def test_warm_store_serves_new_process_tree(self, tmp_path):
        trace_dir = str(tmp_path / ".tracecache")
        clear_trace_cache()
        first = ExperimentRunner(jobs=2, trace_dir=trace_dir)
        first.prefetch(GRID)
        distinct = len(dict.fromkeys(trace_key_for(key)
                                     for key in GRID))

        # A later cold process (fresh memo, warm store) loads every
        # trace from disk instead of walking kernels again.
        clear_trace_cache()
        second = ExperimentRunner(jobs=2, trace_dir=trace_dir,
                                  cache_dir=None)
        assert second.prefetch(GRID) == len(GRID)
        info = trace_cache_info()
        assert info["generated"] == 0
        assert info["store_hits"] == distinct


class TestMemoryVariants:
    def test_unknown_variant_raises(self):
        from repro.experiments.runner import memory_config
        with pytest.raises(ValueError):
            memory_config("warp")

    def test_fast_variant_differs(self):
        from repro.experiments.runner import memory_config
        assert memory_config("fast") != memory_config("default")
        assert isinstance(memory_config("default"), MemoryConfig)

    def test_level_config_type_still_fingerprinted(self):
        # Guard against CacheLevelConfig silently dropping out of the
        # asdict payload (e.g. if levels became opaque objects).
        system = make_system("1P2L", 1.0)
        blob = dataclasses.asdict(system)
        assert isinstance(system.levels[0], CacheLevelConfig)
        assert "levels" in blob and blob["levels"]
