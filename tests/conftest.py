"""Shared fixtures and fakes for the test suite."""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.common.config import CacheLevelConfig, MemoryConfig
from repro.common.stats import StatRegistry
from repro.common.types import AccessWidth


class FakeLower:
    """A scripted lower level: fixed-latency fills, recorded writebacks.

    Stands in for the next cache level / memory in unit tests so a cache
    can be exercised in isolation.
    """

    level_index = 0

    def __init__(self, latency: int = 100) -> None:
        self.latency = latency
        self.fetches: List[Tuple[int, int]] = []      # (line_id, at)
        self.writebacks: List[Tuple[int, int, int]] = []  # (line, mask, at)

    def fetch_line(self, line_id: int, now: int,
                   width: AccessWidth) -> Tuple[int, int]:
        self.fetches.append((line_id, now))
        return now + self.latency, 0

    def writeback_line(self, line_id: int, dirty_mask: int,
                       now: int) -> int:
        self.writebacks.append((line_id, dirty_mask, now))
        return now + 1

    # -- convenience assertions -------------------------------------------

    def fetched_lines(self) -> List[int]:
        return [line for line, _ in self.fetches]

    def written_lines(self) -> List[int]:
        return [line for line, _, _ in self.writebacks]

    def written_words(self) -> set:
        """Every word covered by a writeback's dirty mask."""
        from repro.common.types import line_words
        words = set()
        for line, mask, _ in self.writebacks:
            for offset, word in enumerate(line_words(line)):
                if mask & (1 << offset):
                    words.add(word)
        return words


@pytest.fixture(autouse=True)
def _hermetic_faults(monkeypatch):
    """Keep fault injection out of tests that did not ask for it.

    ``REPRO_FAULTS`` arms the deterministic fault harness process-wide
    (by design — that is how the CI fault job exercises recovery
    paths), but unit tests asserting exact cache hit counts must stay
    hermetic; tests that want faults arm a plan explicitly via
    ``repro.experiments.faults.arm``.
    """
    from repro.experiments import faults
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture(autouse=True)
def _restore_kernel_pin():
    """Restore the kernel-dispatch pin after every test.

    ``kernel_disabled()`` restores on exit itself, but a test that
    flips :data:`repro.core.kernels.KERNEL_ENABLED` directly and then
    fails would leak the pin into every later test; this snapshot makes
    the suite order-independent.
    """
    from repro.core import kernels
    prior = kernels.KERNEL_ENABLED
    yield
    kernels.KERNEL_ENABLED = prior


@pytest.fixture
def stats() -> StatRegistry:
    return StatRegistry()


@pytest.fixture
def lower() -> FakeLower:
    return FakeLower()


def small_config(name: str = "L1", size_kb: int = 1, assoc: int = 4,
                 logical_dims: int = 1, physical_dims: int = 1,
                 **kwargs) -> CacheLevelConfig:
    """A small cache level config for unit tests."""
    defaults = dict(
        name=name,
        size_bytes=size_kb * 1024,
        assoc=assoc,
        tag_latency=1,
        data_latency=1,
        sequential_tag_data=False,
        logical_dims=logical_dims,
        physical_dims=physical_dims,
    )
    defaults.update(kwargs)
    return CacheLevelConfig(**defaults)


@pytest.fixture
def memory_config() -> MemoryConfig:
    return MemoryConfig()
