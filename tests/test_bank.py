"""Unit tests for the crosspoint bank's dual-buffer timing."""

from repro.common.config import MemoryConfig
from repro.common.stats import StatGroup
from repro.common.types import Orientation
from repro.mem.bank import CrosspointBank


def make_bank(**kwargs):
    cfg = MemoryConfig(**kwargs)
    stats = StatGroup("bank")
    return CrosspointBank(cfg, stats), cfg, stats


class TestRowBuffer:
    def test_first_access_is_activation(self):
        bank, cfg, stats = make_bank()
        ready = bank.access(Orientation.ROW, 5, is_write=False, at=0)
        assert ready == cfg.activate_cycles + cfg.buffer_access_cycles
        assert stats.get("row_buffer_misses") == 1
        assert bank.open_row == 5

    def test_second_access_same_row_hits(self):
        bank, cfg, stats = make_bank()
        t1 = bank.access(Orientation.ROW, 5, False, 0)
        t2 = bank.access(Orientation.ROW, 5, False, t1)
        assert t2 - t1 == cfg.buffer_access_cycles
        assert stats.get("row_buffer_hits") == 1

    def test_row_conflict_reactivates(self):
        bank, cfg, stats = make_bank()
        t1 = bank.access(Orientation.ROW, 5, False, 0)
        bank.access(Orientation.ROW, 6, False, t1)
        assert stats.get("row_buffer_misses") == 2
        assert bank.open_row == 6


class TestColumnBuffer:
    def test_column_access_pays_decode_extra(self):
        bank, cfg, _ = make_bank()
        ready = bank.access(Orientation.COLUMN, 2, False, 0)
        assert ready == (cfg.activate_cycles + cfg.buffer_access_cycles
                         + cfg.column_decode_extra)

    def test_row_and_column_buffers_independent(self):
        """Opening a row does not close the column buffer: the MDA bank
        keeps both open (open-page in both dimensions)."""
        bank, _, stats = make_bank()
        t = bank.access(Orientation.COLUMN, 2, False, 0)
        t = bank.access(Orientation.ROW, 7, False, t)
        t = bank.access(Orientation.COLUMN, 2, False, t)
        assert stats.get("col_buffer_hits") == 1
        assert bank.open_row == 7
        assert bank.open_col == 2

    def test_column_streak_hits_after_first(self):
        bank, _, stats = make_bank()
        t = 0
        for _ in range(4):
            t = bank.access(Orientation.COLUMN, 3, False, t)
        assert stats.get("col_buffer_misses") == 1
        assert stats.get("col_buffer_hits") == 3


class TestWritesAndOccupancy:
    def test_write_pays_write_latency(self):
        bank, cfg, _ = make_bank()
        ready = bank.access(Orientation.ROW, 1, is_write=True, at=0)
        assert ready == cfg.activate_cycles + cfg.write_cycles

    def test_bank_busy_serializes(self):
        bank, cfg, _ = make_bank()
        t1 = bank.access(Orientation.ROW, 1, False, 0)
        # A request arriving earlier than the bank is free starts late.
        t2 = bank.access(Orientation.ROW, 1, False, 0)
        assert t2 == t1 + cfg.buffer_access_cycles

    def test_idle_bank_starts_at_request_time(self):
        bank, cfg, _ = make_bank()
        ready = bank.access(Orientation.ROW, 1, False, 1000)
        assert ready == 1000 + cfg.activate_cycles \
            + cfg.buffer_access_cycles

    def test_speed_factor_shrinks_timings(self):
        fast_bank, fast_cfg, _ = make_bank(speed_factor=2.0)
        ready = fast_bank.access(Orientation.ROW, 1, False, 0)
        base_cfg = MemoryConfig()
        assert ready == (base_cfg.activate_cycles
                         + base_cfg.buffer_access_cycles) // 2

    def test_reset_clears_buffers(self):
        bank, _, _ = make_bank()
        bank.access(Orientation.ROW, 1, False, 0)
        bank.reset()
        assert bank.open_row is None
        assert bank.open_col is None
        assert bank.busy_until == 0

    def test_would_hit_matches_state(self):
        bank, _, _ = make_bank()
        bank.access(Orientation.ROW, 4, False, 0)
        assert bank.would_hit(Orientation.ROW, 4)
        assert not bank.would_hit(Orientation.ROW, 5)
        assert not bank.would_hit(Orientation.COLUMN, 4)


class TestSubBuffers:
    """The Gulur et al. multiple sub-row-buffer scheme (Section IX-B)."""

    def test_multiple_rows_stay_open(self):
        bank, _, stats = make_bank(sub_buffers=2)
        t = bank.access(Orientation.ROW, 1, False, 0)
        t = bank.access(Orientation.ROW, 2, False, t)
        t = bank.access(Orientation.ROW, 1, False, t)  # still open
        assert stats.get("row_buffer_hits") == 1

    def test_fifo_replacement_among_sub_buffers(self):
        bank, _, stats = make_bank(sub_buffers=2)
        t = 0
        for key in (1, 2, 3):  # 3 evicts 1
            t = bank.access(Orientation.ROW, key, False, t)
        t = bank.access(Orientation.ROW, 1, False, t)
        assert stats.get("row_buffer_hits") == 0
        assert bank.would_hit(Orientation.ROW, 3)
        assert bank.would_hit(Orientation.ROW, 1)

    def test_single_buffer_matches_open_page(self):
        bank, _, stats = make_bank(sub_buffers=1)
        t = bank.access(Orientation.ROW, 1, False, 0)
        t = bank.access(Orientation.ROW, 2, False, t)
        assert not bank.would_hit(Orientation.ROW, 1)

    def test_row_and_column_sub_buffers_independent(self):
        bank, _, _ = make_bank(sub_buffers=2)
        t = bank.access(Orientation.ROW, 1, False, 0)
        t = bank.access(Orientation.COLUMN, 1, False, t)
        t = bank.access(Orientation.COLUMN, 2, False, t)
        assert bank.would_hit(Orientation.ROW, 1)
        assert bank.would_hit(Orientation.COLUMN, 1)
        assert bank.would_hit(Orientation.COLUMN, 2)
