"""Unit tests for trace generation."""

from repro.common.types import AccessWidth, Orientation, line_id_of
from repro.sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program
from repro.sw.layout import TiledLayout
from repro.sw.tracegen import generate_trace, trace_length, trace_mix
from repro.workloads.blas import build_sgemm, build_strmm
from repro.workloads.sobel import build_sobel


def single_nest_program(refs, loops, arrays):
    nest = LoopNest("n", loops, refs)
    return Program("p", arrays, [nest])


class TestVectorEmission:
    def test_aligned_row_walk_emits_one_vector_per_group(self):
        a = ArrayDecl("A", 8, 16)
        prog = single_nest_program(
            [ArrayRef(a, Affine.constant(0), Affine.of("j"))],
            [Loop.over("j", 16)], [a])
        trace = list(generate_trace(prog, 2))
        assert len(trace) == 2  # 16 lanes / 8 = 2 groups, aligned
        assert all(r.width is AccessWidth.VECTOR for r in trace)
        assert all(r.orientation is Orientation.ROW for r in trace)

    def test_misaligned_group_emits_two_requests(self):
        """Groups starting at offset 1 straddle two lines (Sobel taps)."""
        a = ArrayDecl("A", 8, 24)
        prog = single_nest_program(
            [ArrayRef(a, Affine.constant(0), Affine.of("j", const=1))],
            [Loop.over("j", 8)], [a])
        trace = list(generate_trace(prog, 2))
        assert len(trace) == 2
        lines = {r.line_id for r in trace}
        assert len(lines) == 2

    def test_column_vector_addresses_are_column_aligned(self):
        a = ArrayDecl("A", 16, 16)
        prog = single_nest_program(
            [ArrayRef(a, Affine.of("i"), Affine.constant(3))],
            [Loop.over("i", 16)], [a])
        trace = list(generate_trace(prog, 2))
        assert len(trace) == 2
        assert all(r.orientation is Orientation.COLUMN for r in trace)
        layout = TiledLayout([a])
        assert trace[0].line_id == line_id_of(
            layout.address_of("A", 0, 3), Orientation.COLUMN)

    def test_loop_tail_falls_back_to_scalars(self):
        a = ArrayDecl("A", 8, 16)
        prog = single_nest_program(
            [ArrayRef(a, Affine.constant(0), Affine.of("j"))],
            [Loop.over("j", 12)], [a])
        trace = list(generate_trace(prog, 2))
        vectors = [r for r in trace if r.width is AccessWidth.VECTOR]
        scalars = [r for r in trace if r.width is AccessWidth.SCALAR]
        assert len(vectors) == 1
        assert len(scalars) == 4


class TestScalarEmission:
    def test_hoisted_ref_once_per_group(self):
        a = ArrayDecl("A", 8, 16)
        prog = single_nest_program(
            [ArrayRef(a, Affine.constant(0), Affine.constant(0)),
             ArrayRef(a, Affine.constant(1), Affine.of("j"))],
            [Loop.over("j", 16)], [a])
        trace = list(generate_trace(prog, 2))
        scalars = [r for r in trace if r.width is AccessWidth.SCALAR]
        assert len(scalars) == 2  # one per vector group

    def test_serial_ref_once_per_lane(self):
        a = ArrayDecl("A", 16, 32)
        prog = single_nest_program(
            [ArrayRef(a, Affine.constant(0), Affine.of("j", coeff=2)),
             ArrayRef(a, Affine.constant(1), Affine.of("j"))],
            [Loop.over("j", 16)], [a])
        trace = list(generate_trace(prog, 2))
        scalars = [r for r in trace if r.width is AccessWidth.SCALAR]
        assert len(scalars) == 16

    def test_depth_refs_emitted_before_and_after(self):
        a = ArrayDecl("A", 8, 8)
        read = ArrayRef(a, Affine.of("i"), Affine.constant(0), depth=1,
                        when="before")
        write = ArrayRef(a, Affine.of("i"), Affine.constant(0),
                         is_write=True, depth=1, when="after")
        body = ArrayRef(a, Affine.of("i"), Affine.of("j"))
        prog = single_nest_program([read, write, body],
                                   [Loop.over("i", 2),
                                    Loop.over("j", 8)], [a])
        trace = list(generate_trace(prog, 2))
        # Per i: read, vector group, write -> first is a read scalar,
        # last is a write scalar.
        assert not trace[0].is_write
        assert trace[0].width is AccessWidth.SCALAR
        assert trace[2].is_write


class TestKernelTraces:
    def test_sgemm_trace_request_count(self):
        n = 16
        trace = list(generate_trace(build_sgemm(n), 2))
        # Per (i, j): n/8 MatR vectors + n/8 MatC vectors + 1 store.
        expected = n * n * (2 * n // 8 + 1)
        assert len(trace) == expected

    def test_sgemm_1d_trace_is_larger(self):
        n = 16
        len_2d = trace_length(build_sgemm(n), 2)
        len_1d = trace_length(build_sgemm(n), 1)
        assert len_1d > len_2d  # serialized column walks

    def test_strmm_triangular_volume(self):
        """The triangular reduction touches less data than the full
        product (request *count* can be higher: loop tails emit
        scalars)."""
        n = 16
        strmm_bytes = trace_mix(generate_trace(build_strmm(n), 2)).total
        sgemm_bytes = trace_mix(generate_trace(build_sgemm(n), 2)).total
        assert strmm_bytes < sgemm_bytes

    def test_sobel_trace_is_column_only(self):
        mix = trace_mix(generate_trace(build_sobel(16), 2))
        assert mix.row_scalar == 0
        assert mix.row_vector == 0
        assert mix.column_fraction == 1.0

    def test_writes_present_in_traces(self):
        trace = list(generate_trace(build_sgemm(16), 2))
        assert any(r.is_write for r in trace)


class TestTraceMix:
    def test_volume_weighting(self):
        a = ArrayDecl("A", 8, 16)
        prog = single_nest_program(
            [ArrayRef(a, Affine.constant(0), Affine.of("j"))],
            [Loop.over("j", 8)], [a])
        mix = trace_mix(generate_trace(prog, 2))
        assert mix.row_vector == 64  # one vector = 64 bytes
        assert mix.total == 64

    def test_fractions_sum_to_one(self):
        mix = trace_mix(generate_trace(build_sgemm(16), 2))
        assert abs(sum(mix.fractions().values()) - 1.0) < 1e-9
