"""Unit tests for the row+column vectorizer."""

from repro.common.types import Orientation
from repro.sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program
from repro.sw.vectorizer import VecClass, compile_program
from repro.workloads.blas import build_sgemm


def simple_program(ref_builder):
    a = ArrayDecl("A", 16, 16)
    ref = ref_builder(a)
    nest = LoopNest("n", [Loop.over("i", 16), Loop.over("j", 16)], [ref])
    return Program("p", [a], [nest])


class TestClassification:
    def test_unit_stride_row_ref_is_vector(self):
        prog = simple_program(
            lambda a: ArrayRef(a, Affine.of("i"), Affine.of("j")))
        compiled = compile_program(prog, 2)
        assert compiled.nests[0].refs[0].vec_class is VecClass.VECTOR
        assert compiled.nests[0].vectorized

    def test_unit_stride_column_ref_is_vector_in_2d(self):
        prog = simple_program(
            lambda a: ArrayRef(a, Affine.of("j"), Affine.of("i")))
        compiled = compile_program(prog, 2)
        cref = compiled.nests[0].refs[0]
        assert cref.vec_class is VecClass.VECTOR
        assert cref.direction.orientation is Orientation.COLUMN

    def test_column_ref_not_vectorized_in_1d(self):
        """State-of-the-art compilers do not vectorize column walks
        (paper Section V)."""
        prog = simple_program(
            lambda a: ArrayRef(a, Affine.of("j"), Affine.of("i")))
        compiled = compile_program(prog, 1)
        cref = compiled.nests[0].refs[0]
        assert cref.vec_class is VecClass.SCALAR_SERIAL
        assert cref.direction.orientation is Orientation.ROW

    def test_invariant_ref_is_hoisted(self):
        prog = simple_program(
            lambda a: ArrayRef(a, Affine.of("i"), Affine.constant(0)))
        compiled = compile_program(prog, 2)
        assert compiled.nests[0].refs[0].vec_class is \
            VecClass.SCALAR_HOISTED

    def test_strided_ref_stays_serial(self):
        prog = simple_program(
            lambda a: ArrayRef(a, Affine.of("i"),
                               Affine.of("j", coeff=2)))
        compiled = compile_program(prog, 2)
        assert compiled.nests[0].refs[0].vec_class is \
            VecClass.SCALAR_SERIAL

    def test_nest_without_vector_refs_not_vectorized(self):
        prog = simple_program(
            lambda a: ArrayRef(a, Affine.of("i"),
                               Affine.of("j", coeff=2)))
        compiled = compile_program(prog, 2)
        assert not compiled.nests[0].vectorized


class TestDepthHandling:
    def test_shallow_ref_stays_scalar(self):
        a = ArrayDecl("A", 16, 16)
        nest = LoopNest(
            "n", [Loop.over("i", 16), Loop.over("j", 16)],
            [ArrayRef(a, Affine.constant(0), Affine.of("i"), depth=1),
             ArrayRef(a, Affine.of("i"), Affine.of("j"))])
        prog = Program("p", [a], [nest])
        compiled = compile_program(prog, 2)
        shallow, deep = compiled.nests[0].refs
        assert shallow.vec_class is not VecClass.VECTOR
        assert deep.vec_class is VecClass.VECTOR

    def test_ref_ids_unique_across_nests(self):
        compiled = compile_program(build_sgemm(16), 2)
        ids = [cref.ref_id for cref in compiled.all_refs()]
        assert len(ids) == len(set(ids))


class TestSgemmCompilation:
    def test_sgemm_2d_has_row_and_column_vectors(self):
        compiled = compile_program(build_sgemm(16), 2)
        inner = compiled.nests[0].innermost_refs()
        orientations = {cref.direction.orientation for cref in inner
                        if cref.vec_class is VecClass.VECTOR}
        assert orientations == {Orientation.ROW, Orientation.COLUMN}

    def test_sgemm_1d_serializes_matc(self):
        compiled = compile_program(build_sgemm(16), 1)
        inner = compiled.nests[0].innermost_refs()
        classes = [cref.vec_class for cref in inner]
        assert VecClass.VECTOR in classes
        assert VecClass.SCALAR_SERIAL in classes
