"""Pre-fork master supervision (PR-8 tentpole).

Unit tests drive the supervision logic directly — exit
classification, restart backoff, crash-loop degradation, the
never-retire-the-last-worker invariant, state publication — with an
injected clock and hand-built slots, no forking.  The end-to-end test
forks the real fleet as a subprocess, SIGKILLs a worker, and watches
the master restart it and then drain cleanly on SIGTERM.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.experiments.supervisor import RetryPolicy
from repro.service.master import (
    PreforkMaster,
    _WorkerSlot,
    classify_exit,
)


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestClassifyExit:
    def test_clean_drain(self):
        assert classify_exit(0, hung=False, draining=True) == "clean"

    def test_nonzero_during_drain(self):
        assert classify_exit(9, hung=False,
                             draining=True) == "failed-drain"

    def test_crash_restarts(self):
        assert classify_exit(43, hung=False,
                             draining=False) == "restart"

    def test_hang_restarts(self):
        # A SIGKILLed hung worker exits -9; the hung flag decides.
        assert classify_exit(-9, hung=True, draining=False) == "restart"

    def test_unsolicited_clean_exit_restarts(self):
        """Exit 0 without a drain request still leaves the fleet a
        worker short — it must be replaced, not celebrated."""
        assert classify_exit(0, hung=False, draining=False) == "restart"


def _master(tmp_path, slots: int = 2, clock=None, **kwargs):
    clock = clock or FakeClock()
    master = PreforkMaster(
        build=lambda index: None, workers=slots,
        outdir=str(tmp_path),
        policy=kwargs.pop("policy", RetryPolicy(
            max_retries=0, backoff_base=0.5, backoff_cap=4.0)),
        clock=clock, **kwargs)
    master._slots = [
        _WorkerSlot(index=i,
                    hb_path=str(tmp_path / f"{i}.hb"))
        for i in range(slots)]
    return master, clock


class TestRestartScheduling:
    def test_backoff_grows_with_consecutive_failures(self, tmp_path):
        master, clock = _master(tmp_path)
        slot = master._slots[0]
        master._schedule_restart(slot, code=43)
        assert slot.next_start == pytest.approx(clock.now + 0.5)
        master._schedule_restart(slot, code=43)
        assert slot.next_start == pytest.approx(clock.now + 1.0)
        master._schedule_restart(slot, code=43)
        assert slot.next_start == pytest.approx(clock.now + 2.0)
        assert master.restarts_total == 3
        assert not slot.retired

    def test_backoff_is_capped(self, tmp_path):
        master, clock = _master(
            tmp_path, crash_loop_restarts=100)
        slot = master._slots[0]
        for _ in range(10):
            master._schedule_restart(slot, code=43)
        assert slot.next_start <= clock.now + 4.0

    def test_stable_uptime_resets_the_streak(self, tmp_path):
        master, clock = _master(tmp_path, crash_loop_window=30.0)
        slot = master._slots[0]
        master._schedule_restart(slot, code=43)
        assert slot.failures == 1
        # The worker comes back and stays up past the window.
        slot.pid = 12345
        slot.started = clock.now
        clock.advance(31.0)
        master._reset_stable_streaks()
        assert slot.failures == 0
        assert slot.recent == []
        # The next crash backs off from the base again.
        slot.pid = None
        master._schedule_restart(slot, code=43)
        assert slot.next_start == pytest.approx(clock.now + 0.5)

    def test_restart_waits_for_backoff(self, tmp_path):
        master, clock = _master(tmp_path)
        master._slots[1].pid = 999  # healthy; not respawned
        slot = master._slots[0]
        spawned = []
        master._spawn = lambda s: spawned.append(s.index)
        master._schedule_restart(slot, code=43)
        assert not master._restart_due()
        clock.advance(0.6)
        assert master._restart_due()
        assert spawned == [0]


class TestCrashLoopDegradation:
    def test_crash_loop_retires_the_slot(self, tmp_path):
        master, clock = _master(tmp_path, slots=3,
                                crash_loop_restarts=5,
                                crash_loop_window=30.0)
        slot = master._slots[1]
        for _ in range(5):
            master._schedule_restart(slot, code=43)
            clock.advance(1.0)  # all within the 30s window
        assert slot.retired
        assert not master._slots[0].retired
        assert not master._slots[2].retired

    def test_slow_crashes_outside_the_window_never_loop(self,
                                                        tmp_path):
        master, clock = _master(tmp_path, slots=2,
                                crash_loop_restarts=5,
                                crash_loop_window=30.0)
        slot = master._slots[0]
        for _ in range(20):
            master._schedule_restart(slot, code=43)
            clock.advance(31.0)  # each restart ages out of the window
        assert not slot.retired

    def test_the_last_worker_is_never_retired(self, tmp_path):
        master, clock = _master(tmp_path, slots=2,
                                crash_loop_restarts=5)
        master._slots[1].retired = True
        survivor = master._slots[0]
        for _ in range(50):
            master._schedule_restart(survivor, code=43)
            clock.advance(0.1)
        assert not survivor.retired
        # Still scheduled to come back, with backoff applied.
        assert survivor.next_start > clock.now

    def test_retired_slots_are_not_respawned(self, tmp_path):
        master, clock = _master(tmp_path, slots=2)
        master._slots[0].retired = True
        spawned = []
        master._spawn = lambda s: spawned.append(s.index)
        clock.advance(100.0)
        master._restart_due()
        assert spawned == [1]


class TestStateFile:
    def test_state_is_published_atomically(self, tmp_path):
        master, clock = _master(tmp_path, slots=3)
        master._slots[0].pid = 111
        master._slots[1].pid = 222
        master._slots[2].retired = True
        master.restarts_total = 4
        master._write_state()
        with open(master.state_path, encoding="utf-8") as handle:
            state = json.load(handle)
        assert state["target"] == 2
        assert state["alive"] == 2
        assert state["restarts_total"] == 4
        assert state["retired"] == [2]
        assert state["pids"] == {"0": 111, "1": 222}
        assert not state["draining"]
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if name.startswith(".serve-state.json.tmp")]
        assert leftovers == []


READY_RE = re.compile(r"listening on http://[^:]+:(\d+)")


def _wait_for(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    pytest.fail(f"timed out after {timeout:.0f}s waiting for {what}")


def _read_state(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {}


@pytest.mark.slow
class TestPreforkEndToEnd:
    def test_kill_restart_and_drain(self, tmp_path):
        """The full loop against a real fleet: SIGKILL a worker, the
        master restarts it, requests keep being served, and SIGTERM
        drains everything with exit 0."""
        outdir = str(tmp_path / "out")
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(os.getcwd(), "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--outdir", outdir],
            stderr=subprocess.PIPE, text=True, env=env)
        port_box: list = []
        ready = threading.Event()

        def pump():
            for raw in proc.stderr:
                if not ready.is_set():
                    match = READY_RE.search(raw)
                    if match:
                        port_box.append(int(match.group(1)))
                        ready.set()
            ready.set()

        threading.Thread(target=pump, daemon=True).start()
        state_path = os.path.join(outdir, ".serve-state.json")
        try:
            ready.wait(timeout=60)
            assert port_box, "master never printed its readiness line"
            port = port_box[0]

            state = _wait_for(
                lambda: (lambda s: s if s.get("alive") == 2 else None)(
                    _read_state(state_path)),
                30, "both workers alive in the state file")
            victim = int(next(iter(state["pids"].values())))

            from repro.service.client import RetryConfig, ServiceClient
            with ServiceClient(
                    port=port,
                    retry=RetryConfig(max_retries=6,
                                      backoff_base=0.2)) as client:
                first = client.simulate("1P2L", "sobel", size="small")
                assert first["cycles"] > 0

                os.kill(victim, signal.SIGKILL)
                _wait_for(
                    lambda: _read_state(state_path)
                    .get("restarts_total", 0) >= 1,
                    30, "the master to record the restart")
                _wait_for(
                    lambda: _read_state(state_path).get("alive") == 2,
                    30, "the replacement worker to come up")

                # The fleet still serves, and identically.
                again = client.simulate("1P2L", "sobel", size="small")
                assert again["cycles"] == first["cycles"]

                # /metrics (served by whichever worker accepts)
                # mirrors the master's supervision state.
                text = client.metrics()
                assert "repro_worker_restarts_total" in text
                restarts = [
                    float(line.rsplit(" ", 1)[1])
                    for line in text.splitlines()
                    if line.startswith("repro_worker_restarts_total ")]
                assert restarts and restarts[0] >= 1

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=90) == 0
            final = _read_state(state_path)
            assert final.get("alive") == 0
            assert final.get("draining") is True
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
