"""Unit tests for the MdaMemory front-end."""

import pytest

from repro.common.config import MemoryConfig
from repro.common.errors import SimulationError
from repro.common.stats import StatRegistry
from repro.common.types import Orientation, make_line_id
from repro.mem.mda_memory import MdaMemory


def make_memory(allow_column: bool = True):
    return MdaMemory(MemoryConfig(), StatRegistry(),
                     allow_column=allow_column)


class TestOrientationSupport:
    def test_serves_row_and_column_reads(self):
        mem = make_memory()
        row_done = mem.read_line(make_line_id(0, Orientation.ROW, 0), 0)
        col_done = mem.read_line(make_line_id(1, Orientation.COLUMN, 0),
                                 0)
        assert row_done > 0 and col_done > 0

    def test_row_only_memory_rejects_columns(self):
        mem = make_memory(allow_column=False)
        mem.read_line(make_line_id(0, Orientation.ROW, 0), 0)
        with pytest.raises(SimulationError):
            mem.read_line(make_line_id(0, Orientation.COLUMN, 0), 0)
        with pytest.raises(SimulationError):
            mem.write_line(make_line_id(0, Orientation.COLUMN, 0), 0)

    def test_column_read_in_requested_orientation_single_access(self):
        """A column fetch is one memory operation, not eight row
        openings (the paper's core bandwidth argument)."""
        mem = make_memory()
        stats = StatRegistry()
        mem = MdaMemory(MemoryConfig(), stats)
        mem.read_line(make_line_id(0, Orientation.COLUMN, 3), 0)
        assert stats.group("memory").get("line_reads") == 1
        banks = stats.group("memory.banks")
        assert banks.get("col_buffer_misses") == 1
        assert banks.get("row_buffer_misses") == 0


class TestFinish:
    def test_finish_drains_writes(self):
        stats = StatRegistry()
        mem = MdaMemory(MemoryConfig(), stats)
        for tile in range(6):
            mem.write_line(make_line_id(tile, Orientation.ROW, 0), 0)
        horizon = mem.finish(0)
        assert horizon > 0
        assert mem.controller.pending_writes() == 0

    def test_finish_with_empty_queue_is_noop(self):
        mem = make_memory()
        assert mem.finish(42) == 42
