"""Property tests for the inter-level protocol surface.

The CPU-facing property tests drive ``access``; these drive the
protocol a *lower* level sees — ``fetch_line`` and ``writeback_line``
in random interleavings — which is how an upper cache actually talks
to a 1P2L or 2P2L level.
"""

from hypothesis import given, settings, strategies as st

from repro.common.stats import StatRegistry
from repro.common.types import AccessWidth, Orientation, make_line_id
from repro.cache.cache_1p2l import Cache1P2L
from repro.cache.cache_2p2l import Cache2P2L
from tests.conftest import FakeLower, small_config

line_ids = st.builds(make_line_id,
                     st.integers(min_value=0, max_value=5),
                     st.sampled_from(list(Orientation)),
                     st.integers(min_value=0, max_value=7))

# (is_writeback, line, dirty_mask)
protocol_ops = st.lists(
    st.tuples(st.booleans(), line_ids,
              st.integers(min_value=1, max_value=255)),
    min_size=1, max_size=50)


@settings(max_examples=60, deadline=None)
@given(protocol_ops)
def test_1p2l_protocol_preserves_invariant(ops):
    cache = Cache1P2L(small_config(size_kb=1, assoc=4, logical_dims=2),
                      2, StatRegistry())
    cache.connect(FakeLower())
    now = 0
    for is_writeback, line, mask in ops:
        now += 100_000
        if is_writeback:
            cache.writeback_line(line, mask, now)
        else:
            cache.fetch_line(line, now, AccessWidth.VECTOR)
        cache.check_invariants()


@settings(max_examples=60, deadline=None)
@given(protocol_ops)
def test_1p2l_protocol_conserves_dirty_words(ops):
    cache = Cache1P2L(small_config(size_kb=1, assoc=4, logical_dims=2),
                      2, StatRegistry())
    lower = FakeLower()
    cache.connect(lower)
    from repro.common.types import line_words
    written = set()
    now = 0
    for is_writeback, line, mask in ops:
        now += 100_000
        if is_writeback:
            cache.writeback_line(line, mask, now)
            words = line_words(line)
            for offset in range(8):
                if mask & (1 << offset):
                    written.add(words[offset])
        else:
            cache.fetch_line(line, now, AccessWidth.VECTOR)
    cache.flush(now + 100_000)
    assert written <= lower.written_words()


@settings(max_examples=60, deadline=None)
@given(protocol_ops, st.booleans())
def test_2p2l_protocol_invariants(ops, sparse):
    cache = Cache2P2L(small_config(name="L3", size_kb=1, assoc=2,
                                   logical_dims=2, physical_dims=2,
                                   sparse_fill=sparse),
                      3, StatRegistry())
    cache.connect(FakeLower())
    now = 0
    for is_writeback, line, mask in ops:
        now += 100_000
        if is_writeback:
            cache.writeback_line(line, mask, now)
        else:
            cache.fetch_line(line, now, AccessWidth.VECTOR)
        cache.check_invariants()


@settings(max_examples=40, deadline=None)
@given(protocol_ops)
def test_fetch_completions_monotone_in_now(ops):
    """A later request for the same line never completes earlier."""
    cache = Cache1P2L(small_config(size_kb=1, assoc=4, logical_dims=2),
                      2, StatRegistry())
    cache.connect(FakeLower())
    now = 0
    last_completion = {}
    for _, line, _ in ops:
        now += 100_000
        completion, _ = cache.fetch_line(line, now, AccessWidth.VECTOR)
        assert completion > now
        if line in last_completion:
            assert completion >= last_completion[line] - 100_000
        last_completion[line] = completion
