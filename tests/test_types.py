"""Unit tests for the address/line geometry in repro.common.types."""

import pytest

from repro.common.types import (
    AccessWidth,
    LINE_BYTES,
    LINES_PER_TILE,
    Orientation,
    Request,
    TILE_BYTES,
    WORDS_PER_LINE,
    WORDS_PER_TILE,
    intersecting_line,
    iter_line_addrs,
    line_base_addr,
    line_id_of,
    line_id_parts,
    line_orientation,
    line_word_offset,
    line_words,
    lines_overlap,
    make_line_id,
    perpendicular_lines,
    tile_base,
    tile_coords,
    tile_id,
    word_addr,
)


class TestGeometryConstants:
    def test_derived_sizes(self):
        assert LINE_BYTES == 64
        assert TILE_BYTES == 512
        assert WORDS_PER_TILE == 64

    def test_tile_base_and_id(self):
        assert tile_base(0) == 0
        assert tile_base(511) == 0
        assert tile_base(512) == 512
        assert tile_id(1024) == 2

    def test_tile_coords_roundtrip(self):
        for r in range(8):
            for c in range(8):
                addr = word_addr(5, r, c)
                assert tile_coords(addr) == (r, c)
                assert tile_id(addr) == 5


class TestLineIds:
    def test_row_line_id_contains_all_row_words(self):
        addr = word_addr(3, 2, 5)
        line = line_id_of(addr, Orientation.ROW)
        tile, orientation, index = line_id_parts(line)
        assert (tile, orientation, index) == (3, Orientation.ROW, 2)

    def test_col_line_id_contains_all_col_words(self):
        addr = word_addr(3, 2, 5)
        line = line_id_of(addr, Orientation.COLUMN)
        tile, orientation, index = line_id_parts(line)
        assert (tile, orientation, index) == (3, Orientation.COLUMN, 5)

    def test_make_and_parts_roundtrip(self):
        for orientation in Orientation:
            for index in range(8):
                line = make_line_id(77, orientation, index)
                assert line_id_parts(line) == (77, orientation, index)
                assert line_orientation(line) is orientation

    def test_row_and_col_ids_distinct(self):
        addr = word_addr(0, 3, 3)
        row = line_id_of(addr, Orientation.ROW)
        col = line_id_of(addr, Orientation.COLUMN)
        assert row != col

    def test_row_line_base_addr_is_contiguous_start(self):
        line = make_line_id(2, Orientation.ROW, 4)
        assert line_base_addr(line) == 2 * TILE_BYTES + 4 * LINE_BYTES

    def test_col_line_base_addr(self):
        line = make_line_id(2, Orientation.COLUMN, 4)
        assert line_base_addr(line) == 2 * TILE_BYTES + 4 * 8


class TestLineWords:
    def test_row_line_words_contiguous(self):
        line = make_line_id(0, Orientation.ROW, 1)
        words = line_words(line)
        assert words == tuple(range(8, 16))

    def test_col_line_words_strided(self):
        line = make_line_id(0, Orientation.COLUMN, 1)
        words = line_words(line)
        assert words == tuple(1 + 8 * k for k in range(8))

    def test_line_word_offset_inverts_line_words(self):
        for orientation in Orientation:
            line = make_line_id(9, orientation, 6)
            for offset, word in enumerate(line_words(line)):
                assert line_word_offset(line, word) == offset

    def test_line_word_offset_rejects_foreign_word(self):
        row = make_line_id(0, Orientation.ROW, 0)
        with pytest.raises(ValueError):
            line_word_offset(row, 8)  # word of row 1
        with pytest.raises(ValueError):
            line_word_offset(row, WORDS_PER_TILE)  # next tile

    def test_iter_line_addrs_matches_words(self):
        line = make_line_id(4, Orientation.COLUMN, 2)
        addrs = list(iter_line_addrs(line))
        assert [a >> 3 for a in addrs] == list(line_words(line))


class TestIntersections:
    def test_intersecting_line_is_perpendicular(self):
        row = make_line_id(1, Orientation.ROW, 3)
        word = line_words(row)[5]
        col = intersecting_line(row, word)
        assert line_id_parts(col) == (1, Orientation.COLUMN, 5)
        # And back again.
        assert intersecting_line(col, word) == row

    def test_row_and_col_share_exactly_one_word(self):
        row = make_line_id(0, Orientation.ROW, 2)
        col = make_line_id(0, Orientation.COLUMN, 6)
        shared = set(line_words(row)) & set(line_words(col))
        assert len(shared) == 1
        word = shared.pop()
        assert tile_coords(word * 8) == (2, 6)

    def test_perpendicular_lines_count_and_orientation(self):
        row = make_line_id(7, Orientation.ROW, 0)
        perps = perpendicular_lines(row)
        assert len(perps) == LINES_PER_TILE
        assert all(line_orientation(p) is Orientation.COLUMN
                   for p in perps)

    def test_lines_overlap_rules(self):
        row = make_line_id(0, Orientation.ROW, 0)
        same_tile_col = make_line_id(0, Orientation.COLUMN, 5)
        other_tile_col = make_line_id(1, Orientation.COLUMN, 5)
        other_row = make_line_id(0, Orientation.ROW, 1)
        assert lines_overlap(row, row)
        assert lines_overlap(row, same_tile_col)
        assert not lines_overlap(row, other_tile_col)
        assert not lines_overlap(row, other_row)


class TestRequest:
    def test_scalar_request_words(self):
        addr = word_addr(0, 1, 2)
        req = Request(addr, Orientation.ROW, AccessWidth.SCALAR,
                      is_write=False)
        assert req.words() == (addr >> 3,)

    def test_vector_request_words_cover_line(self):
        addr = word_addr(0, 1, 0)
        req = Request(addr, Orientation.ROW, AccessWidth.VECTOR,
                      is_write=False)
        assert req.words() == line_words(req.line_id)
        assert len(req.words()) == WORDS_PER_LINE

    def test_request_line_id_matches_orientation(self):
        addr = word_addr(2, 3, 4)
        row_req = Request(addr, Orientation.ROW, AccessWidth.SCALAR, False)
        col_req = Request(addr, Orientation.COLUMN, AccessWidth.SCALAR,
                          False)
        assert line_id_parts(row_req.line_id)[2] == 3
        assert line_id_parts(col_req.line_id)[2] == 4

    def test_orientation_other(self):
        assert Orientation.ROW.other is Orientation.COLUMN
        assert Orientation.COLUMN.other is Orientation.ROW
