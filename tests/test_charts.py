"""Unit tests for the ASCII chart helpers."""

import pytest

from repro.core.charts import bar_chart, grouped_bar_chart, sparkline


class TestBarChart:
    def test_scaled_to_largest(self):
        chart = bar_chart([("a", 1.0), ("b", 0.5)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_fixed_scale(self):
        chart = bar_chart([("a", 0.5)], width=10, max_value=1.0)
        assert chart.count("#") == 5

    def test_value_printed_with_unit(self):
        chart = bar_chart([("a", 0.25)], unit="x")
        assert "0.250x" in chart

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])

    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_zero_scale_renders_empty_bars(self):
        chart = bar_chart([("a", 0.0)], width=8)
        assert "#" not in chart

    def test_overflow_clamped_with_fixed_scale(self):
        chart = bar_chart([("a", 2.0)], width=10, max_value=1.0)
        assert chart.count("#") == 10


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([0.0, 0.5, 1.0])) == 3

    def test_monotone_ramp(self):
        line = sparkline([0.0, 0.25, 0.5, 0.75, 1.0])
        # Density characters must be non-decreasing.
        ramp = " .:-=+*#%@"
        levels = [ramp.index(ch) for ch in line]
        assert levels == sorted(levels)

    def test_constant_series_is_flat(self):
        line = sparkline([0.4] * 5)
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        # The same value renders low on a wide scale and high on a
        # scale it tops out.
        wide = sparkline([0.5], lo=0.0, hi=10.0)
        topped = sparkline([0.5], lo=0.0, hi=0.5)
        assert wide == " "
        assert topped == "@"


class TestGroupedBarChart:
    def test_shared_scale_across_groups(self):
        chart = grouped_bar_chart({
            "g1": [("a", 1.0)],
            "g2": [("b", 0.5)],
        }, width=10)
        lines = [ln for ln in chart.splitlines() if "#" in ln or
                 "." in ln]
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
