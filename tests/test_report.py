"""Unit tests for machine-readable reporting."""

import json

import pytest

from repro.core.report import (
    comparison_to_dict,
    run_to_dict,
    runs_to_json,
    system_to_dict,
)
from repro.core.simulator import run_simulation
from repro.core.system import make_system


@pytest.fixture(scope="module")
def runs():
    base = run_simulation(make_system("1P1L"), workload="htap1",
                          size="small")
    mda = run_simulation(make_system("1P2L"), workload="htap1",
                         size="small")
    return base, mda


class TestSystemToDict:
    def test_level_descriptions(self):
        d = system_to_dict(make_system("2P2L"))
        assert [lvl["taxonomy"] for lvl in d["levels"]] == \
            ["1P2L", "1P2L", "2P2L"]
        assert d["levels"][2]["sparse_fill"] is True
        assert d["memory"]["channels"] == 4

    def test_prefetch_flag_surfaces(self):
        d = system_to_dict(make_system("1P1L"))
        assert d["levels"][2]["prefetch"] is True


class TestRunToDict:
    def test_core_metrics_present(self, runs):
        base, _ = runs
        d = run_to_dict(base)
        for key in ("cycles", "ops", "l1_hit_rate", "memory_bytes",
                    "energy_nj"):
            assert key in d
        assert d["workload"] == "htap1"

    def test_counters_optional(self, runs):
        base, _ = runs
        assert "counters" not in run_to_dict(base)
        with_counters = run_to_dict(base, include_counters=True)
        assert "cache.L1.hits" in with_counters["counters"]

    def test_energy_optional(self, runs):
        base, _ = runs
        d = run_to_dict(base, include_energy=False)
        assert "energy_nj" not in d


class TestJson:
    def test_runs_to_json_parses_back(self, runs):
        text = runs_to_json(runs)
        payload = json.loads(text)
        assert len(payload) == 2
        assert payload[0]["workload"] == "htap1"

    def test_json_is_sorted_and_stable(self, runs):
        assert runs_to_json(runs) == runs_to_json(runs)


class TestComparison:
    def test_ratios(self, runs):
        base, mda = runs
        d = comparison_to_dict(base, mda)
        assert d["cycles_ratio"] < 1.0
        assert d["memory_bytes_ratio"] < 1.0
        assert d["energy_ratio"] < 1.0

    def test_rejects_mismatched_workloads(self, runs):
        base, _ = runs
        other = run_simulation(make_system("1P2L"), workload="sobel",
                               size="small")
        with pytest.raises(ValueError):
            comparison_to_dict(base, other)
