"""The fault-tolerant experiment supervisor.

Covers the ISSUE acceptance criteria: the lifecycle journal
round-trips and survives arbitrary truncation, transient failures are
retried with capped backoff while permanent ones fail fast, a sweep
interrupted by injected worker crashes resumes to bit-identical
aggregate statistics, the pool degrades gracefully to serial
execution, and SIGINT ends a sweep cleanly with the journal flushed.
"""

from __future__ import annotations

import json
import os
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    EXIT_INTERRUPTED,
    EXIT_SWEEP_FAILED,
    ConfigError,
    PoolBroken,
    RunTimeout,
    SweepFailed,
    SweepInterrupted,
    WorkerCrash,
    WorkerHang,
    classify_error,
    is_transient,
)
from repro.experiments import faults, supervisor as sup_mod
from repro.experiments.runner import (
    ExperimentRunner,
    RunKey,
    cache_key,
)
from repro.experiments.supervisor import (
    JOURNAL_FORMAT_VERSION,
    RetryPolicy,
    RunJournal,
    Supervisor,
    replay_journal,
)

KEYS = (RunKey("1P1L", "sobel", "small", 1.0, False, "default", 0),
        RunKey("1P2L", "sobel", "small", 1.0, False, "default", 0))


class FakeClock:
    """Deterministic time for retry/backoff tests (no real sleeping)."""

    def __init__(self) -> None:
        self.now = 0.0
        self.slept: list = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.now += seconds


def make_supervisor(runner, tmp_path, suite="test", **kwargs):
    clock = kwargs.pop("clock", None)
    if clock is not None:
        kwargs.setdefault("sleep", clock.sleep)
        kwargs["clock"] = clock
    journal = kwargs.pop("journal", RunJournal.for_suite(
        str(tmp_path), suite))
    return Supervisor(runner, journal=journal, **kwargs)


def crash_seed(ck: str, rate: float = 0.5, site: str = "worker_crash",
               clean_cks: tuple = (), attempts: int = 3) -> int:
    """A seed where ``ck`` attempt 1 fires but attempt 2 does not, and
    every attempt of every ``clean_cks`` key stays clean."""
    for seed in range(10_000):
        plan = faults.FaultPlan({site: rate}, seed=seed)
        if not plan.should_fire(site, f"{ck}:1"):
            continue
        if plan.should_fire(site, f"{ck}:2"):
            continue
        if any(plan.should_fire(site, f"{other}:{attempt}")
               for other in clean_cks
               for attempt in range(1, attempts + 1)):
            continue
        return seed
    raise AssertionError("no suitable seed found")


class TestClassification:
    def test_transient_taxonomy(self):
        for exc in (WorkerCrash("x"), WorkerHang("x"), RunTimeout("x"),
                    PoolBroken("x"), OSError("disk"), MemoryError()):
            assert classify_error(exc) == "transient"
            assert is_transient(exc)

    def test_permanent_taxonomy(self):
        for exc in (ConfigError("bad"), ValueError("bad"),
                    RuntimeError("bad"), KeyError("bad")):
            assert classify_error(exc) == "permanent"
            assert not is_transient(exc)


class TestRetryPolicy:
    def test_exponential_with_cap(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_cap=5.0)
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 2.0
        assert policy.delay(3) == 4.0
        assert policy.delay(4) == 5.0  # capped
        assert policy.delay(10) == 5.0

    def test_zero_attempt_no_delay(self):
        assert RetryPolicy().delay(0) == 0.0


class TestJournal:
    def test_round_trip(self, tmp_path):
        journal = RunJournal.for_suite(str(tmp_path), "suite1")
        assert journal.suite == "suite1"
        assert not journal.exists()
        ck = cache_key(KEYS[0])
        journal.record_event("sweep_start", plan=1)
        journal.record_run(KEYS[0], ck, "pending")
        journal.record_run(KEYS[0], ck, "running", attempt=1)
        journal.record_run(KEYS[0], ck, "done", attempt=1,
                           seconds=0.5)
        journal.record_event("sweep_end", completed=1)
        journal.close()
        state = journal.replay()
        assert state.states == {ck: "done"}
        assert state.attempts == {ck: 1}
        assert state.keys[ck]["design"] == "1P1L"
        assert state.corrupt_lines == 0
        assert not state.interrupted
        assert state.counts() == {"done": 1}

    def test_replay_missing_file_is_empty(self, tmp_path):
        state = replay_journal(str(tmp_path / "nope.jsonl"))
        assert state.states == {}
        assert state.events == 0

    def test_replay_skips_garbage_and_foreign_versions(self, tmp_path):
        path = tmp_path / "j.jsonl"
        ck = cache_key(KEYS[0])
        good = json.dumps({"v": JOURNAL_FORMAT_VERSION, "event": "run",
                           "ck": ck, "state": "done", "attempt": 1})
        lines = ["not json at all", "[1, 2, 3]",
                 json.dumps({"v": 99, "event": "run", "ck": ck,
                             "state": "failed"}),
                 good,
                 '{"torn": ']
        path.write_text("\n".join(lines) + "\n")
        state = replay_journal(str(path))
        assert state.states == {ck: "done"}
        assert state.corrupt_lines == 4

    def test_interrupted_flag_cleared_by_next_sweep(self, tmp_path):
        journal = RunJournal.for_suite(str(tmp_path), "s")
        journal.record_event("sweep_interrupted", signal=2)
        assert journal.replay().interrupted
        journal.record_event("sweep_start", plan=0)
        journal.close()
        assert not journal.replay().interrupted

    @settings(max_examples=30, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=2000),
           junk=st.binary(max_size=40))
    def test_truncated_journal_never_raises(self, cut, junk):
        import tempfile
        journal_dir = tempfile.mkdtemp(prefix="repro-journal-prop-")
        journal = RunJournal.for_suite(journal_dir, "prop")
        ck0, ck1 = cache_key(KEYS[0]), cache_key(KEYS[1])
        journal.record_event("sweep_start", plan=2)
        journal.record_run(KEYS[0], ck0, "done", attempt=1)
        journal.record_run(KEYS[1], ck1, "failed", attempt=2,
                           error="WorkerCrash: boom")
        journal.record_event("sweep_end", completed=1)
        journal.close()
        data = open(journal.path, "rb").read()
        with open(journal.path, "wb") as handle:
            handle.write(data[:min(cut, len(data))] + junk)
        state = replay_journal(journal.path)  # must not raise
        assert set(state.states.values()) <= set(sup_mod.RUN_STATES)
        assert set(state.states) <= {ck0, ck1}


class TestSerialSupervision:
    def test_completes_and_journals(self, tmp_path):
        runner = ExperimentRunner(
            cache_dir=str(tmp_path / ".runcache"))
        sup = make_supervisor(runner, tmp_path)
        report = sup.supervise(KEYS)
        assert report.completed == len(KEYS)
        assert report.simulated == len(KEYS)
        assert not report.failed
        state = sup.journal.replay()
        assert sorted(state.states.values()) == ["done", "done"]

    def test_cached_points_skipped(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        make_supervisor(ExperimentRunner(cache_dir=cache_dir),
                        tmp_path).supervise(KEYS)
        runner = ExperimentRunner(cache_dir=cache_dir)
        report = make_supervisor(runner, tmp_path,
                                 suite="second").supervise(KEYS)
        assert report.from_cache == len(KEYS)
        assert report.simulated == 0
        state = replay_journal(
            str(tmp_path / ".runjournal" / "second.jsonl"))
        assert sorted(state.states.values()) == ["skipped", "skipped"]

    def test_transient_failure_retried_with_backoff(self, tmp_path,
                                                    monkeypatch):
        clock = FakeClock()
        calls = []
        real = sup_mod.simulate_run_key

        def flaky(key):
            calls.append(key)
            if len(calls) <= 2:
                raise WorkerCrash("injected")
            return real(key)

        monkeypatch.setattr(sup_mod, "simulate_run_key", flaky)
        runner = ExperimentRunner()
        sup = make_supervisor(
            runner, tmp_path, clock=clock,
            policy=RetryPolicy(max_retries=2, backoff_base=0.5))
        report = sup.supervise(KEYS[:1])
        assert report.simulated == 1
        assert report.retries == 2
        assert len(calls) == 3
        # Exponential backoff was actually waited out: 0.5s then 1.0s.
        assert clock.now >= 1.5

    def test_permanent_failure_fails_fast(self, tmp_path, monkeypatch):
        calls = []

        def broken(key):
            calls.append(key)
            raise ConfigError("deterministically bad")

        monkeypatch.setattr(sup_mod, "simulate_run_key", broken)
        sup = make_supervisor(ExperimentRunner(), tmp_path,
                              clock=FakeClock(),
                              policy=RetryPolicy(max_retries=5))
        with pytest.raises(SweepFailed) as excinfo:
            sup.supervise(KEYS[:1])
        assert len(calls) == 1  # no retries for permanent errors
        assert len(excinfo.value.report.failed) == 1
        state = sup.journal.replay()
        assert list(state.states.values()) == ["failed"]

    def test_retry_budget_exhausts(self, tmp_path, monkeypatch):
        calls = []

        def always_flaky(key):
            calls.append(key)
            raise OSError("disk flake")

        monkeypatch.setattr(sup_mod, "simulate_run_key", always_flaky)
        sup = make_supervisor(ExperimentRunner(), tmp_path,
                              clock=FakeClock(),
                              policy=RetryPolicy(max_retries=1,
                                                 backoff_base=0.01))
        with pytest.raises(SweepFailed):
            sup.supervise(KEYS[:1])
        assert len(calls) == 2  # max_retries + 1 attempts, no more

    def test_non_strict_returns_report(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            sup_mod, "simulate_run_key",
            lambda key: (_ for _ in ()).throw(ConfigError("bad")))
        sup = make_supervisor(ExperimentRunner(), tmp_path,
                              clock=FakeClock())
        report = sup.supervise(KEYS[:1], strict=False)
        assert len(report.failed) == 1


class TestSignals:
    def test_sigint_flushes_journal_and_raises(self, tmp_path,
                                               monkeypatch):
        real = sup_mod.simulate_run_key

        def simulate_then_interrupt(key):
            result = real(key)
            os.kill(os.getpid(), signal.SIGINT)
            return result

        monkeypatch.setattr(sup_mod, "simulate_run_key",
                            simulate_then_interrupt)
        sup = make_supervisor(ExperimentRunner(), tmp_path)
        with pytest.raises(SweepInterrupted) as excinfo:
            sup.supervise(KEYS)
        report = excinfo.value.report
        assert report.interrupted
        # The in-flight run completed and was journaled before exit.
        assert report.simulated == 1
        state = sup.journal.replay()
        assert state.interrupted
        assert "done" in state.states.values()

    def test_exit_codes(self):
        assert EXIT_INTERRUPTED == 130
        assert EXIT_SWEEP_FAILED == 3

    def test_run_supervised_maps_exit_codes(self):
        from repro.experiments.plans import run_supervised

        class Stub:
            def __init__(self, exc):
                self.exc = exc

            def supervise(self, plan):
                raise self.exc

        with pytest.raises(SystemExit) as excinfo:
            run_supervised(Stub(SweepInterrupted()), [])
        assert excinfo.value.code == EXIT_INTERRUPTED
        with pytest.raises(SystemExit) as excinfo:
            run_supervised(Stub(SweepFailed("x")), [])
        assert excinfo.value.code == EXIT_SWEEP_FAILED

    def test_handlers_restored_after_sweep(self, tmp_path):
        before = signal.getsignal(signal.SIGINT)
        make_supervisor(ExperimentRunner(), tmp_path).supervise(
            KEYS[:1])
        assert signal.getsignal(signal.SIGINT) is before


class TestPoolSupervision:
    def test_pool_parity_with_serial(self, tmp_path):
        serial = ExperimentRunner()
        expected = {key: serial.run(key.design, key.workload, key.size,
                                    key.llc_mb)
                    for key in KEYS}
        runner = ExperimentRunner(jobs=2)
        make_supervisor(runner, tmp_path).supervise(KEYS)
        for key in KEYS:
            got = runner.run(key.design, key.workload, key.size,
                             key.llc_mb)
            assert got.cycles == expected[key].cycles
            assert got.stats.flat() == expected[key].stats.flat()

    def test_worker_crash_detected_and_retried(self, tmp_path):
        ck = cache_key(KEYS[0])
        seed = crash_seed(ck, clean_cks=(cache_key(KEYS[1]),))
        plan = faults.FaultPlan({"worker_crash": 0.5}, seed=seed)
        runner = ExperimentRunner(
            jobs=2, cache_dir=str(tmp_path / ".runcache"))
        sup = make_supervisor(runner, tmp_path, fault_plan=plan,
                              heartbeat_interval=0.1,
                              heartbeat_timeout=1.0,
                              poll_interval=0.05,
                              policy=RetryPolicy(max_retries=2,
                                                 backoff_base=0.05))
        report = sup.supervise(KEYS)
        assert report.simulated == len(KEYS)
        assert report.retries == 1
        assert not report.failed
        state = sup.journal.replay()
        assert state.states[ck] == "done"
        assert state.attempts[ck] == 2  # crash + successful retry

    def test_worker_hang_reaped_by_heartbeat(self, tmp_path):
        ck = cache_key(KEYS[0])
        seed = crash_seed(ck, site="worker_hang",
                          clean_cks=(cache_key(KEYS[1]),))
        plan = faults.FaultPlan({"worker_hang": 0.5}, seed=seed,
                                hang_seconds=30.0)
        runner = ExperimentRunner(jobs=2)
        sup = make_supervisor(runner, tmp_path, fault_plan=plan,
                              heartbeat_interval=0.1,
                              heartbeat_timeout=0.8,
                              poll_interval=0.05,
                              policy=RetryPolicy(max_retries=2,
                                                 backoff_base=0.05))
        report = sup.supervise(KEYS)
        assert report.simulated == len(KEYS)
        assert not report.failed
        # The hang was journaled as a transient heartbeat failure.
        state = sup.journal.replay()
        assert state.attempts[ck] == 2

    def test_degrades_to_serial_when_pool_unavailable(self, tmp_path,
                                                      monkeypatch):
        def no_pool(self, workers, fault_spec):
            raise PoolBroken("no processes for you")

        monkeypatch.setattr(Supervisor, "_make_pool", no_pool)
        runner = ExperimentRunner(jobs=4)
        sup = make_supervisor(runner, tmp_path)
        report = sup.supervise(KEYS)
        assert report.degraded_serial
        assert report.simulated == len(KEYS)
        assert not report.failed


class TestCrashResume:
    """Acceptance criterion: an interrupted sweep resumes to
    bit-identical aggregate statistics."""

    def test_resume_after_injected_crashes_is_bit_identical(
            self, tmp_path):
        # Reference: an uninterrupted sweep in a pristine outdir.
        ref_runner = ExperimentRunner(
            cache_dir=str(tmp_path / "ref" / ".runcache"))
        make_supervisor(ref_runner, tmp_path / "ref",
                        suite="run_all").supervise(KEYS)
        expected = {key: ref_runner.run(key.design, key.workload,
                                        key.size, key.llc_mb)
                    for key in KEYS}

        # Faulted sweep: key 0's only attempt crashes (no retry
        # budget), so the sweep "loses" that point and fails; the
        # journal still records what completed.
        outdir = tmp_path / "faulted"
        ck = cache_key(KEYS[0])
        seed = crash_seed(ck, clean_cks=(cache_key(KEYS[1]),))
        plan = faults.FaultPlan({"worker_crash": 0.5}, seed=seed)
        first = ExperimentRunner(
            jobs=2, cache_dir=str(outdir / ".runcache"))
        sup = make_supervisor(first, outdir, suite="run_all",
                              fault_plan=plan,
                              heartbeat_interval=0.1,
                              heartbeat_timeout=1.0,
                              poll_interval=0.05,
                              policy=RetryPolicy(max_retries=0))
        with pytest.raises(SweepFailed):
            sup.supervise(KEYS)
        state = sup.journal.replay()
        assert state.states[ck] == "failed"
        assert state.states[cache_key(KEYS[1])] == "done"
        assert state.attempts[ck] == 1  # never beyond max_retries + 1

        # Resume with faults disarmed: only the lost point simulates.
        faults.arm(None)
        second = ExperimentRunner(
            jobs=2, cache_dir=str(outdir / ".runcache"))
        resume_sup = make_supervisor(second, outdir, suite="run_all",
                                     resume=True)
        report = resume_sup.supervise(KEYS)
        assert report.simulated == 1
        assert report.from_cache == len(KEYS) - 1
        assert report.resumed == len(KEYS) - 1

        # Bit-identical aggregate statistics vs. the uninterrupted run.
        for key in KEYS:
            got = second.run(key.design, key.workload, key.size,
                             key.llc_mb)
            assert got.cycles == expected[key].cycles
            assert got.ops == expected[key].ops
            assert got.stats.flat() == expected[key].stats.flat()
