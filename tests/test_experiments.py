"""Integration tests for the experiment modules (miniature runs)."""

import pytest

from repro.experiments import (
    ExperimentRunner,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
    run_layout_mismatch,
    run_table1,
)

WORKLOADS = ["sobel", "htap1"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestRunnerCaching:
    def test_memoizes_identical_points(self):
        runner = ExperimentRunner()
        a = runner.run("1P2L", "sobel", "small")
        b = runner.run("1P2L", "sobel", "small")
        assert a is b
        assert runner.runs_completed == 1

    def test_distinct_points_not_shared(self):
        runner = ExperimentRunner()
        a = runner.run("1P2L", "sobel", "small", llc_mb=1.0)
        b = runner.run("1P2L", "sobel", "small", llc_mb=2.0)
        assert a is not b

    def test_unknown_memory_variant_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner().run("1P2L", "sobel", memory="warp")


class TestTable1:
    def test_report_lists_scaled_setup(self):
        report = run_table1().report()
        assert "L1 D-cache" in report
        assert "FRFCFS-WQF" in report
        assert "4KB" in report


class TestFig10:
    def test_structure_and_claims(self):
        result = run_fig10(workloads=WORKLOADS, sizes=["small"])
        assert result.column_fraction("sobel", "small") == 1.0
        assert 0 < result.average_column_fraction("small") <= 1.0
        assert "col_total" in result.report()


class TestFig11(object):
    def test_hit_rates_normalized(self, runner):
        result = run_fig11(runner, workloads=WORKLOADS, size="small")
        for workload in WORKLOADS:
            assert 0 <= result.baseline[workload] <= 1
        assert result.average_normalized("1P2L") > 0
        assert "1P2L (norm)" in result.report()


class TestFig12:
    def test_two_llc_points(self, runner):
        result = run_fig12(runner, workloads=WORKLOADS,
                           llc_points=(1.0, 4.0), size="small")
        for llc in (1.0, 4.0):
            for design in ("1P2L", "2P2L"):
                value = result.average_normalized(llc, design)
                assert value > 0
        assert "LLC = 1.0 MB" in result.report()

    def test_reduction_percent_consistent(self, runner):
        result = run_fig12(runner, workloads=WORKLOADS,
                           llc_points=(1.0,), size="small")
        norm = result.average_normalized(1.0, "1P2L")
        red = result.average_reduction_percent(1.0, "1P2L")
        assert red == pytest.approx(100 * (1 - norm))


class TestFig13:
    def test_resident_runs(self, runner):
        result = run_fig13(runner, workloads=WORKLOADS)
        for design in ("1P2L", "2P2L"):
            assert result.average_normalized(design) > 0
        assert "average" in result.report()


class TestFig14:
    def test_traffic_reduction_on_htap1(self, runner):
        result = run_fig14(runner, workloads=["htap1"], size="small")
        assert result.normalized_accesses("1P2L", "htap1") < 1.0
        assert result.normalized_bytes("1P2L", "htap1") < 1.0
        assert "1P2L acc" in result.report()


class TestFig15:
    def test_occupancy_series_collected(self):
        result = run_fig15(ExperimentRunner(), workloads=["ssyrk"],
                           size="small", samples=10)
        series = result.series["ssyrk"]
        assert "L1" in series
        assert len(series["L1"].points) >= 5
        assert "column occupancy" in result.report()

    def test_ssyrk_occupancy_rises_then_falls(self):
        """The paper's Fig. 15 ssyrk shape: a column-heavy product nest
        followed by a row-wise pass."""
        result = run_fig15(ExperimentRunner(), workloads=["ssyrk"],
                           size="small", samples=20)
        llc = result.series["ssyrk"]["L3"]
        assert llc.peak() > 0
        assert llc.final() < llc.peak()


class TestFig16:
    def test_slow_write_gap_small(self, runner):
        result = run_fig16(runner, workloads=WORKLOADS, size="small")
        gap = result.asymmetry_gap()
        assert abs(gap) < 0.2  # "slightly worse", not catastrophic
        assert "slow-write penalty" in result.report()


class TestFig17:
    def test_fast_memory_variants(self, runner):
        result = run_fig17(runner, workloads=["sobel"], size="small")
        # 1P2L-fast must beat 1P2L on the same workload (faster memory).
        assert result.cycles["1P2L-fast"]["sobel"] <= \
            result.cycles["1P2L"]["sobel"]
        # MDA caching on slow memory still beats 1P1L on fast memory
        # for the column-affine kernel (the paper's key Fig. 17 claim).
        assert result.normalized_cycles("1P2L", "sobel") < 1.0
        assert "1P2L-fast" in result.report()


class TestLayoutMismatch:
    def test_mismatch_measured_and_reported(self):
        """The experiment measures the 1P1L-on-2-D-layout ratio.  At
        this model's scale the tiled layout degenerates to software
        cache-blocking, so the ratio is merely required to be positive
        and different from 1 (the deviation from the paper's ~2x is
        documented in EXPERIMENTS.md)."""
        result = run_layout_mismatch(workloads=["sgemm"], size="small")
        ratio = result.slowdown("sgemm")
        assert ratio > 0
        assert ratio != pytest.approx(1.0, abs=1e-3)
        assert "slowdown" in result.report()
