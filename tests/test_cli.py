"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "1P2L", "sobel"])
        assert args.size == "small"
        assert args.llc == 1.0

    def test_run_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "5P5L", "sobel"])

    def test_sweep_parses(self):
        args = build_parser().parse_args(
            ["sweep", "htap1", "--llc", "2.0"])
        assert args.llc == 2.0


class TestCommands:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "1P2L" in out
        assert "sgemm" in out

    def test_run_prints_result(self, capsys):
        assert main(["run", "1P2L", "htap1"]) == 0
        out = capsys.readouterr().out
        assert "htap1" in out
        assert "memory bytes" in out

    def test_run_with_stats_dump(self, capsys):
        assert main(["run", "1P2L", "htap1", "--stats"]) == 0
        assert "[cache.L1]" in capsys.readouterr().out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "L1 D-cache" in capsys.readouterr().out

    def test_sweep_prints_all_designs(self, capsys):
        assert main(["sweep", "htap1"]) == 0
        out = capsys.readouterr().out
        assert "2P2L_Dense" in out
