"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "1P2L", "sobel"])
        assert args.size == "small"
        assert args.llc == 1.0

    def test_run_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "5P5L", "sobel"])

    def test_sweep_parses(self):
        args = build_parser().parse_args(
            ["sweep", "htap1", "--llc", "2.0"])
        assert args.llc == 2.0


class TestCommands:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "1P2L" in out
        assert "sgemm" in out

    def test_run_prints_result(self, capsys):
        assert main(["run", "1P2L", "htap1"]) == 0
        out = capsys.readouterr().out
        assert "htap1" in out
        assert "memory bytes" in out

    def test_run_with_stats_dump(self, capsys):
        assert main(["run", "1P2L", "htap1", "--stats"]) == 0
        assert "[cache.L1]" in capsys.readouterr().out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "L1 D-cache" in capsys.readouterr().out

    def test_sweep_prints_all_designs(self, capsys):
        assert main(["sweep", "htap1"]) == 0
        out = capsys.readouterr().out
        assert "2P2L_Dense" in out


class TestProfileFlag:
    def test_experiment_parser_accepts_profile(self):
        args = build_parser().parse_args(
            ["experiment", "fig12", "--profile"])
        assert args.profile
        args = build_parser().parse_args(["experiment", "fig12"])
        assert not args.profile

    def test_figure_cli_accepts_profile(self):
        import argparse
        from repro.experiments.plans import add_engine_arguments
        parser = argparse.ArgumentParser()
        add_engine_arguments(parser)
        assert parser.parse_args(["--profile"]).profile
        assert not parser.parse_args([]).profile

    def test_profiled_context_writes_pstats(self, tmp_path):
        import io
        import pstats
        from repro.common.profile_util import profiled

        out = io.StringIO()
        outdir = tmp_path / "results"
        with profiled(str(outdir), stream=out):
            sum(range(1000))
        dump = outdir / "profile.pstats"
        assert dump.is_file()
        pstats.Stats(str(dump))  # the dump is loadable
        text = out.getvalue()
        assert "cumulative" in text
        assert str(dump) in text

    def test_profiled_disabled_is_inert(self, tmp_path):
        from repro.common.profile_util import profiled
        outdir = tmp_path / "results"
        with profiled(str(outdir), enabled=False):
            pass
        assert not outdir.exists()

    def test_experiment_profile_end_to_end(self, tmp_path, capsys):
        outdir = tmp_path / "results"
        assert main(["experiment", "table1", "--profile",
                     "--outdir", str(outdir)]) == 0
        captured = capsys.readouterr()
        assert "L1 D-cache" in captured.out
        assert (outdir / "profile.pstats").is_file()
        assert "profile.pstats" in captured.err

    def test_maybe_profile_worker_inert_without_env(self, monkeypatch):
        from repro.common import profile_util
        monkeypatch.delenv(profile_util.PROFILE_DIR_ENV,
                           raising=False)
        monkeypatch.setattr(profile_util, "_worker_profiler", None)
        with profile_util.maybe_profile_worker():
            pass
        assert profile_util._worker_profiler is None

    def test_worker_dumps_merge_into_profile(self, tmp_path,
                                             monkeypatch):
        """--profile --jobs N: worker-side simulation work shows up.

        Simulates a pool worker in-process: a ``maybe_profile_worker``
        block under the exported env var dumps per-worker stats, and
        the enclosing ``profiled`` block merges them into the final
        ``profile.pstats``.
        """
        import io
        import pstats
        from repro.common import profile_util
        from repro.experiments.runner import simulate_run_key
        from repro.experiments.runner import RunKey

        monkeypatch.setattr(profile_util, "_worker_profiler", None)
        out = io.StringIO()
        outdir = tmp_path / "results"
        with profile_util.profiled(str(outdir), stream=out):
            # What _pool_job does inside a forked worker.
            with profile_util.maybe_profile_worker():
                simulate_run_key(RunKey("1P2L", "sobel", "small", 1.0,
                                        False, "default", 0))
        workers = list(outdir.glob("profile.worker-*.pstats"))
        assert workers, "worker block must dump per-worker stats"
        assert "(+1 worker profiles)" in out.getvalue()
        stats = pstats.Stats(str(outdir / "profile.pstats"))
        merged_functions = {func for _, func in
                            zip(range(10 ** 6), stats.stats)}
        assert any("simulate_run_key" in str(func)
                   for func in merged_functions)

    def test_stale_worker_dumps_removed_on_entry(self, tmp_path,
                                                 monkeypatch):
        from repro.common import profile_util
        monkeypatch.setattr(profile_util, "_worker_profiler", None)
        outdir = tmp_path / "results"
        outdir.mkdir()
        stale = outdir / "profile.worker-99999.pstats"
        stale.write_bytes(b"junk from a previous run")
        import io
        with profile_util.profiled(str(outdir), stream=io.StringIO()):
            pass
        assert not stale.exists()


class TestJournalCommand:
    def _write_journal(self, outdir, suite="fig10"):
        from repro.experiments.runner import RunKey
        from repro.experiments.supervisor import RunJournal
        journal = RunJournal.for_suite(str(outdir), suite)
        done = RunKey("1P1L", "sobel", "small", 1.0, False,
                      "default", 0)
        failed = RunKey("1P2L", "sobel", "small", 1.0, False,
                        "default", 0)
        journal.record_event("sweep_start", total=2)
        journal.record_run(done, "ck-done", "running", attempt=1)
        journal.record_run(done, "ck-done", "done", attempt=1)
        journal.record_run(failed, "ck-fail", "running", attempt=1)
        journal.record_run(failed, "ck-fail", "failed", attempt=1,
                           error="WorkerCrash: injected", final=True)
        journal.record_event("sweep_interrupted", signal=2)
        journal.close()
        return journal

    def test_journal_parses(self):
        args = build_parser().parse_args(
            ["journal", "fig10", "--outdir", "x", "--limit", "5"])
        assert args.command == "journal"
        assert args.suite == "fig10"
        assert args.limit == 5

    def test_journal_suite_optional(self):
        args = build_parser().parse_args(["journal"])
        assert args.suite is None

    def test_missing_journal_dir_exits_2(self, tmp_path, capsys):
        assert main(["journal", "--outdir", str(tmp_path)]) == 2
        assert "no journals" in capsys.readouterr().err

    def test_missing_suite_exits_2(self, tmp_path, capsys):
        self._write_journal(tmp_path)
        assert main(["journal", "fig99",
                     "--outdir", str(tmp_path)]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_lists_suites_with_counts(self, tmp_path, capsys):
        self._write_journal(tmp_path, "fig10")
        self._write_journal(tmp_path, "run_all")
        assert main(["journal", "--outdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig10:" in out
        assert "run_all:" in out
        assert "1 done" in out
        assert "[interrupted]" in out

    def test_suite_detail_shows_failed_runs(self, tmp_path, capsys):
        self._write_journal(tmp_path)
        assert main(["journal", "fig10",
                     "--outdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "INTERRUPTED" in out
        assert "1P2L/sobel/small" in out
        assert "WorkerCrash: injected" in out
        assert "attempt 1" in out

    def test_experiment_flags_parse(self):
        args = build_parser().parse_args(
            ["experiment", "fig10", "--resume", "--max-retries", "5",
             "--run-timeout", "30", "--inject-faults",
             "worker_crash:0.1,seed:3"])
        assert args.resume is True
        assert args.max_retries == 5
        assert args.run_timeout == 30.0
        assert args.inject_faults == "worker_crash:0.1,seed:3"
