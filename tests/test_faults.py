"""The deterministic fault-injection harness and cache hardening.

Covers the ISSUE satellites: fault specs parse and fire
deterministically from a seed, injected cache corruption is detected,
counted, and quarantined (``*.corrupt``) by both the run cache and the
trace store, arbitrarily-truncated cache entries never raise on load,
and advisory file locking keeps concurrent writers from interleaving
(with a bounded, non-fatal timeout).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, LockTimeout
from repro.common.locking import file_lock, lock_path_for
from repro.experiments import faults
from repro.experiments.runner import (
    ExperimentRunner,
    RunCache,
    RunKey,
)
from repro.sw.tracestore import TraceStore

KEY = RunKey("1P1L", "sobel", "small", 1.0, False, "default", 0)


def simulated_result():
    from repro.experiments.runner import simulate_run_key
    return simulate_run_key(KEY)


class TestSpecParsing:
    def test_full_spec_round_trips(self):
        plan = faults.parse_spec(
            "worker_crash:0.1,worker_hang:0.05,cache_corrupt:0.2,"
            "seed:7,hang_seconds:2.5")
        assert plan.rate("worker_crash") == 0.1
        assert plan.rate("worker_hang") == 0.05
        assert plan.rate("cache_corrupt") == 0.2
        assert plan.seed == 7
        assert plan.hang_seconds == 2.5
        assert faults.parse_spec(plan.spec()) == plan

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError):
            faults.parse_spec("disk_melt:0.5")

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigError):
            faults.parse_spec("worker_crash:1.5")
        with pytest.raises(ConfigError):
            faults.parse_spec("worker_crash:huge")

    def test_malformed_entry_rejected(self):
        with pytest.raises(ConfigError):
            faults.parse_spec("worker_crash")

    def test_missing_rate_defaults_to_zero(self):
        plan = faults.parse_spec("worker_crash:0.5")
        assert plan.rate("cache_corrupt") == 0.0


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = faults.FaultPlan({"worker_crash": 0.3}, seed=11)
        b = faults.FaultPlan({"worker_crash": 0.3}, seed=11)
        tokens = [f"key{i}:1" for i in range(200)]
        assert [a.should_fire("worker_crash", t) for t in tokens] \
            == [b.should_fire("worker_crash", t) for t in tokens]

    def test_different_seeds_differ(self):
        tokens = [f"key{i}:1" for i in range(200)]
        a = faults.FaultPlan({"worker_crash": 0.3}, seed=1)
        b = faults.FaultPlan({"worker_crash": 0.3}, seed=2)
        assert [a.should_fire("worker_crash", t) for t in tokens] \
            != [b.should_fire("worker_crash", t) for t in tokens]

    def test_rate_roughly_respected(self):
        plan = faults.FaultPlan({"cache_corrupt": 0.1}, seed=3)
        fired = sum(plan.should_fire("cache_corrupt", f"t{i}")
                    for i in range(2000))
        assert 100 < fired < 300  # ~200 expected

    def test_edge_rates(self):
        always = faults.FaultPlan({"worker_crash": 1.0}, seed=0)
        never = faults.FaultPlan({"worker_crash": 0.0}, seed=0)
        assert always.should_fire("worker_crash", "x")
        assert not never.should_fire("worker_crash", "x")
        assert not always.should_fire("worker_hang", "x")


class TestArming:
    def test_env_arms_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash:0.25,seed:9")
        faults.disarm()
        plan = faults.active_plan()
        assert plan is not None
        assert plan.rate("worker_crash") == 0.25
        assert plan.seed == 9

    def test_explicit_arm_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash:0.25")
        faults.arm(None)
        assert faults.active_plan() is None

    def test_unset_env_means_no_plan(self):
        assert faults.active_plan() is None  # conftest cleared env


class TestCorruptionSite:
    def test_corrupt_file_truncates(self, tmp_path):
        path = tmp_path / "entry.bin"
        path.write_bytes(b"x" * 100)
        plan = faults.FaultPlan({"cache_corrupt": 1.0}, seed=0)
        assert faults.maybe_corrupt_file(str(path), "entry.bin",
                                         plan=plan)
        assert path.stat().st_size == 50

    def test_disarmed_is_noop(self, tmp_path):
        path = tmp_path / "entry.bin"
        path.write_bytes(b"x" * 100)
        assert not faults.maybe_corrupt_file(str(path), "entry.bin")
        assert path.stat().st_size == 100


class TestRunCacheQuarantine:
    def test_injected_corruption_quarantined_on_read(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        faults.arm(faults.FaultPlan({"cache_corrupt": 1.0}, seed=0))
        writer = RunCache(cache_dir)
        writer.store(KEY, simulated_result())  # truncated on write
        faults.arm(None)

        reader = RunCache(cache_dir)
        assert reader.load(KEY) is None
        assert reader.corrupt_quarantined == 1
        path = reader.path_for(KEY)
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        # Quarantine means the second read is a clean miss, not
        # another failed parse.
        assert reader.load(KEY) is None
        assert reader.corrupt_quarantined == 1

    def test_runner_surfaces_corrupt_quarantined(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        runner = ExperimentRunner(cache_dir=cache_dir)
        runner.run(KEY.design, KEY.workload, KEY.size, KEY.llc_mb)
        entry = RunCache(cache_dir).path_for(KEY)
        with open(entry, "wb") as handle:
            handle.write(b"not a pickle")
        again = ExperimentRunner(cache_dir=cache_dir)
        again.run(KEY.design, KEY.workload, KEY.size, KEY.llc_mb)
        info = again.cache_info()
        assert info.corrupt_quarantined == 1
        assert "quarantined" in info.describe()

    def test_missing_entry_is_not_corruption(self, tmp_path):
        cache = RunCache(str(tmp_path / ".runcache"))
        assert cache.load(KEY) is None
        assert cache.corrupt_quarantined == 0

    def test_clear_removes_quarantined_entries(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        cache = RunCache(cache_dir)
        cache.store(KEY, simulated_result())
        with open(cache.path_for(KEY), "wb") as handle:
            handle.write(b"junk")
        assert cache.load(KEY) is None
        cache.clear()
        leftovers = [name for name in os.listdir(cache_dir)
                     if name != ".lock"]
        assert leftovers == []

    @settings(max_examples=25, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=10_000_000))
    def test_truncated_entry_never_raises(self, cut):
        import tempfile
        cache_dir = tempfile.mkdtemp(prefix="repro-cache-prop-")
        cache = RunCache(cache_dir)
        cache.store(KEY, _CACHED_RESULT())
        path = cache.path_for(KEY)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:min(cut, len(data))])
        loaded = cache.load(KEY)  # must not raise
        if cut < len(data):
            assert loaded is None


_RESULT_MEMO = {}


def _CACHED_RESULT():
    if "r" not in _RESULT_MEMO:
        _RESULT_MEMO["r"] = simulated_result()
    return _RESULT_MEMO["r"]


class TestTraceStoreQuarantine:
    def _stored(self, tmp_path):
        from repro.sw.tracegen import generate_packed_trace
        from repro.workloads.registry import build_workload
        program = build_workload("sobel", "small")
        trace = generate_packed_trace(program, 1)
        store = TraceStore(str(tmp_path / ".tracecache"))
        store.store("sobel", "small", 1, program.name, trace)
        return store

    def test_corrupt_entry_quarantined(self, tmp_path):
        store = self._stored(tmp_path)
        path = store.path_for("sobel", "small", 1)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:len(data) // 2])
        assert store.load("sobel", "small", 1) is None
        assert store.corrupt_quarantined == 1
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert len(store) == 0

    def test_injected_corruption_on_store(self, tmp_path):
        faults.arm(faults.FaultPlan({"cache_corrupt": 1.0}, seed=0))
        store = self._stored(tmp_path)
        faults.arm(None)
        assert store.load("sobel", "small", 1) is None
        assert store.corrupt_quarantined == 1

    def test_corrupt_quarantined_surfaced_in_trace_info(self, tmp_path):
        from repro.core.simulator import (
            clear_trace_cache,
            configure_trace_store,
            run_simulation,
            trace_cache_info,
        )
        from repro.core.system import make_system
        trace_dir = str(tmp_path / ".tracecache")
        try:
            clear_trace_cache()
            store = configure_trace_store(trace_dir)
            run_simulation(make_system("1P1L", 1.0), workload="sobel",
                           size="small")
            path = store.path_for("sobel", "small", 1)
            with open(path, "r+b") as handle:
                handle.truncate(4)
            clear_trace_cache()
            run_simulation(make_system("1P1L", 1.0), workload="sobel",
                           size="small")
            info = trace_cache_info()
            assert info["corrupt_quarantined"] == 1
            assert info["generated"] == 1
        finally:
            configure_trace_store(None)
            clear_trace_cache()

    def test_missing_entry_is_not_corruption(self, tmp_path):
        store = TraceStore(str(tmp_path / ".tracecache"))
        assert store.load("sobel", "small", 1) is None
        assert store.corrupt_quarantined == 0


class TestFileLocking:
    def test_lock_excludes_and_releases(self, tmp_path):
        path = str(tmp_path / ".lock")
        with file_lock(path):
            with pytest.raises(LockTimeout):
                with file_lock(path, timeout=0.1, poll=0.02):
                    pass
        # Released: a fresh acquisition succeeds immediately.
        with file_lock(path, timeout=0.1):
            pass

    def test_run_cache_skips_write_when_lock_held(self, tmp_path):
        cache_dir = str(tmp_path / ".runcache")
        os.makedirs(cache_dir)
        cache = RunCache(cache_dir, lock_timeout=0.1)
        with file_lock(lock_path_for(cache_dir)):
            cache.store(KEY, _CACHED_RESULT())
        assert cache.lock_timeouts == 1
        assert cache.load(KEY) is None  # write was skipped, no tear

    def test_trace_store_skips_write_when_lock_held(self, tmp_path):
        from repro.sw.tracegen import generate_packed_trace
        from repro.workloads.registry import build_workload
        root = str(tmp_path / ".tracecache")
        os.makedirs(root)
        program = build_workload("sobel", "small")
        trace = generate_packed_trace(program, 1)
        store = TraceStore(root, lock_timeout=0.1)
        with file_lock(lock_path_for(root)):
            store.store("sobel", "small", 1, program.name, trace)
        assert store.lock_timeouts == 1
        assert store.load("sobel", "small", 1) is None

    def test_concurrent_stores_serialize(self, tmp_path):
        # Same-directory stores from two cache objects interleave
        # safely: both entries land intact.
        cache_dir = str(tmp_path / ".runcache")
        a, b = RunCache(cache_dir), RunCache(cache_dir)
        result = _CACHED_RESULT()
        a.store(KEY, result)
        b.store(KEY, result)
        assert a.load(KEY) is not None
