"""Unit tests for the simulation driver."""

import pytest

from repro.core.simulator import run_simulation
from repro.core.system import make_system
from repro.sw.layout import TiledLayout
from repro.workloads.registry import build_workload


def tiny_run(design="1P2L", **kwargs):
    return run_simulation(make_system(design), workload="sobel",
                          size="small", **kwargs)


class TestRunSimulation:
    def test_requires_exactly_one_source(self):
        system = make_system("1P1L")
        with pytest.raises(ValueError):
            run_simulation(system)
        with pytest.raises(ValueError):
            run_simulation(system, workload="sgemm",
                           program=build_workload("sgemm", "small"))

    def test_returns_populated_result(self):
        result = tiny_run()
        assert result.cycles > 0
        assert result.ops > 0
        assert result.workload == "sobel"
        assert 0.0 <= result.l1_hit_rate() <= 1.0
        assert result.memory_bytes() > 0
        assert result.llc_requests() > 0

    def test_deterministic(self):
        a = tiny_run()
        b = tiny_run()
        assert a.cycles == b.cycles
        assert a.stats.flat() == b.stats.flat()

    def test_sampling_collects_occupancy(self):
        result = tiny_run(sample_every=200)
        assert result.samples
        sample = result.samples[0]
        assert set(sample.by_level) == {"L1", "L2", "L3"}

    def test_layout_override(self):
        """1P1L hierarchy forced onto the 2-D layout: the paper's
        layout-mismatch case must still simulate (and run slower)."""
        program = build_workload("sobel", "small")
        matched = run_simulation(make_system("1P1L"), program=program)
        mismatched = run_simulation(make_system("1P1L"), program=program,
                                    layout=TiledLayout(program.arrays))
        assert mismatched.cycles > 0
        assert mismatched.cycles != matched.cycles

    def test_describe_mentions_workload(self):
        result = tiny_run()
        assert "sobel" in result.describe()

    def test_memory_reads_and_column_hits_exposed(self):
        result = tiny_run()
        assert result.memory_reads() > 0
        assert result.column_buffer_hits() >= 0

    def test_explicit_program_used(self):
        program = build_workload("htap1", "small")
        result = run_simulation(make_system("1P2L"), program=program)
        assert result.workload == "htap1"

    def test_partial_writeback_savings_bounded(self):
        result = run_simulation(make_system("1P2L"), workload="htap2",
                                size="small")
        savings = result.partial_writeback_savings()
        assert 0.0 <= savings < 1.0

    def test_partial_writeback_savings_zero_without_writebacks(self):
        # sobel reads dominate; a read-only custom program is cleaner:
        from repro.sw.program import (
            Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program)
        a = ArrayDecl("A", 8, 8)
        nest = LoopNest("ro", [Loop.over("j", 8)],
                        [ArrayRef(a, Affine.constant(0),
                                  Affine.of("j"))])
        result = run_simulation(make_system("1P2L"),
                                program=Program("ro", [a], [nest]))
        assert result.partial_writeback_savings() == 0.0
