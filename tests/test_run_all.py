"""Integration test for the run-everything driver (light subset)."""

import json
import os

from repro.experiments.run_all import run_all


class TestRunAll:
    def test_selected_experiments_produce_artifacts(self, tmp_path):
        outdir = str(tmp_path / "results")
        summary = run_all(outdir, only=("table1", "fig10"),
                          verbose=False)
        assert set(summary) == {"table1", "fig10"}
        assert os.path.exists(os.path.join(outdir, "table1.txt"))
        assert os.path.exists(os.path.join(outdir, "fig10.txt"))
        with open(os.path.join(outdir, "summary.json")) as handle:
            loaded = json.load(handle)
        assert loaded["fig10"]["avg_column_fraction_large"] > 0
        assert "seconds" in loaded["table1"]

    def test_reports_are_nonempty_text(self, tmp_path):
        outdir = str(tmp_path / "results")
        run_all(outdir, only=("table1",), verbose=False)
        with open(os.path.join(outdir, "table1.txt")) as handle:
            assert "L1 D-cache" in handle.read()

    def test_every_experiment_is_registered(self):
        from repro.experiments.run_all import _experiments
        from repro.experiments.runner import ExperimentRunner
        names = set(_experiments(ExperimentRunner()))
        expected = {"table1", "fig10", "fig11", "fig12", "fig13",
                    "fig14", "fig15", "fig16", "fig17",
                    "layout_mismatch", "future_tiling", "energy",
                    "dynamic_orientation", "multiprogram"}
        assert names == expected
