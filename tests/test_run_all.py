"""Integration test for the run-everything driver (light subset)."""

import json
import os

from repro.experiments.run_all import run_all


class TestRunAll:
    def test_selected_experiments_produce_artifacts(self, tmp_path):
        outdir = str(tmp_path / "results")
        summary = run_all(outdir, only=("table1", "fig10"),
                          verbose=False)
        assert set(summary) == {"table1", "fig10"}
        assert os.path.exists(os.path.join(outdir, "table1.txt"))
        assert os.path.exists(os.path.join(outdir, "fig10.txt"))
        with open(os.path.join(outdir, "summary.json")) as handle:
            loaded = json.load(handle)
        assert loaded["fig10"]["avg_column_fraction_large"] > 0
        assert "seconds" in loaded["table1"]

    def test_reports_are_nonempty_text(self, tmp_path):
        outdir = str(tmp_path / "results")
        run_all(outdir, only=("table1",), verbose=False)
        with open(os.path.join(outdir, "table1.txt")) as handle:
            assert "L1 D-cache" in handle.read()

    def test_every_experiment_is_registered(self):
        from repro.experiments.run_all import _experiments
        from repro.experiments.runner import ExperimentRunner
        names = set(_experiments(ExperimentRunner()))
        expected = {"table1", "fig10", "fig11", "fig12", "fig13",
                    "fig14", "fig15", "fig16", "fig17",
                    "layout_mismatch", "future_tiling", "energy",
                    "dynamic_orientation", "multiprogram",
                    "tier_modes"}
        assert names == expected


class TestKernelCoverage:
    def test_coverage_report_classifies_every_planned_config(self):
        from repro.experiments.run_all import coverage_report
        report = coverage_report()
        assert report, "figure plans must yield configurations"
        assert set(report.values()) <= {"vector", "kernel", "packed"}
        # Flagship and baseline designs both replay vectorized;
        # sampled points stay on the interpreter.
        assert report["1P2L|mem=default|resident=0|sampled=0"] \
            == "vector"
        assert report["1P1L|mem=default|resident=0|sampled=0"] \
            == "vector"
        assert report["1P2L|mem=default|resident=0|sampled=1"] \
            == "packed"

    def test_coverage_matches_committed_baseline(self):
        """The live plan's dispatch equals the committed baseline.

        A mismatch here means a change moved a figure config between
        replay engines: regenerate the baseline deliberately with
        ``python -m repro.experiments.run_all --dry-run --quiet``.
        """
        from repro.experiments.run_all import coverage_report
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks",
                            "kernel_coverage_baseline.json")
        with open(path) as handle:
            baseline = json.load(handle)
        assert coverage_report() == baseline

    def test_dry_run_cli_prints_json(self, capsys):
        from repro.experiments.run_all import main
        main(["--dry-run", "--quiet"])
        out = capsys.readouterr().out
        report = json.loads(out)
        assert report["1P2L|mem=default|resident=0|sampled=0"] \
            == "vector"

    def test_checker_passes_against_baseline(self, capsys):
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "check_kernel_coverage",
            os.path.join(os.path.dirname(__file__), os.pardir,
                         "benchmarks", "check_kernel_coverage.py"))
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main(["check_kernel_coverage.py"]) == 0

    def test_checker_fails_on_dekernelized_config(self):
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "check_kernel_coverage",
            os.path.join(os.path.dirname(__file__), os.pardir,
                         "benchmarks", "check_kernel_coverage.py"))
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        baseline = {"cfg": "vector", "gone": "kernel"}
        current = {"cfg": "packed", "other": "vector"}
        failures = module.check(baseline, current)
        assert len(failures) == 2
        assert any("now packed" in f for f in failures)
        assert any("no longer planned" in f for f in failures)
        # Upgrades and new configs pass.
        assert module.check({"cfg": "kernel"}, {"cfg": "vector"}) == []
