"""Unit tests for experiment result dataclasses (pure math, no sims)."""

import pytest

from repro.experiments.dynamic_orientation import DynamicOrientationResult
from repro.experiments.fig11 import Fig11Result
from repro.experiments.fig12 import Fig12Result
from repro.experiments.fig13 import Fig13Result
from repro.experiments.fig15 import OccupancySeries
from repro.experiments.fig16 import Fig16Result
from repro.experiments.fig17 import Fig17Result
from repro.experiments.future_tiling import FutureTilingResult


class TestFig11Math:
    def test_normalization(self):
        result = Fig11Result(baseline={"a": 0.5},
                             rates={"1P2L": {"a": 0.6},
                                    "1P2L_SameSet": {"a": 0.5},
                                    "2P2L": {"a": 0.4}})
        assert result.normalized_rate("1P2L", "a") == pytest.approx(1.2)
        assert result.average_normalized("2P2L") == pytest.approx(0.8)

    def test_zero_baseline_guarded(self):
        result = Fig11Result(baseline={"a": 0.0},
                             rates={"1P2L": {"a": 0.6}})
        assert result.normalized_rate("1P2L", "a") == 0.0


class TestFig12Math:
    def _result(self):
        result = Fig12Result()
        result.workloads = ["a", "b"]
        result.llc_points = (1.0,)
        result.baseline = {(1.0, "a"): 100, (1.0, "b"): 200}
        result.cycles = {
            (1.0, "1P2L", "a"): 30, (1.0, "1P2L", "b"): 100,
            (1.0, "1P2L_SameSet", "a"): 40,
            (1.0, "1P2L_SameSet", "b"): 100,
            (1.0, "2P2L", "a"): 50, (1.0, "2P2L", "b"): 100,
        }
        return result

    def test_per_workload_and_average(self):
        result = self._result()
        assert result.normalized_cycles(1.0, "1P2L", "a") == \
            pytest.approx(0.3)
        assert result.average_normalized(1.0, "1P2L") == \
            pytest.approx((0.3 + 0.5) / 2)

    def test_reduction_percent(self):
        result = self._result()
        assert result.average_reduction_percent(1.0, "1P2L") == \
            pytest.approx(60.0)

    def test_report_contains_every_llc_block(self):
        text = self._result().report()
        assert "LLC = 1.0 MB" in text
        assert "average" in text


class TestFig13Math:
    def test_average(self):
        result = Fig13Result(baseline={"a": 100},
                             cycles={"1P2L": {"a": 90},
                                     "2P2L": {"a": 80}})
        assert result.average_normalized("2P2L") == pytest.approx(0.8)


class TestFig15Series:
    def test_peak_and_final(self):
        series = OccupancySeries(points=[(0, 0.2), (10, 0.9),
                                         (20, 0.1)])
        assert series.peak() == 0.9
        assert series.final() == 0.1

    def test_empty_series(self):
        series = OccupancySeries()
        assert series.peak() == 0.0
        assert series.final() == 0.0


class TestFig16Math:
    def test_asymmetry_gap(self):
        result = Fig16Result(
            baseline={"a": 100},
            cycles={"1P2L": {"a": 40}, "1P2L_SameSet": {"a": 41},
                    "2P2L": {"a": 50}, "2P2L_SlowWrite": {"a": 52}})
        assert result.asymmetry_gap() == pytest.approx(0.02)


class TestFig17Math:
    def test_normalized_to_fast_baseline(self):
        result = Fig17Result(
            cycles={"1P1L-fast": {"a": 100}, "1P2L": {"a": 60},
                    "1P2L-fast": {"a": 40},
                    "1P2L_SameSet": {"a": 61},
                    "1P2L_SameSet-fast": {"a": 41},
                    "2P2L": {"a": 62}, "2P2L-fast": {"a": 42}},
            workloads=["a"])
        assert result.normalized_cycles("1P2L", "a") == \
            pytest.approx(0.6)
        assert "1P2L-fast" in result.report()


class TestFutureTilingMath:
    def test_collaborative_verdict(self):
        result = FutureTilingResult(
            baseline={"a": 100},
            cycles={"1P2L": {"a": 50}, "1P2L+tiling": {"a": 30},
                    "2P2L": {"a": 48}, "2P2L+tiling": {"a": 25}})
        assert result.collaborative_wins()
        assert "wins" in result.report()

    def test_collaborative_loss_detected(self):
        result = FutureTilingResult(
            baseline={"a": 100},
            cycles={"1P2L": {"a": 50}, "1P2L+tiling": {"a": 20},
                    "2P2L": {"a": 48}, "2P2L+tiling": {"a": 25}})
        assert not result.collaborative_wins()


class TestDynamicOrientationMath:
    def test_payoff_and_fill_reduction(self):
        result = DynamicOrientationResult(
            cycles={"1P1L": {"a": 100}, "1P2L": {"a": 110},
                    "1P2L_Dyn": {"a": 121}},
            mem_reads={"1P2L": {"a": 10}, "1P2L_Dyn": {"a": 10}},
            l1_fills={"1P2L": {"a": 100}, "1P2L_Dyn": {"a": 40}},
            workloads=["a"])
        assert result.prediction_payoff() == pytest.approx(1.1)
        assert result.fill_reduction() == pytest.approx(0.4)
        assert "L1 fills" in result.report()
