"""Unit tests for profiling-based orientation annotation."""

from repro.common.types import Orientation
from repro.sw.profiling import ProfileVerdict, profile_directions, profile_ref
from repro.sw.layout import TiledLayout
from repro.sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program


def diagonal_program(n=16):
    """Z[i+j][i+j] — innermost j in both subscripts: undiscernible
    statically (the paper's profiling case), and genuinely unbiased."""
    z = ArrayDecl("Z", 2 * n, 2 * n)
    nest = LoopNest(
        "diag", [Loop.over("i", n), Loop.over("j", n)],
        [ArrayRef(z, Affine.of("i") + Affine.of("j"),
                  Affine.of("i") + Affine.of("j"))])
    return Program("diag", [z], [nest])


def steep_walk_program(n=16):
    """V[j][8*j] — both subscripts move with j (statically ambiguous).

    Moving eight columns per step leaves the tile horizontally every
    step, so *neither* orientation has dense locality — an affine ref
    that is statically ambiguous can never be column-biased (a column
    bias needs the column subscript frozen across steps, which static
    analysis would have discerned)."""
    v = ArrayDecl("V", n, 8 * n)
    nest = LoopNest(
        "steep", [Loop.over("i", 2), Loop.over("j", n)],
        [ArrayRef(v, Affine.of("j"), Affine.of("j", coeff=8))])
    return Program("steep", [v], [nest])


class TestProfileRef:
    def test_row_walk_profiles_row_dense(self):
        a = ArrayDecl("A", 16, 16)
        nest = LoopNest("n", [Loop.over("i", 16), Loop.over("j", 16)],
                        [ArrayRef(a, Affine.of("i"), Affine.of("j"))])
        verdict = profile_ref(nest, nest.refs[0], TiledLayout([a]))
        assert verdict.row_switches < verdict.col_switches
        assert verdict.orientation is Orientation.ROW

    def test_column_walk_profiles_column_dense(self):
        a = ArrayDecl("A", 16, 16)
        nest = LoopNest("n", [Loop.over("i", 16), Loop.over("j", 16)],
                        [ArrayRef(a, Affine.of("j"), Affine.of("i"))])
        verdict = profile_ref(nest, nest.refs[0], TiledLayout([a]))
        assert verdict.col_switches < verdict.row_switches
        assert verdict.orientation is Orientation.COLUMN

    def test_tie_defaults_to_row(self):
        verdict = ProfileVerdict("n", "A", row_switches=4,
                                 col_switches=4)
        assert verdict.orientation is Orientation.ROW


class TestProfileDirections:
    def test_only_undiscerned_refs_profiled(self):
        from repro.workloads.blas import build_sgemm
        verdicts = profile_directions(build_sgemm(16))
        assert verdicts == {}  # sgemm is fully discernible statically

    def test_diagonal_ref_profiled_and_unbiased(self):
        verdicts = profile_directions(diagonal_program())
        assert len(verdicts) == 1
        ((nest_name, _), verdict), = verdicts.items()
        assert nest_name == "diag"
        # A pure diagonal leaves both lines every step: tie -> ROW.
        assert verdict.orientation is Orientation.ROW

    def test_steep_walk_has_no_bias(self):
        verdicts = profile_directions(steep_walk_program())
        (_, verdict), = verdicts.items()
        assert verdict.col_switches == verdict.row_switches
        assert verdict.orientation is Orientation.ROW
