"""Property-based tests: cache invariants under random traffic.

The strongest properties in the design:

* **Fig. 9 invariant** (1P2L): a word dirty in one line is present in
  no other line — checked after every request of random sequences.
* **Dirty-word conservation**: every word the CPU ever wrote is covered
  by some writeback mask at the lower level once the cache is flushed
  (no silent loss of modifications).
* **2P2L mask sanity**: dirty lines are always present; masks are 8-bit.
"""

from hypothesis import given, settings, strategies as st

from repro.common.stats import StatRegistry
from repro.common.types import (
    AccessWidth,
    Orientation,
    Request,
    word_addr,
)
from repro.cache.cache_1p2l import Cache1P2L
from repro.cache.cache_2p2l import Cache2P2L
from tests.conftest import FakeLower, small_config

# Confine traffic to 4 tiles so collisions/duplications are common.
request_strategy = st.builds(
    Request,
    addr=st.builds(word_addr,
                   st.integers(min_value=0, max_value=3),
                   st.integers(min_value=0, max_value=7),
                   st.integers(min_value=0, max_value=7)),
    orientation=st.sampled_from(list(Orientation)),
    width=st.sampled_from(list(AccessWidth)),
    is_write=st.booleans(),
)

sequences = st.lists(request_strategy, min_size=1, max_size=60)


def drive(cache, requests):
    now = 0
    for req in requests:
        now += 100_000  # let every fill settle between requests
        cache.access(req, now)
    return now


@settings(max_examples=60, deadline=None)
@given(sequences)
def test_1p2l_duplication_invariant_holds(requests):
    cache = Cache1P2L(small_config(size_kb=1, assoc=4, logical_dims=2),
                      1, StatRegistry())
    cache.connect(FakeLower())
    now = 0
    for req in requests:
        now += 100_000
        cache.access(req, now)
        cache.check_invariants()


@settings(max_examples=60, deadline=None)
@given(sequences)
def test_1p2l_dirty_words_conserved(requests):
    """Every word written by the CPU reaches the lower level."""
    cache = Cache1P2L(small_config(size_kb=1, assoc=4, logical_dims=2),
                      1, StatRegistry())
    lower = FakeLower()
    cache.connect(lower)
    written = set()
    now = drive(cache, requests)
    for req in requests:
        if req.is_write:
            written.update(req.words())
    cache.flush(now + 100_000)
    assert written <= lower.written_words()


@settings(max_examples=60, deadline=None)
@given(sequences)
def test_1p2l_same_set_mapping_also_safe(requests):
    cache = Cache1P2L(small_config(size_kb=1, assoc=4, logical_dims=2,
                                   mapping="same_set"),
                      1, StatRegistry())
    cache.connect(FakeLower())
    now = 0
    for req in requests:
        now += 100_000
        cache.access(req, now)
    cache.check_invariants()


@settings(max_examples=60, deadline=None)
@given(sequences, st.booleans())
def test_2p2l_invariants_hold(requests, sparse):
    cache = Cache2P2L(small_config(size_kb=1, assoc=2, logical_dims=2,
                                   physical_dims=2, sparse_fill=sparse),
                      1, StatRegistry())
    cache.connect(FakeLower())
    now = 0
    for req in requests:
        now += 100_000
        cache.access(req, now)
        cache.check_invariants()


@settings(max_examples=60, deadline=None)
@given(sequences)
def test_2p2l_dirty_words_conserved(requests):
    cache = Cache2P2L(small_config(size_kb=1, assoc=2, logical_dims=2,
                                   physical_dims=2),
                      1, StatRegistry())
    lower = FakeLower()
    cache.connect(lower)
    written = set()
    now = drive(cache, requests)
    for req in requests:
        if req.is_write:
            written.update(req.words())
    cache.flush(now + 100_000)
    assert written <= lower.written_words()


@settings(max_examples=40, deadline=None)
@given(sequences)
def test_1p2l_latencies_are_positive_and_bounded(requests):
    cache = Cache1P2L(small_config(size_kb=1, assoc=4, logical_dims=2),
                      1, StatRegistry())
    cache.connect(FakeLower(latency=100))
    now = 0
    for req in requests:
        now += 100_000
        result = cache.access(req, now)
        assert result.latency > 0
        # Fill (100) + probes + data can never exceed a small bound.
        assert result.latency < 500
