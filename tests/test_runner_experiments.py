"""Unit tests for the experiment runner's configuration space."""

import pytest

from repro.experiments.runner import (
    ExperimentRunner,
    FAST_MEMORY_FACTOR,
    RunKey,
)


class TestRunKey:
    def test_hashable_and_equal_by_value(self):
        a = RunKey("1P2L", "sobel", "small", 1.0, False, "default", 0)
        b = RunKey("1P2L", "sobel", "small", 1.0, False, "default", 0)
        assert a == b
        assert hash(a) == hash(b)

    def test_distinct_fields_distinguish(self):
        base = RunKey("1P2L", "sobel", "small", 1.0, False, "default", 0)
        assert base != RunKey("1P2L", "sobel", "small", 1.0, True,
                              "default", 0)
        assert base != RunKey("1P2L", "sobel", "small", 1.0, False,
                              "fast", 0)


class TestRunnerBehavior:
    def test_fast_memory_variant_speeds_up(self):
        runner = ExperimentRunner()
        slow = runner.run("1P1L", "sobel", "small", memory="default")
        fast = runner.run("1P1L", "sobel", "small", memory="fast")
        assert fast.cycles < slow.cycles
        assert runner.runs_completed == 2

    def test_fast_factor_matches_paper(self):
        assert FAST_MEMORY_FACTOR == pytest.approx(1.6)

    def test_resident_flag_builds_two_level_system(self):
        runner = ExperimentRunner()
        result = runner.run("1P2L", "sobel", "small", resident=True)
        assert len(result.system.levels) == 2

    def test_sample_every_collects_occupancy(self):
        runner = ExperimentRunner()
        result = runner.run("1P2L", "sobel", "small", sample_every=500)
        assert result.samples

    def test_sampling_key_does_not_collide_with_plain(self):
        runner = ExperimentRunner()
        plain = runner.run("1P2L", "sobel", "small")
        sampled = runner.run("1P2L", "sobel", "small", sample_every=500)
        assert plain is not sampled
        assert plain.cycles == sampled.cycles  # sampling is free
