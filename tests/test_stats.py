"""Unit tests for the statistics registry."""

from repro.common.stats import StatGroup, StatRegistry


class TestStatGroup:
    def test_add_and_get(self):
        grp = StatGroup("g")
        grp.add("hits")
        grp.add("hits", 4)
        assert grp.get("hits") == 5
        assert grp.get("misses") == 0

    def test_ratio_with_zero_denominator(self):
        grp = StatGroup("g")
        grp.add("hits", 3)
        assert grp.ratio("hits", "accesses") == 0.0
        grp.add("accesses", 6)
        assert grp.ratio("hits", "accesses") == 0.5

    def test_series_samples_preserve_order(self):
        grp = StatGroup("g")
        grp.sample("occ", 10, 0.5)
        grp.sample("occ", 20, 0.7)
        samples = grp.series("occ")
        assert [(s.time, s.value) for s in samples] == [(10, 0.5),
                                                        (20, 0.7)]
        assert grp.series_keys() == ["occ"]

    def test_reset_clears_everything(self):
        grp = StatGroup("g")
        grp.add("x")
        grp.sample("s", 1, 1.0)
        grp.reset()
        assert grp.get("x") == 0
        assert grp.series("s") == []


class TestStatRegistry:
    def test_group_is_memoized(self):
        reg = StatRegistry()
        assert reg.group("a") is reg.group("a")
        assert "a" in reg

    def test_flat_namespaces_keys(self):
        reg = StatRegistry()
        reg.group("cache.L1").add("hits", 2)
        reg.group("memory").add("reads", 3)
        flat = reg.flat()
        assert flat == {"cache.L1.hits": 2, "memory.reads": 3}

    def test_report_renders_counters(self):
        reg = StatRegistry()
        reg.group("cache.L1").add("hits", 2)
        text = reg.report()
        assert "[cache.L1]" in text
        assert "hits" in text

    def test_items_sorted_by_name(self):
        reg = StatRegistry()
        reg.group("b")
        reg.group("a")
        assert [name for name, _ in reg.items()] == ["a", "b"]
