"""Unit tests for the stride prefetcher."""

from repro.common.config import PrefetcherConfig
from repro.common.stats import StatGroup
from repro.common.types import Orientation, line_id_of
from repro.cache.prefetcher import StridePrefetcher


def make_pf(**kwargs):
    defaults = dict(enabled=True, degree=2, table_entries=4,
                    train_threshold=2)
    defaults.update(kwargs)
    return StridePrefetcher(PrefetcherConfig(**defaults),
                            StatGroup("pf"))


class TestTraining:
    def test_no_prefetch_before_threshold(self):
        pf = make_pf()
        assert pf.observe(1, 0) == []
        assert pf.observe(1, 64) == []   # stride learned, conf 1
        # Third access confirms the stride.
        assert pf.observe(1, 128) != []

    def test_prefetch_targets_follow_stride(self):
        pf = make_pf(degree=3)
        pf.observe(1, 0)
        pf.observe(1, 256)
        lines = pf.observe(1, 512)
        expected = [line_id_of(512 + 256 * k, Orientation.ROW)
                    for k in (1, 2, 3)]
        assert lines == expected

    def test_stride_change_resets_confidence(self):
        pf = make_pf()
        pf.observe(1, 0)
        pf.observe(1, 64)
        pf.observe(1, 128)
        assert pf.observe(1, 128 + 256) == []  # new stride
        assert pf.observe(1, 128 + 512) != []  # re-trained

    def test_zero_stride_ignored(self):
        pf = make_pf()
        pf.observe(1, 64)
        assert pf.observe(1, 64) == []
        assert pf.observe(1, 64) == []

    def test_small_strides_dedup_lines(self):
        """8-byte strides inside one line must not emit duplicates."""
        pf = make_pf(degree=4)
        pf.observe(1, 0)
        pf.observe(1, 8)
        lines = pf.observe(1, 16)
        assert len(lines) == len(set(lines))


class TestTableManagement:
    def test_disabled_prefetcher_is_inert(self):
        pf = make_pf(enabled=False)
        for addr in (0, 64, 128, 192):
            assert pf.observe(1, addr) == []

    def test_independent_reference_streams(self):
        pf = make_pf()
        pf.observe(1, 0)
        pf.observe(2, 1000)
        pf.observe(1, 64)
        pf.observe(2, 2000)
        assert pf.observe(1, 128) != []
        assert pf.observe(2, 3000) != []

    def test_table_eviction_on_overflow(self):
        pf = make_pf(table_entries=2)
        pf.observe(1, 0)
        pf.observe(2, 0)
        pf.observe(3, 0)  # evicts ref 1
        pf.observe(1, 64)  # re-enters cold
        pf.observe(1, 128)
        assert pf.observe(1, 192) != []

    def test_covered_bytes_reporting(self):
        assert make_pf(degree=4).covered_bytes() == 256
        assert make_pf(enabled=False).covered_bytes() is None

    def test_negative_target_addresses_dropped(self):
        pf = make_pf(degree=4)
        pf.observe(1, 1024)
        pf.observe(1, 512)
        lines = pf.observe(1, 0)  # stride -512: targets go negative
        assert lines == []
