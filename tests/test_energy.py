"""Unit tests for the energy model."""

import pytest

from repro.common.errors import ConfigError
from repro.common.stats import StatRegistry
from repro.core.energy import (
    EnergyBreakdown,
    EnergyModel,
    EnergyParams,
    energy_of_run,
)
from repro.core.simulator import run_simulation
from repro.core.system import make_system


class TestEnergyParams:
    def test_defaults_positive(self):
        params = EnergyParams()
        assert params.mem_activate_pj > params.mem_buffer_access_pj
        assert params.stt_data_write_pj > params.stt_data_read_pj

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            EnergyParams(mem_activate_pj=-1.0)


class TestEnergyBreakdown:
    def test_total_sums_components(self):
        bd = EnergyBreakdown({"a": 1000.0, "b": 500.0})
        assert bd.total_pj == 1500.0
        assert bd.total_nj == pytest.approx(1.5)
        assert bd.fraction("a") == pytest.approx(2 / 3)

    def test_empty_breakdown(self):
        bd = EnergyBreakdown()
        assert bd.total_pj == 0.0
        assert bd.fraction("x") == 0.0

    def test_report_sorted_by_energy(self):
        bd = EnergyBreakdown({"small": 10.0, "big": 1000.0})
        lines = bd.report().splitlines()
        assert lines[0].startswith("big")
        assert lines[-1].startswith("total")


class TestEnergyModel:
    def test_prices_synthetic_counters(self):
        stats = StatRegistry()
        banks = stats.group("memory.banks")
        banks.add("buffer_misses", 10)
        banks.add("reads", 100)
        banks.add("writes", 5)
        mem = stats.group("memory")
        mem.add("line_reads", 100)
        mem.add("writes_drained", 5)
        params = EnergyParams()
        bd = EnergyModel(params).evaluate(stats)
        expected_array = (10 * params.mem_activate_pj
                          + 100 * params.mem_buffer_access_pj
                          + 5 * params.mem_array_write_pj)
        assert bd.components["memory.array"] == \
            pytest.approx(expected_array)
        assert bd.components["memory.bus"] == \
            pytest.approx(105 * params.mem_burst_pj)

    def test_stt_caches_priced_differently(self):
        stats = StatRegistry()
        for name, is_stt in (("cache.A", 0), ("cache.B", 1)):
            grp = stats.group(name)
            grp.set("is_stt_array", is_stt)
            grp.add("tag_probes", 100)
            grp.add("hits", 100)
        bd = EnergyModel().evaluate(stats)
        assert bd.components["cache.B"] > bd.components["cache.A"]

    def test_end_to_end_on_real_run(self):
        result = run_simulation(make_system("1P2L"), workload="htap1",
                                size="small")
        bd = energy_of_run(result)
        assert bd.total_pj > 0
        assert "memory.array" in bd.components
        assert bd.components["cache.L1"] > 0

    def test_mda_saves_activation_energy_on_column_scan(self):
        base = run_simulation(make_system("1P1L"), workload="htap1",
                              size="small")
        mda = run_simulation(make_system("1P2L"), workload="htap1",
                             size="small")
        base_energy = energy_of_run(base).total_pj
        mda_energy = energy_of_run(mda).total_pj
        assert mda_energy < base_energy

    def test_custom_params_change_totals(self):
        result = run_simulation(make_system("1P2L"), workload="htap1",
                                size="small")
        cheap = energy_of_run(result, EnergyParams(mem_activate_pj=1.0))
        costly = energy_of_run(result,
                               EnergyParams(mem_activate_pj=5000.0))
        assert costly.total_pj > cheap.total_pj


class TestEnergyExperiment:
    def test_run_energy_structure(self):
        from repro.experiments import ExperimentRunner, run_energy
        result = run_energy(ExperimentRunner(), workloads=["htap1"],
                            size="small")
        assert result.normalized_energy("1P2L", "htap1") < 1.0
        assert "1P1L activates" in result.report()
