"""Trace-shape regression tests: op counts per kernel and target.

These pin down the compiler model's output shape — the quantity that
Fig. 10 and the op-count side of every cycles figure depend on.  If a
kernel or the vectorizer changes, these counts change deliberately.
"""

import pytest

from repro.sw.tracegen import generate_trace, trace_mix
from repro.workloads.registry import build_workload


def count(name, dims, size="small"):
    return sum(1 for _ in generate_trace(build_workload(name, size),
                                         dims))


class TestOpCountFormulas:
    def test_sgemm_2d(self):
        # Per (i, j): n/8 MatR vectors + n/8 MatC vectors + 1 store.
        n = 32
        assert count("sgemm", 2) == n * n * (2 * n // 8 + 1)

    def test_sgemm_1d(self):
        # MatC serializes: n scalars instead of n/8 vectors.
        n = 32
        assert count("sgemm", 1) == n * n * (n // 8 + n + 1)

    def test_sobel_2d(self):
        # Interior (n-2)^2, vector groups of 8 with tails as scalars;
        # 9 refs per point; misaligned taps split into two requests.
        total = count("sobel", 2)
        n = 32
        interior = (n - 2) * (n - 2)
        # Lower bound: one request per ref per 8 lanes; upper bound:
        # every vector ref split + all tails scalar.
        assert interior * 9 // 8 <= total <= interior * 9

    def test_htap1_2d(self):
        rows, cols = 256, 32
        scan = 4 * 2 * rows // 8        # 4 queries x 2 refs, vectorized
        fetch = (rows // 4) * (cols // 8)
        assert count("htap1", 2) == scan + fetch

    def test_vector_ratio_1d_vs_2d(self):
        """The 1-D target always needs at least as many requests."""
        for name in ("sgemm", "ssyr2k", "ssyrk", "strmm", "sobel",
                     "htap1", "htap2"):
            assert count(name, 1) >= count(name, 2), name


class TestVolumeConsistency:
    @pytest.mark.parametrize("name", ["sgemm", "strmm", "sobel",
                                      "htap1", "htap2"])
    def test_1d_and_2d_traces_touch_same_data_volume(self, name):
        """Vectorization changes request counts, not bytes touched
        (modulo vector-alignment splits that re-touch lines)."""
        mix_1d = trace_mix(generate_trace(build_workload(name, "small"),
                                          1))
        mix_2d = trace_mix(generate_trace(build_workload(name, "small"),
                                          2))
        # 2-D volume >= 1-D volume (vector requests cover full lines,
        # scalars only the word), but within the 8x word/line factor.
        assert mix_1d.total <= mix_2d.total <= 8 * mix_1d.total

    def test_deterministic_traces(self):
        a = list(generate_trace(build_workload("strmm", "small"), 2))
        b = list(generate_trace(build_workload("strmm", "small"), 2))
        assert a == b
