"""The simulation service (PR-5 acceptance).

Covers the protocol (validation both stages, payload round-trips), the
metric primitives (Prometheus rendering, labeled counters, power-of-two
histograms), and the live server end to end: coalescing under a
concurrent load of 50+ requests with >30% duplicates, admission-control
backpressure (429 with ``Retry-After``), drain behaviour (503, journal
flush, SIGTERM exit 0 in a real subprocess), client retry/backoff, and
bit-identity between a served result and a direct
:class:`ExperimentRunner` run.
"""

from __future__ import annotations

import asyncio
import http.server
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.common.errors import (
    AdmissionRejected,
    ServiceDraining,
    SimulationFailed,
    ValidationFailed,
)
from repro.experiments.runner import (
    RUNCACHE_DIRNAME,
    ExperimentRunner,
    RunKey,
)
from repro.experiments.supervisor import (
    RetryPolicy,
    RunJournal,
    Supervisor,
)
from repro.service.batching import SimulationService
from repro.service.client import (
    AsyncServiceClient,
    RetryConfig,
    ServiceClient,
)
from repro.service.metrics import MetricsRegistry
from repro.service.protocol import parse_request, request_payload
from repro.service.server import ServiceServer


# -- protocol -----------------------------------------------------------------


class TestParseRequest:
    def test_minimal_request(self):
        req = parse_request({"design": "1P2L", "workload": "sobel"})
        assert req.key == RunKey("1P2L", "sobel", "small", 1.0, False,
                                 "default", 0)
        assert not req.want_stats

    def test_full_request(self):
        req = parse_request({
            "design": "2P2L", "workload": "sobel", "size": "large",
            "llc_mb": 2, "resident": False, "memory": "fast",
            "sample_every": 5, "overrides": {"cpu.mlp_window": 8},
            "stats": True})
        assert req.key.llc_mb == 2.0
        assert req.key.memory == "fast"
        assert req.key.overrides == (("cpu.mlp_window", 8),)
        assert req.want_stats

    def test_overrides_are_order_insensitive(self):
        a = parse_request({"design": "1P2L", "workload": "sobel",
                           "overrides": {"cpu.mlp_window": 8,
                                         "memory.sub_buffers": 2}})
        b = parse_request({"design": "1P2L", "workload": "sobel",
                           "overrides": {"memory.sub_buffers": 2,
                                         "cpu.mlp_window": 8}})
        assert a.key == b.key

    @pytest.mark.parametrize("payload,fragment", [
        ("not a dict", "JSON object"),
        ({}, "unknown design"),
        ({"design": "1P2L"}, "unknown workload"),
        ({"design": "nope", "workload": "sobel"}, "unknown design"),
        ({"design": "1P2L", "workload": "sobel", "size": "huge"},
         "size must be"),
        ({"design": "1P2L", "workload": "sobel", "llc_mb": 3.3},
         "llc_mb must be one of"),
        ({"design": "1P2L", "workload": "sobel", "llc_mb": "big"},
         "llc_mb must be a number"),
        ({"design": "1P2L", "workload": "sobel", "memory": "slow"},
         "memory must be"),
        ({"design": "1P2L", "workload": "sobel", "sample_every": -1},
         "sample_every"),
        ({"design": "1P2L", "workload": "sobel", "resident": "yes"},
         "must be a boolean"),
        ({"design": "1P2L", "workload": "sobel", "extra": 1},
         "unknown request field"),
        ({"design": "1P2L", "workload": "sobel",
          "overrides": ["cpu.mlp_window"]}, "overrides must be"),
    ])
    def test_schema_violations(self, payload, fragment):
        with pytest.raises(ValidationFailed, match=re.escape(fragment)):
            parse_request(payload)

    def test_stage_two_rejects_bad_override_path(self):
        with pytest.raises(ValidationFailed):
            parse_request({"design": "1P2L", "workload": "sobel",
                           "overrides": {"cpu.no_such_field": 1}})

    def test_stage_two_rejects_invalid_override_value(self):
        # The path exists; the value violates a dataclass invariant.
        with pytest.raises(ValidationFailed):
            parse_request({"design": "1P2L", "workload": "sobel",
                           "overrides": {"cpu.mlp_window": -3}})

    def test_too_many_overrides(self):
        overrides = {f"cpu.f{i}": i for i in range(17)}
        with pytest.raises(ValidationFailed, match="at most 16"):
            parse_request({"design": "1P2L", "workload": "sobel",
                           "overrides": overrides})

    def test_resident_skips_llc_size_check(self):
        req = parse_request({"design": "1P2L", "workload": "sobel",
                             "resident": True, "llc_mb": 99.0})
        assert req.key.resident

    def test_request_payload_round_trips(self):
        req = parse_request({"design": "1P2L", "workload": "sobel",
                             "overrides": {"cpu.mlp_window": 8}})
        again = parse_request(request_payload(req.key))
        assert again.key == req.key


# -- metrics ------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels_and_totals(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits_total", "hits by tier")
        counter.inc(tier="memo")
        counter.inc(2, tier="disk")
        assert counter.value(tier="memo") == 1
        assert counter.total() == 3
        text = reg.render()
        assert 'repro_hits_total{tier="disk"} 2' in text
        assert "# TYPE repro_hits_total counter" in text

    def test_unlabeled_counter_renders_zero(self):
        reg = MetricsRegistry()
        reg.counter("empty_total", "never incremented")
        assert "repro_empty_total 0" in reg.render()

    def test_gauge_callback(self):
        reg = MetricsRegistry()
        box = {"v": 3}
        reg.gauge("depth", "queue depth", fn=lambda: box["v"])
        assert "repro_depth 3" in reg.render()
        box["v"] = 7
        assert "repro_depth 7" in reg.render()

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", "latency", max_buckets=8)
        for value in (1, 1, 3, 200):
            hist.observe(value)
        text = reg.render()
        # 1 -> bucket 1 (le=1), 3 -> bucket 2 (le=3), 200 overflows
        # into the last bucket; cumulative counts must be monotone.
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="3"} 3' in text
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert "repro_lat_count 4" in text
        assert "repro_lat_sum 205" in text

    def test_histogram_bucket_merge(self):
        reg = MetricsRegistry()
        hist = reg.histogram("cyc", "cycles", max_buckets=8)
        hist.observe_bucket_counts({2: 5, 50: 1})  # 50 clamps to last
        assert hist.count == 6
        assert 'le="+Inf"} 6' in reg.render()

    def test_scaled_boundaries(self):
        reg = MetricsRegistry()
        hist = reg.histogram("wait_seconds", "wait", scale=1e-6,
                             max_buckets=4)
        hist.observe(1000)  # 1000 us
        text = reg.render()
        # le boundaries are (2**i - 1) microseconds in seconds.
        assert 'le="1e-06"' in text
        assert 'le="+Inf"} 1' in text


# -- live server harness ------------------------------------------------------


def _make_service(tmp_path, **kwargs):
    runner = ExperimentRunner(
        verbose=False, jobs=1,
        cache_dir=os.path.join(str(tmp_path), RUNCACHE_DIRNAME))
    supervisor = Supervisor(
        runner,
        journal=RunJournal.for_suite(str(tmp_path), "service"),
        policy=RetryPolicy(max_retries=1),
        handle_signals=False)
    return SimulationService(runner, supervisor, **kwargs)


def _with_server(tmp_path, scenario, **service_kwargs):
    """Run ``scenario(server, client)`` against a live server on a
    fresh event loop; drain afterwards and return the scenario's
    result."""
    async def main():
        service = _make_service(tmp_path, **service_kwargs)
        server = ServiceServer(service, port=0)
        await server.start()
        client = AsyncServiceClient(
            port=server.port, retry=RetryConfig(max_retries=0))
        try:
            return await scenario(server, client)
        finally:
            await server.shutdown()
    return asyncio.run(main())


class TestServer:
    def test_healthz_and_unknown_routes(self, tmp_path):
        async def scenario(server, client):
            health = await client.healthz()
            assert health["status"] == "ok"
            status, _, _ = await client._once("GET", "/nope", None,
                                              False)
            assert status == 404
            status, _, _ = await client._once("GET", "/simulate", None,
                                              False)
            assert status == 405
            return True
        assert _with_server(tmp_path, scenario)

    def test_healthz_turns_503_once_draining(self, tmp_path):
        """Probes must stop routing to a worker the moment its drain
        begins, not when it finishes."""
        async def scenario(server, client):
            status, _, payload = await client._once(
                "GET", "/healthz", None, False)
            assert status == 200
            # An in-flight simulation keeps the drain from finishing
            # (and the listener from closing) while we probe.
            inflight = asyncio.create_task(server.service.submit(
                RunKey("1P2L", "sobel", "small", 1.0, False,
                       "default", 0)))
            await asyncio.sleep(0.05)
            server._begin_drain()
            status, headers, payload = await client._once(
                "GET", "/healthz", None, False)
            assert status == 503
            assert payload["status"] == "draining"
            assert "retry-after" in headers
            await inflight
            await server.serve_until_drained()
            return True
        assert _with_server(tmp_path, scenario)

    def test_load_coalesces_duplicates(self, tmp_path):
        """50+ overlapping requests, >30% duplicates: every duplicate
        must ride an in-flight simulation or the cache, never a second
        simulation of the same key."""
        designs = ("1P1L", "1P2L", "2P2L", "1P2L_SameSet")
        distinct = [{"design": d, "workload": "sobel",
                     "llc_mb": mb}
                    for d in designs for mb in (1.0, 2.0)]  # 8 points

        async def scenario(server, client):
            requests = (distinct * 7)[:56]  # 56 requests, 8 distinct
            results = await asyncio.gather(
                *(client.request("POST", "/simulate", body)
                  for body in requests))
            metrics = server.service.metrics
            return results, metrics, await client.metrics()

        results, metrics, text = _with_server(
            tmp_path, scenario, batch_window=0.05)
        assert len(results) == 56
        by_key = {}
        for body in results:
            assert body["cycles"] > 0
            by_key.setdefault((body["design"], body["llc_mb"]),
                              set()).add(body["cycles"])
        # Identical configs agree with themselves.
        assert all(len(cycles) == 1 for cycles in by_key.values())
        # Each of the 8 distinct points simulated exactly once; the
        # other 48 coalesced or hit the cache.
        assert metrics.simulated.total() == 8
        assert metrics.coalesced.total() + metrics.cache_hits.total() \
            == 48
        assert metrics.coalesced.total() > 0
        assert re.search(r"repro_coalesced_total \d+", text)
        assert "repro_queue_depth 0" in text
        assert "repro_cache_hit_ratio 0.857" in text

    def test_queue_full_rejects_with_429(self, tmp_path):
        async def scenario(server, client):
            # A huge batch window holds jobs in the queue long enough
            # to observe the bound deterministically.
            first = asyncio.create_task(
                client.simulate("1P2L", "sobel"))
            await asyncio.sleep(0.1)  # first now occupies the queue
            with pytest.raises(AdmissionRejected) as excinfo:
                await client.simulate("1P1L", "sobel")
            assert excinfo.value.retry_after >= 1.0
            status, headers, _ = await client._once(
                "POST", "/simulate",
                {"design": "2P2L", "workload": "sobel"}, False)
            assert status == 429
            assert "retry-after" in headers
            rejected = server.service.metrics.rejected
            assert rejected.value(reason="queue_full") == 2
            return await first

        result = _with_server(tmp_path, scenario, max_pending=1,
                              batch_window=3.0)
        assert result["source"] == "simulated"

    def test_served_stats_bit_identical_to_direct_run(self, tmp_path):
        direct = ExperimentRunner(verbose=False, cache_dir=None) \
            .run("1P2L", "sobel", size="small", llc_mb=1.0)

        async def scenario(server, client):
            return await client.simulate("1P2L", "sobel", stats=True)

        served = _with_server(tmp_path, scenario)
        assert served["cycles"] == direct.cycles
        assert served["ops"] == direct.ops
        # The full flat counter dict survives the JSON round trip
        # bit-identically.
        assert served["stats"] == direct.stats.flat()

    def test_batch_endpoint_isolates_failures(self, tmp_path):
        async def scenario(server, client):
            return await client.simulate_batch([
                {"design": "1P2L", "workload": "sobel"},
                {"design": "bogus", "workload": "sobel"},
            ])
        good, bad = _with_server(tmp_path, scenario)
        assert good["cycles"] > 0
        assert bad["status"] == 400
        assert "unknown design" in bad["error"]

    def test_bad_tier_override_round_trips_as_400(self, tmp_path):
        """A malformed tier override is a client error, not a crash:
        the unknown-field and invalid-pair cases both come back 400
        while a valid tier point in the same batch still serves."""
        async def scenario(server, client):
            return await client.simulate_batch([
                {"design": "1P2L", "workload": "sobel",
                 "overrides": {"tier.mode": "flat",
                               "tier.size_bytes": 1 << 20}},
                {"design": "1P2L", "workload": "sobel",
                 "overrides": {"tier.bogus": 1}},
                {"design": "1P2L", "workload": "sobel",
                 "overrides": {"tier.mode": "cache"}},
            ])
        good, unknown, invalid = _with_server(tmp_path, scenario)
        assert good["cycles"] > 0
        assert unknown["status"] == 400
        assert "unknown field" in unknown["error"]
        assert invalid["status"] == 400
        assert "size_bytes" in invalid["error"]

    def test_served_tier_run_bit_identical_to_direct(self, tmp_path):
        overrides = {"tier.mode": "hybrid",
                     "tier.size_bytes": 2 << 20,
                     "tier.cache_fraction": 0.5}
        key = RunKey("1P2L", "sobel", "small", 1.0, False, "default",
                     0, tuple(sorted(overrides.items())))
        from repro.experiments.runner import simulate_run_key
        reference = simulate_run_key(key)

        async def scenario(server, client):
            return await client.simulate("1P2L", "sobel", stats=True,
                                         overrides=overrides)

        served = _with_server(tmp_path, scenario)
        assert served["cycles"] == reference.cycles
        assert served["stats"] == reference.stats.flat()
        assert served["stats"].get("tier.fetches", 0) > 0

    def test_drain_rejects_new_work_and_journals(self, tmp_path):
        async def scenario(server, client):
            await client.simulate("1P2L", "sobel")
            server._begin_drain()
            await server.serve_until_drained()
            assert server.service.draining
            with pytest.raises(ServiceDraining):
                await server.service.submit(
                    RunKey("1P1L", "sobel", "small", 1.0, False,
                           "default", 0))
            return True

        assert _with_server(tmp_path, scenario)
        journal = RunJournal.for_suite(str(tmp_path), "service")
        assert journal.exists()
        events = [json.loads(line)
                  for line in open(journal.path, encoding="utf-8")]
        assert any(e.get("event") == "service_drained" for e in events)

    def test_simulation_failure_maps_to_500(self, tmp_path, monkeypatch):
        async def scenario(server, client):
            def broken(keys, strict=True):
                raise RuntimeError("pool exploded")
            monkeypatch.setattr(server.service._supervisor,
                                "supervise", broken)
            with pytest.raises(SimulationFailed, match="pool exploded"):
                await client.simulate("1P2L", "sobel")
            assert server.service.metrics.sim_failed.total() == 1
            return True
        assert _with_server(tmp_path, scenario)


class TestSyncClient:
    def test_sync_client_against_live_server(self, tmp_path):
        """The blocking client exercises the keep-alive path from a
        plain thread while the server loop runs in another."""
        results = {}

        async def scenario(server, client):
            def worker():
                with ServiceClient(port=server.port) as sync:
                    results["health"] = sync.healthz()
                    results["run"] = sync.simulate("1P2L", "sobel")
                    results["again"] = sync.simulate("1P2L", "sobel")
                    results["metrics"] = sync.metrics()
            await asyncio.to_thread(worker)
            return True

        assert _with_server(tmp_path, scenario)
        assert results["health"]["status"] == "ok"
        assert results["run"]["source"] == "simulated"
        assert results["again"]["source"] == "cache"
        assert results["again"]["cycles"] == results["run"]["cycles"]
        assert "repro_requests_total" in results["metrics"]

    def test_sync_client_validation_error(self, tmp_path):
        async def scenario(server, client):
            def worker():
                with ServiceClient(port=server.port) as sync:
                    with pytest.raises(ValidationFailed):
                        sync.simulate("bogus", "sobel")
            await asyncio.to_thread(worker)
            return True
        assert _with_server(tmp_path, scenario)


class TestRetry:
    def test_retry_config_delays(self):
        retry = RetryConfig(backoff_base=0.1, backoff_factor=2.0,
                            backoff_cap=1.0, jitter=False)
        assert retry.delay(0) == pytest.approx(0.1)
        assert retry.delay(1) == pytest.approx(0.2)
        assert retry.delay(10) == 1.0  # capped
        # Retry-After wins over the computed backoff (capped too).
        assert retry.delay(0, retry_after=0.5) == 0.5
        assert retry.delay(0, retry_after=99.0) == 1.0

    def test_retry_config_full_jitter(self):
        """Computed delays draw uniformly from [0, ceiling); the
        server's Retry-After estimate is never jittered."""
        retry = RetryConfig(backoff_base=0.1, backoff_factor=2.0,
                            backoff_cap=1.0)
        assert retry.delay(1, rng=lambda: 0.0) == 0.0
        assert retry.delay(1, rng=lambda: 0.5) \
            == pytest.approx(0.1)  # half of the 0.2 ceiling
        assert retry.delay(10, rng=lambda: 0.25) \
            == pytest.approx(0.25)  # capped ceiling, then jittered
        # Retry-After bypasses the jitter entirely.
        assert retry.delay(1, retry_after=0.5,
                           rng=lambda: 0.0) == 0.5
        # Real draws stay strictly inside the window.
        for attempt in range(6):
            ceiling = min(0.1 * 2.0 ** attempt, 1.0)
            for _ in range(50):
                assert 0.0 <= retry.delay(attempt) < ceiling + 1e-12

    def test_client_honors_retry_after_from_stub(self):
        """A 429 with a short Retry-After must be retried after that
        delay, not the (much larger) configured backoff."""
        hits = []

        class Stub(http.server.BaseHTTPRequestHandler):
            def do_POST(self):
                self.rfile.read(
                    int(self.headers.get("Content-Length", 0)))
                hits.append(time.monotonic())
                if len(hits) == 1:
                    body = b'{"error": "busy"}'
                    self.send_response(429)
                    self.send_header("Retry-After", "0.2")
                else:
                    body = b'{"cycles": 1, "source": "cache"}'
                    self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        stub = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Stub)
        threading.Thread(target=stub.serve_forever,
                         daemon=True).start()
        try:
            client = ServiceClient(
                port=stub.server_address[1],
                retry=RetryConfig(max_retries=2, backoff_base=30.0))
            started = time.monotonic()
            body = client.request("POST", "/simulate",
                                  {"design": "x", "workload": "y"})
            elapsed = time.monotonic() - started
            client.close()
        finally:
            stub.shutdown()
            stub.server_close()
        assert body["cycles"] == 1
        assert len(hits) == 2
        assert 0.15 <= elapsed < 5.0  # Retry-After, not the 30s base

    def test_retry_budget_exhausted_surfaces_last_error(self):
        class Stub(http.server.BaseHTTPRequestHandler):
            def do_POST(self):
                self.rfile.read(
                    int(self.headers.get("Content-Length", 0)))
                body = b'{"error": "always busy"}'
                self.send_response(429)
                self.send_header("Retry-After", "0.05")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        stub = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Stub)
        threading.Thread(target=stub.serve_forever,
                         daemon=True).start()
        try:
            client = ServiceClient(
                port=stub.server_address[1],
                retry=RetryConfig(max_retries=2))
            with pytest.raises(AdmissionRejected, match="always busy"):
                client.request("POST", "/simulate", {})
            client.close()
        finally:
            stub.shutdown()
            stub.server_close()


class TestSigterm:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """The real CLI entry point, as a subprocess: serve a request,
        SIGTERM, assert a clean drain and exit status 0."""
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--outdir", str(tmp_path)],
            stderr=subprocess.PIPE, text=True, env=env)
        try:
            line = proc.stderr.readline()
            match = re.search(r"listening on http://[^:]+:(\d+)", line)
            assert match, f"no readiness line, got: {line!r}"
            client = ServiceClient(
                port=int(match.group(1)),
                retry=RetryConfig(max_retries=8, backoff_base=0.2),
                timeout=60.0)
            body = client.simulate("1P2L", "sobel")
            assert body["cycles"] > 0
            client.close()
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert RunJournal.for_suite(str(tmp_path), "service").exists()
