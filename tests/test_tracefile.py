"""Unit tests for trace file I/O."""

import io

import pytest

from repro.common.errors import ProgramError
from repro.common.types import AccessWidth, Orientation, Request
from repro.core.simulator import run_simulation, run_trace
from repro.core.system import make_system
from repro.sw.tracefile import (
    HEADER,
    format_request,
    parse_request,
    read_trace,
    write_trace,
)
from repro.sw.tracegen import generate_trace
from repro.workloads.registry import build_workload


def sample_requests():
    return [
        Request(0x1a40, Orientation.ROW, AccessWidth.SCALAR, False, 3),
        Request(0x2000, Orientation.COLUMN, AccessWidth.VECTOR, True, 7),
    ]


class TestFormat:
    def test_roundtrip_single(self):
        for req in sample_requests():
            assert parse_request(format_request(req)) == req

    def test_line_layout(self):
        line = format_request(sample_requests()[1])
        assert line == "W c v 0x2000 7"

    def test_parse_rejects_wrong_field_count(self):
        with pytest.raises(ProgramError):
            parse_request("R r s 0x0")

    def test_parse_rejects_bad_op(self):
        with pytest.raises(ProgramError):
            parse_request("X r s 0x0 0")

    def test_parse_rejects_unaligned_address(self):
        with pytest.raises(ProgramError):
            parse_request("R r s 0x3 0")

    def test_parse_rejects_bad_numbers(self):
        with pytest.raises(ProgramError):
            parse_request("R r s 0xzz 0")
        with pytest.raises(ProgramError):
            parse_request("R r s 0x0 -1")


class TestStreamIO:
    def test_write_read_roundtrip_in_memory(self):
        buf = io.StringIO()
        count = write_trace(sample_requests(), buf)
        assert count == 2
        buf.seek(0)
        assert list(read_trace(buf)) == sample_requests()

    def test_header_checked(self):
        buf = io.StringIO("not a trace\nR r s 0x0 0\n")
        with pytest.raises(ProgramError):
            list(read_trace(buf))

    def test_comments_and_blanks_skipped(self):
        buf = io.StringIO(f"{HEADER}\n\n# comment\nR r s 0x0 0\n")
        assert len(list(read_trace(buf))) == 1

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.trc")
        write_trace(sample_requests(), path)
        assert list(read_trace(path)) == sample_requests()


class TestReplayFidelity:
    def test_replayed_trace_matches_direct_run(self, tmp_path):
        """A saved+reloaded trace reproduces the exact simulation."""
        program = build_workload("htap1", "small")
        direct = run_simulation(make_system("1P2L"), program=program)
        path = str(tmp_path / "htap1.trc")
        write_trace(generate_trace(program, 2), path)
        replayed = run_trace(make_system("1P2L"), read_trace(path))
        assert replayed.cycles == direct.cycles
        assert replayed.ops == direct.ops
        assert replayed.memory_bytes() == direct.memory_bytes()

    def test_run_trace_names_result(self):
        result = run_trace(make_system("1P2L"),
                           iter(sample_requests()), name="custom")
        assert result.workload == "custom"
        assert result.ops == 2
