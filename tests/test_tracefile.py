"""Unit tests for trace file I/O."""

import array
import io
import pickle
import struct

import pytest

from repro.common.errors import ProgramError
from repro.common.types import AccessWidth, Orientation, PackedTrace, \
    Request
from repro.core.simulator import run_simulation, run_trace
from repro.core.system import make_system
from repro.sw.tracefile import (
    HEADER,
    PACKED_MAGIC,
    PACKED_VERSION,
    format_request,
    parse_request,
    read_packed_trace,
    read_packed_trace_mapped,
    read_trace,
    write_packed_trace,
    write_trace,
)
from repro.sw.tracegen import generate_trace
from repro.workloads.registry import build_workload


def sample_requests():
    return [
        Request(0x1a40, Orientation.ROW, AccessWidth.SCALAR, False, 3),
        Request(0x2000, Orientation.COLUMN, AccessWidth.VECTOR, True, 7),
    ]


class TestFormat:
    def test_roundtrip_single(self):
        for req in sample_requests():
            assert parse_request(format_request(req)) == req

    def test_line_layout(self):
        line = format_request(sample_requests()[1])
        assert line == "W c v 0x2000 7"

    def test_parse_rejects_wrong_field_count(self):
        with pytest.raises(ProgramError):
            parse_request("R r s 0x0")

    def test_parse_rejects_bad_op(self):
        with pytest.raises(ProgramError):
            parse_request("X r s 0x0 0")

    def test_parse_rejects_unaligned_address(self):
        with pytest.raises(ProgramError):
            parse_request("R r s 0x3 0")

    def test_parse_rejects_bad_numbers(self):
        with pytest.raises(ProgramError):
            parse_request("R r s 0xzz 0")
        with pytest.raises(ProgramError):
            parse_request("R r s 0x0 -1")


class TestStreamIO:
    def test_write_read_roundtrip_in_memory(self):
        buf = io.StringIO()
        count = write_trace(sample_requests(), buf)
        assert count == 2
        buf.seek(0)
        assert list(read_trace(buf)) == sample_requests()

    def test_header_checked(self):
        buf = io.StringIO("not a trace\nR r s 0x0 0\n")
        with pytest.raises(ProgramError):
            list(read_trace(buf))

    def test_comments_and_blanks_skipped(self):
        buf = io.StringIO(f"{HEADER}\n\n# comment\nR r s 0x0 0\n")
        assert len(list(read_trace(buf))) == 1

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.trc")
        write_trace(sample_requests(), path)
        assert list(read_trace(path)) == sample_requests()


class TestReplayFidelity:
    def test_replayed_trace_matches_direct_run(self, tmp_path):
        """A saved+reloaded trace reproduces the exact simulation."""
        program = build_workload("htap1", "small")
        direct = run_simulation(make_system("1P2L"), program=program)
        path = str(tmp_path / "htap1.trc")
        write_trace(generate_trace(program, 2), path)
        replayed = run_trace(make_system("1P2L"), read_trace(path))
        assert replayed.cycles == direct.cycles
        assert replayed.ops == direct.ops
        assert replayed.memory_bytes() == direct.memory_bytes()

    def test_run_trace_names_result(self):
        result = run_trace(make_system("1P2L"),
                           iter(sample_requests()), name="custom")
        assert result.workload == "custom"
        assert result.ops == 2


class TestMappedReads:
    """Zero-copy ``mmap`` reads of packed trace files."""

    @staticmethod
    def _write(path, name="htap1"):
        trace = PackedTrace.from_requests(sample_requests())
        write_packed_trace(trace, str(path), name=name)
        return trace

    @staticmethod
    def _legacy_bytes(name, trace):
        """A pre-padding packed file: the name field is written
        verbatim, so odd lengths leave the payload unaligned."""
        encoded = name.encode("utf-8")
        return (PACKED_MAGIC
                + struct.pack("<II", PACKED_VERSION, len(encoded))
                + encoded
                + struct.pack("<Q", len(trace))
                + trace.to_bytes())

    def test_mapped_read_is_zero_copy(self, tmp_path):
        path = tmp_path / "t.mdat"
        trace = self._write(path)
        name, mapped = read_packed_trace_mapped(str(path))
        assert name == "htap1"
        assert isinstance(mapped.words, memoryview)
        assert mapped.words.readonly
        assert mapped == trace
        assert list(mapped) == sample_requests()

    def test_name_padding_round_trips_both_readers(self, tmp_path):
        # An aligned (multiple-of-8) name takes no padding; an odd one
        # does.  Both readers must strip it.
        for name in ("t", "eight888", "padded-name"):
            path = tmp_path / f"{len(name)}.mdat"
            trace = self._write(path, name=name)
            assert read_packed_trace(str(path)) == (name, trace)
            got_name, got = read_packed_trace_mapped(str(path))
            assert (got_name, got) == (name, trace)
            assert isinstance(got.words, memoryview)

    def test_legacy_unpadded_file_falls_back_to_copy(self, tmp_path):
        # Pre-padding files with odd name lengths leave the payload
        # unaligned: the mapped reader silently hands off to the
        # copying reader rather than serving unaligned gathers.
        trace = PackedTrace.from_requests(sample_requests())
        path = tmp_path / "legacy.mdat"
        path.write_bytes(self._legacy_bytes("htap1", trace))
        name, got = read_packed_trace_mapped(str(path))
        assert (name, got) == ("htap1", trace)
        assert isinstance(got.words, array.array)

    def test_legacy_aligned_file_maps(self, tmp_path):
        trace = PackedTrace.from_requests(sample_requests())
        path = tmp_path / "legacy8.mdat"
        path.write_bytes(self._legacy_bytes("eight888", trace))
        name, got = read_packed_trace_mapped(str(path))
        assert (name, got) == ("eight888", trace)
        assert isinstance(got.words, memoryview)

    def test_mapped_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.mdat"
        path.write_bytes(b"NOTATRCE" + b"\x00" * 24)
        with pytest.raises(ProgramError, match="magic"):
            read_packed_trace_mapped(str(path))

    def test_mapped_rejects_truncation(self, tmp_path):
        path = tmp_path / "t.mdat"
        self._write(path)
        blob = path.read_bytes()
        for cut in (4, len(blob) - 8, len(blob) - 1):
            path.write_bytes(blob[:cut])
            with pytest.raises(ProgramError):
                read_packed_trace_mapped(str(path))

    def test_mapped_rejects_version_mismatch(self, tmp_path):
        path = tmp_path / "t.mdat"
        self._write(path)
        blob = bytearray(path.read_bytes())
        blob[8] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ProgramError, match="version"):
            read_packed_trace_mapped(str(path))

    def test_empty_file_reads_like_copy_reader(self, tmp_path):
        path = tmp_path / "empty.mdat"
        path.write_bytes(b"")
        with pytest.raises(ProgramError):
            read_packed_trace_mapped(str(path))

    def test_mapped_trace_pickles_as_owning_copy(self, tmp_path):
        # Forked pool workers pickle shard traces; a memoryview is not
        # picklable, so the round trip must rebuild an owning trace.
        path = tmp_path / "t.mdat"
        trace = self._write(path)
        _, mapped = read_packed_trace_mapped(str(path))
        clone = pickle.loads(pickle.dumps(mapped))
        assert clone == trace
        assert isinstance(clone.words, array.array)

    def test_mapped_slices_stay_views(self, tmp_path):
        # Shard slicing (simulator.py) slices trace.words directly;
        # a memoryview slice must still replay and re-pickle.
        path = tmp_path / "t.mdat"
        trace = self._write(path)
        _, mapped = read_packed_trace_mapped(str(path))
        shard = PackedTrace(mapped.words[1:])
        assert isinstance(shard.words, memoryview)
        assert list(shard) == list(trace)[1:]
        assert pickle.loads(pickle.dumps(shard)) == shard

    def test_mapped_replay_matches_copy_replay(self, tmp_path):
        from repro.sw.tracegen import generate_packed_trace
        program = build_workload("sobel", "small")
        trace = generate_packed_trace(program, 2)
        path = tmp_path / "sobel.mdat"
        write_packed_trace(trace, str(path), name="sobel")
        _, mapped = read_packed_trace_mapped(str(path))
        assert isinstance(mapped.words, memoryview)
        via_mapped = run_trace(make_system("1P2L", 1.0), mapped,
                               name="t")
        via_copy = run_trace(make_system("1P2L", 1.0), trace, name="t")
        assert via_mapped.cycles == via_copy.cycles
        assert via_mapped.stats.flat() == via_copy.stats.flat()
