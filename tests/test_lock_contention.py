"""Multi-process contention for the advisory cache locks (PR-8).

:mod:`repro.common.locking` promises three things under real
cross-process contention, and this module proves each with actual
forked processes, not threads: no lost updates for read-modify-write
critical sections, a bounded :class:`LockTimeout` instead of a hang
when the lock never frees, and exactly-once quarantine when many
processes trip over the same corrupt cache entry at once.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import time

import pytest

from repro.common.errors import LockTimeout
from repro.common.locking import file_lock, lock_path_for
from repro.experiments.runner import RunCache, RunKey

#: Fork, not spawn: the suite runs on Linux and fork keeps the
#: workers' imports instant, which matters when the point of the test
#: is overlap.
_mp = multiprocessing.get_context("fork")


def _key() -> RunKey:
    return RunKey("1P2L", "sobel", "small", 1.0, False, "default", 0)


# -- read-modify-write: no lost updates ---------------------------------------


def _increment_worker(counter: str, lock: str, rounds: int,
                      barrier) -> None:
    barrier.wait()
    for _ in range(rounds):
        with file_lock(lock, timeout=60.0):
            with open(counter, "r", encoding="utf-8") as handle:
                value = int(handle.read())
            with open(counter, "w", encoding="utf-8") as handle:
                handle.write(str(value + 1))


@pytest.mark.slow
class TestNoLostUpdates:
    def test_concurrent_read_modify_write(self, tmp_path):
        """N processes hammering one counter under the lock: every
        increment must land.  Without the lock this loses updates
        almost every run; with it the count is exact."""
        procs, rounds = 4, 20
        counter = str(tmp_path / "counter")
        lock = lock_path_for(str(tmp_path))
        with open(counter, "w", encoding="utf-8") as handle:
            handle.write("0")
        barrier = _mp.Barrier(procs)
        workers = [_mp.Process(target=_increment_worker,
                               args=(counter, lock, rounds, barrier))
                   for _ in range(procs)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        with open(counter, encoding="utf-8") as handle:
            assert int(handle.read()) == procs * rounds


# -- bounded timeouts, never hangs --------------------------------------------


class TestLockTimeout:
    def test_held_lock_times_out_within_budget(self, tmp_path):
        lock = lock_path_for(str(tmp_path))
        with contextlib.ExitStack() as stack:
            stack.enter_context(file_lock(lock))
            started = time.monotonic()
            # flock conflicts across file descriptors, so a second
            # acquisition in the same process contends like another
            # process would.
            with pytest.raises(LockTimeout):
                with file_lock(lock, timeout=0.3):
                    pass
            elapsed = time.monotonic() - started
        assert elapsed < 5.0  # bounded, nowhere near a hang

    def test_store_skips_write_and_counts_when_lock_held(self,
                                                         tmp_path):
        """A wedged lock holder costs a best-effort write, never the
        sweep: ``store`` gives up, counts ``lock_timeouts``, and
        leaves no temp droppings behind."""
        cache = RunCache(str(tmp_path), lock_timeout=0.3)
        with file_lock(lock_path_for(str(tmp_path))):
            cache.store(_key(), result="unwritable")
        assert cache.lock_timeouts == 1
        assert len(cache) == 0
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if ".tmp." in name]
        assert leftovers == []

    def test_lock_is_released_after_timeout_path(self, tmp_path):
        lock = lock_path_for(str(tmp_path))
        with file_lock(lock):
            with pytest.raises(LockTimeout):
                with file_lock(lock, timeout=0.2):
                    pass
        # The outer lock exited cleanly; a fresh acquire succeeds fast.
        with file_lock(lock, timeout=1.0):
            pass


# -- exactly-once quarantine under concurrency --------------------------------


def _quarantine_worker(root: str, barrier, queue) -> None:
    cache = RunCache(root)
    barrier.wait()
    result = cache.load(_key())
    queue.put((cache.corrupt_quarantined, result is None))


@pytest.mark.slow
class TestConcurrentQuarantine:
    def test_corrupt_entry_quarantined_exactly_once(self, tmp_path):
        """Many processes loading the same corrupt entry at once:
        ``os.replace`` picks exactly one winner, so the quarantine is
        counted once fleet-wide and the bad bytes survive for
        postmortem — never N counts, never zero."""
        root = str(tmp_path)
        cache = RunCache(root)
        path = cache.path_for(_key())
        os.makedirs(root, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle at all")
        procs = 6
        barrier = _mp.Barrier(procs)
        queue = _mp.Queue()
        workers = [_mp.Process(target=_quarantine_worker,
                               args=(root, barrier, queue))
                   for _ in range(procs)]
        for worker in workers:
            worker.start()
        outcomes = [queue.get(timeout=60) for _ in range(procs)]
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        assert all(was_miss for _, was_miss in outcomes)
        assert sum(count for count, _ in outcomes) == 1
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        # Post-quarantine loads are plain misses, not repeat failures.
        fresh = RunCache(root)
        assert fresh.load(_key()) is None
        assert fresh.corrupt_quarantined == 0

    def test_truncated_pickle_quarantines_too(self, tmp_path):
        """A torn write (valid prefix, truncated tail) takes the same
        quarantine path as outright garbage."""
        root = str(tmp_path)
        cache = RunCache(root)
        path = cache.path_for(_key())
        os.makedirs(root, exist_ok=True)
        payload = pickle.dumps({"format": 999, "result": object},
                               protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        assert cache.load(_key()) is None
        assert cache.corrupt_quarantined == 1
