"""Unit tests for the duplication-policy helpers."""

from repro.common.types import (
    Orientation,
    line_words,
    make_line_id,
)
from repro.cache.duplication import (
    check_duplication_invariant,
    copies_of_word,
    dirty_at_intersection,
    dirty_intersecting_lines,
    duplicate_pairs,
    present_intersecting_lines,
)


def row(tile, idx):
    return make_line_id(tile, Orientation.ROW, idx)


def col(tile, idx):
    return make_line_id(tile, Orientation.COLUMN, idx)


class TestCopies:
    def test_both_copies_found(self):
        frames = {row(0, 2): 0, col(0, 5): 0}
        word = line_words(row(0, 2))[5]
        assert set(copies_of_word(frames, row(0, 2), word)) == \
            {row(0, 2), col(0, 5)}

    def test_single_copy(self):
        frames = {row(0, 2): 0}
        word = line_words(row(0, 2))[5]
        assert copies_of_word(frames, row(0, 2), word) == [row(0, 2)]

    def test_no_copy(self):
        word = line_words(row(0, 2))[5]
        assert copies_of_word({}, row(0, 2), word) == []


class TestDirtyIntersections:
    def test_dirty_at_crossing_detected(self):
        # Column 5 is dirty at its row-2 crossing (bit 2 of its mask).
        frames = {col(0, 5): 0b100}
        assert dirty_at_intersection(frames, row(0, 2), col(0, 5))

    def test_clean_at_crossing(self):
        # Column 5 dirty somewhere else (row 3).
        frames = {col(0, 5): 0b1000}
        assert not dirty_at_intersection(frames, row(0, 2), col(0, 5))

    def test_absent_line_is_not_dirty(self):
        assert not dirty_at_intersection({}, row(0, 2), col(0, 5))

    def test_dirty_intersecting_lines_enumerates(self):
        frames = {col(0, 1): 0b100, col(0, 4): 0b1000, col(0, 6): 0b100}
        dirty = set(dirty_intersecting_lines(frames, row(0, 2)))
        assert dirty == {col(0, 1), col(0, 6)}

    def test_present_intersecting_lines(self):
        frames = {col(0, 1): 0, col(0, 7): 0, row(0, 3): 0,
                  col(1, 1): 0}
        present = present_intersecting_lines(frames, row(0, 2))
        assert set(present) == {col(0, 1), col(0, 7)}


class TestInvariantChecker:
    def test_clean_duplication_ok(self):
        frames = {row(0, 2): 0, col(0, 5): 0}
        assert check_duplication_invariant(frames) == []

    def test_dirty_word_with_present_intersection_flagged(self):
        frames = {row(0, 2): 0b100000, col(0, 5): 0}
        violations = check_duplication_invariant(frames)
        assert len(violations) == 1

    def test_dirty_word_without_intersection_ok(self):
        frames = {row(0, 2): 0b100000}
        assert check_duplication_invariant(frames) == []

    def test_duplicate_pairs_counts_each_crossing_once(self):
        frames = {row(0, 2): 0, col(0, 5): 0, col(0, 6): 0}
        pairs = duplicate_pairs(frames)
        assert len(pairs) == 2
        assert all(pair[0] == row(0, 2) for pair in pairs)
