"""Sharded trace execution (PR-6 acceptance).

Covers :class:`repro.common.types.ShardPlan` (deterministic
window-aligned epoch boundaries, byte round-trips), the ``shard=``
epoch slice of :func:`repro.core.simulator.run_simulation`,
deterministic merging (:func:`repro.core.simulator.merge_run_results`),
and — regardless of the host's core count — bit-identity between a
pool-executed and a serially-executed sharded run through
:meth:`ExperimentRunner.prefetch` with forced ``jobs=2``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.errors import ValidationFailed
from repro.common.types import WINDOW_ALIGN, ShardPlan
from repro.core.simulator import merge_run_results, run_simulation
from repro.core.system import make_system
from repro.experiments.plans import apply_shards
from repro.experiments.runner import (
    ExperimentRunner,
    RunKey,
    cache_key,
    shard_plan_for,
    simulate_run_key,
)
from repro.service.protocol import parse_request, request_payload

try:
    from hypothesis import given, settings
    from hypothesis import strategies as some
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the env
    HAVE_HYPOTHESIS = False


def _key(shards=1, sample_every=0, workload="sgemm"):
    return RunKey("1P2L", workload, "small", 1.0, False, "default",
                  sample_every, (), shards)


class TestShardPlan:
    def test_single_shard_is_whole_trace(self):
        plan = ShardPlan.plan(9999, 1)
        assert plan.bounds == (0, 9999)
        assert plan.shards == 1

    def test_two_shards_cut_at_alignment(self):
        plan = ShardPlan.plan(9216, 2)
        assert plan.bounds == (0, 4096, 9216)
        assert list(plan.slices()) == [(0, 4096), (4096, 9216)]

    def test_short_trace_collapses(self):
        # No aligned interior cut fits: fewer epochs than requested,
        # never an empty one.
        assert ShardPlan.plan(4096, 2).bounds == (0, 4096)
        assert ShardPlan.plan(17, 8).bounds == (0, 17)

    def test_empty_trace(self):
        plan = ShardPlan.plan(0, 4)
        assert plan.bounds == (0, 0)
        assert plan.shards == 1

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match=">= 1"):
            ShardPlan.plan(100, 0)

    def test_rejects_unaligned_interior_bound(self):
        with pytest.raises(ValueError, match="not aligned"):
            ShardPlan(9216, (0, 4100, 9216))

    def test_rejects_non_monotone_bounds(self):
        with pytest.raises(ValueError, match="not increasing"):
            ShardPlan(8192, (0, 4096, 4096, 8192))

    def test_bytes_round_trip(self):
        plan = ShardPlan.plan(3 * WINDOW_ALIGN + 5, 3)
        assert ShardPlan.from_bytes(plan.to_bytes()) == plan

    def test_from_bytes_rejects_short_payload(self):
        with pytest.raises(ValueError, match="too short"):
            ShardPlan.from_bytes(b"\x00" * 16)

    if HAVE_HYPOTHESIS:
        @settings(max_examples=200, deadline=None)
        @given(total=some.integers(min_value=0, max_value=40 * 4096),
               shards=some.integers(min_value=1, max_value=64))
        def test_plan_invariants_and_round_trip(self, total, shards):
            plan = ShardPlan.plan(total, shards)
            assert plan.bounds[0] == 0
            assert plan.bounds[-1] == total
            assert 1 <= plan.shards <= max(1, shards)
            for prev, nxt in zip(plan.bounds, plan.bounds[1:]):
                assert prev < nxt or total == 0
            for bound in plan.bounds[1:-1]:
                assert bound % WINDOW_ALIGN == 0
            # Boundaries are a pure function of (total, shards).
            assert ShardPlan.plan(total, shards) == plan
            assert ShardPlan.from_bytes(plan.to_bytes()) == plan


class TestRunSimulationShard:
    def test_rejects_program_runs(self):
        from repro.workloads.registry import build_workload
        with pytest.raises(ValueError, match="registry workload"):
            run_simulation(make_system("1P2L", 1.0),
                           program=build_workload("sobel", "small"),
                           shard=(0, 2))

    def test_rejects_sampling(self):
        with pytest.raises(ValueError, match="sampl"):
            run_simulation(make_system("1P2L", 1.0), workload="sobel",
                           size="small", sample_every=64, shard=(0, 2))

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError, match="out of range"):
            run_simulation(make_system("1P2L", 1.0), workload="sobel",
                           size="small", shard=(7, 2))

    def test_epochs_are_deterministic(self):
        system = make_system("1P2L", 1.0)
        first = run_simulation(system, workload="sgemm", size="small",
                               shard=(0, 2))
        again = run_simulation(system, workload="sgemm", size="small",
                               shard=(0, 2))
        assert first.cycles == again.cycles
        assert first.stats.flat() == again.stats.flat()


class TestMerge:
    def test_empty_refuses(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_run_results([])

    def test_single_part_passthrough(self):
        result = run_simulation(make_system("1P2L", 1.0),
                                workload="sobel", size="small")
        assert merge_run_results([result]) is result

    def test_samples_refuse_to_merge(self):
        system = make_system("1P2L", 1.0)
        sampled = run_simulation(system, workload="sobel",
                                 size="small", sample_every=64)
        assert sampled.samples
        with pytest.raises(ValueError, match="samples"):
            merge_run_results([sampled, sampled])

    def test_merge_sums_counters_and_cycles(self):
        system = make_system("1P2L", 1.0)
        parts = [run_simulation(system, workload="sgemm",
                                size="small", shard=(i, 2))
                 for i in range(2)]
        assert len(parts) == 2
        merged = merge_run_results(parts)
        assert merged.cycles == sum(p.cycles for p in parts)
        assert merged.ops == sum(p.ops for p in parts)
        flat = merged.stats.flat()
        for cell in parts[0].stats.flat():
            assert flat[cell] == sum(p.stats.flat().get(cell, 0)
                                     for p in parts)


class TestSimulateRunKey:
    def test_shards_1_is_classic_replay(self):
        classic = simulate_run_key(_key(shards=1))
        unsharded = run_simulation(make_system("1P2L", 1.0),
                                   workload="sgemm", size="small")
        assert classic.cycles == unsharded.cycles
        assert classic.stats.flat() == unsharded.stats.flat()

    def test_sharded_serial_replay_merges_epochs(self):
        key = _key(shards=2)
        plan = shard_plan_for(key)
        assert plan.shards == 2, "sgemm small must split into 2 epochs"
        merged = simulate_run_key(key)
        reference = merge_run_results(
            [run_simulation(make_system("1P2L", 1.0), workload="sgemm",
                            size="small", shard=(i, 2))
             for i in range(2)])
        assert merged.cycles == reference.cycles
        assert merged.stats.flat() == reference.stats.flat()

    def test_rejects_sampling_with_shards(self):
        with pytest.raises(ValueError, match="mutually"):
            simulate_run_key(_key(shards=2, sample_every=64))


class TestPoolMergeDeterminism:
    def test_pool_matches_serial_with_forced_two_jobs(self):
        """Pool-executed epochs merge bit-identically to serial.

        Forces a 2-worker pool regardless of the host's core count, so
        the cross-process merge path is exercised even on single-core
        CI runners (where the bench's sharded-speedup measurement is
        skipped).
        """
        key = _key(shards=2)
        serial = simulate_run_key(key)
        runner = ExperimentRunner(jobs=2, shards=2)
        simulated = runner.prefetch([key], jobs=2)
        assert simulated == 1
        # run() inherits the runner's shard default, so the re-derived
        # key lands on the prefetched memo entry (no re-simulation).
        pooled = runner.run(key.design, key.workload, key.size,
                            key.llc_mb, key.resident, key.memory,
                            key.sample_every)
        assert runner.cache_info().memory_hits == 1
        assert pooled.cycles == serial.cycles
        assert pooled.ops == serial.ops
        assert pooled.stats.flat() == serial.stats.flat()


class TestRunnerWiring:
    def test_apply_shards_skips_sampled_keys(self):
        keys = [_key(), _key(sample_every=64)]
        sharded = apply_shards(keys, 4)
        assert sharded[0].shards == 4
        assert sharded[1].shards == 1
        # shards=1 is the identity transform.
        assert apply_shards(keys, 1) == keys

    def test_runner_default_shards_built_into_keys(self):
        runner = ExperimentRunner(shards=2)
        assert runner._shards == 2

    def test_cache_key_shard_compatibility(self):
        # Unsharded keys hash exactly as before the field existed;
        # sharded keys get their own entries.
        base = _key(shards=1)
        assert cache_key(base) == cache_key(dataclasses.replace(
            base, shards=1))
        assert cache_key(base) != cache_key(_key(shards=2))
        assert cache_key(_key(shards=2)) != cache_key(_key(shards=3))


class TestProtocolShards:
    def _payload(self, **extra):
        body = {"design": "1P2L", "workload": "sobel", "size": "small"}
        body.update(extra)
        return body

    def test_shards_parse_into_key(self):
        request = parse_request(self._payload(shards=4))
        assert request.key.shards == 4

    def test_shards_default_to_one(self):
        request = parse_request(self._payload())
        assert request.key.shards == 1

    @pytest.mark.parametrize("bad", [0, -1, 65, 1.5, True, "2"])
    def test_rejects_bad_shards(self, bad):
        with pytest.raises(ValidationFailed, match="shards"):
            parse_request(self._payload(shards=bad))

    def test_rejects_shards_with_sampling(self):
        with pytest.raises(ValidationFailed, match="mutually"):
            parse_request(self._payload(shards=2, sample_every=64))

    def test_request_payload_elides_default(self):
        assert "shards" not in request_payload(_key(shards=1))
        assert request_payload(_key(shards=2))["shards"] == 2

    def test_payload_round_trip(self):
        key = _key(shards=2, workload="sobel")
        assert parse_request(request_payload(key)).key == key
