"""Tests for the multiprogrammed simulation mode."""

import pytest

from repro.common.config import MemoryConfig
from repro.common.errors import ConfigError
from repro.core.multicore import (
    as_run_result,
    run_multiprogrammed,
)
from repro.core.simulator import run_simulation
from repro.core.system import make_resident_system, make_system
from repro.workloads.registry import build_workload


def programs(*names, size="small"):
    return [build_workload(name, size) for name in names]


class TestBasics:
    def test_two_cores_produce_per_core_results(self):
        result = run_multiprogrammed(make_system("1P2L"),
                                     programs("sobel", "htap1"))
        assert len(result.cores) == 2
        assert {c.workload for c in result.cores} == {"sobel", "htap1"}
        assert result.makespan == max(c.cycles for c in result.cores)
        assert result.throughput_weighted_cycles >= result.makespan

    def test_single_program_close_to_single_core_run(self):
        """With one core, the multiprogrammed path reduces to the
        plain simulator (same hierarchy shape, same trace)."""
        solo = run_simulation(make_system("1P2L"), workload="sobel",
                              size="small")
        multi = run_multiprogrammed(make_system("1P2L"),
                                    programs("sobel"))
        # Not exactly equal (end-of-run drain accounting differs), but
        # within a few percent.
        assert multi.cores[0].cycles == pytest.approx(solo.cycles,
                                                      rel=0.05)

    def test_private_stats_namespaced(self):
        result = run_multiprogrammed(make_system("1P2L"),
                                     programs("sobel", "htap1"))
        assert "cache.c0.L1" in result.stats
        assert "cache.c1.L1" in result.stats
        assert "cache.L3" in result.stats  # shared LLC keeps its name

    def test_address_spaces_disjoint(self):
        """Co-running two copies of one kernel must not share lines:
        combined memory traffic is roughly double a solo run's."""
        solo = run_simulation(make_system("1P1L"), workload="sobel",
                              size="small")
        pair = run_multiprogrammed(make_system("1P1L"),
                                   programs("sobel", "sobel"))
        assert pair.memory_bytes() >= 1.5 * solo.memory_bytes()

    def test_rejects_empty_program_list(self):
        with pytest.raises(ConfigError):
            run_multiprogrammed(make_system("1P2L"), [])

    def test_rejects_single_level_system(self):
        from repro.common.config import SystemConfig
        from tests.conftest import small_config
        single = SystemConfig(levels=[small_config()])
        with pytest.raises(ConfigError):
            run_multiprogrammed(single, programs("sobel"))


class TestInterference:
    def test_colocation_slows_each_core(self):
        solo = run_simulation(make_system("1P1L"), workload="htap1",
                              size="small")
        pair = run_multiprogrammed(make_system("1P1L"),
                                   programs("htap1", "htap1"))
        for core in pair.cores:
            assert core.cycles >= solo.cycles * 0.9

    def test_mda_benefit_survives_colocation(self):
        base = run_multiprogrammed(make_system("1P1L"),
                                   programs("sobel", "htap1"))
        mda = run_multiprogrammed(make_system("1P2L"),
                                  programs("sobel", "htap1"))
        assert mda.makespan < base.makespan

    def test_sub_buffers_help_multiprogrammed_baseline(self):
        """The paper's Section IX-B expectation."""
        progs = programs("sobel", "htap2")
        one = run_multiprogrammed(make_system("1P1L"), progs)
        progs = programs("sobel", "htap2")
        four = run_multiprogrammed(
            make_system("1P1L", memory=MemoryConfig(sub_buffers=4)),
            progs)
        assert four.makespan < one.makespan

    def test_three_cores_supported(self):
        result = run_multiprogrammed(
            make_system("1P2L"),
            programs("sobel", "htap1", "htap2"))
        assert len(result.cores) == 3

    def test_resident_two_level_system_works(self):
        result = run_multiprogrammed(make_resident_system("1P2L"),
                                     programs("sobel", "htap1"))
        assert result.makespan > 0


class TestAsRunResult:
    def test_view_fields(self):
        result = run_multiprogrammed(make_system("1P2L"),
                                     programs("sobel", "htap1"))
        view = as_run_result(result)
        assert view.workload == "sobel+htap1"
        assert view.cycles == result.makespan
        assert view.memory_bytes() == result.memory_bytes()
