"""Tests for the multiprogrammed simulation mode."""

import pytest

from repro.common.config import MemoryConfig
from repro.common.errors import ConfigError
from repro.core.multicore import (
    as_run_result,
    run_multiprogrammed,
)
from repro.core.simulator import run_simulation
from repro.core.system import make_resident_system, make_system
from repro.workloads.registry import build_workload


def programs(*names, size="small"):
    return [build_workload(name, size) for name in names]


class TestBasics:
    def test_two_cores_produce_per_core_results(self):
        result = run_multiprogrammed(make_system("1P2L"),
                                     programs("sobel", "htap1"))
        assert len(result.cores) == 2
        assert {c.workload for c in result.cores} == {"sobel", "htap1"}
        assert result.makespan == max(c.cycles for c in result.cores)
        assert result.throughput_weighted_cycles >= result.makespan

    def test_single_program_close_to_single_core_run(self):
        """With one core, the multiprogrammed path reduces to the
        plain simulator (same hierarchy shape, same trace)."""
        solo = run_simulation(make_system("1P2L"), workload="sobel",
                              size="small")
        multi = run_multiprogrammed(make_system("1P2L"),
                                    programs("sobel"))
        # Not exactly equal (end-of-run drain accounting differs), but
        # within a few percent.
        assert multi.cores[0].cycles == pytest.approx(solo.cycles,
                                                      rel=0.05)

    def test_private_stats_namespaced(self):
        result = run_multiprogrammed(make_system("1P2L"),
                                     programs("sobel", "htap1"))
        assert "cache.c0.L1" in result.stats
        assert "cache.c1.L1" in result.stats
        assert "cache.L3" in result.stats  # shared LLC keeps its name

    def test_address_spaces_disjoint(self):
        """Co-running two copies of one kernel must not share lines:
        combined memory traffic is roughly double a solo run's."""
        solo = run_simulation(make_system("1P1L"), workload="sobel",
                              size="small")
        pair = run_multiprogrammed(make_system("1P1L"),
                                   programs("sobel", "sobel"))
        assert pair.memory_bytes() >= 1.5 * solo.memory_bytes()

    def test_rejects_empty_program_list(self):
        with pytest.raises(ConfigError):
            run_multiprogrammed(make_system("1P2L"), [])

    def test_rejects_single_level_system(self):
        from repro.common.config import SystemConfig
        from tests.conftest import small_config
        single = SystemConfig(levels=[small_config()])
        with pytest.raises(ConfigError):
            run_multiprogrammed(single, programs("sobel"))


class TestInterference:
    def test_colocation_slows_each_core(self):
        solo = run_simulation(make_system("1P1L"), workload="htap1",
                              size="small")
        pair = run_multiprogrammed(make_system("1P1L"),
                                   programs("htap1", "htap1"))
        for core in pair.cores:
            assert core.cycles >= solo.cycles * 0.9

    def test_mda_benefit_survives_colocation(self):
        base = run_multiprogrammed(make_system("1P1L"),
                                   programs("sobel", "htap1"))
        mda = run_multiprogrammed(make_system("1P2L"),
                                  programs("sobel", "htap1"))
        assert mda.makespan < base.makespan

    def test_sub_buffers_help_multiprogrammed_baseline(self):
        """The paper's Section IX-B expectation."""
        progs = programs("sobel", "htap2")
        one = run_multiprogrammed(make_system("1P1L"), progs)
        progs = programs("sobel", "htap2")
        four = run_multiprogrammed(
            make_system("1P1L", memory=MemoryConfig(sub_buffers=4)),
            progs)
        assert four.makespan < one.makespan

    def test_three_cores_supported(self):
        result = run_multiprogrammed(
            make_system("1P2L"),
            programs("sobel", "htap1", "htap2"))
        assert len(result.cores) == 3

    def test_resident_two_level_system_works(self):
        result = run_multiprogrammed(make_resident_system("1P2L"),
                                     programs("sobel", "htap1"))
        assert result.makespan > 0


class TestEdgeCases:
    def test_deterministic_across_runs(self):
        """The interleave is clock-ordered, not wall-clock-ordered, so
        two identical runs must agree counter for counter."""
        first = run_multiprogrammed(make_system("1P2L"),
                                    programs("sobel", "htap1"))
        second = run_multiprogrammed(make_system("1P2L"),
                                     programs("sobel", "htap1"))
        assert first.makespan == second.makespan
        assert first.stats.flat() == second.stats.flat()

    def test_core_indices_are_stable(self):
        result = run_multiprogrammed(
            make_system("1P2L"), programs("sobel", "htap1", "htap2"))
        assert [c.core for c in result.cores] == [0, 1, 2]
        assert [c.workload for c in result.cores] == \
            ["sobel", "htap1", "htap2"]

    def test_l1_hit_rates_are_probabilities(self):
        result = run_multiprogrammed(make_system("1P2L"),
                                     programs("sobel", "htap1"))
        for core in result.cores:
            assert 0.0 <= core.l1_hit_rate <= 1.0
            assert core.ops > 0
            assert core.cycles > 0

    def test_offset_trace_relocates_whole_tiles(self):
        from repro.common.types import AccessWidth, Orientation, Request
        from repro.core.multicore import _offset_trace
        reqs = [Request(17, Orientation.ROW, AccessWidth.SCALAR,
                        False, 3),
                Request(600, Orientation.COLUMN, AccessWidth.VECTOR,
                        True, 4)]
        moved = list(_offset_trace(iter(reqs), base_tile=5))
        assert [r.addr for r in moved] == [17 + 5 * 512, 600 + 5 * 512]
        # Everything but the address is preserved.
        for before, after in zip(reqs, moved):
            assert after.orientation is before.orientation
            assert after.width is before.width
            assert after.is_write == before.is_write
            assert after.ref_id == before.ref_id

    def test_identical_programs_get_disjoint_footprints(self):
        """Two copies of a program must not hit in each other's lines:
        each core's L1 sees only its own demand stream."""
        result = run_multiprogrammed(make_system("1P2L"),
                                     programs("sobel", "sobel"))
        a = result.stats.group("cache.c0.L1")
        b = result.stats.group("cache.c1.L1")
        assert a.get("demand_accesses") == b.get("demand_accesses")
        assert a.get("hits") == b.get("hits")


class TestAsRunResult:
    def test_view_fields(self):
        result = run_multiprogrammed(make_system("1P2L"),
                                     programs("sobel", "htap1"))
        view = as_run_result(result)
        assert view.workload == "sobel+htap1"
        assert view.cycles == result.makespan
        assert view.memory_bytes() == result.memory_bytes()
