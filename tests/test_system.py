"""Unit tests for the design-point system builders."""

import pytest

from repro.common.errors import ConfigError
from repro.core.system import (
    DESIGN_NAMES,
    LLC_SIZES,
    llc_bytes,
    make_resident_system,
    make_system,
)


class TestMakeSystem:
    def test_baseline_is_1p1l_with_prefetch(self):
        system = make_system("1P1L")
        assert [lvl.taxonomy for lvl in system.levels] == \
            ["1P1L", "1P1L", "1P1L"]
        # Prefetcher sits at the LLC, trained on the miss stream.
        assert system.llc.prefetcher.enabled
        assert not system.levels[0].prefetcher.enabled

    def test_design1_is_uniform_1p2l(self):
        system = make_system("1P2L")
        assert [lvl.taxonomy for lvl in system.levels] == \
            ["1P2L", "1P2L", "1P2L"]
        assert all(lvl.mapping == "different_set"
                   for lvl in system.levels)
        assert not system.levels[0].prefetcher.enabled

    def test_same_set_variant(self):
        system = make_system("1P2L_SameSet")
        assert all(lvl.mapping == "same_set" for lvl in system.levels)

    def test_design2_llc_is_sparse_2p2l(self):
        system = make_system("2P2L")
        assert system.llc.taxonomy == "2P2L"
        assert system.llc.sparse_fill
        assert system.levels[0].taxonomy == "1P2L"

    def test_dense_variant(self):
        assert not make_system("2P2L_Dense").llc.sparse_fill

    def test_slow_write_variant(self):
        assert make_system("2P2L_SlowWrite").llc.write_extra_latency == 20

    def test_design3_extension_all_2p2l(self):
        system = make_system("2P2L_L1")
        assert [lvl.taxonomy for lvl in system.levels] == \
            ["2P2L", "2P2L", "2P2L"]

    def test_llc_capacity_points(self):
        for mb, size in LLC_SIZES.items():
            assert make_system("1P2L", mb).llc.size_bytes == size
        assert llc_bytes(1.5) == 24 * 1024

    def test_unknown_design_raises(self):
        with pytest.raises(ConfigError):
            make_system("4P4L")

    def test_unknown_llc_point_raises(self):
        with pytest.raises(ConfigError):
            make_system("1P2L", llc_mb=3.0)

    def test_all_declared_designs_build(self):
        for name in DESIGN_NAMES:
            make_system(name)


class TestResidentSystem:
    def test_two_levels_only(self):
        system = make_resident_system("1P2L")
        assert len(system.levels) == 2
        assert system.llc.name == "L2"
        assert system.llc.size_bytes == 32 * 1024

    def test_baseline_resident_keeps_prefetch(self):
        system = make_resident_system("1P1L")
        assert system.llc.prefetcher.enabled

    def test_2p2l_resident(self):
        system = make_resident_system("2P2L")
        assert system.llc.taxonomy == "2P2L"

    def test_unknown_design_raises(self):
        with pytest.raises(ConfigError):
            make_resident_system("2P2L_L1")
