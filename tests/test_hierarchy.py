"""Unit tests for hierarchy assembly and plumbing."""

import pytest

from repro.common.config import MemoryConfig, SystemConfig
from repro.common.errors import ConfigError
from repro.common.stats import StatRegistry
from repro.common.types import AccessWidth, Orientation, Request
from repro.cache.cache_1p1l import Cache1P1L
from repro.cache.cache_1p2l import Cache1P2L
from repro.cache.cache_2p2l import Cache2P2L
from repro.cache.hierarchy import CacheHierarchy, build_cache_level
from tests.conftest import small_config


class TestFactory:
    def test_taxonomy_dispatch(self):
        stats = StatRegistry()
        assert isinstance(build_cache_level(small_config(), 1, stats),
                          Cache1P1L)
        assert isinstance(
            build_cache_level(small_config(logical_dims=2), 1, stats),
            Cache1P2L)
        assert isinstance(
            build_cache_level(small_config(size_kb=4, assoc=2,
                                           logical_dims=2,
                                           physical_dims=2), 1, stats),
            Cache2P2L)


def two_level_system(logical_dims=2):
    return SystemConfig(
        levels=[small_config("L1", logical_dims=logical_dims),
                small_config("L2", size_kb=4,
                             logical_dims=logical_dims)],
        memory=MemoryConfig())


class TestHierarchy:
    def test_levels_connected_in_order(self):
        stats = StatRegistry()
        hierarchy = CacheHierarchy(two_level_system(), stats)
        assert hierarchy.l1.config.name == "L1"
        assert hierarchy.llc.config.name == "L2"
        assert hierarchy.l1.level_index == 1
        assert hierarchy.llc.level_index == 2

    def test_level_lookup_by_name(self):
        hierarchy = CacheHierarchy(two_level_system(), StatRegistry())
        assert hierarchy.level("L2").config.name == "L2"
        with pytest.raises(ConfigError):
            hierarchy.level("L9")

    def test_miss_propagates_to_memory(self):
        stats = StatRegistry()
        hierarchy = CacheHierarchy(two_level_system(), stats)
        req = Request(0, Orientation.ROW, AccessWidth.VECTOR, False)
        result = hierarchy.access(req, 0)
        assert result.hit_level == 0
        assert stats.group("memory").get("line_reads") == 1
        # Fill allocated at both levels.
        assert stats.group("cache.L1").get("fills") == 1
        assert stats.group("cache.L2").get("fills") == 1

    def test_second_access_hits_l1(self):
        hierarchy = CacheHierarchy(two_level_system(), StatRegistry())
        req = Request(0, Orientation.ROW, AccessWidth.VECTOR, False)
        hierarchy.access(req, 0)
        result = hierarchy.access(req, 100_000)
        assert result.hit_level == 1

    def test_l2_hit_after_l1_eviction(self):
        stats = StatRegistry()
        # 1-D hierarchy: consecutive lines index sets round-robin.
        hierarchy = CacheHierarchy(two_level_system(logical_dims=1),
                                   stats)
        # L1 is 1KB/4-way (16 lines); stream 16 more consecutive lines
        # to evict line 0, which stays in the 4KB L2.
        hierarchy.access(Request(0, Orientation.ROW, AccessWidth.VECTOR,
                                 False), 0)
        for k in range(1, 17):
            hierarchy.access(Request(k * 64, Orientation.ROW,
                                     AccessWidth.VECTOR, False),
                             k * 100_000)
        result = hierarchy.access(
            Request(0, Orientation.ROW, AccessWidth.VECTOR, False),
            10_000_000)
        assert result.hit_level == 2

    def test_occupancy_by_level(self):
        hierarchy = CacheHierarchy(two_level_system(), StatRegistry())
        hierarchy.access(Request(0, Orientation.COLUMN,
                                 AccessWidth.VECTOR, False), 0)
        occ = hierarchy.occupancy_by_level()
        assert occ["L1"] == (0, 1)
        assert occ["L2"] == (0, 1)

    def test_flush_drains_dirty_data_to_memory(self):
        stats = StatRegistry()
        hierarchy = CacheHierarchy(two_level_system(), stats)
        hierarchy.access(Request(0, Orientation.ROW, AccessWidth.VECTOR,
                                 True), 0)
        hierarchy.flush(100_000)
        assert stats.group("memory").get("line_writes") >= 1
        assert hierarchy.occupancy_by_level()["L1"] == (0, 0)

    def test_finish_returns_horizon(self):
        hierarchy = CacheHierarchy(two_level_system(), StatRegistry())
        assert hierarchy.finish(123) == 123
