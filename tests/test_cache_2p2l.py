"""Unit tests for the 2P2L cache: 2-D blocks, sparse/dense fill."""

import pytest

from repro.common.errors import SimulationError
from repro.common.stats import StatRegistry
from repro.common.types import (
    AccessWidth,
    Orientation,
    Request,
    make_line_id,
    word_addr,
)
from repro.cache.base import FULL_MASK
from repro.cache.cache_2p2l import Cache2P2L
from tests.conftest import FakeLower, small_config


def make_cache(sparse=True, size_kb=4, assoc=2, lower=None):
    stats = StatRegistry()
    cfg = small_config(name="L3", size_kb=size_kb, assoc=assoc,
                       logical_dims=2, physical_dims=2,
                       sparse_fill=sparse)
    cache = Cache2P2L(cfg, 3, stats)
    lower = lower or FakeLower()
    cache.connect(lower)
    return cache, lower, stats


def row(tile, idx):
    return make_line_id(tile, Orientation.ROW, idx)


def col(tile, idx):
    return make_line_id(tile, Orientation.COLUMN, idx)


SETTLE = 100_000


class TestConstruction:
    def test_rejects_non_2p2l_config(self):
        with pytest.raises(SimulationError):
            Cache2P2L(small_config(logical_dims=2), 3, StatRegistry())


class TestSparseFill:
    def test_sparse_fill_fetches_single_line(self):
        cache, lower, _ = make_cache(sparse=True)
        cache.fetch_line(row(0, 2), 0, AccessWidth.VECTOR)
        assert lower.fetched_lines() == [row(0, 2)]
        state = cache.block_state(0)
        assert state.rows_present == 0b100
        assert state.cols_present == 0

    def test_line_hit_after_fill(self):
        cache, lower, _ = make_cache()
        cache.fetch_line(row(0, 2), 0, AccessWidth.VECTOR)
        _, level = cache.fetch_line(row(0, 2), SETTLE, AccessWidth.VECTOR)
        assert level == 3
        assert len(lower.fetches) == 1

    def test_partial_block_perpendicular_miss(self):
        cache, lower, stats = make_cache()
        cache.fetch_line(row(0, 2), 0, AccessWidth.VECTOR)
        _, level = cache.fetch_line(col(0, 1), SETTLE, AccessWidth.VECTOR)
        assert level == 0  # one crossing word is not a line
        assert stats.group("cache.L3").get("partial_block_hits") == 1

    def test_cross_direction_hit_when_fully_present(self):
        """With all 8 rows resident the crosspoint array can stream any
        column without a fill."""
        cache, lower, stats = make_cache()
        for r in range(8):
            cache.fetch_line(row(0, r), r * SETTLE, AccessWidth.VECTOR)
        _, level = cache.fetch_line(col(0, 5), 10 * SETTLE,
                                    AccessWidth.VECTOR)
        assert level == 3
        assert len(lower.fetches) == 8
        assert stats.group("cache.L3").get("cross_direction_hits") == 1


class TestDenseFill:
    def test_dense_fill_streams_whole_block(self):
        cache, lower, stats = make_cache(sparse=False)
        cache.fetch_line(row(0, 2), 0, AccessWidth.VECTOR)
        assert len(lower.fetches) == 8
        state = cache.block_state(0)
        assert state.rows_present == FULL_MASK
        assert state.cols_present == FULL_MASK
        assert stats.group("cache.L3").get("dense_fill_lines") == 7

    def test_dense_block_serves_both_orientations(self):
        cache, lower, _ = make_cache(sparse=False)
        cache.fetch_line(row(0, 2), 0, AccessWidth.VECTOR)
        _, level = cache.fetch_line(col(0, 6), SETTLE, AccessWidth.VECTOR)
        assert level == 3
        assert len(lower.fetches) == 8


class TestWritebacks:
    def test_incoming_writeback_marks_dirty(self):
        cache, _, _ = make_cache()
        cache.writeback_line(row(0, 1), FULL_MASK, 0)
        state = cache.block_state(0)
        assert state.rows_dirty == 0b10
        assert state.rows_present == 0b10

    def test_sparse_writeback_miss_allocates_without_fetch(self):
        cache, lower, _ = make_cache(sparse=True)
        cache.writeback_line(row(0, 1), FULL_MASK, 0)
        assert lower.fetches == []

    def test_dense_writeback_miss_fetches_rest_of_block(self):
        """The costly case sparse fill exists to avoid (paper IV-C)."""
        cache, lower, _ = make_cache(sparse=False)
        cache.writeback_line(row(0, 1), FULL_MASK, 0)
        assert len(lower.fetches) == 7  # the other seven lines

    def test_eviction_writes_back_only_dirty_lines(self):
        cache, lower, _ = make_cache(size_kb=4, assoc=2)
        sets = cache.config.num_sets
        cache.writeback_line(row(0, 1), FULL_MASK, 0)
        cache.fetch_line(row(0 + sets, 0), SETTLE, AccessWidth.VECTOR)
        # Force eviction of tile 0 by filling its set.
        cache.fetch_line(row(0 + 2 * sets, 0), 2 * SETTLE,
                         AccessWidth.VECTOR)
        assert lower.written_lines() == [row(0, 1)]

    def test_never_filled_lines_elide_writeback(self):
        """Sparse blocks write back only what was filled and dirtied."""
        cache, lower, _ = make_cache()
        cache.writeback_line(row(0, 1), FULL_MASK, 0)
        cache.fetch_line(row(0, 3), SETTLE, AccessWidth.VECTOR)  # clean
        cache.flush(2 * SETTLE)
        assert lower.written_lines() == [row(0, 1)]


class TestCpuFacing:
    def test_scalar_hit_via_perpendicular_coverage(self):
        """A word is covered if either its row or column is present."""
        cache, lower, _ = make_cache()
        cache.fetch_line(row(0, 2), 0, AccessWidth.VECTOR)
        addr = word_addr(0, 2, 5)  # in row 2
        result = cache.access(
            Request(addr, Orientation.COLUMN, AccessWidth.SCALAR, False),
            SETTLE)
        assert result.hit_level == 3
        assert len(lower.fetches) == 1

    def test_scalar_write_dirties_covering_line(self):
        cache, _, _ = make_cache()
        cache.fetch_line(row(0, 2), 0, AccessWidth.VECTOR)
        addr = word_addr(0, 2, 5)
        cache.access(Request(addr, Orientation.COLUMN,
                             AccessWidth.SCALAR, True), SETTLE)
        state = cache.block_state(0)
        assert state.rows_dirty == 0b100  # the covering row line
        cache.check_invariants()

    def test_vector_miss_fills(self):
        cache, lower, _ = make_cache()
        addr = word_addr(3, 0, 4)
        result = cache.access(
            Request(addr, Orientation.COLUMN, AccessWidth.VECTOR, False),
            0)
        assert result.hit_level == 0
        assert lower.fetched_lines() == [col(3, 4)]

    def test_write_extra_latency_charged(self):
        stats = StatRegistry()
        cfg = small_config(size_kb=4, assoc=2, logical_dims=2,
                           physical_dims=2, write_extra_latency=20)
        cache = Cache2P2L(cfg, 3, stats)
        cache.connect(FakeLower())
        cache.fetch_line(row(0, 2), 0, AccessWidth.VECTOR)
        addr = word_addr(0, 2, 0)
        read = cache.access(Request(addr, Orientation.ROW,
                                    AccessWidth.VECTOR, False), SETTLE)
        write = cache.access(Request(addr, Orientation.ROW,
                                     AccessWidth.VECTOR, True),
                             2 * SETTLE)
        assert write.latency - read.latency == 20


class TestInvariants:
    def test_check_invariants_passes_after_traffic(self):
        cache, _, _ = make_cache()
        for t in range(6):
            cache.fetch_line(row(t, t % 8), t * SETTLE,
                             AccessWidth.VECTOR)
            cache.writeback_line(col(t, (t + 1) % 8), 0xF, t * SETTLE)
        cache.check_invariants()

    def test_occupancy_counts_presence_bits(self):
        cache, _, _ = make_cache()
        cache.fetch_line(row(0, 0), 0, AccessWidth.VECTOR)
        cache.fetch_line(col(0, 1), SETTLE, AccessWidth.VECTOR)
        assert cache.orientation_occupancy() == (1, 1)
