"""Unit tests for the conventional 1P1L cache (Design 0 levels)."""

import pytest

from repro.common.config import PrefetcherConfig
from repro.common.errors import SimulationError
from repro.common.stats import StatRegistry
from repro.common.types import (
    AccessWidth,
    Orientation,
    Request,
    line_id_of,
    make_line_id,
)
from repro.cache.cache_1p1l import Cache1P1L
from tests.conftest import FakeLower, small_config


def make_cache(lower=None, **cfg_kwargs):
    stats = StatRegistry()
    cache = Cache1P1L(small_config(**cfg_kwargs), 1, stats)
    lower = lower or FakeLower()
    cache.connect(lower)
    return cache, lower, stats


def read(addr, width=AccessWidth.SCALAR):
    return Request(addr, Orientation.ROW, width, is_write=False)


def write(addr, width=AccessWidth.SCALAR):
    return Request(addr, Orientation.ROW, width, is_write=True)


class TestBasicBehavior:
    def test_cold_miss_then_hit(self):
        cache, lower, stats = make_cache()
        r1 = cache.access(read(0), now=0)
        assert r1.hit_level == 0  # served by the fake "memory"
        r2 = cache.access(read(8), now=200)  # same line, another word
        assert r2.hit_level == 1
        assert stats.group("cache.L1").get("hits") == 1
        assert stats.group("cache.L1").get("misses") == 1
        assert lower.fetched_lines() == [line_id_of(0, Orientation.ROW)]

    def test_hit_latency_is_config_hit_latency(self):
        cache, _, _ = make_cache()
        cache.access(read(0), 0)
        result = cache.access(read(0), 1000)
        assert result.latency == cache.config.hit_latency

    def test_rejects_column_requests(self):
        cache, _, _ = make_cache()
        req = Request(0, Orientation.COLUMN, AccessWidth.SCALAR, False)
        with pytest.raises(SimulationError):
            cache.access(req, 0)

    def test_early_hit_waits_for_fill_data(self):
        """A hit right after a miss must wait for the in-flight data."""
        cache, lower, _ = make_cache()
        cache.access(read(0), 0)               # fill lands ~100 cycles
        result = cache.access(read(8), now=5)  # same line, data not here
        assert result.latency > cache.config.hit_latency
        assert len(lower.fetches) == 1


class TestWritebacks:
    def test_dirty_eviction_writes_back(self):
        # 1 KB, 4-way, 4 sets: 5 lines mapping to one set force eviction.
        cache, lower, stats = make_cache()
        sets = cache.config.num_sets
        target = write(0)
        cache.access(target, 0)
        # Fill the same set with 4 more lines (stride = sets lines).
        for k in range(1, 5):
            cache.access(read(k * sets * 64), k * 1000)
        assert lower.written_lines() == [line_id_of(0, Orientation.ROW)]
        assert stats.group("cache.L1").get("writebacks_out") == 1

    def test_clean_eviction_is_silent(self):
        cache, lower, _ = make_cache()
        sets = cache.config.num_sets
        for k in range(5):
            cache.access(read(k * sets * 64), k * 1000)
        assert lower.writebacks == []

    def test_scalar_write_sets_single_dirty_bit(self):
        cache, lower, _ = make_cache()
        cache.access(write(8), 0)  # word 1 of line 0
        cache.flush(10_000)
        assert lower.writebacks[-1][1] == 0b10

    def test_vector_write_dirties_whole_line(self):
        cache, lower, _ = make_cache()
        cache.access(write(0, AccessWidth.VECTOR), 0)
        cache.flush(10_000)
        assert lower.writebacks[-1][1] == 0xFF

    def test_writeback_into_cache_merges_dirty(self):
        cache, lower, _ = make_cache()
        line = make_line_id(0, Orientation.ROW, 0)
        cache.access(read(0), 0)
        cache.writeback_line(line, 0b01, 1000)
        cache.flush(2000)
        assert (line, 0b01) in [(l, m) for l, m, _ in lower.writebacks]

    def test_writeback_miss_allocates(self):
        cache, lower, _ = make_cache()
        line = make_line_id(7, Orientation.ROW, 3)
        cache.writeback_line(line, 0xFF, 0)
        assert cache.contains(line)
        assert lower.fetches == []  # no fetch needed for a full line


class TestFetchProtocol:
    def test_fetch_line_hit_reports_own_level(self):
        cache, _, _ = make_cache()
        line = make_line_id(0, Orientation.ROW, 0)
        cache.access(read(0), 0)
        completion, level = cache.fetch_line(line, 1000,
                                             AccessWidth.VECTOR)
        assert level == 1
        assert completion > 1000

    def test_fetch_line_miss_recurses(self):
        cache, lower, _ = make_cache()
        line = make_line_id(9, Orientation.ROW, 0)
        completion, level = cache.fetch_line(line, 0, AccessWidth.VECTOR)
        assert level == 0
        assert lower.fetched_lines() == [line]
        assert cache.contains(line)

    def test_mshr_coalesces_same_line(self):
        cache, lower, stats = make_cache()
        line = make_line_id(9, Orientation.ROW, 0)
        cache.fetch_line(line, 0, AccessWidth.VECTOR)
        # Invalidate so the second request misses again while the fill
        # is still outstanding in the MSHRs.
        cache._frames.pop(line)
        cache._set_for(9 * 8).remove(line)
        cache.fetch_line(line, 1, AccessWidth.VECTOR)
        assert len(lower.fetches) == 1
        assert stats.group("cache.L1").get("mshr_coalesced") == 1


class TestPrefetcher:
    def test_prefetch_fills_follow_stride(self):
        cache, lower, stats = make_cache(
            prefetcher=PrefetcherConfig(enabled=True, degree=2,
                                        train_threshold=2))
        for k in range(4):
            cache.access(read(k * 64), k * 500)
        assert stats.group("cache.L1").get("prefetch_fills") > 0
        # More lines fetched than demanded.
        assert len(lower.fetches) > 4

    def test_no_prefetch_when_disabled(self):
        cache, lower, _ = make_cache()
        for k in range(4):
            cache.access(read(k * 64), k * 500)
        assert len(lower.fetches) == 4

    def test_prefetched_line_counts_as_hit(self):
        cache, _, stats = make_cache(
            prefetcher=PrefetcherConfig(enabled=True, degree=4,
                                        train_threshold=2))
        for k in range(3):
            cache.access(read(k * 64), k * 500)
        result = cache.access(read(3 * 64), 5000)
        assert result.hit_level == 1


class TestFlush:
    def test_flush_empties_cache(self):
        cache, _, _ = make_cache()
        for k in range(3):
            cache.access(write(k * 64), k * 200)
        cache.flush(10_000)
        assert cache.resident_lines() == 0

    def test_flush_writes_back_every_dirty_line(self):
        cache, lower, _ = make_cache()
        for k in range(3):
            cache.access(write(k * 64), k * 200)
        cache.flush(10_000)
        assert len(lower.writebacks) == 3
