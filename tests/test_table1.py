"""Unit tests for the Table I experiment module."""

from repro.experiments.table1 import Table1Result, run_table1


class TestTable1:
    def test_rows_cover_every_setup_dimension(self):
        result = run_table1()
        params = [row[0] for row in result.rows]
        for expected in ("CPU", "L1 D-cache", "L2", "L3 (LLC)",
                         "Main memory", "Memory controller",
                         "Array timings", "Inputs"):
            assert any(expected in param for param in params), expected

    def test_paper_column_quotes_table1(self):
        result = run_table1()
        paper_values = " ".join(row[1] for row in result.rows)
        assert "32KB" in paper_values
        assert "FRFCFS-WQF" in paper_values
        assert "gem5" in paper_values

    def test_repo_column_reflects_live_config(self):
        from repro.core.system import L1_BYTES, L2_BYTES
        result = run_table1()
        repo_values = " ".join(row[2] for row in result.rows)
        assert f"{L1_BYTES // 1024}KB" in repo_values
        assert f"{L2_BYTES // 1024}KB" in repo_values

    def test_report_renders_all_rows(self):
        result = run_table1()
        report = result.report()
        assert len(report.splitlines()) == len(result.rows) + 2

    def test_result_is_plain_data(self):
        rows = [("a", "b", "c")]
        assert Table1Result(rows).report().count("a") >= 1
