"""Property-based tests for memory layouts and trace generation."""

from hypothesis import given, settings, strategies as st

from repro.common.types import Orientation, line_id_of
from repro.sw.layout import LinearLayout, TiledLayout
from repro.sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program
from repro.sw.tracegen import generate_trace

shapes = st.tuples(st.integers(min_value=1, max_value=40),
                   st.integers(min_value=1, max_value=40))


@settings(max_examples=50, deadline=None)
@given(shapes, st.data())
def test_tiled_layout_column_alignment(shape, data):
    rows, cols = shape
    layout = TiledLayout([ArrayDecl("A", rows, cols)])
    i = data.draw(st.integers(min_value=0, max_value=rows - 1))
    j = data.draw(st.integers(min_value=0, max_value=cols - 1))
    addr = layout.address_of("A", i, j)
    # Same 8-row band, same column -> same column line.
    band = i - i % 8
    for other in range(band, min(band + 8, rows)):
        other_addr = layout.address_of("A", other, j)
        assert line_id_of(other_addr, Orientation.COLUMN) == \
            line_id_of(addr, Orientation.COLUMN)


@settings(max_examples=50, deadline=None)
@given(st.lists(shapes, min_size=1, max_size=4), st.data())
def test_layouts_are_injective(shapes_list, data):
    """Distinct elements never share an address, across arrays."""
    decls = [ArrayDecl(f"A{k}", r, c)
             for k, (r, c) in enumerate(shapes_list)]
    layout_cls = data.draw(st.sampled_from([LinearLayout, TiledLayout]))
    layout = layout_cls(decls)
    seen = {}
    for decl in decls:
        for i in range(0, decl.rows, max(1, decl.rows // 5)):
            for j in range(0, decl.cols, max(1, decl.cols // 5)):
                addr = layout.address_of(decl.name, i, j)
                key = (decl.name, i, j)
                assert addr not in seen or seen[addr] == key
                seen[addr] = key


@settings(max_examples=50, deadline=None)
@given(shapes)
def test_footprint_covers_data(shape):
    rows, cols = shape
    decls = [ArrayDecl("A", rows, cols)]
    for layout in (LinearLayout(decls), TiledLayout(decls)):
        assert layout.footprint_bytes() >= layout.data_bytes()
        assert layout.padding_bytes() >= 0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=8, max_value=32).map(lambda n: n - n % 8),
       st.sampled_from([1, 2]))
def test_trace_addresses_in_bounds(n, dims):
    """Every generated request address falls inside the mapped space."""
    a = ArrayDecl("A", n, n)
    nest = LoopNest("n", [Loop.over("i", n), Loop.over("j", n)],
                    [ArrayRef(a, Affine.of("i"), Affine.of("j")),
                     ArrayRef(a, Affine.of("j"), Affine.of("i"))])
    program = Program("p", [a], [nest])
    from repro.sw.layout import make_layout
    layout = make_layout([a], dims)
    top = layout.footprint_bytes()
    for req in generate_trace(program, dims):
        assert 0 <= req.addr < top


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=8, max_value=24))
def test_vector_groups_cover_every_element(n):
    """The union of words touched by a row-walk trace equals the array
    footprint it reads, regardless of alignment."""
    a = ArrayDecl("A", 1, n)
    nest = LoopNest("n", [Loop.over("j", n)],
                    [ArrayRef(a, Affine.constant(0), Affine.of("j"))])
    program = Program("p", [a], [nest])
    layout = TiledLayout([a])
    touched = set()
    for req in generate_trace(program, 2, layout):
        touched.update(req.words())
    expected = {layout.address_of("A", 0, j) >> 3 for j in range(n)}
    assert expected <= touched
