"""Smoke tests: every example script runs and prints its conclusion."""

import runpy
import sys

import pytest

EXAMPLES = {
    "quickstart": "reduces execution time",
    "compiler_explorer": "vectorize along the column",
    "htap_analytics": "Best design",
    "transpose_study": "Loop-order sensitivity",
    "energy_report": "memory-system energy",
    "custom_hierarchy": "dataclass knob",
    "multiprogram_colocation": "sub-row buffers",
    "tier_sweep": "tier service for",
}


@pytest.mark.parametrize("name,needle", sorted(EXAMPLES.items()))
def test_example_runs(name, needle, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [f"examples/{name}.py"])
    runpy.run_path(f"examples/{name}.py", run_name="__main__")
    out = capsys.readouterr().out
    assert needle in out, f"{name} did not print its conclusion"


def test_design_space_sweep_with_args(capsys, monkeypatch):
    """The sweep example honors CLI arguments (use a tiny workload)."""
    monkeypatch.setattr(sys, "argv",
                        ["examples/design_space_sweep.py", "htap1",
                         "small"])
    runpy.run_path("examples/design_space_sweep.py",
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "htap1" in out
    assert "2P2L_Dense" in out


def test_readme_quickstart_snippet():
    """The code block in README.md works as written."""
    from repro import make_system, run_simulation
    baseline = run_simulation(make_system("1P1L"), workload="sgemm",
                              size="small")
    mdacache = run_simulation(make_system("1P2L"), workload="sgemm",
                              size="small")
    assert mdacache.cycles / baseline.cycles < 1.0
    assert mdacache.memory_bytes() > 0
