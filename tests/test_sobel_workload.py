"""Focused tests for the Sobel kernel's structure and compilation."""

from repro.common.types import AccessWidth, Orientation
from repro.sw.tracegen import generate_trace
from repro.sw.vectorizer import VecClass, compile_program
from repro.workloads.sobel import build_sobel


class TestStructure:
    def test_eight_taps_plus_store(self):
        program = build_sobel(32)
        refs = program.nests[0].refs
        assert len(refs) == 9
        assert sum(1 for r in refs if r.is_write) == 1

    def test_center_tap_excluded(self):
        """Sobel's (0, 0) weight is zero in both kernels: not read."""
        program = build_sobel(32)
        offsets = {(ref.row.const, ref.col.const)
                   for ref in program.nests[0].refs if not ref.is_write}
        assert (0, 0) not in offsets
        assert len(offsets) == 8

    def test_vertical_traversal_innermost_is_row_index(self):
        program = build_sobel(32)
        assert program.nests[0].innermost.var == "i"


class TestCompilation:
    def test_all_refs_column_vectorized(self):
        compiled = compile_program(build_sobel(32), 2)
        for cref in compiled.nests[0].refs:
            assert cref.direction.orientation is Orientation.COLUMN
            assert cref.vec_class is VecClass.VECTOR

    def test_1d_target_serializes_everything(self):
        compiled = compile_program(build_sobel(32), 1)
        for cref in compiled.nests[0].refs:
            assert cref.vec_class is VecClass.SCALAR_SERIAL

    def test_misaligned_taps_split_vector_groups(self):
        """Interior start (i=1) plus +/-1 offsets make most groups
        straddle two column lines: the trace carries extra requests."""
        n = 32
        trace = list(generate_trace(build_sobel(n), 2))
        vectors = [r for r in trace if r.width is AccessWidth.VECTOR]
        interior = (n - 2) * (n - 2)
        # Perfectly aligned would be interior * 9 / 8 vector requests;
        # splits push it well above.
        assert len(vectors) > interior * 9 / 8

    def test_store_is_column_write(self):
        trace = generate_trace(build_sobel(16), 2)
        writes = [r for r in trace if r.is_write]
        assert writes
        assert all(w.orientation is Orientation.COLUMN for w in writes)
