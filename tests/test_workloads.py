"""Unit tests for the benchmark suite."""

import pytest

from repro.common.errors import ConfigError
from repro.sw.tracegen import generate_trace, trace_mix
from repro.sw.vectorizer import compile_program
from repro.workloads.registry import (
    HTAP_SIZES,
    MATRIX_SIZES,
    build_workload,
    get_workload,
    workload_names,
)


class TestRegistry:
    def test_paper_benchmark_list(self):
        assert workload_names() == ["sgemm", "ssyr2k", "ssyrk", "strmm",
                                    "sobel", "htap1", "htap2"]

    def test_unknown_workload_raises(self):
        with pytest.raises(ConfigError):
            build_workload("dgemm")

    def test_unknown_size_raises(self):
        with pytest.raises(ConfigError):
            build_workload("sgemm", "huge")

    def test_scaled_sizes(self):
        assert MATRIX_SIZES == {"small": 32, "large": 64}
        assert HTAP_SIZES["large"] == (256, 64)

    def test_descriptions_present(self):
        for name in workload_names():
            assert get_workload(name).description


class TestAllWorkloadsBuild:
    @pytest.mark.parametrize("name", ["sgemm", "ssyr2k", "ssyrk",
                                      "strmm", "sobel", "htap1",
                                      "htap2"])
    @pytest.mark.parametrize("size", ["small", "large"])
    def test_builds_and_compiles(self, name, size):
        program = build_workload(name, size)
        assert program.name == name
        for dims in (1, 2):
            compiled = compile_program(program, dims)
            assert compiled.nests

    @pytest.mark.parametrize("name", ["sgemm", "ssyr2k", "ssyrk",
                                      "strmm", "sobel", "htap1",
                                      "htap2"])
    def test_every_benchmark_exercises_columns(self, name):
        """The paper's Fig. 10 claim: every benchmark has column
        preference under the 2-D compilation."""
        program = build_workload(name, "small")
        mix = trace_mix(generate_trace(program, 2))
        assert mix.column_fraction > 0.0

    @pytest.mark.parametrize("name", ["sgemm", "ssyr2k", "strmm",
                                      "htap1", "htap2"])
    def test_mixed_affinity_benchmarks_have_rows_too(self, name):
        program = build_workload(name, "small")
        mix = trace_mix(generate_trace(program, 2))
        assert mix.row_scalar + mix.row_vector > 0

    def test_1d_compilation_never_emits_columns(self):
        for name in workload_names():
            program = build_workload(name, "small")
            mix = trace_mix(generate_trace(program, 1))
            assert mix.column_fraction == 0.0, name


class TestKernelShapes:
    def test_sgemm_arrays(self):
        program = build_workload("sgemm", "small")
        assert {a.name for a in program.arrays} == \
            {"MatR", "MatC", "MatOut"}
        assert program.array("MatR").rows == 32

    def test_ssyrk_has_two_nests(self):
        program = build_workload("ssyrk", "small")
        assert [n.name for n in program.nests] == ["syrk", "rescale"]

    def test_strmm_is_triangular(self):
        program = build_workload("strmm", "small")
        k_loop = program.nests[0].loops[-1]
        assert k_loop.lower.coeff("i") == 1

    def test_htap_table_shape(self):
        program = build_workload("htap1", "large")
        table = program.array("T")
        assert (table.rows, table.cols) == (256, 64)

    def test_htap2_mix_is_transaction_dominant(self):
        mix = trace_mix(generate_trace(build_workload("htap2", "large"),
                                       2))
        assert 0.05 < mix.column_fraction < 0.5

    def test_sobel_interior_only(self):
        program = build_workload("sobel", "small")
        loops = program.nests[0].loops
        assert loops[0].lower.const == 1
        assert loops[0].upper.const == 31
