"""Integration tests: full design points on real (small) workloads.

These check the qualitative claims of the paper on miniature runs:
MDA designs cut memory traffic on column-affine kernels, all designs
simulate deterministically, and internal invariants survive end-to-end
execution.
"""

import pytest

from repro.cache.cache_1p2l import Cache1P2L
from repro.cache.cache_2p2l import Cache2P2L
from repro.cache.hierarchy import CacheHierarchy
from repro.common.stats import StatRegistry
from repro.core.simulator import run_simulation
from repro.core.system import make_resident_system, make_system
from repro.core.cpu import TraceDrivenCpu
from repro.sw.tracegen import generate_trace
from repro.workloads.registry import build_workload


@pytest.fixture(scope="module")
def small_runs():
    """One small run per design for the column-affine sobel kernel."""
    return {design: run_simulation(make_system(design),
                                   workload="sobel", size="small")
            for design in ("1P1L", "1P2L", "1P2L_SameSet", "2P2L")}


class TestDesignComparisons:
    def test_mda_designs_beat_baseline_on_sobel(self, small_runs):
        base = small_runs["1P1L"].cycles
        for design in ("1P2L", "1P2L_SameSet", "2P2L"):
            assert small_runs[design].cycles < base, design

    def test_mda_designs_cut_memory_traffic(self):
        """Column fetches avoid moving unused perpendicular data; htap1
        (which reads only a few columns) shows it even when the small
        working set is LLC-resident."""
        runs = {design: run_simulation(make_system(design),
                                       workload="htap1", size="small")
                for design in ("1P1L", "1P2L", "1P2L_SameSet", "2P2L")}
        base = runs["1P1L"].memory_bytes()
        for design in ("1P2L", "1P2L_SameSet", "2P2L"):
            assert runs[design].memory_bytes() < base, design

    def test_mda_designs_cut_llc_requests(self, small_runs):
        base = small_runs["1P1L"].llc_requests()
        for design in ("1P2L", "1P2L_SameSet", "2P2L"):
            assert small_runs[design].llc_requests() < base, design

    def test_column_buffer_used_only_by_mda(self, small_runs):
        assert small_runs["1P1L"].column_buffer_hits() == 0
        assert small_runs["1P2L"].memory_reads() > 0

    def test_mda_ops_fewer_via_column_vectorization(self, small_runs):
        assert small_runs["1P2L"].ops < small_runs["1P1L"].ops


class TestEndToEndInvariants:
    @pytest.mark.parametrize("design", ["1P2L", "1P2L_SameSet"])
    def test_duplication_invariant_after_full_run(self, design):
        system = make_system(design)
        stats = StatRegistry()
        hierarchy = CacheHierarchy(system, stats)
        program = build_workload("ssyr2k", "small")
        trace = generate_trace(program, 2)
        TraceDrivenCpu(system.cpu, hierarchy, stats).run(trace)
        for level in hierarchy.levels:
            assert isinstance(level, Cache1P2L)
            level.check_invariants()

    def test_2p2l_invariants_after_full_run(self):
        system = make_system("2P2L")
        stats = StatRegistry()
        hierarchy = CacheHierarchy(system, stats)
        program = build_workload("sgemm", "small")
        trace = generate_trace(program, 2)
        TraceDrivenCpu(system.cpu, hierarchy, stats).run(trace)
        llc = hierarchy.llc
        assert isinstance(llc, Cache2P2L)
        llc.check_invariants()

    @pytest.mark.parametrize("design", ["1P1L", "1P2L", "2P2L"])
    def test_resident_systems_run(self, design):
        result = run_simulation(make_resident_system(design),
                                workload="htap1", size="small")
        assert result.cycles > 0

    def test_design3_extension_runs(self):
        """2P2L at every level (the paper's future work, Design 3)."""
        result = run_simulation(make_system("2P2L_L1"),
                                workload="sgemm", size="small")
        assert result.cycles > 0
        assert result.l1_hit_rate() > 0


class TestSensitivityKnobs:
    def test_faster_memory_speeds_up_baseline(self):
        from repro.common.config import MemoryConfig
        slow = run_simulation(make_system("1P1L"), workload="sobel",
                              size="small")
        fast = run_simulation(
            make_system("1P1L", memory=MemoryConfig().faster(1.6)),
            workload="sobel", size="small")
        assert fast.cycles < slow.cycles

    def test_slow_write_2p2l_is_slower_or_equal(self):
        base = run_simulation(make_system("2P2L"), workload="sgemm",
                              size="small")
        slow = run_simulation(make_system("2P2L_SlowWrite"),
                              workload="sgemm", size="small")
        assert slow.cycles >= base.cycles

    def test_dense_2p2l_moves_more_data(self):
        sparse = run_simulation(make_system("2P2L"), workload="sobel",
                                size="small")
        dense = run_simulation(make_system("2P2L_Dense"),
                               workload="sobel", size="small")
        assert dense.memory_bytes() >= sparse.memory_bytes()

    def test_replacement_policy_changes_results(self):
        lru = run_simulation(make_system("1P2L"), workload="sgemm",
                             size="small", replacement="lru")
        rnd = run_simulation(make_system("1P2L"), workload="sgemm",
                             size="small", replacement="random")
        assert lru.cycles != rnd.cycles
