"""Unit tests for the program IR."""

import pytest

from repro.common.errors import ProgramError
from repro.sw.program import (
    Affine,
    ArrayDecl,
    ArrayRef,
    Loop,
    LoopNest,
    Program,
)


class TestAffine:
    def test_constant(self):
        expr = Affine.constant(5)
        assert expr.evaluate({}) == 5
        assert expr.coeff("i") == 0

    def test_variable_with_coeff_and_const(self):
        expr = Affine.of("i", coeff=3, const=2)
        assert expr.evaluate({"i": 4}) == 14
        assert expr.coeff("i") == 3

    def test_zero_coeff_collapses_to_constant(self):
        expr = Affine.of("i", coeff=0, const=7)
        assert expr.variables() == ()
        assert expr.evaluate({}) == 7

    def test_addition_merges_terms(self):
        expr = Affine.of("i") + Affine.of("j", coeff=2) + 3
        assert expr.evaluate({"i": 1, "j": 2}) == 8
        assert set(expr.variables()) == {"i", "j"}

    def test_addition_cancels_terms(self):
        expr = Affine.of("i") + Affine.of("i", coeff=-1)
        assert expr.variables() == ()

    def test_unbound_variable_raises(self):
        with pytest.raises(ProgramError):
            Affine.of("i").evaluate({"j": 0})

    def test_str_representation(self):
        assert "i" in str(Affine.of("i", const=1))
        assert str(Affine.constant(0)) == "0"


class TestDeclarations:
    def test_array_shape_validated(self):
        with pytest.raises(ProgramError):
            ArrayDecl("A", 0, 4)

    def test_elements(self):
        assert ArrayDecl("A", 3, 4).elements == 12

    def test_ref_position_validated(self):
        a = ArrayDecl("A", 4, 4)
        with pytest.raises(ProgramError):
            ArrayRef(a, Affine.of("i"), Affine.of("j"), when="during")


class TestLoopNest:
    def _nest(self):
        a = ArrayDecl("A", 8, 8)
        return LoopNest(
            name="n",
            loops=[Loop.over("i", 8), Loop.over("j", 8)],
            refs=[ArrayRef(a, Affine.of("i"), Affine.of("j"))],
        )

    def test_innermost(self):
        assert self._nest().innermost.var == "j"

    def test_duplicate_loop_vars_rejected(self):
        with pytest.raises(ProgramError):
            LoopNest("n", [Loop.over("i", 4), Loop.over("i", 4)])

    def test_unbound_ref_var_rejected(self):
        a = ArrayDecl("A", 4, 4)
        with pytest.raises(ProgramError):
            LoopNest("n", [Loop.over("i", 4)],
                     [ArrayRef(a, Affine.of("i"), Affine.of("k"))])

    def test_resolved_refs_defaults_to_full_depth(self):
        nest = self._nest()
        ref = nest.resolved_refs()[0]
        assert ref.depth == 2

    def test_controlling_var_by_depth(self):
        a = ArrayDecl("A", 8, 8)
        nest = LoopNest(
            "n", [Loop.over("i", 8), Loop.over("j", 8)],
            [ArrayRef(a, Affine.of("i"), Affine.constant(0), depth=1)])
        assert nest.controlling_var(nest.refs[0]) == "i"

    def test_triangular_bounds(self):
        loop = Loop.bounded("k", Affine.of("i"), 8)
        assert loop.lower.evaluate({"i": 3}) == 3
        assert loop.upper.evaluate({}) == 8


class TestProgram:
    def test_duplicate_arrays_rejected(self):
        a = ArrayDecl("A", 4, 4)
        with pytest.raises(ProgramError):
            Program("p", [a, ArrayDecl("A", 4, 4)], [])

    def test_undeclared_array_in_nest_rejected(self):
        a = ArrayDecl("A", 4, 4)
        b = ArrayDecl("B", 4, 4)
        nest = LoopNest("n", [Loop.over("i", 4)],
                        [ArrayRef(b, Affine.of("i"), Affine.constant(0))])
        with pytest.raises(ProgramError):
            Program("p", [a], [nest])

    def test_array_lookup(self):
        a = ArrayDecl("A", 4, 4)
        prog = Program("p", [a], [])
        assert prog.array("A") is a
        with pytest.raises(ProgramError):
            prog.array("Z")

    def test_static_refs_in_order(self):
        a = ArrayDecl("A", 8, 8)
        nest1 = LoopNest("n1", [Loop.over("i", 8)],
                         [ArrayRef(a, Affine.of("i"),
                                   Affine.constant(0))])
        nest2 = LoopNest("n2", [Loop.over("j", 8)],
                         [ArrayRef(a, Affine.constant(0),
                                   Affine.of("j"))])
        prog = Program("p", [a], [nest1, nest2])
        pairs = list(prog.static_refs())
        assert [nest.name for nest, _ in pairs] == ["n1", "n2"]
