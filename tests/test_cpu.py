"""Unit tests for the trace-driven CPU model."""

from repro.common.config import (
    CacheLevelConfig,
    CpuConfig,
    MemoryConfig,
    SystemConfig,
)
from repro.common.stats import StatRegistry
from repro.common.types import AccessWidth, Orientation, Request
from repro.cache.hierarchy import CacheHierarchy
from repro.core.cpu import TraceDrivenCpu


def make_system(mlp_window=4):
    level = CacheLevelConfig(name="L1", size_bytes=1024, assoc=4,
                             tag_latency=1, data_latency=1,
                             sequential_tag_data=False)
    return SystemConfig(levels=[level], memory=MemoryConfig(),
                        cpu=CpuConfig(mlp_window=mlp_window))


def build_cpu(mlp_window=4):
    config = make_system(mlp_window)
    stats = StatRegistry()
    hierarchy = CacheHierarchy(config, stats)
    return TraceDrivenCpu(config.cpu, hierarchy, stats), stats


def reads(addrs):
    return [Request(a, Orientation.ROW, AccessWidth.SCALAR, False)
            for a in addrs]


def writes(addrs):
    return [Request(a, Orientation.ROW, AccessWidth.SCALAR, True)
            for a in addrs]


class TestExecution:
    def test_hit_stream_runs_at_issue_rate(self):
        cpu, stats = build_cpu()
        # Warm one line, then hammer it: after the first miss the rest
        # are pipelined hits.
        trace = reads([0] * 100)
        cycles = cpu.run(trace)
        ops = stats.group("cpu").get("ops")
        assert ops == 100
        # Dominated by issue cost, not by 100x memory latency.
        assert cycles < 100 + 500

    def test_misses_overlap_within_window(self):
        cpu_narrow, stats_narrow = build_cpu(mlp_window=1)
        cycles_narrow = cpu_narrow.run(reads([k * 4096 for k in
                                              range(16)]))
        cpu_wide, _ = build_cpu(mlp_window=8)
        cycles_wide = cpu_wide.run(reads([k * 4096 for k in range(16)]))
        assert cycles_wide < cycles_narrow

    def test_writes_do_not_stall(self):
        """Writes are posted: they never occupy the outstanding-read
        window (end-of-run writeback drain still counts in total time).
        """
        cpu_w, stats_w = build_cpu(mlp_window=1)
        cpu_w.run(writes([k * 4096 for k in range(16)]))
        cpu_r, stats_r = build_cpu(mlp_window=1)
        cpu_r.run(reads([k * 4096 for k in range(16)]))
        assert stats_w.group("cpu").get("stall_cycles") == 0
        assert stats_r.group("cpu").get("stall_cycles") > 0

    def test_final_drain_extends_time(self):
        """In-flight misses at trace end must be waited for."""
        cpu, stats = build_cpu(mlp_window=8)
        cycles = cpu.run(reads([0]))
        assert cycles > 1  # one op issued, but the miss must land

    def test_stats_recorded(self):
        cpu, stats = build_cpu()
        cpu.run(reads([0, 4096, 8192]))
        grp = stats.group("cpu")
        assert grp.get("ops") == 3
        assert grp.get("cycles") > 0
        assert grp.get("read_misses_tracked") == 3

    def test_sampler_invoked_at_stride(self):
        cpu, _ = build_cpu()
        samples = []
        cpu.run(reads([0] * 10),
                sampler=lambda ops, now: samples.append(ops),
                sample_every=3)
        assert samples == [3, 6, 9]

    def test_no_sampler_without_stride(self):
        cpu, _ = build_cpu()
        samples = []
        cpu.run(reads([0] * 10),
                sampler=lambda ops, now: samples.append(ops),
                sample_every=0)
        assert samples == []
