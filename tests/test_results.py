"""Unit tests for result post-processing helpers."""

import math

import pytest

from repro.core.results import (
    format_table,
    geomean,
    mean,
    normalized,
    reduction_percent,
    series_by_key,
)


class TestScalars:
    def test_normalized(self):
        assert normalized(50, 100) == 0.5
        assert normalized(50, 0) == 0.0

    def test_reduction_percent(self):
        assert reduction_percent(28, 100) == pytest.approx(72.0)
        assert reduction_percent(5, 0) == 0.0

    def test_geomean(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([7]) == pytest.approx(7.0)

    def test_geomean_matches_log_definition(self):
        values = [0.5, 1.5, 2.5]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geomean(values) == pytest.approx(expected)

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0


class TestFormatTable:
    def test_columns_aligned(self):
        table = format_table(("name", "value"),
                             [("a", 1.23456), ("long-name", 2)])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].index("value") == lines[2].index("1.235")

    def test_precision(self):
        table = format_table(("x",), [(1.23456,)], precision=1)
        assert "1.2" in table
        assert "1.23" not in table

    def test_non_float_cells_passed_through(self):
        table = format_table(("a", "b"), [("text", 42)])
        assert "text" in table
        assert "42" in table


class TestSeriesByKey:
    def test_grouping(self):
        rows = [("a", 1.0), ("b", 2.0), ("a", 3.0)]
        assert series_by_key(rows) == {"a": [1.0, 3.0], "b": [2.0]}

    def test_empty(self):
        assert series_by_key([]) == {}
