"""The batched, array-vectorized replay path (PR-6 acceptance).

Covers :mod:`repro.core.vector`: coverage dispatch
(:func:`repro.core.vector.supports` and the ``vector_disabled`` pin),
three-way bit-identity between the object path, the scalar
``run_kernel`` loop, and the vector loop, the dependency-window
planner's boundary cases (windows of size 1, a chunk that is one full
window, miss-dominated demotion to the fused kernel span), and the
numpy-absent fallback to ``run_kernel``.
"""

from __future__ import annotations

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import SimulationError
from repro.common.stats import StatRegistry
from repro.common.types import (
    AccessWidth,
    Orientation,
    PackedTrace,
    Request,
)
from repro.core import kernels, vector
from repro.core.cpu import TraceDrivenCpu
from repro.core.simulator import run_trace
from repro.core.system import make_system
from repro.sw.tracegen import generate_packed_trace, generate_trace
from repro.workloads.registry import build_workload

try:
    from hypothesis import given, settings
    from hypothesis import strategies as some
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the env
    HAVE_HYPOTHESIS = False

#: Designs the vector loop covers (everything the kernel covers except
#: dynamic orientation) and kernel-covered designs that must stay on
#: run_kernel.
COVERED = ("1P1L", "1P2L", "1P2L_SameSet", "2P2L", "2P2L_Dense",
           "2P2L_SlowWrite")
KERNEL_ONLY = ("1P2L_Dyn",)
UNCOVERED = ("2P2L_L1",)


def _hierarchy(design, replacement="lru"):
    system = make_system(design, 1.0)
    return system, CacheHierarchy(system, StatRegistry(), replacement)


def _row_vector(tile, row):
    """A vector read of row line ``row`` in ``tile`` (see decoder.py)."""
    return Request(addr=((tile << 6) | (row << 3)) << 3,
                   orientation=Orientation.ROW,
                   width=AccessWidth.VECTOR,
                   is_write=False, ref_id=0)


def _hot_trace(n):
    """Vector reads cycling one tile's 8 row lines: hits after warmup."""
    return PackedTrace.from_requests(
        [_row_vector(0, i & 7) for i in range(n)])


def _miss_trace(n):
    """Vector reads striding distinct tiles: miss-dominated."""
    return PackedTrace.from_requests(
        [_row_vector(i % 4096, i & 7) for i in range(n)])


class TestSupports:
    @pytest.mark.parametrize("design", COVERED)
    def test_covered_designs(self, design):
        _, hierarchy = _hierarchy(design)
        assert vector.supports(hierarchy)

    @pytest.mark.parametrize("design", KERNEL_ONLY)
    def test_kernel_only_designs_stay_scalar(self, design):
        # Dynamic orientation is kernel-only: the predictor trains on
        # every scalar access in program order, which no bulk window
        # can honor.
        _, hierarchy = _hierarchy(design)
        assert kernels.supports(hierarchy)
        assert not vector.supports(hierarchy)

    @pytest.mark.parametrize("design", UNCOVERED)
    def test_kernel_uncovered_designs_fall_back(self, design):
        _, hierarchy = _hierarchy(design)
        assert not vector.supports(hierarchy)

    def test_numpy_absent_falls_back(self, monkeypatch):
        _, hierarchy = _hierarchy("1P2L")
        monkeypatch.setattr(vector, "_np", None)
        assert not vector.supports(hierarchy)
        # The scalar kernel does not need numpy for dispatch.
        assert kernels.supports(hierarchy)

    def test_vector_disabled_pin(self):
        _, hierarchy = _hierarchy("1P2L")
        assert vector.supports(hierarchy)
        with vector.vector_disabled():
            assert not vector.supports(hierarchy)
        assert vector.supports(hierarchy)

    def test_vector_disabled_restores_on_exception(self):
        prior = vector.VECTOR_ENABLED
        with pytest.raises(RuntimeError, match="boom"):
            with vector.vector_disabled():
                assert not vector.VECTOR_ENABLED
                raise RuntimeError("boom")
        assert vector.VECTOR_ENABLED == prior

    def test_vector_disabled_nests(self):
        with vector.vector_disabled():
            with vector.vector_disabled():
                assert not vector.VECTOR_ENABLED
            assert not vector.VECTOR_ENABLED
        assert vector.VECTOR_ENABLED

    def test_vector_disabled_rejects_reentry(self):
        cm = vector.vector_disabled()
        with cm:
            with pytest.raises(RuntimeError, match="entered twice"):
                cm.__enter__()
        assert vector.VECTOR_ENABLED

    def test_vector_disabled_restores_on_gc(self):
        cm = vector.vector_disabled()
        cm.__enter__()
        assert not vector.VECTOR_ENABLED
        del cm
        assert vector.VECTOR_ENABLED

    def test_engine_rejects_2d_l1(self):
        # A physically 2-D L1 has per-request block-state bookkeeping
        # the bulk windows do not model.
        _, hierarchy = _hierarchy("2P2L_L1")
        with pytest.raises(SimulationError):
            vector.VectorEngine(hierarchy)

    def test_engine_rejects_dynamic_orientation(self):
        _, hierarchy = _hierarchy("1P2L_Dyn")
        with pytest.raises(SimulationError, match="dynamic"):
            vector.VectorEngine(hierarchy)


class TestVectorParity:
    @pytest.mark.parametrize("design", COVERED)
    @pytest.mark.parametrize("workload", ["sobel", "htap1", "sgemm"])
    def test_three_way_bit_identity(self, design, workload,
                                    monkeypatch):
        """Object path, run_kernel, and run_vector agree exactly."""
        # Pin the dispatch floor so the small traces really exercise
        # the vector loop instead of falling back to the kernel.
        monkeypatch.setattr(vector, "MIN_VECTOR_TRACE", 0)
        system = make_system(design, 1.0)
        dims = system.logical_dims
        program = build_workload(workload, "small")
        objects = list(generate_trace(program, dims))
        packed = generate_packed_trace(program, dims)

        via_objects = run_trace(make_system(design, 1.0), objects,
                                name="t")
        with vector.vector_disabled():
            via_kernel = run_trace(make_system(design, 1.0), packed,
                                   name="t")
        via_vector = run_trace(make_system(design, 1.0), packed,
                               name="t")
        assert via_vector.cycles == via_objects.cycles
        assert via_vector.ops == via_objects.ops
        assert via_vector.stats.flat() == via_objects.stats.flat()
        assert via_vector.stats.flat() == via_kernel.stats.flat()

    def test_numpy_absent_run_matches_vector_run(self, monkeypatch):
        """Without numpy, cpu.run routes to run_kernel — same stats."""
        system = make_system("1P2L", 1.0)
        packed = generate_packed_trace(build_workload("sobel", "small"),
                                       system.logical_dims)
        via_vector = run_trace(make_system("1P2L", 1.0), packed,
                               name="t")
        monkeypatch.setattr(vector, "_np", None)
        via_fallback = run_trace(make_system("1P2L", 1.0), packed,
                                 name="t")
        assert via_fallback.cycles == via_vector.cycles
        assert via_fallback.stats.flat() == via_vector.stats.flat()

    @pytest.mark.parametrize("design", COVERED)
    def test_age_saturation_identity(self, monkeypatch, design):
        """Stamp compaction lands exactly where the fused loop puts it.

        The bulk path's age guard must drop saturating windows to
        per-row steps; shrinking AGE_LIMIT forces that constantly.
        """
        monkeypatch.setattr(kernels, "AGE_LIMIT", 300)
        monkeypatch.setattr(vector, "MIN_VECTOR_TRACE", 0)
        system = make_system(design, 1.0)
        packed = generate_packed_trace(build_workload("sgemm", "small"),
                                       system.logical_dims)
        via_vector = run_trace(make_system(design, 1.0), packed,
                               name="t")
        with vector.vector_disabled():
            reference = run_trace(make_system(design, 1.0), packed,
                                  name="t")
        assert via_vector.cycles == reference.cycles
        assert via_vector.stats.flat() == reference.stats.flat()

    def test_hot_trace_full_window_identity(self):
        """Chunks that are one full bulk window replay identically."""
        packed = _hot_trace(3 * vector.CHUNK)
        via_vector = run_trace(make_system("1P2L", 1.0), packed,
                               name="t")
        with vector.vector_disabled():
            reference = run_trace(make_system("1P2L", 1.0), packed,
                                  name="t")
        assert via_vector.cycles == reference.cycles
        assert via_vector.stats.flat() == reference.stats.flat()
        # Sanity: the trace really is hit-dense after the 8-line warmup.
        flat = via_vector.stats.flat()
        assert flat["cache.L1.hits"] >= 3 * vector.CHUNK - 8

    def test_miss_trace_identity_no_demotion_guard(self):
        """Miss-dominated traces stay on the vector path bit-exactly.

        The scalar-demotion guard (DEMOTE_AFTER/DEMOTE_FRACTION) is
        gone — misses that reach memory replay through the fused
        kernel span per chunk, never by abandoning the vector loop —
        and results must stay bit-identical.
        """
        assert not hasattr(vector, "DEMOTE_AFTER")
        assert not hasattr(vector, "DEMOTE_FRACTION")
        packed = _miss_trace(6 * vector.CHUNK + 7)
        via_vector = run_trace(make_system("1P2L", 1.0), packed,
                               name="t")
        with vector.vector_disabled():
            reference = run_trace(make_system("1P2L", 1.0), packed,
                                  name="t")
        assert via_vector.cycles == reference.cycles
        assert via_vector.stats.flat() == reference.stats.flat()

    def test_single_row_windows_identity(self):
        """Alternating hit/miss rows: every window has size 1."""
        reqs = []
        for i in range(2048):
            reqs.append(_row_vector(0, i & 7))       # hot tile: hit
            reqs.append(_row_vector(16 + (i % 512), i & 7))  # stride
        packed = PackedTrace.from_requests(reqs)
        via_vector = run_trace(make_system("1P2L", 1.0), packed,
                               name="t")
        with vector.vector_disabled():
            reference = run_trace(make_system("1P2L", 1.0), packed,
                                  name="t")
        assert via_vector.cycles == reference.cycles
        assert via_vector.stats.flat() == reference.stats.flat()

    def test_cpu_dispatches_vector_for_covered_design(self, monkeypatch):
        """cpu.run prefers run_vector when vector.supports says so."""
        monkeypatch.setattr(vector, "MIN_VECTOR_TRACE", 0)
        calls = []
        original = vector.VectorEngine.replay

        def counting(self, trace, cpu_config, cpu_group):
            calls.append(len(trace))
            return original(self, trace, cpu_config, cpu_group)

        monkeypatch.setattr(vector.VectorEngine, "replay", counting)
        system = make_system("1P2L", 1.0)
        packed = generate_packed_trace(build_workload("sobel", "small"),
                                       system.logical_dims)
        stats = StatRegistry()
        cpu = TraceDrivenCpu(system.cpu,
                             CacheHierarchy(system, stats), stats)
        cpu.run(packed)
        assert calls == [len(packed)]

    def test_cpu_keeps_short_traces_on_the_kernel(self, monkeypatch):
        """Traces below MIN_VECTOR_TRACE replay through run_kernel.

        Below ~2 classification chunks the vector path's planning
        overhead outweighs the windows it finds; the dispatch floor
        keeps those on the scalar kernel.  Results are identical
        either way, so the check observes the engine choice directly.
        """
        engines = []
        for cls in (vector.VectorEngine, kernels.KernelEngine):
            original = cls.replay

            def counting(self, trace, cpu_config, cpu_group,
                         _orig=original):
                engines.append(type(self))
                return _orig(self, trace, cpu_config, cpu_group)

            monkeypatch.setattr(cls, "replay", counting)

        def run(n):
            del engines[:]
            system = make_system("1P2L", 1.0)
            stats = StatRegistry()
            cpu = TraceDrivenCpu(system.cpu,
                                 CacheHierarchy(system, stats), stats)
            cpu.run(_hot_trace(n))
            return engines[0]

        assert run(vector.MIN_VECTOR_TRACE - 1) \
            is kernels.KernelEngine
        assert run(vector.MIN_VECTOR_TRACE) is vector.VectorEngine


class TestWindowSpans:
    def test_empty_mask(self):
        assert vector.window_spans([]) == []

    @pytest.mark.parametrize("mask,expect", [
        ([True], [(0, 1, True)]),
        ([False], [(0, 1, False)]),
        ([True] * 4, [(0, 4, True)]),
        ([False] * 4, [(0, 4, False)]),
        ([True, False, True],
         [(0, 1, True), (1, 2, False), (2, 3, True)]),
        ([False, False, True, True, False],
         [(0, 2, False), (2, 4, True), (4, 5, False)]),
    ])
    def test_known_masks(self, mask, expect):
        assert vector.window_spans(mask) == expect

    if HAVE_HYPOTHESIS:
        @settings(max_examples=200, deadline=None)
        @given(some.lists(some.booleans(), max_size=64))
        def test_spans_tile_and_alternate(self, mask):
            spans = vector.window_spans(mask)
            if not mask:
                assert spans == []
                return
            # Spans tile the mask exactly, in order.
            assert [s for s, _, _ in spans] == \
                [0] + [t for _, t, _ in spans[:-1]]
            assert spans[-1][1] == len(mask)
            # Each span is constant and maximal (kinds alternate).
            for (start, stop, is_bulk), nxt in zip(
                    spans, spans[1:] + [None]):
                assert all(bool(m) == is_bulk
                           for m in mask[start:stop])
                if nxt is not None:
                    assert nxt[2] != is_bulk


class TestClassify:
    @pytest.mark.parametrize("design", ["1P2L", "1P1L"])
    def test_cold_cache_classifies_nothing(self, design):
        _, hierarchy = _hierarchy(design)
        engine = vector.VectorEngine(hierarchy)
        packed = _hot_trace(64)
        bulk = vector.classify_chunk(engine, packed.words)
        assert len(bulk) == 64
        assert not bulk.any()

    @pytest.mark.parametrize("design", ["1P2L", "1P1L"])
    def test_warm_cache_classifies_hits(self, design):
        system, hierarchy = _hierarchy(design)
        engine = vector.VectorEngine(hierarchy)
        packed = _hot_trace(64)
        registry = StatRegistry()
        engine.replay(packed, system.cpu, registry.group("cpu"))
        # Replay leftovers: stale in-flight markers would mask the
        # re-read as scalar; classification treats them as live
        # relative to its own start time.
        engine.levels[0].ready_at.clear()
        bulk = vector.classify_chunk(engine, packed.words)
        assert bulk.all()


def _miss_system():
    """Two-level system whose 256KB SRAM second level (512 sets x 8
    ways) holds a multi-thousand-tile working set: every access is an
    L1 miss served by the second level, so classification chunks
    retire through the bulk-miss path."""
    from repro.common.config import CpuConfig, MemoryConfig, \
        SystemConfig
    from repro.core.system import _l1, _llc_sram
    return SystemConfig(
        levels=[_l1(2),
                _llc_sram(256 * 1024, 2, "different_set", name="L2")],
        memory=MemoryConfig(), cpu=CpuConfig())


def _wide_miss_trace(n, tiles=3584):
    """Row-0 vector reads cycling ``tiles`` distinct tiles."""
    return PackedTrace.from_requests(
        [_row_vector(i % tiles, 0) for i in range(n)])


class TestMissPath:
    """The vectorized miss path (PR-9): array-side MSHR/fill retire."""

    def _identity(self, system_factory, packed, expect_bulk=None):
        vector.BULK_MISS_ROWS[0] = 0
        via_vector = run_trace(system_factory(), packed, name="t")
        bulk = vector.BULK_MISS_ROWS[0]
        with vector.vector_disabled():
            reference = run_trace(system_factory(), packed, name="t")
        assert via_vector.cycles == reference.cycles
        assert via_vector.stats.flat() == reference.stats.flat()
        if expect_bulk is not None:
            assert bulk >= expect_bulk
        return via_vector

    def test_uniform_window_fast_path_identity(self):
        """Pure L1-miss/L2-hit stream: whole chunks retire through the
        uniform-window fast path, bit-identical to the scalar kernel."""
        result = self._identity(
            _miss_system, _wide_miss_trace(4 * vector.CHUNK),
            # Chunk 0 classifies cold (scalar); the rest retire in bulk.
            expect_bulk=2 * vector.CHUNK)
        flat = result.stats.flat()
        assert flat["cache.L1.misses"] >= 4 * vector.CHUNK - 8

    def test_mixed_hit_miss_windows_identity(self):
        """Windows mixing resident hits with miss runs: the bulk path
        must retire the miss spans and drain the poisoned hits without
        perturbing a single counter."""
        reqs = []
        for i in range(4 * vector.CHUNK):
            if (i >> 6) & 1:
                reqs.append(_row_vector(i & 7, (i >> 3) & 7))  # hot set
            else:
                reqs.append(_row_vector(64 + (i % 3072), 0))   # stride
        self._identity(_miss_system, PackedTrace.from_requests(reqs),
                       expect_bulk=1)

    def test_all_sets_saturated_identity(self):
        """More distinct tiles than the second level holds: every set
        is full, so each bulk fill evicts a victim.  The install
        scatter and the scalar loop must pick identical victims."""
        # 512 sets x 8 ways = 4096 lines; 4608 tiles thrash every set.
        self._identity(_miss_system,
                       _wide_miss_trace(4 * vector.CHUNK, tiles=4608))

    def test_stamp_collision_identity(self, monkeypatch):
        """LRU stamp saturation mid-window: compaction must land where
        the scalar kernel puts it even when fills race the limit.

        The limit is shrunk enough that a window's fills cross it many
        times per replay, but not so far that every access recompacts
        the 4096-line store (that would be quadratic, not edgier).
        """
        monkeypatch.setattr(kernels, "AGE_LIMIT", 20_000)
        self._identity(_miss_system, _wide_miss_trace(4 * vector.CHUNK))

    def test_cold_cache_sharded_epochs_no_demotion(self):
        """Every cold-cache epoch of a sharded replay retires misses in
        bulk — the scalar-demotion guard is gone, not just dormant —
        and each epoch stays bit-identical to the pinned kernel."""
        assert not hasattr(vector, "DEMOTE_AFTER")
        assert not hasattr(vector, "DEMOTE_FRACTION")
        from repro.common.types import ShardPlan
        packed = _wide_miss_trace(8 * vector.CHUNK)
        plan = ShardPlan.plan(len(packed), 2)
        assert len(plan.bounds) == 3
        for begin, end in zip(plan.bounds, plan.bounds[1:]):
            shard = PackedTrace(packed.words[begin:end])
            assert len(shard) >= vector.MIN_VECTOR_TRACE
            self._identity(_miss_system, shard,
                           expect_bulk=vector.CHUNK)
