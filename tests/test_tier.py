"""The polymorphic die-stacked tier (PR-10 acceptance).

Covers :class:`TierConfig` validation and the override schema (two
stages: path/field vocabulary, then dataclass invariants), the
equivalence edges the design promises (size-0 flat == tier disabled,
hybrid at cache_fraction 1.0 == pure cache mode, bit for bit), four-way
replay-path bit-identity with a tier enabled, determinism across
``--jobs``/``--shards``, and the tier's own counter semantics
(TDRAM folded probe, RBLA install policy, flush draining).
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    SystemConfig,
    TierConfig,
    apply_overrides,
)
from repro.common.errors import ConfigError, ValidationFailed
from repro.common.stats import StatRegistry
from repro.common.types import LINE_BYTES, TILE_BYTES
from repro.core import kernels, vector
from repro.core.simulator import run_simulation, run_trace
from repro.core.system import make_system
from repro.experiments.runner import (
    ExperimentRunner,
    RunKey,
    simulate_run_key,
)
from repro.service.protocol import parse_request
from repro.sw.tracegen import generate_packed_trace, generate_trace
from repro.workloads.registry import build_workload

MIB = 1024 * 1024

#: A hybrid override set every test can share (2 MiB, 50/50).
HYBRID = {"tier.mode": "hybrid", "tier.size_bytes": 2 * MIB,
          "tier.cache_fraction": 0.5}


def _tier_system(overrides, design="1P2L", llc_mb=1.0) -> SystemConfig:
    return apply_overrides(make_system(design, llc_mb), overrides)


# -- TierConfig validation ----------------------------------------------------


class TestTierConfig:
    def test_default_is_disabled(self):
        cfg = TierConfig()
        assert not cfg.active
        assert cfg.cache_bytes == 0 and cfg.flat_bytes == 0

    @pytest.mark.parametrize("kwargs", [
        {"mode": "bogus"},
        {"mode": "cache", "size_bytes": 0},
        {"mode": "hybrid", "size_bytes": 0},
        {"mode": "cache", "size_bytes": MIB + 1},
        {"mode": "flat", "size_bytes": TILE_BYTES + 1},
        {"mode": "cache", "size_bytes": MIB, "assoc": 0},
        {"mode": "cache", "size_bytes": MIB, "row_bytes": 96},
        {"mode": "cache", "size_bytes": MIB, "row_bytes": 32},
        {"mode": "cache", "size_bytes": MIB, "banks": 3},
        {"mode": "cache", "size_bytes": MIB, "activate_cycles": 0},
        {"mode": "hybrid", "size_bytes": MIB, "cache_fraction": 1.5},
        {"mode": "cache", "size_bytes": MIB, "rbla_threshold": 0},
        {"size_bytes": -1},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            TierConfig(**kwargs)

    def test_hybrid_split_arithmetic(self):
        cfg = TierConfig(mode="hybrid", size_bytes=2 * MIB,
                         cache_fraction=0.5)
        way_bytes = cfg.assoc * LINE_BYTES
        assert cfg.cache_bytes == MIB
        assert cfg.cache_bytes % way_bytes == 0
        assert cfg.cache_bytes + cfg.flat_bytes == 2 * MIB

    def test_hybrid_fraction_one_is_all_cache(self):
        cfg = TierConfig(mode="hybrid", size_bytes=2 * MIB,
                         cache_fraction=1.0)
        assert cfg.cache_bytes == 2 * MIB and cfg.flat_bytes == 0

    def test_taxonomy_suffixes(self):
        assert TierConfig(mode="cache",
                          size_bytes=MIB).taxonomy == "+DC$"
        assert TierConfig(mode="flat",
                          size_bytes=MIB).taxonomy == "+DFlat"
        assert TierConfig(mode="hybrid",
                          size_bytes=MIB).taxonomy == "+DC$/Flat"

    def test_describe_includes_tier(self):
        system = _tier_system(HYBRID)
        assert "+DC$/Flat + MDA" in system.describe()
        assert "+DC$" not in make_system("1P2L", 1.0).describe()


# -- override schema ----------------------------------------------------------


class TestTierOverrides:
    def test_unknown_tier_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown field"):
            apply_overrides(make_system("1P2L", 1.0),
                            {"tier.bogus": 1})

    def test_invalid_tier_value_rejected(self):
        with pytest.raises(ConfigError):
            apply_overrides(make_system("1P2L", 1.0),
                            {"tier.mode": "nonsense",
                             "tier.size_bytes": MIB})

    def test_interdependent_fields_apply_atomically(self):
        # mode=cache alone is invalid (needs capacity); together with
        # size_bytes the pair must validate as one replace.
        system = apply_overrides(make_system("1P2L", 1.0),
                                 {"tier.mode": "cache",
                                  "tier.size_bytes": MIB})
        assert system.tier.active
        assert system.tier.cache_bytes == MIB

    def test_service_stage_two_rejects_bad_tier_override(self):
        with pytest.raises(ValidationFailed):
            parse_request({"design": "1P2L", "workload": "sobel",
                           "overrides": {"tier.bogus": 1}})

    def test_service_accepts_tier_override(self):
        req = parse_request({"design": "1P2L", "workload": "sobel",
                             "overrides": {"tier.mode": "flat",
                                           "tier.size_bytes": MIB}})
        assert ("tier.mode", "flat") in req.key.overrides


# -- equivalence edges --------------------------------------------------------


class TestTierEquivalences:
    def test_flat_size_zero_is_bit_identical_to_disabled(self):
        plain = run_simulation(make_system("1P2L", 1.0),
                               workload="sgemm", size="small")
        zeroed = run_simulation(
            _tier_system({"tier.mode": "flat", "tier.size_bytes": 0}),
            workload="sgemm", size="small")
        assert zeroed.cycles == plain.cycles
        assert zeroed.stats.flat() == plain.stats.flat()

    def test_hybrid_all_cache_is_bit_identical_to_cache_mode(self):
        cache = run_simulation(
            _tier_system({"tier.mode": "cache",
                          "tier.size_bytes": 2 * MIB}),
            workload="sgemm", size="small")
        hybrid = run_simulation(
            _tier_system({"tier.mode": "hybrid",
                          "tier.size_bytes": 2 * MIB,
                          "tier.cache_fraction": 1.0}),
            workload="sgemm", size="small")
        assert hybrid.cycles == cache.cycles
        assert hybrid.stats.flat() == cache.stats.flat()

    def test_disabled_tier_creates_no_stat_group(self):
        result = run_simulation(make_system("1P2L", 1.0),
                                workload="sgemm", size="small")
        assert not any(name.startswith("tier.")
                       for name in result.stats.flat())


# -- replay-path bit-identity -------------------------------------------------


class TestTierReplayIdentity:
    @pytest.mark.parametrize("overrides", [
        {"tier.mode": "cache", "tier.size_bytes": 2 * MIB},
        HYBRID,
    ], ids=["cache", "hybrid"])
    def test_four_way_bit_identity(self, overrides, monkeypatch):
        """Object, packed, kernel, and vector replays agree exactly
        with a tier below the LLC."""
        monkeypatch.setattr(vector, "MIN_VECTOR_TRACE", 0)
        dims = make_system("1P2L", 1.0).logical_dims
        program = build_workload("sgemm", "small")
        objects = list(generate_trace(program, dims))
        packed = generate_packed_trace(program, dims)

        via_objects = run_trace(_tier_system(overrides), objects,
                                name="t")
        with kernels.kernel_disabled():
            via_packed = run_trace(_tier_system(overrides), packed,
                                   name="t")
        with vector.vector_disabled():
            via_kernel = run_trace(_tier_system(overrides), packed,
                                   name="t")
        via_vector = run_trace(_tier_system(overrides), packed,
                               name="t")
        for run in (via_packed, via_kernel, via_vector):
            assert run.cycles == via_objects.cycles
            assert run.ops == via_objects.ops
            assert run.stats.flat() == via_objects.stats.flat()

    def test_tier_config_stays_vector_covered(self):
        from repro.cache.hierarchy import CacheHierarchy
        hierarchy = CacheHierarchy(_tier_system(HYBRID),
                                   StatRegistry())
        assert kernels.supports(hierarchy)
        assert vector.supports(hierarchy)


# -- scheduler determinism ----------------------------------------------------


class TestTierDeterminism:
    def _key(self, shards=1):
        return RunKey("1P2L", "sgemm", "small", 1.0, False, "default",
                      0, tuple(sorted(HYBRID.items())), shards)

    def test_sharded_replay_matches_whole_trace_structure(self):
        """Sharded tier runs merge deterministically (two epochs in a
        pool == two epochs serial, bit for bit)."""
        key = self._key(shards=2)
        serial = simulate_run_key(key)
        again = simulate_run_key(key)
        assert serial.cycles == again.cycles
        assert serial.stats.flat() == again.stats.flat()

    def test_pool_matches_serial_with_tier_enabled(self):
        key = self._key(shards=2)
        serial = simulate_run_key(key)
        runner = ExperimentRunner(jobs=2, shards=2)
        assert runner.prefetch([key], jobs=2) == 1
        pooled = runner.lookup(key)
        assert pooled is not None
        assert pooled.cycles == serial.cycles
        assert pooled.stats.flat() == serial.stats.flat()


# -- tier mechanics -----------------------------------------------------------


def _tier_counters(result):
    return {name.split(".", 1)[1]: value
            for name, value in result.stats.flat().items()
            if name.startswith("tier.")}


class TestTierMechanics:
    def test_cache_mode_counter_conservation(self):
        result = run_simulation(
            _tier_system({"tier.mode": "cache",
                          "tier.size_bytes": 2 * MIB}),
            workload="sgemm", size="small")
        grp = _tier_counters(result)
        assert grp["fetches"] > 0
        assert grp["hits"] + grp["misses"] == grp["fetches"]
        assert grp["flat_hits"] == 0
        # Every miss made an RBLA decision.
        assert (grp["rbla_bypasses"] + grp["rbla_installs"]
                <= grp["misses"])
        assert (grp["slow_open_hits"] + grp["slow_row_conflicts"]
                == grp["misses"])

    def test_rbla_off_installs_every_miss(self):
        result = run_simulation(
            _tier_system({"tier.mode": "cache",
                          "tier.size_bytes": 2 * MIB,
                          "tier.rbla": False}),
            workload="sgemm", size="small")
        grp = _tier_counters(result)
        assert grp["fills"] == grp["misses"]
        assert grp["rbla_bypasses"] == 0

    def test_flat_mode_absorbs_small_working_set(self):
        # sgemm/small fits far inside a 2 MiB flat region, so every
        # below-LLC fetch is a tier hit and memory sees no reads.
        result = run_simulation(
            _tier_system({"tier.mode": "flat",
                          "tier.size_bytes": 2 * MIB}),
            workload="sgemm", size="small")
        grp = _tier_counters(result)
        assert grp["fetches"] > 0
        assert grp["flat_hits"] == grp["fetches"]
        assert grp["hits"] == 0 and grp["misses"] == 0
        assert result.stats.group("memory").get("bytes_read") == 0

    def test_flat_mode_speeds_up_memory_bound_run(self):
        plain = run_simulation(make_system("1P2L", 1.0),
                               workload="sgemm", size="small")
        flat = run_simulation(
            _tier_system({"tier.mode": "flat",
                          "tier.size_bytes": 2 * MIB}),
            workload="sgemm", size="small")
        assert flat.cycles < plain.cycles

    def test_tier_modes_experiment_report_shape(self):
        from repro.experiments.tier_modes import (
            LABELS,
            plan_tier_modes,
            run_tier_modes,
        )
        runner = ExperimentRunner(verbose=False)
        runner.prefetch(plan_tier_modes(["sgemm"], "small", 1.0))
        result = run_tier_modes(runner, ["sgemm"], "small", 1.0)
        report = result.report()
        for label in LABELS:
            assert label in report
            assert result.average_normalized(label) > 0
        assert "tier service" in report
        assert result.best_label() in LABELS
        # The run loop replays the plan as pure memo hits.
        assert runner.cache_info().misses == 6

    def test_multiprogram_shares_one_tier(self):
        from repro.core.multicore import run_multiprogrammed
        programs = [build_workload("sgemm", "small"),
                    build_workload("sobel", "small")]
        system = _tier_system(HYBRID, design="1P2L")
        result = run_multiprogrammed(system, programs)
        grp = {name.split(".", 1)[1]: value
               for name, value in result.stats.flat().items()
               if name.startswith("tier.")}
        assert grp["fetches"] > 0
