"""Property-based tests for the address/line geometry."""

from hypothesis import given, strategies as st

from repro.common.types import (
    LINES_PER_TILE,
    Orientation,
    WORDS_PER_LINE,
    intersecting_line,
    line_id_of,
    line_id_parts,
    line_word_offset,
    line_words,
    lines_overlap,
    make_line_id,
    perpendicular_lines,
    tile_coords,
    word_addr,
)

addrs = st.integers(min_value=0, max_value=2**40).map(lambda a: a & ~7)
orientations = st.sampled_from(list(Orientation))
tiles = st.integers(min_value=0, max_value=2**30)
indices = st.integers(min_value=0, max_value=7)


@given(addrs, orientations)
def test_address_word_is_in_its_line(addr, orientation):
    line = line_id_of(addr, orientation)
    assert (addr >> 3) in line_words(line)


@given(addrs, orientations)
def test_line_word_offset_inverts_line_words(addr, orientation):
    line = line_id_of(addr, orientation)
    words = line_words(line)
    assert len(words) == WORDS_PER_LINE
    for offset, word in enumerate(words):
        assert line_word_offset(line, word) == offset


@given(tiles, orientations, indices)
def test_line_id_roundtrip(tile, orientation, index):
    line = make_line_id(tile, orientation, index)
    assert line_id_parts(line) == (tile, orientation, index)


@given(addrs)
def test_intersecting_line_is_involution(addr):
    word = addr >> 3
    row = line_id_of(addr, Orientation.ROW)
    col = intersecting_line(row, word)
    assert line_id_parts(col)[1] is Orientation.COLUMN
    assert intersecting_line(col, word) == row


@given(addrs)
def test_row_and_column_lines_share_exactly_the_word_cell(addr):
    row = line_id_of(addr, Orientation.ROW)
    col = line_id_of(addr, Orientation.COLUMN)
    shared = set(line_words(row)) & set(line_words(col))
    assert shared == {addr >> 3}


@given(tiles, orientations, indices, tiles, orientations, indices)
def test_lines_overlap_iff_word_sets_intersect(t1, o1, i1, t2, o2, i2):
    a = make_line_id(t1, o1, i1)
    b = make_line_id(t2, o2, i2)
    geometric = lines_overlap(a, b)
    actual = bool(set(line_words(a)) & set(line_words(b)))
    assert geometric == actual
    assert lines_overlap(b, a) == geometric


@given(tiles, orientations, indices)
def test_perpendicular_lines_all_cross(tile, orientation, index):
    line = make_line_id(tile, orientation, index)
    perps = perpendicular_lines(line)
    assert len(perps) == LINES_PER_TILE
    for perp in perps:
        assert lines_overlap(line, perp)


@given(tiles, st.integers(min_value=0, max_value=7),
       st.integers(min_value=0, max_value=7))
def test_word_addr_tile_coords_roundtrip(tile, r, c):
    addr = word_addr(tile, r, c)
    assert tile_coords(addr) == (r, c)
    assert addr >> 9 == tile
