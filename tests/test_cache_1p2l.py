"""Unit tests for the 1P2L cache: orientation, probes, duplication."""

import pytest

from repro.common.errors import SimulationError
from repro.common.stats import StatRegistry
from repro.common.types import (
    AccessWidth,
    Orientation,
    Request,
    line_id_of,
    make_line_id,
    word_addr,
)
from repro.cache.cache_1p2l import Cache1P2L
from tests.conftest import FakeLower, small_config


def make_cache(mapping="different_set", size_kb=4, assoc=4, lower=None):
    stats = StatRegistry()
    cfg = small_config(size_kb=size_kb, assoc=assoc, logical_dims=2,
                       mapping=mapping)
    cache = Cache1P2L(cfg, 1, stats)
    lower = lower or FakeLower()
    cache.connect(lower)
    return cache, lower, stats


def req(addr, orientation=Orientation.ROW, width=AccessWidth.SCALAR,
        is_write=False):
    return Request(addr, orientation, width, is_write)


SETTLE = 100_000  # time far past any fill completion


class TestConstruction:
    def test_rejects_non_1p2l_config(self):
        with pytest.raises(SimulationError):
            Cache1P2L(small_config(), 1, StatRegistry())


class TestScalarReads:
    def test_miss_fills_preferred_orientation(self):
        cache, lower, _ = make_cache()
        addr = word_addr(0, 2, 3)
        cache.access(req(addr, Orientation.COLUMN), 0)
        assert lower.fetched_lines() == [
            line_id_of(addr, Orientation.COLUMN)]
        assert cache.contains(line_id_of(addr, Orientation.COLUMN))

    def test_misoriented_scalar_hit(self):
        """Scalar hits are word-presence based, ignoring alignment."""
        cache, lower, stats = make_cache()
        addr = word_addr(0, 2, 3)
        cache.access(req(addr, Orientation.ROW), 0)
        result = cache.access(req(addr, Orientation.COLUMN), SETTLE)
        assert result.hit_level == 1
        assert stats.group("cache.L1").get("misoriented_hits") == 1
        assert len(lower.fetches) == 1

    def test_misoriented_hit_pays_extra_probe(self):
        cache, _, _ = make_cache()
        addr = word_addr(0, 2, 3)
        cache.access(req(addr, Orientation.ROW), 0)
        preferred = cache.access(req(addr, Orientation.ROW), SETTLE)
        crossed = cache.access(req(addr, Orientation.COLUMN), SETTLE)
        assert crossed.latency == preferred.latency \
            + cache.config.tag_latency


class TestVectorReads:
    def test_vector_requires_correct_orientation(self):
        """A vector access must find the correctly-aligned line."""
        cache, lower, _ = make_cache()
        addr = word_addr(0, 2, 0)
        cache.access(req(addr, Orientation.ROW, AccessWidth.VECTOR), 0)
        result = cache.access(
            req(word_addr(0, 0, 3), Orientation.COLUMN,
                AccessWidth.VECTOR), SETTLE)
        assert result.hit_level == 0  # miss despite word overlap
        assert len(lower.fetches) == 2

    def test_vector_hit_on_exact_line(self):
        cache, _, _ = make_cache()
        addr = word_addr(0, 0, 3)
        cache.access(req(addr, Orientation.COLUMN, AccessWidth.VECTOR), 0)
        result = cache.access(req(addr, Orientation.COLUMN,
                                  AccessWidth.VECTOR), SETTLE)
        assert result.hit_level == 1


class TestDuplicationPolicy:
    def test_clean_duplicates_allowed(self):
        cache, _, _ = make_cache()
        addr = word_addr(0, 2, 3)
        cache.access(req(addr, Orientation.ROW, AccessWidth.VECTOR), 0)
        cache.access(req(addr, Orientation.COLUMN, AccessWidth.VECTOR),
                     SETTLE)
        assert cache.contains(line_id_of(addr, Orientation.ROW))
        assert cache.contains(line_id_of(addr, Orientation.COLUMN))
        cache.check_invariants()

    def test_write_to_duplicate_evicts_other_copy(self):
        cache, _, stats = make_cache()
        addr = word_addr(0, 2, 3)
        row = line_id_of(addr, Orientation.ROW)
        col = line_id_of(addr, Orientation.COLUMN)
        cache.access(req(addr, Orientation.ROW, AccessWidth.VECTOR), 0)
        cache.access(req(addr, Orientation.COLUMN, AccessWidth.VECTOR),
                     SETTLE)
        cache.access(req(addr, Orientation.ROW, is_write=True),
                     2 * SETTLE)
        assert cache.contains(row)
        assert not cache.contains(col)
        assert stats.group("cache.L1").get("duplicate_evictions") == 1
        cache.check_invariants()

    def test_modified_line_cleaned_before_duplicate_fill(self):
        """Fig. 9 "read to duplicate": Modified -> Clean + writeback."""
        cache, lower, stats = make_cache()
        addr = word_addr(0, 2, 3)
        row = line_id_of(addr, Orientation.ROW)
        cache.access(req(addr, Orientation.ROW, is_write=True), 0)
        assert cache.dirty_mask_of(row) != 0
        # Read the intersecting column as a vector: must fill the
        # column line, after pushing the row's modification down.
        cache.access(req(addr, Orientation.COLUMN, AccessWidth.VECTOR),
                     SETTLE)
        assert cache.dirty_mask_of(row) == 0  # cleaned, still present
        assert cache.contains(row)
        assert row in lower.written_lines()
        assert stats.group("cache.L1").get("duplicate_cleans") == 1
        cache.check_invariants()

    def test_vector_write_evicts_all_intersecting(self):
        cache, _, stats = make_cache()
        base = word_addr(0, 2, 0)
        # Fill three column lines crossing row 2.
        for c in (0, 3, 5):
            cache.access(req(word_addr(0, 0, c), Orientation.COLUMN,
                             AccessWidth.VECTOR), c * SETTLE)
        cache.access(req(base, Orientation.ROW, AccessWidth.VECTOR,
                         is_write=True), 10 * SETTLE)
        assert stats.group("cache.L1").get("duplicate_evictions") == 3
        cache.check_invariants()

    def test_scalar_write_to_sole_misoriented_copy_updates_it(self):
        cache, lower, _ = make_cache()
        addr = word_addr(0, 2, 3)
        col = line_id_of(addr, Orientation.COLUMN)
        cache.access(req(addr, Orientation.COLUMN), 0)  # fill column
        cache.access(req(addr, Orientation.ROW, is_write=True), SETTLE)
        # No new fill: the sole copy (column line) was modified.
        assert len(lower.fetches) == 1
        assert cache.dirty_mask_of(col) != 0
        cache.check_invariants()


class TestLatencyModel:
    def test_write_pays_double_probe(self):
        cache, _, _ = make_cache()
        addr = word_addr(0, 2, 3)
        cache.access(req(addr, Orientation.ROW), 0)
        read_hit = cache.access(req(addr, Orientation.ROW), SETTLE)
        write_hit = cache.access(req(addr, Orientation.ROW,
                                     is_write=True), 2 * SETTLE)
        assert write_hit.latency > read_hit.latency

    def test_vector_miss_pays_eight_extra_probes(self):
        cache, _, _ = make_cache()
        tag = cache.config.tag_latency
        scalar_miss = cache.access(req(word_addr(0, 0, 0)), 0)
        vector_miss = cache.access(
            req(word_addr(9, 0, 0), Orientation.ROW, AccessWidth.VECTOR),
            SETTLE)
        # Same fill latency below; the probe difference is (1+8)-2 tags.
        assert vector_miss.latency - scalar_miss.latency == 7 * tag


class TestMappings:
    def test_same_set_maps_tile_lines_together(self):
        cache, _, _ = make_cache(mapping="same_set")
        assert cache._set_number(make_line_id(5, Orientation.ROW, 1)) \
            == cache._set_number(make_line_id(5, Orientation.COLUMN, 7))

    def test_different_set_spreads_tile_lines(self):
        cache, _, _ = make_cache(mapping="different_set")
        sets = {cache._set_number(make_line_id(5, Orientation.ROW, i))
                % cache.config.num_sets for i in range(8)}
        assert len(sets) > 1


class TestWritebackProtocol:
    def test_incoming_writeback_evicts_duplicate_holders(self):
        cache, _, _ = make_cache()
        addr = word_addr(0, 2, 3)
        col = line_id_of(addr, Orientation.COLUMN)
        row = line_id_of(addr, Orientation.ROW)
        cache.access(req(addr, Orientation.COLUMN, AccessWidth.VECTOR), 0)
        cache.writeback_line(row, 0b1000, SETTLE)  # word at offset 3 = c
        assert not cache.contains(col)
        assert cache.dirty_mask_of(row) == 0b1000
        cache.check_invariants()

    def test_incoming_writeback_merges_into_present_line(self):
        cache, _, _ = make_cache()
        addr = word_addr(0, 2, 0)
        row = line_id_of(addr, Orientation.ROW)
        cache.access(req(addr, Orientation.ROW, AccessWidth.VECTOR), 0)
        cache.writeback_line(row, 0b11, SETTLE)
        assert cache.dirty_mask_of(row) == 0b11


class TestOccupancy:
    def test_orientation_occupancy_counts(self):
        cache, _, _ = make_cache()
        cache.access(req(word_addr(0, 0, 0), Orientation.ROW,
                         AccessWidth.VECTOR), 0)
        cache.access(req(word_addr(1, 0, 0), Orientation.COLUMN,
                         AccessWidth.VECTOR), SETTLE)
        cache.access(req(word_addr(2, 0, 0), Orientation.COLUMN,
                         AccessWidth.VECTOR), 2 * SETTLE)
        assert cache.orientation_occupancy() == (1, 2)
