"""Unit tests for configuration validation and derived properties."""

import pytest

from repro.common.config import (
    CacheLevelConfig,
    CpuConfig,
    MemoryConfig,
    PrefetcherConfig,
    SystemConfig,
)
from repro.common.errors import ConfigError
from tests.conftest import small_config


class TestCacheLevelConfig:
    def test_frame_size_line_for_1d(self):
        cfg = small_config()
        assert cfg.frame_bytes == 64
        assert cfg.num_frames == 16
        assert cfg.num_sets == 4

    def test_frame_size_tile_for_2p(self):
        cfg = small_config(size_kb=4, assoc=2, logical_dims=2,
                           physical_dims=2)
        assert cfg.frame_bytes == 512
        assert cfg.num_frames == 8
        assert cfg.num_sets == 4

    def test_hit_latency_parallel_vs_sequential(self):
        parallel = small_config(tag_latency=2, data_latency=3,
                                sequential_tag_data=False)
        sequential = small_config(tag_latency=2, data_latency=3,
                                  sequential_tag_data=True)
        assert parallel.hit_latency == 3
        assert sequential.hit_latency == 5

    def test_taxonomy_label(self):
        assert small_config().taxonomy == "1P1L"
        assert small_config(logical_dims=2).taxonomy == "1P2L"
        assert small_config(size_kb=4, assoc=2, logical_dims=2,
                            physical_dims=2).taxonomy == "2P2L"

    def test_rejects_2p1l(self):
        with pytest.raises(ConfigError):
            small_config(logical_dims=1, physical_dims=2)

    def test_rejects_bad_mapping(self):
        with pytest.raises(ConfigError):
            small_config(mapping="diagonal")

    def test_rejects_indivisible_assoc(self):
        with pytest.raises(ConfigError):
            small_config(size_kb=1, assoc=5)

    def test_rejects_non_frame_multiple_size(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="x", size_bytes=100, assoc=1,
                             tag_latency=1, data_latency=1)

    def test_non_power_of_two_sets_allowed(self):
        # The paper's 1.5 MB LLC point needs 48-set-like geometries.
        cfg = CacheLevelConfig(name="L3", size_bytes=24 * 1024, assoc=8,
                               tag_latency=1, data_latency=1)
        assert cfg.num_sets == 48


class TestMemoryConfig:
    def test_defaults_valid(self):
        MemoryConfig()

    def test_scaled_applies_speed_factor(self):
        cfg = MemoryConfig(speed_factor=2.0)
        assert cfg.scaled(90) == 45
        assert cfg.scaled(1) == 1  # never below one cycle

    def test_faster_compounds(self):
        cfg = MemoryConfig().faster(1.6)
        assert cfg.speed_factor == pytest.approx(1.6)
        assert cfg.faster(2.0).speed_factor == pytest.approx(3.2)

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ConfigError):
            MemoryConfig(write_queue_high=4, write_queue_low=8)

    def test_rejects_non_power_of_two_channels(self):
        with pytest.raises(ConfigError):
            MemoryConfig(channels=3)


class TestPrefetcherConfig:
    def test_rejects_zero_degree(self):
        with pytest.raises(ConfigError):
            PrefetcherConfig(degree=0)


class TestCpuConfig:
    def test_rejects_zero_window(self):
        with pytest.raises(ConfigError):
            CpuConfig(mlp_window=0)


class TestSystemConfig:
    def test_llc_is_last_level(self):
        sys_cfg = SystemConfig(levels=[small_config("L1"),
                                       small_config("L2", size_kb=4)])
        assert sys_cfg.llc.name == "L2"

    def test_rejects_shrinking_hierarchy(self):
        with pytest.raises(ConfigError):
            SystemConfig(levels=[small_config("L1", size_kb=4),
                                 small_config("L2", size_kb=1)])

    def test_rejects_2d_logical_above_1d(self):
        with pytest.raises(ConfigError):
            SystemConfig(levels=[
                small_config("L1", logical_dims=2),
                small_config("L2", size_kb=4, logical_dims=1),
            ])

    def test_describe_mentions_taxonomy_chain(self):
        sys_cfg = SystemConfig(
            levels=[small_config("L1", logical_dims=2),
                    small_config("L2", size_kb=4, logical_dims=2)],
            name="demo")
        assert "1P2L/1P2L" in sys_cfg.describe()

    def test_logical_dims_comes_from_l1(self):
        sys_cfg = SystemConfig(levels=[small_config("L1", logical_dims=2),
                                       small_config("L2", size_kb=4,
                                                    logical_dims=2)])
        assert sys_cfg.logical_dims == 2
