"""Unit tests for the MDA address decode (paper Fig. 8)."""

from repro.common.config import MemoryConfig
from repro.common.types import Orientation, line_id_of, make_line_id, word_addr
from repro.mem.decoder import AddressDecoder


def make_decoder(**kwargs) -> AddressDecoder:
    return AddressDecoder(MemoryConfig(**kwargs))


class TestTileInterleave:
    def test_consecutive_tiles_rotate_channels(self):
        dec = make_decoder(channels=4)
        channels = [dec.decode_line(make_line_id(t, Orientation.ROW, 0))
                    .channel for t in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_row_and_column_of_same_tile_share_bank(self):
        """The tile is the unit of interleave: a column line never
        splits across banks, so column fetches stay one bank operation.
        """
        dec = make_decoder()
        for tile in (0, 5, 100):
            row = dec.decode_line(make_line_id(tile, Orientation.ROW, 3))
            col = dec.decode_line(make_line_id(tile, Orientation.COLUMN,
                                               6))
            assert (row.channel, row.rank, row.bank) == \
                (col.channel, col.rank, col.bank)

    def test_lines_within_tile_share_location(self):
        dec = make_decoder()
        locs = {
            (dec.decode_line(make_line_id(9, Orientation.ROW, i)).channel,
             dec.decode_line(make_line_id(9, Orientation.ROW, i)).rank,
             dec.decode_line(make_line_id(9, Orientation.ROW, i)).bank)
            for i in range(8)
        }
        assert len(locs) == 1


class TestBufferKeys:
    def test_row_buffer_key_spans_tile_columns(self):
        """Row lines with the same (tile-row, r) across different tile
        columns of a bank share a physical row -> same buffer key."""
        dec = make_decoder(channels=1, banks_per_rank=1,
                           tile_cols_per_bank=8)
        # Tiles 0 and 1 are tile-columns 0 and 1 of the same bank.
        a = dec.decode_line(make_line_id(0, Orientation.ROW, 2))
        b = dec.decode_line(make_line_id(1, Orientation.ROW, 2))
        assert (a.channel, a.bank) == (b.channel, b.bank)
        assert a.buffer_key == b.buffer_key

    def test_col_buffer_key_differs_across_tile_columns(self):
        dec = make_decoder(channels=1, banks_per_rank=1,
                           tile_cols_per_bank=8)
        a = dec.decode_line(make_line_id(0, Orientation.COLUMN, 2))
        b = dec.decode_line(make_line_id(1, Orientation.COLUMN, 2))
        assert a.buffer_key != b.buffer_key

    def test_col_buffer_key_spans_tile_rows(self):
        """Column lines with the same (tile-col, c) across tile rows
        share a physical column."""
        dec = make_decoder(channels=1, banks_per_rank=1,
                           tile_cols_per_bank=8)
        a = dec.decode_line(make_line_id(0, Orientation.COLUMN, 2))
        b = dec.decode_line(make_line_id(8, Orientation.COLUMN, 2))
        assert (a.channel, a.bank) == (b.channel, b.bank)
        assert a.buffer_key == b.buffer_key

    def test_different_rows_different_keys(self):
        dec = make_decoder(channels=1, banks_per_rank=1)
        a = dec.decode_line(make_line_id(0, Orientation.ROW, 2))
        b = dec.decode_line(make_line_id(0, Orientation.ROW, 3))
        assert a.buffer_key != b.buffer_key


class TestBankKey:
    def test_bank_key_dense_and_unique(self):
        cfg = MemoryConfig(channels=2, ranks_per_channel=1,
                           banks_per_rank=4)
        dec = AddressDecoder(cfg)
        keys = set()
        for tile in range(cfg.channels * cfg.banks_per_rank):
            decoded = dec.decode_line(make_line_id(tile, Orientation.ROW,
                                                   0))
            keys.add(dec.bank_key(decoded))
        assert keys == set(range(8))

    def test_decode_agrees_with_line_id_of(self):
        dec = make_decoder()
        addr = word_addr(13, 4, 6)
        row_line = line_id_of(addr, Orientation.ROW)
        decoded = dec.decode_line(row_line)
        assert decoded.tile == 13
        assert decoded.index == 4
        assert decoded.orientation is Orientation.ROW
