"""Property-based tests at the whole-system level."""

from hypothesis import given, settings, strategies as st

from repro.common.config import CpuConfig, MemoryConfig
from repro.common.stats import StatRegistry
from repro.common.types import (
    AccessWidth,
    Orientation,
    Request,
    word_addr,
)
from repro.cache.hierarchy import CacheHierarchy
from repro.core.cpu import TraceDrivenCpu
from repro.core.system import make_system

requests = st.builds(
    Request,
    addr=st.builds(word_addr,
                   st.integers(min_value=0, max_value=15),
                   st.integers(min_value=0, max_value=7),
                   st.integers(min_value=0, max_value=7)),
    orientation=st.sampled_from(list(Orientation)),
    width=st.sampled_from(list(AccessWidth)),
    is_write=st.booleans(),
)

traces = st.lists(requests, min_size=1, max_size=40)


def run(design, trace, mlp=4):
    system = make_system(design, cpu=CpuConfig(mlp_window=mlp))
    stats = StatRegistry()
    hierarchy = CacheHierarchy(system, stats)
    cycles = TraceDrivenCpu(system.cpu, hierarchy, stats).run(
        iter(trace))
    return cycles, stats, hierarchy


@settings(max_examples=30, deadline=None)
@given(traces)
def test_mda_designs_accept_any_trace(trace):
    """No request sequence crashes any 2-D design, and cycle counts
    are positive and bounded by a generous worst case."""
    for design in ("1P2L", "1P2L_SameSet", "1P2L_Dyn", "2P2L",
                   "2P2L_Dense"):
        cycles, stats, hierarchy = run(design, trace)
        assert cycles > 0
        # Worst case: every op a serialized memory round trip.
        assert cycles < len(trace) * 3000 + 5000
        for level in hierarchy.levels:
            if hasattr(level, "check_invariants"):
                level.check_invariants()


@settings(max_examples=30, deadline=None)
@given(traces)
def test_hits_plus_misses_equals_accesses(trace):
    _, stats, _ = run("1P2L", trace)
    grp = stats.group("cache.L1")
    assert grp.get("hits") + grp.get("misses") == \
        grp.get("demand_accesses") == len(trace)


@settings(max_examples=30, deadline=None)
@given(traces)
def test_wider_window_never_materially_slower(trace):
    """A wider MLP window may not slow a trace down beyond the
    pipelined-hit threshold.

    Strict monotonicity does not hold: a read served while its line's
    fill is still in flight is charged its real completion
    (``ready + hit latency``) and occupies the window, while the same
    read issued after the fill (as a narrow, stalling window does) is
    a pipelined hit that retires at issue and never extends the
    total.  That asymmetry bounds any inversion by the CPU's
    pipelined-hit threshold, which is what we assert.
    """
    narrow, _, hierarchy = run("1P2L", trace, mlp=1)
    wide, _, _ = run("1P2L", trace, mlp=16)
    l1_cfg = hierarchy.l1.config
    pipelined = l1_cfg.hit_latency + 3 * l1_cfg.tag_latency
    assert wide <= narrow + pipelined


@settings(max_examples=20, deadline=None)
@given(traces, st.floats(min_value=1.1, max_value=4.0))
def test_faster_memory_never_slower(trace, factor):
    system_slow = make_system("1P2L")
    system_fast = make_system(
        "1P2L", memory=MemoryConfig().faster(factor))
    stats_a, stats_b = StatRegistry(), StatRegistry()
    slow = TraceDrivenCpu(system_slow.cpu,
                          CacheHierarchy(system_slow, stats_a),
                          stats_a).run(iter(trace))
    fast = TraceDrivenCpu(system_fast.cpu,
                          CacheHierarchy(system_fast, stats_b),
                          stats_b).run(iter(trace))
    assert fast <= slow
