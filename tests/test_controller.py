"""Unit tests for the FRFCFS-WQF memory controller."""

from repro.common.config import MemoryConfig
from repro.common.stats import StatRegistry
from repro.common.types import Orientation, make_line_id
from repro.mem.controller import MemoryController


def make_controller(**kwargs):
    cfg = MemoryConfig(**kwargs)
    stats = StatRegistry()
    return MemoryController(cfg, stats), cfg, stats


def row_line(tile: int, index: int = 0) -> int:
    return make_line_id(tile, Orientation.ROW, index)


def col_line(tile: int, index: int = 0) -> int:
    return make_line_id(tile, Orientation.COLUMN, index)


class TestReads:
    def test_read_latency_includes_activation_and_critical_word(self):
        ctrl, cfg, _ = make_controller()
        done = ctrl.read_line(row_line(0), now=0)
        expected_bank = cfg.activate_cycles + cfg.buffer_access_cycles
        critical = max(1, cfg.burst_cycles // 8)
        assert done == expected_bank + critical

    def test_buffer_hit_read_is_faster(self):
        ctrl, cfg, _ = make_controller()
        first = ctrl.read_line(row_line(0), 0)
        second = ctrl.read_line(row_line(0), first)
        assert second - first < first

    def test_different_channels_overlap(self):
        ctrl, cfg, _ = make_controller(channels=2)
        a = ctrl.read_line(row_line(0), 0)  # channel 0
        b = ctrl.read_line(row_line(1), 0)  # channel 1
        assert abs(a - b) <= 1  # independent banks and buses

    def test_same_bank_serializes(self):
        ctrl, cfg, _ = make_controller(channels=1, banks_per_rank=1,
                                       tile_cols_per_bank=1)
        a = ctrl.read_line(row_line(0, 0), 0)
        b = ctrl.read_line(row_line(1, 0), 0)  # same bank, other row
        assert b > a

    def test_stats_count_bytes(self):
        ctrl, _, stats = make_controller()
        ctrl.read_line(row_line(0), 0)
        ctrl.read_line(row_line(1), 0)
        assert stats.group("memory").get("bytes_read") == 128


class TestWriteQueue:
    def test_write_ack_is_immediate(self):
        ctrl, _, _ = make_controller()
        assert ctrl.write_line(row_line(0), now=10) == 11

    def test_writes_buffer_until_high_watermark(self):
        ctrl, cfg, stats = make_controller(channels=1,
                                           write_queue_high=4,
                                           write_queue_low=2)
        for tile in range(3):
            ctrl.write_line(row_line(tile), 0)
        assert ctrl.pending_writes() == 3
        assert stats.group("memory").get("wq_drain_episodes") == 0
        ctrl.write_line(row_line(3), 0)
        # Drained down to the low watermark.
        assert ctrl.pending_writes() == cfg.write_queue_low
        assert stats.group("memory").get("wq_drain_episodes") == 1

    def test_drain_all_empties_queues(self):
        ctrl, _, _ = make_controller()
        for tile in range(5):
            ctrl.write_line(row_line(tile), 0)
        horizon = ctrl.drain_all(0)
        assert ctrl.pending_writes() == 0
        assert horizon > 0


class TestOverlapOrdering:
    def test_read_drains_overlapping_write_first(self):
        """A read to a column that crosses a queued row write must see
        that write drained first (paper Section IV-B ordering)."""
        ctrl, _, stats = make_controller(channels=1)
        ctrl.write_line(row_line(0, index=2), 0)
        clean_read = ctrl.read_line(col_line(1, index=3), 0)
        # Different tile: the queued write is untouched.
        assert ctrl.pending_writes() == 1
        ctrl.read_line(col_line(0, index=3), clean_read)
        assert ctrl.pending_writes() == 0
        assert stats.group("memory").get("ordering_drains") == 1

    def test_same_line_write_then_read_ordered(self):
        ctrl, _, stats = make_controller(channels=1)
        line = row_line(7, 4)
        ctrl.write_line(line, 0)
        ctrl.read_line(line, 0)
        assert ctrl.pending_writes() == 0
        assert stats.group("memory").get("ordering_drains") == 1

    def test_nonoverlapping_write_not_drained(self):
        ctrl, _, stats = make_controller(channels=1)
        ctrl.write_line(row_line(0, 0), 0)
        ctrl.read_line(row_line(0, 1), 0)  # same tile, parallel lines
        assert ctrl.pending_writes() == 1


class TestIdleDrain:
    def test_queued_writes_drain_into_idle_time(self):
        """A write queued long before the next request retires in the
        idle window instead of lingering (opportunistic FR-FCFS)."""
        ctrl, _, stats = make_controller(channels=1)
        ctrl.write_line(row_line(0), 0)
        assert ctrl.pending_writes() == 1
        # A much later read to an unrelated tile triggers the idle
        # drain first.
        ctrl.read_line(row_line(50), 100_000)
        assert ctrl.pending_writes() == 0
        assert stats.group("memory").get("idle_drains") == 1
        assert stats.group("memory").get("ordering_drains") == 0

    def test_idle_drained_write_does_not_slow_late_read(self):
        ctrl_a, cfg, _ = make_controller(channels=1)
        baseline = ctrl_a.read_line(row_line(50), 100_000)
        ctrl_b, _, _ = make_controller(channels=1)
        ctrl_b.write_line(row_line(0), 0)  # drains in the idle gap
        with_write = ctrl_b.read_line(row_line(50), 100_000)
        assert with_write == baseline

    def test_back_to_back_write_not_idle_drained(self):
        """No idle time has passed: the write stays queued."""
        ctrl, _, _ = make_controller(channels=1)
        ctrl.read_line(row_line(1), 0)  # occupies the bus
        ctrl.write_line(row_line(0), 1)
        assert ctrl.pending_writes() == 1


class TestReset:
    def test_reset_restores_initial_state(self):
        ctrl, _, _ = make_controller()
        ctrl.write_line(row_line(0), 0)
        ctrl.read_line(row_line(1), 0)
        ctrl.reset()
        assert ctrl.pending_writes() == 0
        assert all(state == (None, None)
                   for state in ctrl.bank_states().values())
