"""Unit tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    FifoSet,
    LruSet,
    RandomSet,
    make_replacement_set,
)


class TestLru:
    def test_victim_is_least_recent(self):
        lru = LruSet()
        for key in "abc":
            lru.insert(key)
        assert lru.victim() == "a"
        lru.touch("a")
        assert lru.victim() == "b"

    def test_remove_forgets_key(self):
        lru = LruSet()
        lru.insert("a")
        lru.insert("b")
        lru.remove("a")
        assert lru.victim() == "b"
        assert len(lru) == 1

    def test_keys_in_recency_order(self):
        lru = LruSet()
        for key in "abc":
            lru.insert(key)
        lru.touch("a")
        assert lru.keys() == ["b", "c", "a"]


class TestFifo:
    def test_touch_does_not_refresh(self):
        fifo = FifoSet()
        for key in "abc":
            fifo.insert(key)
        fifo.touch("a")
        assert fifo.victim() == "a"


class TestRandom:
    def test_victim_is_member(self):
        rnd = RandomSet(seed=7)
        for key in "abcd":
            rnd.insert(key)
        for _ in range(10):
            assert rnd.victim() in "abcd"

    def test_deterministic_with_seed(self):
        a = RandomSet(seed=3)
        b = RandomSet(seed=3)
        for key in "abcd":
            a.insert(key)
            b.insert(key)
        assert [a.victim() for _ in range(5)] == \
            [b.victim() for _ in range(5)]


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_replacement_set("lru"), LruSet)
        assert isinstance(make_replacement_set("fifo"), FifoSet)
        assert isinstance(make_replacement_set("random", seed=1),
                          RandomSet)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_replacement_set("plru")
