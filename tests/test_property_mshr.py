"""Property-based tests for the MSHR file under random op sequences."""

from hypothesis import given, settings, strategies as st

from repro.common.stats import StatGroup
from repro.common.types import Orientation, make_line_id
from repro.cache.mshr import MshrFile

line_ids = st.builds(make_line_id,
                     st.integers(min_value=0, max_value=7),
                     st.sampled_from(list(Orientation)),
                     st.integers(min_value=0, max_value=7))

# An op is (line, completion_delta): allocate+record with a monotonic
# clock advancing a random amount per step.
ops = st.lists(st.tuples(line_ids,
                         st.integers(min_value=1, max_value=300),
                         st.integers(min_value=0, max_value=50)),
               min_size=1, max_size=50)


@settings(max_examples=80, deadline=None)
@given(ops, st.integers(min_value=1, max_value=8))
def test_capacity_never_exceeded(sequence, capacity):
    mshr = MshrFile(capacity, StatGroup("m"))
    now = 0
    for line, latency, advance in sequence:
        now += advance
        if mshr.outstanding_fill(line, now) is None:
            issue = mshr.allocate(line, now)
            assert issue >= now
            mshr.record(line, issue + latency, 0)
        assert len(mshr) <= capacity


@settings(max_examples=80, deadline=None)
@given(ops)
def test_barrier_never_before_now(sequence):
    mshr = MshrFile(8, StatGroup("m"))
    now = 0
    for line, latency, advance in sequence:
        now += advance
        barrier = mshr.ordering_barrier(line, now)
        assert barrier >= now
        if mshr.outstanding_fill(line, now) is None:
            issue = mshr.allocate(line, max(now, barrier))
            mshr.record(line, issue + latency, 0)


@settings(max_examples=80, deadline=None)
@given(ops)
def test_outstanding_entries_have_future_completions(sequence):
    """After lazy retirement, every visible entry completes in the
    future."""
    mshr = MshrFile(8, StatGroup("m"))
    now = 0
    for line, latency, advance in sequence:
        now += advance
        if mshr.outstanding_fill(line, now) is None:
            issue = mshr.allocate(line, now)
            mshr.record(line, issue + latency, 0)
        visible = mshr.outstanding_fill(line, now)
        if visible is not None:
            completion, _ = visible
            assert completion > now or completion >= now
        mshr.retire_completed(now)
        for other, _, _ in sequence[:3]:
            entry = mshr.outstanding_fill(other, now)
            if entry is not None:
                assert entry[0] > now
