"""Unit tests for the memory layouts."""

import pytest

from repro.common.errors import AddressError
from repro.common.types import (
    Orientation,
    line_id_of,
    tile_coords,
    tile_id,
)
from repro.sw.layout import LinearLayout, TiledLayout, make_layout
from repro.sw.program import ArrayDecl


def arrays(*shapes):
    return [ArrayDecl(name, rows, cols)
            for name, rows, cols in shapes]


class TestLinearLayout:
    def test_row_major_contiguous(self):
        layout = LinearLayout(arrays(("A", 16, 16)))
        base = layout.address_of("A", 0, 0)
        assert layout.address_of("A", 0, 1) == base + 8
        assert layout.address_of("A", 1, 0) == base + 16 * 8

    def test_pitch_padded_to_line(self):
        layout = LinearLayout(arrays(("A", 4, 5)))
        assert layout.pitch_words("A") == 8
        assert layout.padding_bytes() > 0

    def test_arrays_do_not_overlap(self):
        layout = LinearLayout(arrays(("A", 8, 8), ("B", 8, 8)))
        a_last = layout.address_of("A", 7, 7)
        b_first = layout.address_of("B", 0, 0)
        assert b_first > a_last

    def test_bounds_checked(self):
        layout = LinearLayout(arrays(("A", 4, 4)))
        with pytest.raises(AddressError):
            layout.address_of("A", 4, 0)
        with pytest.raises(AddressError):
            layout.address_of("A", 0, -1)
        with pytest.raises(AddressError):
            layout.address_of("B", 0, 0)


class TestTiledLayout:
    def test_8x8_block_maps_to_one_tile(self):
        layout = TiledLayout(arrays(("A", 16, 16)))
        tiles = {tile_id(layout.address_of("A", i, j))
                 for i in range(8) for j in range(8)}
        assert len(tiles) == 1

    def test_in_tile_coordinates_match_logical(self):
        layout = TiledLayout(arrays(("A", 16, 16)))
        for i, j in ((0, 0), (3, 5), (7, 7), (9, 12)):
            addr = layout.address_of("A", i, j)
            assert tile_coords(addr) == (i % 8, j % 8)

    def test_column_alignment_property(self):
        """Elements (i, j) and (i+1, j) in the same 8-row band map to
        the same column line — the paper's MDA-compliance requirement."""
        layout = TiledLayout(arrays(("A", 32, 32)))
        for i in (0, 3, 9):
            a = layout.address_of("A", i, 5)
            b = layout.address_of("A", i + 1, 5)
            assert line_id_of(a, Orientation.COLUMN) == \
                line_id_of(b, Orientation.COLUMN)

    def test_row_alignment_property(self):
        layout = TiledLayout(arrays(("A", 32, 32)))
        a = layout.address_of("A", 5, 0)
        b = layout.address_of("A", 5, 7)
        assert line_id_of(a, Orientation.ROW) == \
            line_id_of(b, Orientation.ROW)

    def test_padding_for_non_multiple_shapes(self):
        layout = TiledLayout(arrays(("A", 9, 9)))
        # 9x9 pads to 16x16 = 4 tiles.
        assert layout.footprint_bytes() == 4 * 512
        assert layout.data_bytes() == 81 * 8

    def test_arrays_tile_disjoint(self):
        layout = TiledLayout(arrays(("A", 8, 8), ("B", 8, 8)))
        assert layout.tile_of("A", 0, 0) != layout.tile_of("B", 0, 0)

    def test_tile_grid_row_major(self):
        layout = TiledLayout(arrays(("A", 16, 16)))
        t00 = layout.tile_of("A", 0, 0)
        t01 = layout.tile_of("A", 0, 8)
        t10 = layout.tile_of("A", 8, 0)
        assert t01 == t00 + 1
        assert t10 == t00 + 2


class TestFactory:
    def test_matches_logical_dims(self):
        decls = arrays(("A", 8, 8))
        assert isinstance(make_layout(decls, 1), LinearLayout)
        assert isinstance(make_layout(decls, 2), TiledLayout)

    def test_duplicate_array_names_rejected(self):
        from repro.common.errors import ProgramError
        with pytest.raises(ProgramError):
            LinearLayout(arrays(("A", 4, 4), ("A", 4, 4)))
