"""The packed columnar trace engine.

Covers the ISSUE acceptance criteria: the 64-bit packed encoding
round-trips every representable request (property-based), the packed
file format and persistent trace store are durable (corrupt reads are
misses, writes are atomic), ``run_packed`` replay is bit-identical to
the object path across every design x workload pair, and a cold
parallel sweep generates each distinct trace at most once per process
tree.
"""

from __future__ import annotations

import io
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ProgramError
from repro.common.types import (
    AccessWidth,
    Orientation,
    PACKED_ADDR_LIMIT,
    PACKED_REF_LIMIT,
    PackedTrace,
    Request,
    pack_request,
    unpack_request,
)
from repro.core.simulator import (
    clear_trace_cache,
    configure_trace_store,
    run_simulation,
    run_trace,
    trace_cache_info,
)
from repro.core.system import DESIGN_NAMES, make_system
from repro.sw.tracefile import (
    read_packed_trace,
    read_trace,
    write_packed_trace,
    write_trace,
)
from repro.sw.tracegen import generate_packed_trace, generate_trace
from repro.sw.tracestore import TRACE_STORE_VERSION, TraceStore
from repro.workloads.registry import build_workload

requests = st.builds(
    Request,
    addr=st.integers(min_value=0,
                     max_value=(PACKED_ADDR_LIMIT // 8) - 1).map(
        lambda w: w * 8),
    orientation=st.sampled_from(list(Orientation)),
    width=st.sampled_from(list(AccessWidth)),
    is_write=st.booleans(),
    ref_id=st.integers(min_value=0, max_value=PACKED_REF_LIMIT - 1),
)


@pytest.fixture(autouse=True)
def _detach_trace_store():
    """Tests configure the process-global store; always detach after."""
    yield
    configure_trace_store(None)
    clear_trace_cache()


class TestPackedEncoding:
    @settings(max_examples=200, deadline=None)
    @given(requests)
    def test_pack_unpack_round_trip(self, req):
        word = pack_request(req)
        assert 0 <= word < (1 << 64)
        assert unpack_request(word) == req

    @settings(max_examples=100, deadline=None)
    @given(st.lists(requests, max_size=64))
    def test_trace_bytes_round_trip(self, reqs):
        trace = PackedTrace.from_requests(reqs)
        assert len(trace) == len(reqs)
        assert list(trace) == reqs
        assert PackedTrace.from_bytes(trace.to_bytes()) == trace

    @settings(max_examples=50, deadline=None)
    @given(st.lists(requests, max_size=32), st.text(max_size=16))
    def test_packed_file_round_trip(self, reqs, name):
        trace = PackedTrace.from_requests(reqs)
        buffer = io.BytesIO()
        count = write_packed_trace(trace, buffer, name=name)
        assert count == len(reqs)
        buffer.seek(0)
        got_name, got = read_packed_trace(buffer)
        assert got_name == name
        assert got == trace

    def test_unaligned_address_rejected(self):
        req = Request(12, Orientation.ROW, AccessWidth.SCALAR,
                      False, 0)
        with pytest.raises(ValueError):
            pack_request(req)

    def test_out_of_range_address_rejected(self):
        req = Request(PACKED_ADDR_LIMIT, Orientation.ROW,
                      AccessWidth.SCALAR, False, 0)
        with pytest.raises(ValueError):
            pack_request(req)

    def test_oversized_ref_id_rejected(self):
        req = Request(0, Orientation.ROW, AccessWidth.SCALAR,
                      False, PACKED_REF_LIMIT)
        with pytest.raises(ValueError):
            pack_request(req)

    def test_indexing_decodes_single_requests(self):
        reqs = [Request(8 * i, Orientation.COLUMN, AccessWidth.VECTOR,
                        bool(i & 1), i) for i in range(5)]
        trace = PackedTrace.from_requests(reqs)
        assert trace[3] == reqs[3]
        assert trace[-1] == reqs[-1]

    def test_matches_object_trace_generation(self):
        program = build_workload("sobel", "small")
        objects = list(generate_trace(program, 2))
        packed = generate_packed_trace(program, 2)
        assert list(packed) == objects


class TestPackedFileFormat:
    def _packed_bytes(self, reqs, name="t"):
        buffer = io.BytesIO()
        write_packed_trace(PackedTrace.from_requests(reqs), buffer,
                           name=name)
        return buffer.getvalue()

    def test_bad_magic_rejected(self):
        with pytest.raises(ProgramError):
            read_packed_trace(io.BytesIO(b"NOTATRACE" + b"\0" * 32))

    def test_truncated_header_rejected(self):
        blob = self._packed_bytes([])
        with pytest.raises(ProgramError):
            read_packed_trace(io.BytesIO(blob[:10]))

    def test_truncated_payload_rejected(self):
        reqs = [Request(8 * i, Orientation.ROW, AccessWidth.SCALAR,
                        False, i) for i in range(4)]
        blob = self._packed_bytes(reqs)
        with pytest.raises(ProgramError):
            read_packed_trace(io.BytesIO(blob[:-8]))

    def test_version_mismatch_rejected(self):
        blob = bytearray(self._packed_bytes([]))
        # The version field sits right after the 8-byte magic.
        blob[8] ^= 0xFF
        with pytest.raises(ProgramError):
            read_packed_trace(io.BytesIO(bytes(blob)))

    def test_text_and_packed_formats_interconvert(self, tmp_path):
        program = build_workload("sobel", "small")
        packed = generate_packed_trace(program, 2)
        text_path = str(tmp_path / "t.trc")
        write_trace(iter(packed), text_path)
        assert PackedTrace.from_requests(read_trace(text_path)) == packed


class TestTraceStore:
    def test_store_round_trip(self, tmp_path):
        store = TraceStore(str(tmp_path))
        trace = generate_packed_trace(build_workload("sobel", "small"), 2)
        assert store.load("sobel", "small", 2) is None
        store.store("sobel", "small", 2, "sobel", trace)
        assert len(store) == 1
        assert store.load("sobel", "small", 2) == ("sobel", trace)

    def test_load_is_zero_copy(self, tmp_path):
        # Store hits come back as a read-only memoryview over an mmap
        # of the entry, not a copied array (PR-9).
        store = TraceStore(str(tmp_path))
        trace = generate_packed_trace(build_workload("sobel", "small"), 2)
        store.store("sobel", "small", 2, "sobel", trace)
        _, loaded = store.load("sobel", "small", 2)
        assert isinstance(loaded.words, memoryview)
        assert loaded.words.readonly
        assert loaded == trace

    def test_versioned_filenames(self, tmp_path):
        store = TraceStore(str(tmp_path))
        path = store.path_for("sgemm", "large", 2)
        assert f".v{TRACE_STORE_VERSION}.mdat" in os.path.basename(path)

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = TraceStore(str(tmp_path))
        trace = generate_packed_trace(build_workload("sobel", "small"), 2)
        store.store("sobel", "small", 2, "sobel", trace)
        path = store.path_for("sobel", "small", 2)
        with open(path, "r+b") as handle:
            handle.truncate(12)
        assert store.load("sobel", "small", 2) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        store = TraceStore(str(tmp_path))
        trace = generate_packed_trace(build_workload("sobel", "small"), 2)
        store.store("sobel", "small", 2, "sobel", trace)
        assert all(name.endswith(".mdat")
                   for name in os.listdir(str(tmp_path))
                   if name != ".lock")

    def test_clear_removes_entries(self, tmp_path):
        store = TraceStore(str(tmp_path))
        trace = generate_packed_trace(build_workload("sobel", "small"), 2)
        store.store("sobel", "small", 2, "sobel", trace)
        store.store("sobel", "small", 1, "sobel", trace)
        assert store.clear() == 2
        assert len(store) == 0

    def test_simulator_reads_through_store(self, tmp_path):
        clear_trace_cache()
        configure_trace_store(str(tmp_path))
        first = run_simulation(make_system("1P2L", 1.0),
                               workload="sobel", size="small")
        info = trace_cache_info()
        assert info["generated"] == 1
        assert info["store_misses"] == 1
        # A fresh process (simulated by clearing the memo) now hits the
        # persistent store instead of regenerating.
        clear_trace_cache()
        second = run_simulation(make_system("1P2L", 1.0),
                                workload="sobel", size="small")
        info = trace_cache_info()
        assert info["store_hits"] == 1
        assert info["generated"] == 0
        assert first.cycles == second.cycles
        assert first.stats.flat() == second.stats.flat()


class TestPackedReplayParity:
    @pytest.mark.parametrize("design", DESIGN_NAMES)
    @pytest.mark.parametrize("workload", ["sobel", "htap1"])
    def test_bit_identical_to_object_path(self, design, workload):
        system = make_system(design, 1.0)
        program = build_workload(workload, "small")
        dims = system.logical_dims
        objects = list(generate_trace(program, dims))
        packed = generate_packed_trace(program, dims)

        via_objects = run_trace(system, objects, name="t")
        via_packed = run_trace(make_system(design, 1.0), packed,
                               name="t")
        assert via_packed.cycles == via_objects.cycles
        assert via_packed.ops == via_objects.ops
        assert via_packed.stats.flat() == via_objects.stats.flat()

    def test_run_dispatches_packed_traces(self):
        # cpu.run() hands a PackedTrace to the specialized loop; both
        # entry points must agree.
        system = make_system("1P2L", 1.0)
        packed = generate_packed_trace(build_workload("sobel", "small"),
                                       system.logical_dims)
        via_run = run_trace(system, packed, name="t")
        direct = run_trace(make_system("1P2L", 1.0), iter(packed),
                           name="t")
        assert via_run.cycles == direct.cycles
        assert via_run.stats.flat() == direct.stats.flat()
