"""Unit tests for the dynamic orientation predictor."""

import pytest

from repro.common.stats import StatGroup
from repro.common.types import Orientation, word_addr
from repro.cache.orientation_predictor import OrientationPredictor


def make_predictor(**kwargs):
    return OrientationPredictor(StatGroup("pred"), **kwargs)


def column_walk(tile=0, col=3):
    """Addresses walking down one column of a tile."""
    return [word_addr(tile, r, col) for r in range(8)]


def row_walk(tile=0, row=3):
    return [word_addr(tile, row, c) for c in range(8)]


class TestTraining:
    def test_column_walk_learned(self):
        pred = make_predictor(threshold=2)
        outcomes = [pred.observe_and_predict(1, addr, Orientation.ROW)
                    for addr in column_walk()]
        # Early accesses fall back to the static hint; later ones
        # override to COLUMN.
        assert outcomes[0] is Orientation.ROW
        assert outcomes[-1] is Orientation.COLUMN

    def test_row_walk_confirms_row(self):
        pred = make_predictor(threshold=2)
        outcomes = [pred.observe_and_predict(1, addr, Orientation.COLUMN)
                    for addr in row_walk()]
        assert outcomes[-1] is Orientation.ROW

    def test_confidence_saturates(self):
        pred = make_predictor(threshold=2, saturation=3)
        for addr in column_walk():
            pred.observe_and_predict(1, addr, Orientation.ROW)
        assert pred.confidence(1) == 3

    def test_tile_boundary_does_not_flip_prediction(self):
        """Crossing into the next tile leaves both lines; the counter
        must hold its learned value."""
        pred = make_predictor(threshold=2)
        for addr in column_walk(tile=0):
            pred.observe_and_predict(1, addr, Orientation.ROW)
        confident = pred.confidence(1)
        # First access of the next tile: discontinuity.
        pred.observe_and_predict(1, word_addr(1, 0, 3), Orientation.ROW)
        assert pred.confidence(1) == confident

    def test_independent_references(self):
        pred = make_predictor(threshold=2)
        for addr_c, addr_r in zip(column_walk(tile=0), row_walk(tile=1)):
            col_out = pred.observe_and_predict(1, addr_c,
                                               Orientation.ROW)
            row_out = pred.observe_and_predict(2, addr_r,
                                               Orientation.ROW)
        assert col_out is Orientation.COLUMN
        assert row_out is Orientation.ROW


class TestTableManagement:
    def test_capacity_eviction(self):
        pred = make_predictor(table_entries=2)
        pred.observe_and_predict(1, 0, Orientation.ROW)
        pred.observe_and_predict(2, 0, Orientation.ROW)
        pred.observe_and_predict(3, 0, Orientation.ROW)
        assert pred.confidence(1) == 0  # evicted

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            make_predictor(threshold=5, saturation=4)

    def test_stats_counted(self):
        stats = StatGroup("pred")
        pred = OrientationPredictor(stats, threshold=2)
        for addr in column_walk():
            pred.observe_and_predict(1, addr, Orientation.ROW)
        assert stats.get("overrides") > 0
        assert stats.get("static_fallbacks") > 0


class TestEdgeCases:
    def test_unknown_reference_has_zero_confidence(self):
        pred = make_predictor()
        assert pred.confidence(99) == 0

    def test_threshold_one_predicts_after_one_step(self):
        pred = make_predictor(threshold=1)
        walk = column_walk()
        assert pred.observe_and_predict(1, walk[0], Orientation.ROW) \
            is Orientation.ROW  # nothing to compare against yet
        assert pred.observe_and_predict(1, walk[1], Orientation.ROW) \
            is Orientation.COLUMN

    def test_negative_counter_clamps_at_saturation(self):
        pred = make_predictor(threshold=2, saturation=3)
        for addr in row_walk():
            pred.observe_and_predict(1, addr, Orientation.COLUMN)
        assert pred.confidence(1) == -3

    def test_phase_change_relearns(self):
        """A reference that switches from a column walk to a row walk
        must eventually flip its prediction (counter walks through
        neutral, not around it)."""
        pred = make_predictor(threshold=2, saturation=4)
        for addr in column_walk():
            pred.observe_and_predict(1, addr, Orientation.ROW)
        assert pred.confidence(1) > 0
        out = None
        for row in range(12):
            for addr in row_walk(row=row % 8):
                out = pred.observe_and_predict(1, addr,
                                               Orientation.COLUMN)
        assert out is Orientation.ROW
        assert pred.confidence(1) < 0

    def test_repeated_same_address_trains_nothing(self):
        """Re-touching one word stays in both lines; neither direction
        should gain confidence."""
        pred = make_predictor(threshold=1)
        addr = word_addr(0, 3, 3)
        for _ in range(8):
            pred.observe_and_predict(1, addr, Orientation.ROW)
        assert pred.confidence(1) == 0

    def test_eviction_is_counted(self):
        stats = StatGroup("pred")
        pred = OrientationPredictor(stats, table_entries=2)
        for ref in (1, 2, 3, 4):
            pred.observe_and_predict(ref, 0, Orientation.ROW)
        assert stats.get("table_evictions") == 2

    def test_eviction_is_fifo_and_state_restarts_cold(self):
        """The oldest insertion goes first, and a re-inserted reference
        starts from a neutral counter (no stale confidence)."""
        pred = make_predictor(threshold=2, table_entries=2)
        for addr in column_walk():
            pred.observe_and_predict(1, addr, Orientation.ROW)
        assert pred.confidence(1) >= 2
        pred.observe_and_predict(2, 0, Orientation.ROW)  # fills table
        pred.observe_and_predict(3, 0, Orientation.ROW)  # evicts ref 1
        assert pred.confidence(1) == 0
        # Ref 1 comes back cold: first access falls back to the static
        # hint rather than resuming its evicted counter.
        out = pred.observe_and_predict(1, word_addr(0, 0, 3),
                                       Orientation.ROW)
        assert out is Orientation.ROW


class TestCacheIntegration:
    def test_dyn_design_learns_columns_on_legacy_trace(self):
        """End to end: legacy scalar column walks on the tiled layout
        produce column-oriented resident lines only with the
        predictor enabled."""
        from repro.core.simulator import run_simulation
        from repro.core.system import make_system
        from repro.sw.layout import TiledLayout
        from repro.workloads.registry import build_workload
        program = build_workload("sobel", "small")
        layout = TiledLayout(program.arrays)
        static = run_simulation(make_system("1P2L"), program=program,
                                layout=layout, compile_dims=1)
        dyn = run_simulation(make_system("1P2L_Dyn"), program=program,
                             layout=layout, compile_dims=1)
        static_fills = static.stats.group("cache.L1").get("fills")
        dyn_fills = dyn.stats.group("cache.L1").get("fills")
        assert dyn_fills < static_fills
        overrides = dyn.stats.group("cache.L1.orientation") \
            .get("overrides")
        assert overrides > 0
