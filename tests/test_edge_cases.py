"""Edge-case tests across modules (gaps left by the main suites)."""

from repro.common.stats import StatRegistry
from repro.common.config import MemoryConfig
from repro.common.types import (
    AccessWidth,
    Orientation,
    Request,
    line_id_of,
    make_line_id,
    word_addr,
)
from repro.cache.cache_1p2l import Cache1P2L
from repro.cache.cache_2p2l import Cache2P2L
from repro.mem.controller import MemoryController
from tests.conftest import FakeLower, small_config

SETTLE = 100_000


def make_1p2l(**kwargs):
    stats = StatRegistry()
    cache = Cache1P2L(small_config(size_kb=4, assoc=4, logical_dims=2,
                                   **kwargs), 1, stats)
    lower = FakeLower()
    cache.connect(lower)
    return cache, lower, stats


class Test1P2LEdgeCases:
    def test_vector_write_miss_evicts_dirty_intersections(self):
        """Write-allocate of a full line must displace a perpendicular
        line that is dirty at the crossing, with its data pushed down."""
        cache, lower, stats = make_1p2l()
        addr = word_addr(0, 2, 3)
        col = line_id_of(addr, Orientation.COLUMN)
        # Dirty the column line at the crossing word.
        cache.access(Request(addr, Orientation.COLUMN,
                             AccessWidth.SCALAR, True), 0)
        assert cache.dirty_mask_of(col) != 0
        # Vector-write the crossing row.
        cache.access(Request(word_addr(0, 2, 0), Orientation.ROW,
                             AccessWidth.VECTOR, True), SETTLE)
        assert not cache.contains(col)
        assert col in lower.written_lines()
        cache.check_invariants()

    def test_same_set_capacity_conflicts(self):
        """Same-Set mapping: 16 lines of one tile fight over one set."""
        cache, _, stats = make_1p2l(mapping="same_set")
        now = 0
        for index in range(8):
            for orientation in (Orientation.ROW, Orientation.COLUMN):
                now += SETTLE
                line = make_line_id(0, orientation, index)
                cache.access(Request(
                    word_addr(0, index if orientation is Orientation.ROW
                              else 0,
                              index if orientation is Orientation.COLUMN
                              else 0),
                    orientation, AccessWidth.VECTOR, False), now)
        # Only assoc=4 of the 16 can stay.
        assert cache.resident_lines() <= 16
        assert stats.group("cache.L1").get("evictions") \
            + stats.group("cache.L1").get("duplicate_evictions") > 0
        cache.check_invariants()

    def test_read_after_write_same_word_hits_dirty_line(self):
        cache, lower, _ = make_1p2l()
        addr = word_addr(3, 1, 1)
        cache.access(Request(addr, Orientation.ROW, AccessWidth.SCALAR,
                             True), 0)
        result = cache.access(Request(addr, Orientation.ROW,
                                      AccessWidth.SCALAR, False),
                              SETTLE)
        assert result.hit_level == 1
        assert len(lower.fetches) == 1  # the original write-allocate

    def test_flush_preserves_clean_duplicate_semantics(self):
        cache, lower, _ = make_1p2l()
        addr = word_addr(0, 2, 3)
        cache.access(Request(addr, Orientation.ROW, AccessWidth.VECTOR,
                             False), 0)
        cache.access(Request(addr, Orientation.COLUMN,
                             AccessWidth.VECTOR, False), SETTLE)
        cache.flush(2 * SETTLE)
        # Both copies were clean: nothing written back.
        assert lower.writebacks == []
        assert cache.resident_lines() == 0


class Test2P2LEdgeCases:
    def make(self, sparse=True):
        stats = StatRegistry()
        cache = Cache2P2L(small_config(name="L3", size_kb=4, assoc=2,
                                       logical_dims=2, physical_dims=2,
                                       sparse_fill=sparse), 3, stats)
        lower = FakeLower()
        cache.connect(lower)
        return cache, lower, stats

    def test_cpu_vector_hit_via_fully_present_block(self):
        cache, _, _ = self.make()
        for r in range(8):
            cache.fetch_line(make_line_id(0, Orientation.ROW, r),
                             r * SETTLE, AccessWidth.VECTOR)
        result = cache.access(
            Request(word_addr(0, 0, 5), Orientation.COLUMN,
                    AccessWidth.VECTOR, False), 10 * SETTLE)
        assert result.hit_level == 3

    def test_mixed_direction_dirty_eviction_covers_both(self):
        cache, lower, _ = self.make()
        cache.writeback_line(make_line_id(0, Orientation.ROW, 1),
                             0xFF, 0)
        cache.writeback_line(make_line_id(0, Orientation.COLUMN, 6),
                             0xFF, SETTLE)
        cache.flush(2 * SETTLE)
        written = set(lower.written_lines())
        assert make_line_id(0, Orientation.ROW, 1) in written
        assert make_line_id(0, Orientation.COLUMN, 6) in written


class TestControllerEdgeCases:
    def test_two_reads_same_channel_share_bus(self):
        cfg = MemoryConfig(channels=1)
        ctrl = MemoryController(cfg, StatRegistry())
        a = ctrl.read_line(make_line_id(0, Orientation.ROW, 0), 0)
        # Different bank, same channel: bank-parallel, bus-serial.
        b = ctrl.read_line(make_line_id(4, Orientation.ROW, 0), 0)
        assert b >= a  # second data beat cannot precede the first

    def test_drain_all_is_idempotent(self):
        ctrl = MemoryController(MemoryConfig(), StatRegistry())
        ctrl.write_line(make_line_id(0, Orientation.ROW, 0), 0)
        first = ctrl.drain_all(0)
        second = ctrl.drain_all(first)
        assert second == first
