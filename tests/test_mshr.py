"""Unit tests for the 2-D MSHR file."""

from repro.common.stats import StatGroup
from repro.common.types import Orientation, make_line_id
from repro.cache.mshr import MshrFile


def make_mshr(entries: int = 4):
    stats = StatGroup("mshr")
    return MshrFile(entries, stats), stats


def row(tile: int, idx: int = 0) -> int:
    return make_line_id(tile, Orientation.ROW, idx)


def col(tile: int, idx: int = 0) -> int:
    return make_line_id(tile, Orientation.COLUMN, idx)


class TestCoalescing:
    def test_outstanding_fill_visible_until_completion(self):
        mshr, _ = make_mshr()
        mshr.allocate(row(0), now=0)
        mshr.record(row(0), completion=100, level=0)
        assert mshr.outstanding_fill(row(0), now=50) == (100, 0)
        assert mshr.outstanding_fill(row(0), now=100) is None

    def test_unrelated_line_not_outstanding(self):
        mshr, _ = make_mshr()
        mshr.allocate(row(0), 0)
        mshr.record(row(0), 100, 0)
        assert mshr.outstanding_fill(row(1), 10) is None


class TestOrderingBarrier:
    def test_perpendicular_same_tile_blocks(self):
        mshr, stats = make_mshr()
        mshr.allocate(col(3, 2), 0)
        mshr.record(col(3, 2), 80, 0)
        assert mshr.ordering_barrier(row(3, 1), now=10) == 80
        assert stats.get("ordering_blocks") == 1

    def test_parallel_lines_do_not_block(self):
        mshr, _ = make_mshr()
        mshr.allocate(row(3, 1), 0)
        mshr.record(row(3, 1), 80, 0)
        assert mshr.ordering_barrier(row(3, 2), now=10) == 10

    def test_other_tile_does_not_block(self):
        mshr, _ = make_mshr()
        mshr.allocate(col(3, 2), 0)
        mshr.record(col(3, 2), 80, 0)
        assert mshr.ordering_barrier(row(4, 1), now=10) == 10

    def test_same_line_barrier_is_its_completion(self):
        mshr, _ = make_mshr()
        mshr.allocate(row(1), 0)
        mshr.record(row(1), 60, 0)
        assert mshr.ordering_barrier(row(1), now=10) == 60


class TestCapacity:
    def test_full_file_stalls_new_miss(self):
        mshr, stats = make_mshr(entries=2)
        mshr.allocate(row(0), 0)
        mshr.record(row(0), 50, 0)
        mshr.allocate(row(1), 0)
        mshr.record(row(1), 70, 0)
        issue = mshr.allocate(row(2), now=10)
        # Must wait for the earliest (50) to retire.
        assert issue == 50
        assert stats.get("full_stalls") == 1
        assert len(mshr) == 2  # row(0) retired, row(1) + row(2)

    def test_allocation_counts(self):
        mshr, stats = make_mshr()
        mshr.allocate(row(0), 0)
        mshr.allocate(row(1), 0)
        assert stats.get("allocations") == 2

    def test_clear_empties(self):
        mshr, _ = make_mshr()
        mshr.allocate(row(0), 0)
        mshr.clear()
        assert len(mshr) == 0

    def test_rejects_zero_entries(self):
        import pytest
        with pytest.raises(ValueError):
            MshrFile(0, StatGroup("x"))


class TestRetirement:
    def test_lazy_retire_by_time(self):
        mshr, _ = make_mshr()
        mshr.allocate(row(0), 0)
        mshr.record(row(0), 30, 0)
        mshr.allocate(row(1), 0)
        mshr.record(row(1), 90, 0)
        mshr.retire_completed(now=40)
        assert len(mshr) == 1
        assert mshr.outstanding_fill(row(1), 40) == (90, 0)

    def test_record_keeps_serving_level(self):
        mshr, _ = make_mshr()
        mshr.allocate(row(0), 0)
        mshr.record(row(0), 30, level=2)
        assert mshr.outstanding_fill(row(0), 0) == (30, 2)
