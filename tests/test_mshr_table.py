"""The flat FIFO MSHR table behind the vectorized miss path.

Covers :class:`repro.core.kernels.MshrTable`: the packed 64-bit word
layout (:func:`pack_mshr_word` / :func:`unpack_mshr_word` round-trip
under hypothesis), exact parity of seed/retire/insert/flush against a
plain dict model of the inlined object MSHR semantics, the monotone
guard that sends out-of-order completion sequences back to the scalar
path, and the rewind contract (append-only arrays, head restore).
"""

from __future__ import annotations

from repro.core.kernels import (
    MSHR_NO_SLOT,
    MshrTable,
    pack_mshr_word,
    unpack_mshr_word,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as some
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the env
    HAVE_HYPOTHESIS = False


class _StoreStub:
    """Just the pending-file surface ``seed``/``flush`` touch."""

    def __init__(self, pending=(), earliest=None):
        self.pending_at = {}
        self.pending_lvl = {}
        self.pending_tiles = {}
        self.earliest = earliest
        for line, completion, level in pending:
            self.pending_at[line] = completion
            self.pending_lvl[line] = level
            key = line >> 3
            self.pending_tiles[key] = self.pending_tiles.get(key, 0) + 1


class _DictModel:
    """The inlined object-MSHR semantics, written the slow plain way."""

    def __init__(self, pending, earliest):
        self.pending = dict(pending)  # line -> (completion, level)
        self.earliest = earliest

    def retire(self, now):
        if self.earliest is not None and now < self.earliest:
            return
        self.pending = {line: entry
                        for line, entry in self.pending.items()
                        if entry[0] > now}
        self.earliest = min(
            (entry[0] for entry in self.pending.values()), default=None)

    def insert(self, line, completion, level, issue):
        self.pending[line] = (completion, level)
        earliest = self.earliest
        if earliest is None or issue < earliest:
            earliest = issue
        if completion < earliest:
            earliest = completion
        self.earliest = earliest


class TestPackedWord:
    def test_known_layout(self):
        word = pack_mshr_word(5, 3, slot=7)
        assert word == (5 << 20) | (7 << 4) | 3
        assert unpack_mshr_word(word) == (5, 7, 3)

    def test_default_slot_is_sentinel(self):
        assert unpack_mshr_word(pack_mshr_word(1, 0)) \
            == (1, MSHR_NO_SLOT, 0)

    if HAVE_HYPOTHESIS:
        @settings(max_examples=200, deadline=None)
        @given(some.integers(0, (1 << 44) - 1), some.integers(0, 15),
               some.integers(0, MSHR_NO_SLOT))
        def test_round_trip(self, completion, level, slot):
            word = pack_mshr_word(completion, level, slot=slot)
            assert 0 <= word < 1 << 64
            assert unpack_mshr_word(word) == (completion, slot, level)


def _seed_table(entries, earliest):
    stub = _StoreStub(entries, earliest)
    table = MshrTable.seed(stub)
    model = _DictModel({line: (completion, level)
                        for line, completion, level in entries},
                       earliest)
    return table, model


def _assert_parity(table, model):
    assert len(table) == len(model.pending)
    assert table.earliest == model.earliest
    for line, (completion, level) in model.pending.items():
        assert table.completion_of(line) == completion
        assert table.level_of(line) == level
    if model.pending:
        assert table.min_completion() == min(
            entry[0] for entry in model.pending.values())
    out = _StoreStub()
    table.flush(out)
    assert out.pending_at == {line: entry[0]
                              for line, entry in model.pending.items()}
    assert out.pending_lvl == {line: entry[1]
                               for line, entry in model.pending.items()}
    expect_tiles = {}
    for line in model.pending:
        expect_tiles[line >> 3] = expect_tiles.get(line >> 3, 0) + 1
    assert out.pending_tiles == expect_tiles
    assert out.earliest == model.earliest


class TestTableParity:
    def test_seed_flush_round_trip(self):
        entries = [(10, 100, 0), (11, 120, 1), (90, 130, 0)]
        table, model = _seed_table(entries, 95)
        assert table.monotone
        _assert_parity(table, model)

    def test_non_monotone_seed_flagged(self):
        table, _ = _seed_table([(1, 200, 0), (2, 150, 0)], 150)
        assert not table.monotone

    def test_non_monotone_insert_flagged(self):
        table, _ = _seed_table([(1, 100, 0)], 100)
        table.insert(2, 90, 0, issue=80)
        assert not table.monotone

    def test_retire_gated_by_earliest(self):
        # earliest below every completion (an issue-time floor): a
        # retire before it must not pop anything.
        table, model = _seed_table([(1, 100, 0)], 40)
        table.retire(30)
        model.retire(30)
        _assert_parity(table, model)
        table.retire(100)
        model.retire(100)
        _assert_parity(table, model)

    def test_rewind_restores_pre_row_state(self):
        # The bulk executor's bail: snapshot head/earliest/last, run a
        # row (retire + insert), then rewind.  The flushed store must
        # look exactly like the snapshot's.
        table, model = _seed_table([(1, 100, 0), (2, 110, 1)], 100)
        head, earliest, last = table.head, table.earliest, \
            table.last_completion
        nlines = len(table.lines)
        table.retire(105)
        table.insert(3, 130, 0, issue=106)
        table.head, table.earliest, table.last_completion = \
            head, earliest, last
        del table.lines[nlines:]
        del table.words[nlines:]
        table.index = {line: pos for pos, line
                       in enumerate(table.lines)}
        _assert_parity(table, model)

    if HAVE_HYPOTHESIS:
        @settings(max_examples=150, deadline=None)
        @given(some.data())
        def test_random_op_sequences_match_dict_model(self, data):
            """seed -> {retire, insert}* -> flush equals the model.

            Completions are nondecreasing in insertion order — the
            contract bulk qualification enforces (the table flags any
            violation via ``monotone`` and callers bail, so only
            monotone sequences ever execute).
            """
            n_seed = data.draw(some.integers(0, 6), label="n_seed")
            completion = 0
            seed_entries = []
            for line in range(n_seed):
                completion += data.draw(some.integers(0, 50),
                                        label="seed_gap")
                level = data.draw(some.integers(0, 3), label="seed_lvl")
                seed_entries.append((line, completion, level))
            if seed_entries:
                floor = data.draw(
                    some.integers(0, seed_entries[0][1]),
                    label="earliest")
            else:
                floor = None
            table, model = _seed_table(seed_entries, floor)
            assert table.monotone
            next_line = n_seed
            for _ in range(data.draw(some.integers(0, 12),
                                     label="n_ops")):
                if data.draw(some.booleans(), label="op"):
                    now = data.draw(some.integers(0, completion + 100),
                                    label="now")
                    table.retire(now)
                    model.retire(now)
                else:
                    completion += data.draw(some.integers(0, 50),
                                            label="gap")
                    level = data.draw(some.integers(0, 3), label="lvl")
                    issue = data.draw(some.integers(0, completion),
                                      label="issue")
                    table.insert(next_line, completion, level,
                                 issue=issue)
                    model.insert(next_line, completion, level, issue)
                    next_line += 1
                assert table.monotone
            _assert_parity(table, model)
