"""Resilient-serving building blocks (PR-8 acceptance).

Covers the client circuit breaker (state machine, probe reservation,
cooldown doubling, what counts as failure), the cross-worker claim
board (lease protocol, pid-aware staleness, degradation on lock
trouble), two services coalescing through a shared run cache, and the
service-level fault sites (spec round-trip, slow/corrupt/kill draws).
"""

from __future__ import annotations

import asyncio
import http.server
import json
import os
import threading

import pytest

from repro.common.errors import (
    AdmissionRejected,
    CircuitOpen,
    SimulationFailed,
)
from repro.experiments import faults
from repro.experiments.runner import (
    RUNCACHE_DIRNAME,
    ExperimentRunner,
    RunKey,
    cache_key,
)
from repro.experiments.supervisor import (
    RetryPolicy,
    RunJournal,
    Supervisor,
)
from repro.service.batching import SimulationService
from repro.service.client import (
    CircuitBreaker,
    RetryConfig,
    ServiceClient,
)
from repro.service.coalesce import ClaimBoard, shard_of


# -- circuit breaker ----------------------------------------------------------


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=1.0,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opened_total == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.state == "half-open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else waits on it

    def test_probe_success_closes_and_resets_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.retry_after() == 0.0

    def test_probe_failure_doubles_cooldown_up_to_cap(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0,
                                 cooldown_cap=3.0, clock=clock)
        breaker.record_failure()            # open, cooldown 1.0
        for expected in (2.0, 3.0, 3.0):    # doubled, then capped
            clock.advance(breaker.retry_after() + 0.01)
            assert breaker.allow()
            breaker.record_failure()
            assert breaker.state == "open"
            assert breaker.retry_after() == pytest.approx(
                expected, abs=0.05)

    def test_retry_after_counts_down(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=2.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(2.0)
        clock.advance(1.5)
        assert breaker.retry_after() == pytest.approx(0.5)


class TestClientBreakerIntegration:
    def _stub(self, handler_cls):
        stub = http.server.ThreadingHTTPServer(("127.0.0.1", 0),
                                               handler_cls)
        threading.Thread(target=stub.serve_forever,
                         daemon=True).start()
        return stub

    def test_persistent_500s_trip_the_breaker(self):
        hits = []

        class Always500(http.server.BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self):
                self.rfile.read(
                    int(self.headers.get("Content-Length", 0)))
                hits.append(1)
                body = b'{"error": "boom"}'
                self.send_response(500)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        stub = self._stub(Always500)
        try:
            breaker = CircuitBreaker(threshold=2, cooldown=30.0)
            client = ServiceClient(
                port=stub.server_address[1], breaker=breaker,
                retry=RetryConfig(max_retries=0))
            # 500 is terminal for the request but feeds the breaker.
            for _ in range(2):
                with pytest.raises(SimulationFailed):
                    client.request("POST", "/simulate", {"d": 1})
            assert breaker.state == "open"
            # Open breaker: fails fast locally, no socket traffic.
            before = len(hits)
            with pytest.raises(CircuitOpen):
                client.request("POST", "/simulate", {"d": 1})
            assert len(hits) == before
            client.close()
        finally:
            stub.shutdown()

    def test_429_counts_as_success_for_the_breaker(self):
        class Always429(http.server.BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self):
                self.rfile.read(
                    int(self.headers.get("Content-Length", 0)))
                body = b'{"error": "busy", "retry_after": 0.01}'
                self.send_response(429)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        stub = self._stub(Always429)
        try:
            breaker = CircuitBreaker(threshold=2, cooldown=30.0)
            client = ServiceClient(
                port=stub.server_address[1], breaker=breaker,
                retry=RetryConfig(max_retries=3, backoff_base=0.01))
            with pytest.raises(AdmissionRejected):
                client.request("POST", "/simulate", {"d": 1})
            # Rejections mean the service is alive: still closed.
            assert breaker.state == "closed"
            client.close()
        finally:
            stub.shutdown()


# -- the claim board ----------------------------------------------------------


def _key(design: str = "1P2L") -> RunKey:
    return RunKey(design, "sobel", "small", 1.0, False, "default", 0)


class TestClaimBoard:
    def test_shard_of_is_stable_and_bounded(self):
        ck = cache_key(_key())
        assert shard_of(ck) == shard_of(ck)
        assert 0 <= shard_of(ck, 16) < 16
        assert shard_of(ck, 1) == 0

    def test_claim_grant_deny_release(self, tmp_path):
        root = str(tmp_path)
        a = ClaimBoard(root, owner="a")
        b = ClaimBoard(root, owner="b")
        ck = cache_key(_key())
        assert a.claim(ck)
        assert not b.claim(ck)
        assert b.claimed_elsewhere(ck)
        a.release(ck)
        assert not b.claimed_elsewhere(ck)
        assert b.claim(ck)
        assert a.granted == 1 and b.granted == 1 and b.denied == 1

    def test_stale_claim_is_taken_over(self, tmp_path):
        root = str(tmp_path)
        clock = FakeClock(1000.0)
        a = ClaimBoard(root, ttl=5.0, owner="a", clock=clock)
        b = ClaimBoard(root, ttl=5.0, owner="b", clock=clock)
        ck = cache_key(_key())
        assert a.claim(ck)
        # Backdate the claim file past the TTL (same pid is alive, so
        # only the TTL can expire it).
        path = a._claim_path(ck)
        os.utime(path, (clock.now - 10.0, clock.now - 10.0))
        assert not b.claimed_elsewhere(ck)
        assert b.claim(ck)
        assert b.takeovers == 1

    def test_dead_owner_pid_expires_the_lease_immediately(self,
                                                          tmp_path):
        root = str(tmp_path)
        board = ClaimBoard(root, ttl=3600.0, owner="me")
        ck = cache_key(_key())
        assert board.claim(ck)
        # Rewrite the fresh claim as owned by a pid that cannot exist.
        path = board._claim_path(ck)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"owner": "dead", "pid": 2 ** 22 + 1,
                       "t": 0}, handle)
        assert not board.claimed_elsewhere(ck)
        other = ClaimBoard(root, ttl=3600.0, owner="taker")
        assert other.claim(ck)
        assert other.takeovers == 1

    def test_refresh_extends_the_lease(self, tmp_path):
        root = str(tmp_path)
        clock = FakeClock(1000.0)
        a = ClaimBoard(root, ttl=5.0, owner="a", clock=clock)
        ck = cache_key(_key())
        assert a.claim(ck)
        path = a._claim_path(ck)
        os.utime(path, (clock.now - 4.0, clock.now - 4.0))
        a.refresh(ck)  # touches mtime to the real now
        clock.now = os.path.getmtime(path) + 1.0
        assert a.claimed_elsewhere(ck)

    def test_unwritable_root_degrades_to_local_simulation(self):
        board = ClaimBoard("/proc/definitely/not/writable")
        assert board.claim(cache_key(_key()))
        assert board.granted == 0  # degraded, not granted

    def test_release_is_idempotent(self, tmp_path):
        board = ClaimBoard(str(tmp_path))
        ck = cache_key(_key())
        board.release(ck)  # nothing to release: no error
        assert board.claim(ck)
        board.release(ck)
        board.release(ck)


# -- cross-service coalescing over a shared cache -----------------------------


def _service(tmp_path, name: str) -> SimulationService:
    cache_dir = os.path.join(str(tmp_path), RUNCACHE_DIRNAME)
    runner = ExperimentRunner(verbose=False, jobs=1,
                              cache_dir=cache_dir)
    supervisor = Supervisor(
        runner,
        journal=RunJournal.for_suite(str(tmp_path), f"svc-{name}"),
        policy=RetryPolicy(max_retries=1),
        handle_signals=False)
    board = ClaimBoard(cache_dir, owner=name)
    return SimulationService(runner, supervisor, claim_board=board,
                             cross_poll=0.02, batch_window=0.0)


class TestCrossServiceCoalescing:
    def test_identical_request_simulates_once_across_services(
            self, tmp_path):
        """Two services sharing one run cache (stand-ins for two
        pre-fork workers): the same config submitted to both must
        simulate exactly once — the loser waits on the winner's claim
        and serves the winner's cached result."""
        async def main():
            a = _service(tmp_path, "a")
            b = _service(tmp_path, "b")
            await a.start()
            await b.start()
            try:
                key = _key()
                result_a, result_b = await asyncio.gather(
                    a.submit(key), b.submit(key))
            finally:
                await a.drain()
                await b.drain()
            return a, b, result_a, result_b

        a, b, (res_a, src_a), (res_b, src_b) = asyncio.run(main())
        assert res_a.cycles == res_b.cycles
        simulated = a.metrics.simulated.total() \
            + b.metrics.simulated.total()
        assert simulated == 1
        sources = sorted([src_a, src_b])
        assert sources == ["coalesced", "simulated"]
        cross = a.metrics.cross_coalesced.total() \
            + b.metrics.cross_coalesced.total()
        assert cross == 1
        # The winner released its claim after storing the result.
        ck = cache_key(_key())
        assert not a._claims.claimed_elsewhere(ck)

    def test_claim_released_even_when_simulation_fails(
            self, tmp_path, monkeypatch):
        """A failed batch must still drop its claims, or siblings
        would wait out the whole TTL on a result that never comes."""
        async def main():
            service = _service(tmp_path, "solo")

            def broken(keys, strict=True):
                raise RuntimeError("pool exploded")

            monkeypatch.setattr(service._supervisor, "supervise",
                                broken)
            await service.start()
            key = _key()
            try:
                with pytest.raises(SimulationFailed):
                    await service.submit(key)
            finally:
                await service.drain()
            return service

        service = asyncio.run(main())
        assert not service._claims.claimed_elsewhere(cache_key(_key()))


# -- service fault sites ------------------------------------------------------


class TestServiceFaultSites:
    def setup_method(self):
        faults.disarm()

    def teardown_method(self):
        faults.disarm()

    def test_spec_round_trip_with_service_sites(self):
        plan = faults.parse_spec(
            "serve_worker_kill:0.05,serve_cache_corrupt:0.3,"
            "serve_slow_request:0.1,slow_seconds:0.4,seed:11")
        assert plan.rate("serve_worker_kill") == 0.05
        assert plan.slow_seconds == 0.4
        again = faults.parse_spec(plan.spec())
        assert again == plan

    def test_slow_request_returns_the_configured_delay(self):
        plan = faults.FaultPlan(rates={"serve_slow_request": 1.0},
                                slow_seconds=0.25)
        assert faults.maybe_slow_request("w0:1", plan) == 0.25
        cold = faults.FaultPlan(rates={})
        assert faults.maybe_slow_request("w0:1", cold) == 0.0

    def test_corrupt_served_entry_truncates_existing_file(self,
                                                          tmp_path):
        path = str(tmp_path / "entry.pkl")
        with open(path, "wb") as handle:
            handle.write(b"x" * 100)
        plan = faults.FaultPlan(rates={"serve_cache_corrupt": 1.0})
        assert faults.maybe_corrupt_served_entry(path, "w0:1", plan)
        assert os.path.getsize(path) == 50
        # A missing entry cannot be corrupted: reports not-fired.
        assert not faults.maybe_corrupt_served_entry(
            str(tmp_path / "absent.pkl"), "w0:2", plan)

    def test_kill_draw_is_deterministic_per_token(self):
        plan = faults.FaultPlan(rates={"serve_worker_kill": 0.5},
                                seed=11)
        draws = [plan.should_fire("serve_worker_kill", f"w0:{i}")
                 for i in range(64)]
        again = [plan.should_fire("serve_worker_kill", f"w0:{i}")
                 for i in range(64)]
        assert draws == again
        assert any(draws) and not all(draws)
        other = [plan.should_fire("serve_worker_kill", f"w1:{i}")
                 for i in range(64)]
        assert draws != other
