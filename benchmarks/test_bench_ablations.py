"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one mechanism and
quantifies its contribution on a representative kernel.
"""

from repro.common.config import CpuConfig
from repro.core.simulator import run_simulation
from repro.core.system import make_system

from conftest import run_once

SIZE = "small"


def test_ablation_sparse_vs_dense_2p2l(benchmark, runner):
    """Sparse fill is the enabler for 2P2L (paper Section IV-C / VII).

    htap1 scans a handful of columns, so dense fill drags in whole
    512-byte blocks for 64-byte needs; on all-touching kernels like
    sobel the waste shows up as fill-timing serialization instead.
    """
    def run():
        return {
            ("htap1", "2P2L"): runner.run("2P2L", "htap1", SIZE),
            ("htap1", "dense"): runner.run("2P2L_Dense", "htap1", SIZE),
            ("sobel", "2P2L"): runner.run("2P2L", "sobel", SIZE),
            ("sobel", "dense"): runner.run("2P2L_Dense", "sobel", SIZE),
        }

    results = run_once(benchmark, run)
    byte_ratio = (results[("htap1", "dense")].memory_bytes()
                  / max(1, results[("htap1", "2P2L")].memory_bytes()))
    cycle_ratio = (results[("sobel", "dense")].cycles
                   / results[("sobel", "2P2L")].cycles)
    print(f"\nhtap1 dense/sparse memory bytes: {byte_ratio:.2f}x; "
          f"sobel dense/sparse cycles: {cycle_ratio:.2f}x")
    assert byte_ratio > 1.5
    assert cycle_ratio > 1.0


def test_ablation_mapping_conflicts_at_low_assoc(benchmark):
    """Same-Set mapping "is impractical for lower associativity
    caches" (paper Section IV-C): shrinking associativity hurts
    Same-Set more than Different-Set."""
    def run():
        out = {}
        for mapping in ("1P2L", "1P2L_SameSet"):
            out[mapping] = run_simulation(make_system(mapping),
                                          workload="ssyr2k", size=SIZE)
        return out

    results = run_once(benchmark, run)
    ds = results["1P2L"].cycles
    ss = results["1P2L_SameSet"].cycles
    print(f"\nDifferent-Set {ds} vs Same-Set {ss} cycles "
          f"({ss / ds:.3f}x)")
    # At 4-way L1 the Same-Set variant should not be decisively better.
    assert ss >= 0.9 * ds


def test_ablation_baseline_prefetcher_value(benchmark):
    """The baseline is evaluated *with* prefetching (paper Section
    VII).  In this model the LLC stride prefetcher is close to neutral
    — the MLP window plus MSHR coalescing already hide regular-stride
    latency — so the ablation bounds its effect rather than assuming a
    win (EXPERIMENTS.md, fidelity notes)."""
    def run():
        from dataclasses import replace
        from repro.common.config import PrefetcherConfig
        with_pf = run_simulation(make_system("1P1L"), workload="sgemm",
                                 size=SIZE)
        system = make_system("1P1L")
        no_pf_levels = list(system.levels[:-1]) + [
            replace(system.llc, prefetcher=PrefetcherConfig())]
        no_pf = run_simulation(replace(system, levels=no_pf_levels),
                               workload="sgemm", size=SIZE)
        return with_pf, no_pf

    with_pf, no_pf = run_once(benchmark, run)
    ratio = with_pf.cycles / no_pf.cycles
    print(f"\nbaseline with prefetch {with_pf.cycles}, without "
          f"{no_pf.cycles} ({ratio:.3f}x)")
    assert 0.8 < ratio < 1.15


def test_ablation_mlp_window(benchmark):
    """Sensitivity of the CPU model's outstanding-read window."""
    def run():
        out = {}
        for window in (2, 16):
            system = make_system("1P2L",
                                 cpu=CpuConfig(mlp_window=window))
            out[window] = run_simulation(system, workload="sgemm",
                                         size=SIZE)
        return out

    results = run_once(benchmark, run)
    narrow = results[2].cycles
    wide = results[16].cycles
    print(f"\nmlp=2: {narrow} cycles, mlp=16: {wide} cycles")
    assert wide < narrow


def test_ablation_column_decode_penalty(benchmark):
    """The +1 cycle column-decode adder (paper Section VI-B) is nearly
    free at system level."""
    def run():
        from dataclasses import replace
        from repro.common.config import MemoryConfig
        base = run_simulation(make_system("1P2L"), workload="sobel",
                              size=SIZE)
        costly = run_simulation(
            make_system("1P2L",
                        memory=MemoryConfig(column_decode_extra=20)),
            workload="sobel", size=SIZE)
        return base, costly

    base, costly = run_once(benchmark, run)
    overhead = costly.cycles / base.cycles - 1
    print(f"\ncolumn-decode 1c -> 20c costs {100 * overhead:.2f}%")
    assert overhead < 0.25


def test_ablation_multiple_sub_row_buffers(benchmark):
    """Section IX-B: the paper implemented the Gulur et al. multiple
    sub-row-buffer scheme "and found it to have a less than 1% impact"
    for single-threaded runs.  Same check here (generous 5% band)."""
    def run():
        from repro.common.config import MemoryConfig
        one = run_simulation(make_system("1P1L"), workload="sgemm",
                             size=SIZE)
        four = run_simulation(
            make_system("1P1L", memory=MemoryConfig(sub_buffers=4)),
            workload="sgemm", size=SIZE)
        return one, four

    one, four = run_once(benchmark, run)
    impact = abs(four.cycles - one.cycles) / one.cycles
    print(f"\n4 sub-buffers vs 1: {100 * impact:.2f}% impact "
          f"({one.cycles} -> {four.cycles} cycles)")
    assert impact < 0.05
    assert four.cycles <= one.cycles  # extra buffers never hurt


def test_ablation_replacement_policy(benchmark):
    """LRU versus FIFO/Random on the conflict-sensitive 2P2L LLC."""
    def run():
        return {policy: run_simulation(make_system("2P2L"),
                                       workload="sgemm", size=SIZE,
                                       replacement=policy)
                for policy in ("lru", "fifo", "random")}

    results = run_once(benchmark, run)
    cycles = {policy: r.cycles for policy, r in results.items()}
    print(f"\nreplacement sensitivity: {cycles}")
    assert len(set(cycles.values())) > 1
