"""Bench: Fig. 10 — access orientation/size distribution.

Paper shape: every benchmark exercises column preference; columns are
roughly 40% of access volume on average.
"""

from repro.experiments.fig10 import run_fig10

from conftest import run_once


def test_fig10(benchmark):
    result = run_once(benchmark, run_fig10)
    print("\n" + result.report())
    for size in ("small", "large"):
        for workload in result.mixes:
            assert result.column_fraction(workload, size) > 0, \
                f"{workload}/{size} shows no column preference"
        average = result.average_column_fraction(size)
        # Paper: ~40% of data volume; accept a generous band.
        assert 0.2 < average < 0.8
