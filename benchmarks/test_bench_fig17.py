"""Bench: Fig. 17 — benefits against a 1.6x faster main memory.

Paper shape: the MDA designs keep winning on the faster memory
("1P2L-fast reducing 61% over 1P1L-fast"), and 1P2L on the *baseline*
memory still beats 1P1L on the fast memory ("reducing 41%") — MDA
caching is worth more than a 1.6x raw memory-speed advantage.
"""

from repro.experiments.fig17 import run_fig17

from conftest import run_once


def test_fig17(benchmark, runner):
    result = run_once(benchmark, run_fig17, runner)
    print("\n" + result.report())
    # MDA on fast memory beats baseline on fast memory, decisively.
    assert result.average_normalized("1P2L-fast") < 0.7
    assert result.average_normalized("2P2L-fast") < 0.7
    # The paper's stronger claim: MDA on the slower memory still beats
    # the baseline on the faster one.
    assert result.average_normalized("1P2L") < 1.0
    # And faster memory helps each design against itself.
    for workload in result.workloads:
        assert result.cycles["1P2L-fast"][workload] <= \
            result.cycles["1P2L"][workload]
