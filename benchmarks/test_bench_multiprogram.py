"""Bench: Section IX-B extension — multiprogrammed workloads.

Checks the paper's two multiprogram expectations on 2-core pairs:
the MDA benefit survives co-location, and multiple sub-row buffers —
worth <1% single-threaded (see `test_bench_ablations`) — become
clearly beneficial under interleaved row-buffer pressure.
"""

from repro.experiments.multiprogram import run_multiprogram

from conftest import run_once


def test_multiprogram(benchmark):
    result = run_once(benchmark, run_multiprogram)
    print("\n" + result.report())
    for design in ("1P2L", "2P2L"):
        assert result.average_normalized(design) < 1.0
    # Sub-buffers matter here (paper: "very useful for multiprogrammed
    # workloads"), unlike the <5% single-thread bound.
    assert result.average_sub_buffer_gain() > 1.05
