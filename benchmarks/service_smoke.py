#!/usr/bin/env python
"""CI smoke for the simulation service (``repro serve``).

Starts the real server as a subprocess, fires 50 concurrent requests
with >30% duplicates through the async client, and asserts the
acceptance behaviours end to end:

* every response is well-formed and identical configs agree;
* ``/metrics`` shows duplicates were coalesced or cache-served (each
  distinct config simulated exactly once);
* queue depth returns to zero;
* SIGTERM drains the server, flushes the journal, and exits 0.

Exits non-zero with a diagnostic on the first violated check.

Usage: ``python benchmarks/service_smoke.py [outdir]``
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys

REQUESTS = 50
DESIGNS = ("1P1L", "1P2L", "2P2L", "1P2L_SameSet", "2P2L_Dense")
LLC_POINTS = (1.0, 2.0)


def fail(message: str) -> None:
    print(f"service-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


async def drive(port: int) -> None:
    from repro.service.client import AsyncServiceClient, RetryConfig
    client = AsyncServiceClient(
        port=port, retry=RetryConfig(max_retries=6, backoff_base=0.2))

    distinct = [{"design": d, "workload": "sobel", "llc_mb": mb}
                for d in DESIGNS for mb in LLC_POINTS]  # 10 configs
    bodies = (distinct * ((REQUESTS // len(distinct)) + 1))[:REQUESTS]
    duplicates = len(bodies) - len(distinct)
    assert duplicates / len(bodies) > 0.30

    print(f"service-smoke: firing {len(bodies)} concurrent requests "
          f"({len(distinct)} distinct, {duplicates} duplicates)")
    results = await asyncio.gather(
        *(client.request("POST", "/simulate", body) for body in bodies))

    by_key = {}
    for body in results:
        if body.get("cycles", 0) <= 0:
            fail(f"bad response: {body}")
        by_key.setdefault((body["design"], body["llc_mb"]),
                          set()).add(body["cycles"])
    for config, cycles in by_key.items():
        if len(cycles) != 1:
            fail(f"config {config} returned differing cycles: {cycles}")

    text = await client.metrics()
    metrics = {}
    for line in text.splitlines():
        match = re.match(r"(repro_\w+?)(?:\{[^}]*\})? ([\d.e+-]+)$",
                         line)
        if match:
            name, value = match.group(1), float(match.group(2))
            metrics[name] = metrics.get(name, 0.0) + value

    simulated = metrics.get("repro_simulated_total", 0)
    coalesced = metrics.get("repro_coalesced_total", 0)
    cache_hits = metrics.get("repro_cache_hits_total", 0)
    depth = metrics.get("repro_queue_depth", -1)
    hit_ratio = metrics.get("repro_cache_hit_ratio", 0)
    print(f"service-smoke: simulated={simulated:.0f} "
          f"coalesced={coalesced:.0f} cache_hits={cache_hits:.0f} "
          f"queue_depth={depth:.0f} hit_ratio={hit_ratio:.3f}")

    if simulated != len(distinct):
        fail(f"expected {len(distinct)} simulations, got {simulated}")
    if coalesced + cache_hits != duplicates:
        fail(f"expected {duplicates} coalesced+cached duplicates, got "
             f"{coalesced + cache_hits}")
    if coalesced <= 0:
        fail("no requests were coalesced under concurrent load")
    if depth != 0:
        fail(f"queue depth did not return to zero: {depth}")
    if hit_ratio <= 0.30:
        fail(f"cache-hit ratio too low: {hit_ratio}")


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "results-service"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--outdir", outdir],
        stderr=subprocess.PIPE, text=True)
    try:
        line = proc.stderr.readline()
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if not match:
            fail(f"no readiness line from server, got: {line!r}")
        port = int(match.group(1))
        print(f"service-smoke: server up on port {port}")
        asyncio.run(drive(port))
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        if code != 0:
            fail(f"server exited {code} after SIGTERM, want 0")
        journal = os.path.join(outdir, ".runjournal", "service.jsonl")
        if not os.path.exists(journal):
            fail(f"journal missing after drain: {journal}")
        print("service-smoke: PASS (drained cleanly, exit 0, "
              "journal flushed)")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
