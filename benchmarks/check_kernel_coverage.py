#!/usr/bin/env python
"""CI gate: no figure configuration silently de-kernelizes.

Usage::

    PYTHONPATH=src python benchmarks/check_kernel_coverage.py [BASELINE]

Recomputes the replay-engine dispatch of every planned figure
configuration (``repro.experiments.run_all.coverage_report``, the same
classification ``run_all --dry-run`` prints) and diffs it against the
committed baseline (default:
``benchmarks/kernel_coverage_baseline.json``).

A configuration whose engine *downgrades* — vector to kernel/packed,
or kernel to packed — fails the build: a refactor quietly pushed a hot
figure config off the fast replay paths.  A baseline configuration
missing from the current plan also fails (the plan changed; the
baseline must be regenerated deliberately via
``python -m repro.experiments.run_all --dry-run --quiet``).  Upgrades
and brand-new configurations are reported informationally and pass.

Exit status: 0 = OK, 1 = coverage regression, 2 = usage / unreadable
baseline.
"""

import json
import sys

#: Replay engines, slowest first; a move to a lower rank is a failure.
ENGINE_RANK = {"packed": 0, "kernel": 1, "vector": 2}

DEFAULT_BASELINE = "benchmarks/kernel_coverage_baseline.json"


def _load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def check(baseline, current):
    """Diff dispatch maps; returns a list of hard failures."""
    failures = []
    for label, base_engine in sorted(baseline.items()):
        curr_engine = current.get(label)
        if curr_engine is None:
            failures.append(f"{label}: in the baseline ({base_engine}) "
                            f"but no longer planned — regenerate the "
                            f"baseline if this is deliberate")
            continue
        base_rank = ENGINE_RANK.get(base_engine, 0)
        curr_rank = ENGINE_RANK.get(curr_engine, 0)
        if curr_rank < base_rank:
            failures.append(f"{label}: dispatched to {base_engine}, "
                            f"now {curr_engine}")
        elif curr_rank > base_rank:
            print(f"  better {label}: {base_engine} -> {curr_engine} "
                  f"(regenerate the baseline to lock this in)")
        else:
            print(f"  ok     {label}: {curr_engine}")
    for label in sorted(set(current) - set(baseline)):
        print(f"  new    {label}: {current[label]} (no baseline)")
    return failures


def print_rank_diff(baseline, current, out=None):
    """Full per-config rank movement table (old rank -> new rank).

    Printed on failure so the log shows every config's movement, not
    just the regressed ones — a dispatch change usually moves several
    configs at once, and the passing rows locate which layer moved.
    """
    out = out or sys.stderr
    print("  per-config dispatch ranks (old -> new):", file=out)
    for label in sorted(set(baseline) | set(current)):
        base_engine = baseline.get(label)
        curr_engine = current.get(label)
        base = (f"{base_engine}({ENGINE_RANK.get(base_engine, 0)})"
                if base_engine is not None else "absent")
        curr = (f"{curr_engine}({ENGINE_RANK.get(curr_engine, 0)})"
                if curr_engine is not None else "absent")
        marker = "  " if base == curr else "->"
        print(f"    {marker} {label}: {base} -> {curr}", file=out)


def main(argv):
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path = argv[1] if len(argv) == 2 else DEFAULT_BASELINE
    baseline = _load(baseline_path)
    from repro.experiments.run_all import coverage_report
    current = coverage_report()
    print(f"kernel coverage gate: live plan vs baseline "
          f"{baseline_path}")
    failures = check(baseline, current)
    if failures:
        for failure in failures:
            print(f"  FAIL   {failure}", file=sys.stderr)
        print_rank_diff(baseline, current)
        return 1
    print("  coverage gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
