"""Bench: Section X future work — hardware-software collaborative tiling.

Not a paper figure: this regenerates the paper's *expectation* that
tiling the iteration space to (a multiple of) the 2-D block size beats
software tiling or hardware tiling alone.
"""

from repro.experiments.future_tiling import run_future_tiling

from conftest import run_once


def test_future_tiling(benchmark):
    result = run_once(benchmark, run_future_tiling)
    print("\n" + result.report())
    # Tiling must help both 2-D designs at the non-resident size.
    assert result.average_normalized("2P2L+tiling") < \
        result.average_normalized("2P2L")
    assert result.average_normalized("1P2L+tiling") < \
        result.average_normalized("1P2L")
    # The paper's expectation: the collaborative point is the best.
    assert result.collaborative_wins()
