"""Bench: Section IV-C layout-mismatch note.

The paper reports ~2x average slowdown for a 1P1L hierarchy on a
2-D-optimized layout.  As documented in EXPERIMENTS.md, the penalty's
sources (power-of-two padding conflicts, broken long-stream
vectorization) sit below this trace model's resolution, so the bench
records the measured ratio and asserts only that the experiment runs
and actually changes behavior.
"""

from repro.experiments.layout_mismatch import run_layout_mismatch

from conftest import run_once


def test_layout_mismatch(benchmark):
    result = run_once(benchmark, run_layout_mismatch)
    print("\n" + result.report())
    assert result.average_slowdown() > 0
    for workload in result.matched:
        assert result.matched[workload] != result.mismatched[workload]
