"""Bench: Fig. 15 — column-line occupancy over time (sgemm, ssyrk).

Paper shape: sgemm's L1 column occupancy stays low and roughly stable
("only a few of those columns are present in the cache at a time");
ssyrk's occupancy rises and then falls as the trailing row-oriented
nest takes over.
"""

from repro.experiments.fig15 import run_fig15

from conftest import run_once


def test_fig15(benchmark, runner):
    result = run_once(benchmark, run_fig15, runner)
    print("\n" + result.report())
    ssyrk_llc = result.series["ssyrk"]["L3"]
    assert ssyrk_llc.peak() > 0.3
    assert ssyrk_llc.final() < ssyrk_llc.peak()

    sgemm_l1 = result.series["sgemm"]["L1"]
    values = sgemm_l1.values()
    assert values, "no sgemm occupancy samples"
    # Stable: the middle half of the run stays within a narrow band.
    middle = values[len(values) // 4: 3 * len(values) // 4 + 1]
    assert max(middle) - min(middle) < 0.4
