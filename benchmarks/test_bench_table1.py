"""Bench: Table I — experimental setup dump."""

from repro.experiments.table1 import run_table1

from conftest import run_once


def test_table1(benchmark):
    result = run_once(benchmark, run_table1)
    report = result.report()
    print("\n" + report)
    assert "L1 D-cache" in report
    assert "Everspin" in report or "act" in report
