"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables/figures at the scaled
configuration (DESIGN.md).  A single session-scoped
:class:`ExperimentRunner` is shared so simulation points common to
several figures (e.g. the 1 MB-LLC baselines used by Figs. 11, 12, 14,
and 16) are simulated exactly once per benchmark session.
"""

import pytest

from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(verbose=True)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
