"""Bench: Fig. 12 — normalized execution cycles across LLC capacities.

The paper's headline result.  Shape checks:

* every MDA design beats the baseline *on average* at every LLC point
  (paper: 45-72% average reductions);
* the 1 MB point shows a large (>= 35%) average reduction for all
  three designs;
* 2P2L misbehaves near the 2 MB working-set edge relative to its own
  1 MB result (the paper's "worst performance is 1.6x baseline ...
  2MB is the local working set size" note).
"""

from repro.experiments.fig12 import DESIGNS, LLC_POINTS, run_fig12

from conftest import run_once


def test_fig12(benchmark, runner):
    result = run_once(benchmark, run_fig12, runner)
    print("\n" + result.report())
    for llc in LLC_POINTS:
        for design in DESIGNS:
            avg = result.average_normalized(llc, design)
            assert avg < 1.0, f"{design} loses on average at {llc}MB"
    for design in DESIGNS:
        assert result.average_reduction_percent(1.0, design) >= 35.0
    # The 2 MB working-set edge hurts 2P2L (conflicts on few block
    # frames): its worst-case benchmark there is its global worst.
    worst_2mb = max(result.normalized_cycles(2.0, "2P2L", w)
                    for w in result.workloads)
    worst_1mb = max(result.normalized_cycles(1.0, "2P2L", w)
                    for w in result.workloads)
    assert worst_2mb >= worst_1mb
