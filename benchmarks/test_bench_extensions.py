"""Benches for the extension experiments (not paper figures)."""

from repro.experiments.dynamic_orientation import run_dynamic_orientation
from repro.experiments.energy import run_energy

from conftest import run_once


def test_energy(benchmark, runner):
    """MDA designs save memory energy by replacing row activations
    with denser column accesses (paper Section III's power argument)."""
    result = run_once(benchmark, run_energy, runner)
    print("\n" + result.report())
    for design in ("1P2L", "1P2L_SameSet", "2P2L"):
        assert result.average_normalized(design) < 1.0
    # Raw activation counts can go either way per workload (column
    # accesses alternate a bank's two buffers); the energy win must
    # still show a clear activation drop somewhere.
    drops = [result.activations["1P1L"][w]
             - result.activations["1P2L"][w]
             for w in result.baseline]
    assert max(drops) > 0


def test_dynamic_orientation(benchmark):
    """Annotation-free prediction recovers fill traffic but not cycles
    — the documented negative result (EXPERIMENTS.md)."""
    result = run_once(benchmark, run_dynamic_orientation)
    print("\n" + result.report())
    # Fill traffic strictly improves on at least one kernel, and never
    # gets catastrophically worse.
    assert result.fill_reduction() < 1.05
    assert any(result.l1_fills["1P2L_Dyn"][w]
               < result.l1_fills["1P2L"][w]
               for w in result.workloads)
    # Cycles stay within 2x of the static annotation baseline.
    assert result.prediction_payoff() < 2.0
