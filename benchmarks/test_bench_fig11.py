"""Bench: Fig. 11 — L1 hit rates normalized to 1P1L (1 MB LLC, large).

Paper shape: 1P2L does not beat the baseline on every benchmark, but
gains exist; our vector-granularity op mix widens the spread (see
EXPERIMENTS.md), so the assertions check sanity bands and the
"not uniform" property rather than the paper's exact +12%/+18%.
"""

from repro.experiments.fig11 import DESIGNS, run_fig11

from conftest import run_once


def test_fig11(benchmark, runner):
    result = run_once(benchmark, run_fig11, runner)
    print("\n" + result.report())
    for workload, rate in result.baseline.items():
        assert 0.0 <= rate <= 1.0
    for design in DESIGNS:
        avg = result.average_normalized(design)
        # Paper: +12%/+18% average.  Our scaled L1 has far fewer sets,
        # so the baseline's power-of-two column walks thrash harder
        # and the normalized gains are amplified (EXPERIMENTS.md);
        # the direction (>= 1 on average) must still hold.
        assert 1.0 <= avg < 8.0
    # Paper: "1P2L does not guarantee a better L1 hit rate than 1P1L
    # for all benchmarks" — the per-benchmark ratios are not uniform.
    ratios = [result.normalized_rate("1P2L", w)
              for w in result.baseline]
    assert max(ratios) > min(ratios)
    # At least one benchmark improves its L1 hit rate under MDA.
    assert any(r > 1.0 for r in ratios)
