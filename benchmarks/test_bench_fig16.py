"""Bench: Fig. 16 — 2P2L write-latency asymmetry sensitivity.

Paper shape: +20-cycle writes cost the 2P2L design only ~0.4% of
baseline on average; the trend versus the baseline does not change.
"""

from repro.experiments.fig16 import run_fig16

from conftest import run_once


def test_fig16(benchmark, runner):
    result = run_once(benchmark, run_fig16, runner)
    print("\n" + result.report())
    gap = result.asymmetry_gap()
    assert gap >= -0.01, "slow writes should not speed 2P2L up"
    assert gap < 0.05, f"asymmetry gap {gap:.3f} too large"
    # The trend vs baseline is unchanged: slow-write 2P2L still wins.
    assert result.average_normalized("2P2L_SlowWrite") < 1.0
