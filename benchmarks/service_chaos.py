#!/usr/bin/env python
"""Chaos load bench for multi-worker serving (``repro serve --workers``).

Starts the real pre-fork server as a subprocess with service fault
injection armed — workers killed mid-request, cache entries corrupted
before reads, requests slowed — and drives it with hundreds of
concurrent clients whose config popularity is zipfian (a few hot
configs, a long cold tail), which is what makes cross-worker
coalescing and the shared cache matter.  Then it asserts the resilient
-serving acceptance criteria end to end:

* **zero lost requests** — every request gets a terminal response,
  through worker kills and restarts (clients retry with full-jitter
  backoff under a circuit breaker);
* **zero wrong answers** — every response's cycles *and* full flat
  stats are bit-identical to a direct single-process
  :class:`~repro.experiments.runner.ExperimentRunner` run of the same
  config;
* **the master actually restarted workers** —
  ``repro_worker_restarts_total > 0`` in ``/metrics``;
* **bounded tail latency** — p99 (including retries across restarts)
  stays under ``--p99-bound`` seconds;
* **clean drain** — SIGTERM exits 0 with no leftover processes.

Writes ``BENCH_service.json`` (p50/p99 latency, throughput, fault and
restart counts) for the CI regression gate
(``benchmarks/check_bench_regression.py``).

Usage::

    python benchmarks/service_chaos.py [--workers 3] [--requests 300]
        [--clients 200] [--faults SPEC] [--outdir DIR] [--json PATH]
"""

from __future__ import annotations

import argparse
import asyncio
import collections
import json
import random
import re
import signal
import subprocess
import sys
import threading
import time

DESIGNS = ("1P1L", "1P2L", "2P2L", "1P2L_SameSet", "2P2L_Dense",
           "2P2L_SlowWrite")
LLC_POINTS = (1.0, 2.0)

DEFAULT_FAULTS = ("serve_worker_kill:0.03,serve_cache_corrupt:0.2,"
                  "serve_slow_request:0.05,slow_seconds:0.1,seed:11")

METRIC_RE = re.compile(r"(repro_\w+?)(?:\{[^}]*\})? ([\d.e+-]+)$")


def fail(message: str) -> None:
    print(f"service-chaos: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def zipf_bodies(requests: int, seed: int) -> list:
    """``requests`` request bodies with zipfian config popularity."""
    configs = [{"design": d, "workload": "sobel", "size": "small",
                "llc_mb": mb, "stats": True}
               for d in DESIGNS for mb in LLC_POINTS]
    weights = [1.0 / (rank + 1) ** 1.1
               for rank in range(len(configs))]
    rng = random.Random(seed)
    return rng.choices(configs, weights=weights, k=requests)


def expected_results(bodies: list) -> dict:
    """Ground truth: each distinct config run directly, single
    process, no service in the loop."""
    from repro.experiments.runner import ExperimentRunner
    runner = ExperimentRunner(verbose=False, jobs=1, cache_dir=None,
                              trace_dir=None)
    expected = {}
    for body in bodies:
        key = (body["design"], body["llc_mb"])
        if key in expected:
            continue
        result = runner.run(body["design"], body["workload"],
                            size=body["size"], llc_mb=body["llc_mb"])
        expected[key] = {"cycles": result.cycles,
                         "stats": result.stats.flat()}
    return expected


async def drive(port: int, bodies: list, clients: int) -> dict:
    """Fire all requests through ``clients`` concurrent workers."""
    from repro.service.client import (
        AsyncServiceClient,
        CircuitBreaker,
        RetryConfig,
    )
    # Generous retry budget: a request may land on a worker that is
    # killed mid-flight several times in a row; losing it anyway is
    # exactly the bug this bench exists to catch.
    retry = RetryConfig(max_retries=10, backoff_base=0.1,
                        backoff_cap=5.0)
    queue: asyncio.Queue = asyncio.Queue()
    for index, body in enumerate(bodies):
        queue.put_nowait((index, body))
    latencies = [0.0] * len(bodies)
    responses: list = [None] * len(bodies)
    errors: list = []

    async def client_task(worker_id: int) -> None:
        client = AsyncServiceClient(port=port, retry=retry,
                                    breaker=CircuitBreaker(
                                        threshold=5, cooldown=0.5))
        while True:
            try:
                index, body = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            started = time.monotonic()
            try:
                responses[index] = await client.request(
                    "POST", "/simulate", body)
            except Exception as exc:  # noqa: BLE001 - recorded below
                errors.append((index, f"{type(exc).__name__}: {exc}"))
            latencies[index] = time.monotonic() - started

    started = time.monotonic()
    await asyncio.gather(*(client_task(i) for i in range(clients)))
    elapsed = time.monotonic() - started
    return {"latencies": latencies, "responses": responses,
            "errors": errors, "elapsed": elapsed}


def percentile(values: list, fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[rank]


def scrape_metrics(port: int) -> dict:
    import urllib.request
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=30) as resp:
        text = resp.read().decode("utf-8")
    metrics: dict = {}
    for line in text.splitlines():
        match = METRIC_RE.match(line)
        if match:
            name, value = match.group(1), float(match.group(2))
            metrics[name] = metrics.get(name, 0.0) + value
    return metrics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument("--faults", default=DEFAULT_FAULTS)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--outdir", default="results-chaos")
    parser.add_argument("--json", default="BENCH_service.json")
    parser.add_argument("--p99-bound", type=float, default=30.0,
                        help="hard bound on p99 request latency, "
                             "seconds (default: 30)")
    args = parser.parse_args()

    bodies = zipf_bodies(args.requests, args.seed)
    distinct = {(b["design"], b["llc_mb"]) for b in bodies}
    print(f"service-chaos: computing ground truth for "
          f"{len(distinct)} distinct configs")
    expected = expected_results(bodies)

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", str(args.workers), "--outdir", args.outdir,
         "--inject-faults", args.faults],
        stderr=subprocess.PIPE, text=True)

    # Drain the fleet's stderr continuously: with kill faults armed
    # the master and workers log every restart, and an undrained pipe
    # fills, blocking every print() in the fleet — which reads as a
    # mysterious service-wide stall, not a log problem.
    ready = threading.Event()
    port_box: list = []
    log_tail: collections.deque = collections.deque(maxlen=50)

    def pump_stderr() -> None:
        for raw in proc.stderr:
            line = raw.rstrip()
            log_tail.append(line)
            if not ready.is_set():
                match = re.search(
                    r"listening on http://[^:]+:(\d+)", line)
                if match:
                    port_box.append(int(match.group(1)))
                    ready.set()
        ready.set()

    threading.Thread(target=pump_stderr, daemon=True).start()
    try:
        ready.wait(timeout=60)
        if not port_box:
            fail(f"no readiness line from master; last stderr: "
                 f"{list(log_tail)[-5:]}")
        port = port_box[0]
        print(f"service-chaos: master up on port {port} with "
              f"{args.workers} workers; faults: {args.faults}")
        print(f"service-chaos: firing {len(bodies)} requests from "
              f"{args.clients} concurrent clients "
              f"(zipfian over {len(distinct)} configs)")
        outcome = asyncio.run(drive(port, bodies, args.clients))

        # Zero lost requests: every slot holds a terminal response.
        if outcome["errors"]:
            index, message = outcome["errors"][0]
            fail(f"{len(outcome['errors'])} requests lost; first: "
                 f"request {index}: {message}")
        missing = [i for i, r in enumerate(outcome["responses"])
                   if r is None]
        if missing:
            fail(f"{len(missing)} requests got no response at all")

        # Zero wrong answers: bit-identical to the direct runner.
        for index, response in enumerate(outcome["responses"]):
            body = bodies[index]
            truth = expected[(body["design"], body["llc_mb"])]
            if response.get("cycles") != truth["cycles"]:
                fail(f"request {index} ({body['design']}, "
                     f"{body['llc_mb']}MB): served cycles "
                     f"{response.get('cycles')} != direct "
                     f"{truth['cycles']}")
            if response.get("stats") != truth["stats"]:
                served = response.get("stats") or {}
                diff = [k for k in truth["stats"]
                        if served.get(k) != truth["stats"][k]][:5]
                fail(f"request {index}: served stats differ from the "
                     f"direct runner (first diverging keys: {diff})")

        metrics = scrape_metrics(port)
        restarts = metrics.get("repro_worker_restarts_total", 0.0)
        alive = metrics.get("repro_workers_alive", 0.0)
        cross = metrics.get("repro_cross_coalesced_total", 0.0)
        if restarts <= 0:
            fail("no worker restarts recorded — the kill fault never "
                 "fired or the master failed to restart; this run "
                 "did not exercise the recovery path")
        if alive <= 0:
            fail(f"workers_alive is {alive} after the load")

        p50 = percentile(outcome["latencies"], 0.50)
        p99 = percentile(outcome["latencies"], 0.99)
        if p99 > args.p99_bound:
            fail(f"p99 latency {p99:.2f}s exceeds the "
                 f"{args.p99_bound:.0f}s bound")
        throughput = len(bodies) / outcome["elapsed"]

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=120)
        if code != 0:
            fail(f"master exited {code} after SIGTERM, want 0")

        artifact = {
            "service_chaos_requests_per_sec": round(throughput, 2),
            "service_chaos_p50_ms": round(p50 * 1000, 2),
            "service_chaos_p99_ms": round(p99 * 1000, 2),
            "service_chaos_requests": len(bodies),
            "service_chaos_clients": args.clients,
            "service_chaos_workers": args.workers,
            "service_chaos_restarts": int(restarts),
            "service_chaos_cross_coalesced": int(cross),
            "service_chaos_faults": args.faults,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"service-chaos: throughput {throughput:,.1f} req/s, "
              f"p50 {p50 * 1000:.0f}ms, p99 {p99 * 1000:.0f}ms, "
              f"restarts {restarts:.0f}, cross-coalesced {cross:.0f}")
        print(f"service-chaos: PASS ({len(bodies)} requests, 0 lost, "
              f"0 wrong, drained cleanly) -> {args.json}")
    finally:
        if proc.poll() is None:
            # SIGTERM first so the master drains its workers; a bare
            # kill would orphan them (they outlive the master).
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


if __name__ == "__main__":
    main()
