#!/usr/bin/env python
"""CI gate: compare a fresh BENCH_engine.json against the baseline.

Usage::

    python benchmarks/check_bench_regression.py BASELINE CURRENT

Compares the throughput metrics (``*_requests_per_sec``) of a freshly
measured artifact against the committed baseline.  A metric more than
``FAIL_THRESHOLD`` below its baseline fails the build; anything below
baseline but within the threshold prints a soft warning (CI runners
are shared and noisy — a hard gate at parity would flap).  Latency
metrics (``service_chaos_p*_ms``, lower is better) gate the other
direction with a loose ``LATENCY_FAIL_FACTOR``.  Metrics new to the
current artifact are reported informationally; metrics present in the
baseline but missing from the current run fail, since that means a
bench silently stopped running.

Works for both artifacts: ``BENCH_engine.json`` (replay loops) and
``BENCH_service.json`` (the chaos serving bench) — keys missing from
*both* sides are simply skipped, so each job passes its own pair.

On top of the per-metric baselines, one *ratio* rule is enforced
within the current artifact alone: the vector window replay must
clear ``VECTOR_KERNEL_RATIO`` times the fused kernel loop (the PR-6
acceptance bar).  Ratios of same-host numbers are immune to runner
speed, so this gate is hard.

Exit status: 0 = OK (possibly with warnings), 1 = regression or
missing metric, 2 = usage / unreadable artifact.
"""

import json
import sys

#: Hard-fail when a throughput metric drops by more than this fraction.
FAIL_THRESHOLD = 0.25

#: Gated metrics: higher is better, measured in requests/second.
THROUGHPUT_KEYS = (
    "hot_loop_requests_per_sec",
    "packed_loop_requests_per_sec",
    "kernel_loop_requests_per_sec",
    "kernel_2p2l_requests_per_sec",
    "vector_loop_requests_per_sec",
    "vector_miss_loop_requests_per_sec",
    "tier_replay_requests_per_sec",
    "service_chaos_requests_per_sec",
)

#: Gated latency metrics: lower is better, milliseconds.  The factor
#: is deliberately loose (these are end-to-end service latencies under
#: injected faults on shared CI runners); the gate exists to catch a
#: tail-latency blowup like an un-reclaimed coalescing lease, not a
#: noisy-neighbour wobble.
LATENCY_KEYS = (
    "service_chaos_p50_ms",
    "service_chaos_p99_ms",
)
LATENCY_FAIL_FACTOR = 4.0

#: The vector replay must clear this multiple of the fused kernel
#: loop within one artifact (same host, same session).
VECTOR_KERNEL_RATIO = 2.0

#: The 2P2L kernel replay must clear this multiple of the packed loop
#: on the same trace within one artifact (the PR-7 acceptance bar).
KERNEL_2P2L_PACKED_RATIO = 1.8

#: The vector replay must clear this multiple of the scalar kernel on
#: the same miss-heavy trace within one artifact (the PR-9 bar: the
#: vectorized miss path must hold 2x even when every access misses).
VECTOR_MISS_KERNEL_RATIO = 2.0


def _load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def check(baseline, current):
    """Compare artifacts; returns a list of hard failures."""
    failures = []
    for key in THROUGHPUT_KEYS:
        base = baseline.get(key)
        curr = current.get(key)
        if not isinstance(base, (int, float)) or base <= 0:
            if isinstance(curr, (int, float)):
                print(f"  new    {key}: {curr:,.0f} req/s "
                      f"(no baseline)")
            continue
        if not isinstance(curr, (int, float)):
            failures.append(f"{key}: present in baseline "
                            f"({base:,.0f} req/s) but missing from "
                            f"the current artifact")
            continue
        ratio = curr / base
        if ratio < 1.0 - FAIL_THRESHOLD:
            failures.append(f"{key}: {curr:,.0f} req/s is "
                            f"{(1.0 - ratio) * 100:.1f}% below the "
                            f"baseline {base:,.0f} req/s "
                            f"(limit {FAIL_THRESHOLD * 100:.0f}%)")
        elif ratio < 1.0:
            print(f"  warn   {key}: {curr:,.0f} req/s is "
                  f"{(1.0 - ratio) * 100:.1f}% below baseline "
                  f"{base:,.0f} req/s (within the "
                  f"{FAIL_THRESHOLD * 100:.0f}% tolerance)")
        else:
            print(f"  ok     {key}: {curr:,.0f} req/s "
                  f"(baseline {base:,.0f}, {(ratio - 1) * 100:+.1f}%)")
    for key in LATENCY_KEYS:
        base = baseline.get(key)
        curr = current.get(key)
        if not isinstance(base, (int, float)) or base <= 0:
            if isinstance(curr, (int, float)):
                print(f"  new    {key}: {curr:,.0f} ms (no baseline)")
            continue
        if not isinstance(curr, (int, float)):
            failures.append(f"{key}: present in baseline "
                            f"({base:,.0f} ms) but missing from the "
                            f"current artifact")
            continue
        ratio = curr / base
        if ratio > LATENCY_FAIL_FACTOR:
            failures.append(f"{key}: {curr:,.0f} ms is {ratio:.1f}x "
                            f"the baseline {base:,.0f} ms (limit "
                            f"{LATENCY_FAIL_FACTOR:.0f}x)")
        elif ratio > 1.0:
            print(f"  warn   {key}: {curr:,.0f} ms is {ratio:.2f}x "
                  f"baseline {base:,.0f} ms (within the "
                  f"{LATENCY_FAIL_FACTOR:.0f}x tolerance)")
        else:
            print(f"  ok     {key}: {curr:,.0f} ms "
                  f"(baseline {base:,.0f} ms)")
    vec = current.get("vector_loop_requests_per_sec")
    ker = current.get("kernel_loop_requests_per_sec")
    if isinstance(vec, (int, float)) and isinstance(ker, (int, float)) \
            and ker > 0:
        ratio = vec / ker
        if ratio < VECTOR_KERNEL_RATIO:
            failures.append(
                f"vector/kernel ratio: {vec:,.0f} req/s is only "
                f"{ratio:.2f}x the kernel loop ({ker:,.0f} req/s); "
                f"the acceptance bar is {VECTOR_KERNEL_RATIO:.1f}x")
        else:
            print(f"  ok     vector/kernel ratio: {ratio:.2f}x "
                  f"(bar {VECTOR_KERNEL_RATIO:.1f}x)")
    k2 = current.get("kernel_2p2l_requests_per_sec")
    p2 = current.get("kernel_2p2l_packed_requests_per_sec")
    if isinstance(k2, (int, float)) and isinstance(p2, (int, float)) \
            and p2 > 0:
        ratio = k2 / p2
        if ratio < KERNEL_2P2L_PACKED_RATIO:
            failures.append(
                f"2P2L kernel/packed ratio: {k2:,.0f} req/s is only "
                f"{ratio:.2f}x the packed loop ({p2:,.0f} req/s); "
                f"the acceptance bar is {KERNEL_2P2L_PACKED_RATIO:.1f}x")
        else:
            print(f"  ok     2P2L kernel/packed ratio: {ratio:.2f}x "
                  f"(bar {KERNEL_2P2L_PACKED_RATIO:.1f}x)")
    vm = current.get("vector_miss_loop_requests_per_sec")
    km = current.get("vector_miss_loop_kernel_requests_per_sec")
    if isinstance(vm, (int, float)) and isinstance(km, (int, float)) \
            and km > 0:
        ratio = vm / km
        if ratio < VECTOR_MISS_KERNEL_RATIO:
            failures.append(
                f"miss-loop vector/kernel ratio: {vm:,.0f} req/s is "
                f"only {ratio:.2f}x the scalar kernel ({km:,.0f} "
                f"req/s); the acceptance bar is "
                f"{VECTOR_MISS_KERNEL_RATIO:.1f}x")
        else:
            print(f"  ok     miss-loop vector/kernel ratio: "
                  f"{ratio:.2f}x (bar {VECTOR_MISS_KERNEL_RATIO:.1f}x)")
    return failures


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = _load(argv[1])
    current = _load(argv[2])
    print(f"bench regression gate: {argv[2]} vs baseline {argv[1]}")
    failures = check(baseline, current)
    if failures:
        for failure in failures:
            print(f"  FAIL   {failure}", file=sys.stderr)
        return 1
    print("  bench gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
