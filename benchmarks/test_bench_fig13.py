"""Bench: Fig. 13 — cache-resident working set (small input, L2-as-LLC).

Paper shape: gains persist but are much smaller than the non-resident
case (paper: ~14% for 1P2L, ~16% for 2P2L vs 64%+ non-resident),
because only the L1<->L2 bandwidth reduction remains.
"""

from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import DESIGNS, run_fig13

from conftest import run_once


def test_fig13(benchmark, runner):
    result = run_once(benchmark, run_fig13, runner)
    print("\n" + result.report())
    for design in DESIGNS:
        avg = result.average_normalized(design)
        assert avg < 1.0, f"{design} loses on average when resident"
    # Resident gains are smaller than the non-resident 1 MB gains.
    nonresident = run_fig12(runner, llc_points=(1.0,))
    for design in DESIGNS:
        assert result.average_normalized(design) > \
            nonresident.average_normalized(1.0, design)
