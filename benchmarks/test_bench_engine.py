"""Bench: the experiment engine — hot loop, replay loops, run cache.

Measures (1) raw requests/second of the default engine path (whatever
``TraceDrivenCpu.run`` dispatches to), (2) the packed replay loop
(``TraceDrivenCpu.run_packed``, pinned via ``kernels.kernel_disabled``),
(3) the fused flat-store kernel (``TraceDrivenCpu.run_kernel``, pinned
via ``vector.vector_disabled`` now that covered 2-D designs dispatch
to the vector loop), gated at >= 2x the packed loop on the same host,
(4) the vectorized window replay (``TraceDrivenCpu.run_vector``) on a
hit-dense trace, gated at >= 2x the fused kernel, (5) the sharded
(cold-cache-epoch) replay under a 2-worker pool versus serial, and
(6) the end-to-end wall time of a two-figure sweep (Figs. 11 and 12
restricted to two workloads) under ``--jobs 2`` versus ``--jobs 1``,
cold and warm persistent cache.  Emits ``BENCH_engine.json`` next to
the other benchmark artifacts; ``check_bench_regression.py`` compares
a fresh artifact against the committed one in CI.

The container may expose a single core, so the parallel sweep and
sharded-replay timings only run (and assert) when more than one core
is available; on a single core the artifact records
``"skipped_single_core"`` instead of a misleading ~1.0 ratio.  The
warm-cache rerun must be near-instant and fully cache-served
regardless of core count.
"""

import json
import os
import time

from repro.common.config import apply_overrides
from repro.common.types import AccessWidth, Orientation, PackedTrace, \
    Request
from repro.core import kernels, vector
from repro.core.simulator import clear_trace_cache, run_simulation, \
    run_trace
from repro.core.system import make_system
from repro.experiments.plans import plan_fig11, plan_fig12
from repro.experiments.runner import ExperimentRunner, RunKey, \
    simulate_run_key

from conftest import run_once

WORKLOADS = ["sgemm", "sobel"]
ARTIFACT = os.path.join(os.path.dirname(__file__), "..",
                        "BENCH_engine.json")

#: Length of the synthetic hit-dense trace the vector bench replays.
HOT_TRACE_LEN = 1 << 18

#: Distinct tiles the miss-heavy trace cycles through.  At 7x the LLC
#: set count every access misses L1 and hits the LLC, so each
#: classification chunk is one ~4096-row bulk miss window.
MISS_TILE_COUNT = 3584


def _hot_trace(n=HOT_TRACE_LEN):
    """Vector reads cycling one tile's 8 row lines: all hits after the
    8-line warmup, so windows span whole classification chunks."""
    return PackedTrace.from_requests(
        [Request(addr=(i & 7) << 6, orientation=Orientation.ROW,
                 width=AccessWidth.VECTOR, is_write=False, ref_id=0)
         for i in range(n)])


def _miss_trace(n=HOT_TRACE_LEN):
    """Vector reads cycling MISS_TILE_COUNT distinct tiles' row 0: the
    working set is 56x the L1 but fits the 256KB LLC below, so every
    access is an L1 miss served by the second level."""
    return PackedTrace.from_requests(
        [Request(addr=(i % MISS_TILE_COUNT) << 9,
                 orientation=Orientation.ROW,
                 width=AccessWidth.VECTOR, is_write=False, ref_id=0)
         for i in range(n)])


def _miss_system():
    """Two-level system whose LLC holds the miss trace's working set:
    a stock 4KB L1 under a 256KB SRAM second level (512 sets x 8
    ways), so the replay is a pure L1-miss / L2-hit stream."""
    from repro.common.config import CpuConfig, MemoryConfig, \
        SystemConfig
    from repro.core.system import _l1, _llc_sram
    return SystemConfig(
        levels=[_l1(2),
                _llc_sram(256 * 1024, 2, "different_set", name="L2")],
        memory=MemoryConfig(), cpu=CpuConfig())


def _sweep_keys():
    keys = plan_fig11(workloads=WORKLOADS, size="small")
    keys += plan_fig12(workloads=WORKLOADS, size="small")
    return list(dict.fromkeys(keys))


def _timed_prefetch(jobs, cache_dir=None):
    runner = ExperimentRunner(jobs=jobs, cache_dir=cache_dir)
    started = time.perf_counter()
    simulated = runner.prefetch(_sweep_keys())
    return time.perf_counter() - started, simulated, runner


def test_hot_loop_requests_per_second(benchmark):
    system = make_system("1P2L", 1.0)
    # Warm the trace cache so the bench times the request loop, not
    # trace generation.
    clear_trace_cache()
    warmup = run_simulation(system, workload="sgemm", size="small")

    result = run_once(benchmark, run_simulation, system,
                      workload="sgemm", size="small")
    assert result.cycles == warmup.cycles
    seconds = benchmark.stats["mean"]
    rps = result.ops / seconds
    print(f"\nhot loop: {result.ops} requests in {seconds:.3f}s "
          f"= {rps:,.0f} req/s")
    _merge_artifact({"hot_loop_requests_per_sec": round(rps)})
    # Floor well below current throughput (~500k+ req/s observed);
    # trips only if the hot path regresses badly.
    assert rps > 50_000


def test_packed_loop_requests_per_second(benchmark):
    """The packed replay loop clears 1.5x the PR-1 hot-loop baseline.

    Pinned to ``TraceDrivenCpu.run_packed`` via ``kernel_disabled`` —
    without the pin, ``run_simulation`` on a covered design would
    silently measure the fused kernel instead.  The container's timing
    is noisy (single shared core), so the loop runs several rounds and
    the best one stands in for steady-state throughput; the mean of a
    single round can swing ~20% on an otherwise idle machine.
    """
    system = make_system("1P2L", 1.0)
    # Warm the trace memo so the rounds time replay, not generation.
    clear_trace_cache()

    def packed_run():
        with kernels.kernel_disabled():
            return run_simulation(system, workload="sgemm",
                                  size="small")

    warmup = packed_run()
    result = benchmark.pedantic(packed_run, rounds=9, iterations=1)
    assert result.cycles == warmup.cycles
    seconds = benchmark.stats["min"]
    rps = result.ops / seconds
    print(f"\npacked loop: {result.ops} requests in {seconds:.3f}s "
          f"(best of 9) = {rps:,.0f} req/s")
    _merge_artifact({"packed_loop_requests_per_sec": round(rps)})
    # Acceptance floor: 1.5x the PR-1 object-path baseline of
    # 88,364 req/s recorded in BENCH_engine.json.
    assert rps >= 1.5 * 88_364


def test_kernel_loop_requests_per_second(benchmark):
    """The fused flat-store kernel clears 2x the packed replay loop.

    Pinned to ``TraceDrivenCpu.run_kernel`` via ``vector_disabled`` —
    without the pin, ``run_simulation`` on 1P2L would silently measure
    the vector loop instead — and gated against the packed number the
    previous test just recorded on the same host (the PR-4 acceptance
    bar).  Results stay bit-identical: the run must reproduce the
    pinned packed run's cycle count exactly.
    """
    system = make_system("1P2L", 1.0)
    clear_trace_cache()
    with kernels.kernel_disabled():
        reference = run_simulation(system, workload="sgemm",
                                   size="small")
    assert kernels.KERNEL_ENABLED

    def kernel_run():
        with vector.vector_disabled():
            return run_simulation(system, workload="sgemm",
                                  size="small")

    result = benchmark.pedantic(kernel_run, rounds=9, iterations=1)
    assert result.cycles == reference.cycles
    seconds = benchmark.stats["min"]
    rps = result.ops / seconds
    packed_rps = _read_artifact().get("packed_loop_requests_per_sec")
    ratio = rps / packed_rps if packed_rps else None
    note = f" = {ratio:.2f}x packed" if ratio else ""
    print(f"\nkernel loop: {result.ops} requests in {seconds:.3f}s "
          f"(best of 9) = {rps:,.0f} req/s{note}")
    _merge_artifact({"kernel_loop_requests_per_sec": round(rps)})
    # Acceptance: >= 2x the packed loop measured on the same host (the
    # artifact was just rewritten by the packed bench above).  Absolute
    # floor as a backstop when the packed bench did not run.
    if packed_rps:
        assert rps >= 2.0 * packed_rps
    assert rps >= 3.0 * 88_364


def test_kernel_2p2l_requests_per_second(benchmark):
    """The 2P2L kernel replay clears 1.8x the packed loop (PR-7 bar).

    The 2P2L design runs a dual-ported last level with duplicate-copy
    coherence and packed presence words — the family this PR moved off
    the packed interpreter.  Both loops replay the same sgemm trace on
    the same host: the packed loop pinned via ``kernel_disabled`` (best
    of 3), the fused kernel via ``vector_disabled`` (so the now
    vector-covered design measures the scalar kernel, rounds of 9).
    Results must stay bit-identical between the two pins.
    """
    system = make_system("2P2L", 1.0)
    clear_trace_cache()

    packed_best = None
    with kernels.kernel_disabled():
        reference = run_simulation(system, workload="sgemm",
                                   size="small")
        for _ in range(3):
            started = time.perf_counter()
            check = run_simulation(system, workload="sgemm",
                                   size="small")
            elapsed = time.perf_counter() - started
            packed_best = elapsed if packed_best is None \
                else min(packed_best, elapsed)
    assert check.cycles == reference.cycles

    def kernel_run():
        with vector.vector_disabled():
            return run_simulation(system, workload="sgemm",
                                  size="small")

    result = benchmark.pedantic(kernel_run, rounds=9, iterations=1)
    assert result.cycles == reference.cycles
    seconds = benchmark.stats["min"]
    rps = result.ops / seconds
    packed_rps = result.ops / packed_best
    ratio = rps / packed_rps
    print(f"\n2P2L kernel loop: {result.ops} requests in {seconds:.3f}s "
          f"(best of 9) = {rps:,.0f} req/s "
          f"({ratio:.2f}x same-trace packed {packed_rps:,.0f} req/s)")
    _merge_artifact({
        "kernel_2p2l_requests_per_sec": round(rps),
        "kernel_2p2l_packed_requests_per_sec": round(packed_rps),
    })
    # PR-7 acceptance: the 2P2L kernel replay must clear 1.8x the
    # packed loop on the same trace and host.
    assert rps >= 1.8 * packed_rps


def test_vector_loop_requests_per_second(benchmark):
    """The vector window replay clears 2x the fused kernel loop.

    Measured on a hit-dense trace — the regime dependency windows
    exist for: after an 8-line warmup every classification chunk is
    one full bulk window, so the replay is numpy scatters end to end.
    The scalar kernel replays the same trace (pinned) for an honest
    same-trace ratio; the recorded PR-6 acceptance gate compares
    against the sgemm-based ``kernel_loop_requests_per_sec`` above.
    Results stay bit-identical to the pinned kernel run.
    """
    packed = _hot_trace()
    system = make_system("1P2L", 1.0)

    kernel_best = None
    for _ in range(3):
        started = time.perf_counter()
        with vector.vector_disabled():
            reference = run_trace(system, packed, name="hot")
        elapsed = time.perf_counter() - started
        kernel_best = elapsed if kernel_best is None \
            else min(kernel_best, elapsed)

    result = benchmark.pedantic(run_trace, args=(system, packed),
                                kwargs={"name": "hot"},
                                rounds=5, iterations=1)
    assert result.cycles == reference.cycles
    assert result.stats.flat() == reference.stats.flat()
    seconds = benchmark.stats["min"]
    rps = result.ops / seconds
    same_trace = (result.ops / kernel_best) if kernel_best else 0.0
    kernel_rps = _read_artifact().get("kernel_loop_requests_per_sec")
    note = f" = {rps / kernel_rps:.2f}x kernel loop" if kernel_rps \
        else ""
    print(f"\nvector loop: {result.ops} requests in {seconds:.3f}s "
          f"(best of 5) = {rps:,.0f} req/s{note} "
          f"({rps / same_trace:.2f}x same-trace kernel)")
    _merge_artifact({
        "vector_loop_requests_per_sec": round(rps),
        "vector_same_trace_kernel_requests_per_sec":
            round(same_trace),
    })
    # PR-6 acceptance: >= 2x the fused kernel loop recorded on the
    # same host.  The same-trace floor is softer (1.3x) — the shared
    # single-core CI runner is noisy and the honest margin is ~2x.
    if kernel_rps:
        assert rps >= 2.0 * kernel_rps
    assert rps >= 1.3 * same_trace
    assert rps >= 1_000_000, "the 1M+ req/s headline must hold"


def test_vector_miss_loop_requests_per_second(benchmark):
    """The vector replay clears 2x the scalar kernel on a miss-heavy
    trace — the regime this PR vectorized.

    Every access in the trace is an L1 miss served by the 256KB second
    level, so each classification chunk retires through the bulk-miss
    path: set-grouped MSHR allocation against the flat table, one
    latency scatter for the fills, and the uniform-window fast path
    for the clock recurrence.  The scalar kernel replays the same
    trace (pinned via ``vector_disabled``) for a same-host,
    same-trace ratio; results must stay bit-identical between the two
    pins.  ``check_bench_regression.py`` enforces the 2x ratio on the
    recorded pair.
    """
    system = _miss_system()
    packed = _miss_trace()

    kernel_best = None
    for _ in range(3):
        started = time.perf_counter()
        with vector.vector_disabled():
            reference = run_trace(system, packed, name="missloop")
        elapsed = time.perf_counter() - started
        kernel_best = elapsed if kernel_best is None \
            else min(kernel_best, elapsed)

    result = benchmark.pedantic(run_trace, args=(system, packed),
                                kwargs={"name": "missloop"},
                                rounds=5, iterations=1)
    assert result.cycles == reference.cycles
    assert result.stats.flat() == reference.stats.flat()
    seconds = benchmark.stats["min"]
    rps = result.ops / seconds
    kernel_rps = result.ops / kernel_best
    ratio = rps / kernel_rps
    print(f"\nvector miss loop: {result.ops} requests in "
          f"{seconds:.3f}s (best of 5) = {rps:,.0f} req/s "
          f"({ratio:.2f}x same-trace kernel {kernel_rps:,.0f} req/s)")
    _merge_artifact({
        "vector_miss_loop_requests_per_sec": round(rps),
        "vector_miss_loop_kernel_requests_per_sec": round(kernel_rps),
    })
    # Acceptance: the vectorized miss path must clear 2x the pinned
    # scalar kernel on the same trace and host.
    assert rps >= 2.0 * kernel_rps


def test_tier_replay_requests_per_second(benchmark):
    """Replay throughput with the die-stacked tier below the LLC.

    The miss trace's 1.75MB working set overflows the scaled LLC, so
    below-LLC traffic flows through the hybrid tier: the flat half
    absorbs the low tiles, the cache half sees the rest through the
    TDRAM probe + RBLA install path.  The pinned scalar kernel replays
    the same trace for bit-identity; the recorded throughput is gated
    by ``check_bench_regression.py`` so the tier hook on the replay
    hot path cannot silently decay.
    """
    overrides = {"tier.mode": "hybrid",
                 "tier.size_bytes": 2 * 1024 * 1024,
                 "tier.cache_fraction": 0.5}
    system = apply_overrides(make_system("1P2L", 1.0), overrides)
    packed = _miss_trace()

    with vector.vector_disabled():
        reference = run_trace(system, packed, name="tierloop")
    tier_stats = {name: value
                  for name, value in reference.stats.flat().items()
                  if name.startswith("tier.")}
    assert tier_stats.get("tier.fetches", 0) > 0, \
        "the bench trace must actually reach the tier"

    result = benchmark.pedantic(run_trace, args=(system, packed),
                                kwargs={"name": "tierloop"},
                                rounds=5, iterations=1)
    assert result.cycles == reference.cycles
    assert result.stats.flat() == reference.stats.flat()
    seconds = benchmark.stats["min"]
    rps = result.ops / seconds
    print(f"\ntier replay: {result.ops} requests in {seconds:.3f}s "
          f"(best of 5) = {rps:,.0f} req/s "
          f"({tier_stats['tier.fetches']} tier fetches, "
          f"{tier_stats['tier.flat_hits']} flat hits, "
          f"{tier_stats['tier.hits']} cache hits)")
    _merge_artifact({"tier_replay_requests_per_sec": round(rps)})


def test_sharded_replay_speedup():
    """Sharded (cold-cache epoch) replay: pool vs serial, bit-checked.

    Replays the same 2-epoch plan serially and under a forced
    2-worker pool; the merged statistics must agree bit for bit on any
    host.  The wall-clock speedup is only recorded when more than one
    core is available — on a single core the artifact keeps the
    ``"skipped_single_core"`` sentinel rather than a ~1.0 ratio.
    """
    cpu_count = os.cpu_count() or 1
    key = RunKey("1P2L", "sgemm", "small", 1.0, False, "default", 0,
                 (), 2)

    serial_best = None
    for _ in range(3):
        started = time.perf_counter()
        serial = simulate_run_key(key)
        elapsed = time.perf_counter() - started
        serial_best = elapsed if serial_best is None \
            else min(serial_best, elapsed)

    runner = ExperimentRunner(jobs=2, shards=2)
    started = time.perf_counter()
    runner.prefetch([key], jobs=2)
    pool_seconds = time.perf_counter() - started
    pooled = runner.run(key.design, key.workload, key.size,
                        key.llc_mb)
    assert pooled.cycles == serial.cycles
    assert pooled.stats.flat() == serial.stats.flat()

    if cpu_count > 1:
        speedup_field = round(serial_best / pool_seconds, 3)
        note = f"x{speedup_field} over serial {serial_best:.3f}s"
    else:
        speedup_field = "skipped_single_core"
        note = f"1 core (serial {serial_best:.3f}s)"
    print(f"\nsharded replay: 2 epochs, pool {pool_seconds:.3f}s, "
          f"{note}")
    _merge_artifact({"sharded_replay_speedup": speedup_field})


def test_two_figure_sweep_parallel_vs_sequential(benchmark, tmp_path):
    cache_dir = str(tmp_path / ".runcache")
    cpu_count = os.cpu_count() or 1

    seq_seconds, seq_simulated, seq_runner = _timed_prefetch(jobs=1)
    if cpu_count > 1:
        par_seconds, par_simulated, par_runner = _timed_prefetch(
            jobs=2, cache_dir=cache_dir)
    else:
        # A 2-job sweep on one core just time-slices the same CPU:
        # skip the parallel timing entirely and populate the
        # persistent cache sequentially for the warm-rerun check.
        par_seconds = None
        _, par_simulated, par_runner = _timed_prefetch(
            jobs=1, cache_dir=cache_dir)
    assert seq_simulated == par_simulated

    # Bit-identical statistics between the two paths.
    for key in _sweep_keys():
        seq = seq_runner.run(key.design, key.workload, key.size,
                             key.llc_mb)
        par = par_runner.run(key.design, key.workload, key.size,
                             key.llc_mb)
        assert seq.cycles == par.cycles
        assert seq.stats.flat() == par.stats.flat()

    # Warm persistent cache: second invocation is served from disk.
    def warm():
        warm_runner = ExperimentRunner(jobs=2, cache_dir=cache_dir)
        warm_runner.prefetch(_sweep_keys())
        return warm_runner

    warm_runner = run_once(benchmark, warm)
    info = warm_runner.cache_info()
    assert info.misses == 0
    assert info.hit_fraction() == 1.0
    warm_seconds = benchmark.stats["mean"]

    # A parallel speedup is only meaningful with more than one core:
    # on a single core the 2-job timing was skipped above, and the
    # artifact records the sentinel ``"skipped_single_core"`` instead
    # of a misleading ~1.0 ratio (or an ambiguous null).
    if cpu_count > 1:
        speedup = seq_seconds / par_seconds if par_seconds else 0.0
        speedup_field = round(speedup, 3)
        jobs2_field = round(par_seconds, 3)
        par_note = f"jobs=2 {par_seconds:.2f}s (x{speedup:.2f})"
    else:
        speedup_field = "skipped_single_core"
        jobs2_field = "skipped_single_core"
        par_note = "jobs=2 skipped (1 core)"
    print(f"\nsweep ({seq_simulated} points): jobs=1 {seq_seconds:.2f}s,"
          f" {par_note},"
          f" warm cache {warm_seconds:.3f}s")
    _merge_artifact({
        "sweep_points": seq_simulated,
        "sweep_seconds_jobs1": round(seq_seconds, 3),
        "sweep_seconds_jobs2": jobs2_field,
        "sweep_parallel_speedup": speedup_field,
        "warm_cache_seconds": round(warm_seconds, 3),
        "warm_cache_hit_fraction": info.hit_fraction(),
        "cpu_count": cpu_count,
    })
    if cpu_count > 1:
        # Two workers on two real cores should beat sequential by a
        # comfortable margin even with fork overhead.
        assert speedup > 1.1
    # The warm rerun skips every simulation; it must beat the cold
    # sequential sweep by a wide margin on any machine.
    assert warm_seconds < seq_seconds / 2


def _read_artifact():
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT) as handle:
            try:
                return json.load(handle)
            except json.JSONDecodeError:
                pass
    return {}


def _merge_artifact(fields):
    data = _read_artifact()
    data.update(fields)
    with open(ARTIFACT, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
