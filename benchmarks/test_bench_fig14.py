"""Bench: Fig. 14 — LLC accesses and LLC<->memory bytes, normalized.

Paper shape: MSHR column coalescing and dense column fetch cut L3
accesses to ~20-22% of baseline and memory bytes to ~15-21%.
"""

from repro.experiments.fig14 import DESIGNS, run_fig14

from conftest import run_once


def test_fig14(benchmark, runner):
    result = run_once(benchmark, run_fig14, runner)
    print("\n" + result.report())
    for design in DESIGNS:
        accesses = result.average_accesses(design)
        transfer = result.average_bytes(design)
        # Paper: ~0.20/0.22; accept up to 0.5 for the scaled setup.
        assert accesses < 0.5, f"{design} LLC accesses {accesses}"
        assert transfer < 0.6, f"{design} memory bytes {transfer}"
