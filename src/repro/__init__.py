"""MDACache reproduction: caching for Multi-Dimensional-Access memories.

A trace-driven reproduction of *MDACache: Caching for
Multi-Dimensional-Access Memories* (George, Liao, et al., MICRO 2018):
an MDA (crosspoint) main-memory model with row *and* column buffers, the
1P1L / 1P2L / 2P2L cache taxonomy, the compiler model (direction
analysis, MDA-compliant tiled layout, row+column vectorization), the
paper's seven benchmarks, and one experiment module per evaluation
table/figure.

Quickstart::

    from repro import make_system, run_simulation

    base = run_simulation(make_system("1P1L"), workload="sgemm")
    mda = run_simulation(make_system("1P2L"), workload="sgemm")
    print(mda.cycles / base.cycles)   # the paper's headline win
"""

from .common import (
    AccessWidth,
    CacheLevelConfig,
    CpuConfig,
    MemoryConfig,
    Orientation,
    PrefetcherConfig,
    Request,
    SystemConfig,
)
from .core import (
    DESIGN_NAMES,
    RunResult,
    make_resident_system,
    make_system,
    run_simulation,
)
from .sw import generate_trace, trace_mix
from .workloads import build_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AccessWidth",
    "CacheLevelConfig",
    "CpuConfig",
    "DESIGN_NAMES",
    "MemoryConfig",
    "Orientation",
    "PrefetcherConfig",
    "Request",
    "RunResult",
    "SystemConfig",
    "build_workload",
    "generate_trace",
    "make_resident_system",
    "make_system",
    "run_simulation",
    "trace_mix",
    "workload_names",
]
