"""Top-level MDA main memory.

Presents the interface the LLC uses (paper Section IV-B, "Cache <->
MDA memory"): oriented line reads that "will always receive the line in
the requested orientation", oriented line writebacks, and
critical-word-first completion times.  All the interesting behavior lives
in :class:`~repro.mem.controller.MemoryController`; this wrapper exists so
the cache hierarchy depends on a two-method protocol rather than on the
controller internals, and so a conventional (row-only) memory can be
modeled by the same class with column accesses rejected.
"""

from __future__ import annotations

from ..common.config import MemoryConfig
from ..common.errors import SimulationError
from ..common.stats import StatRegistry
from ..common.types import Orientation, line_orientation
from .controller import MemoryController


class MdaMemory:
    """MDA main memory: serves oriented line reads and writebacks."""

    def __init__(self, config: MemoryConfig, stats: StatRegistry,
                 allow_column: bool = True) -> None:
        self._config = config
        self._controller = MemoryController(config, stats)
        self._allow_column = allow_column

    @property
    def config(self) -> MemoryConfig:
        return self._config

    @property
    def controller(self) -> MemoryController:
        return self._controller

    def buffer_state(self, line_id: int):
        """``(region_key, would_hit)`` locality probe (read-only).

        See :meth:`MemoryController.buffer_state`; used by the
        die-stacked tier's RBLA install policy.
        """
        return self._controller.buffer_state(line_id)

    def read_line(self, line_id: int, now: int) -> int:
        """Fetch an oriented line; returns critical-word-ready time."""
        self._check_orientation(line_id)
        return self._controller.read_line(line_id, now)

    def write_line(self, line_id: int, now: int) -> int:
        """Post an oriented line writeback; returns ack time."""
        self._check_orientation(line_id)
        return self._controller.write_line(line_id, now)

    def finish(self, now: int) -> int:
        """Drain pending writes; returns the final memory horizon."""
        return self._controller.drain_all(now)

    def _check_orientation(self, line_id: int) -> None:
        if (not self._allow_column
                and line_orientation(line_id) is Orientation.COLUMN):
            raise SimulationError(
                "column access issued to a memory configured row-only")
