"""A crosspoint bank with both a row buffer and a column buffer.

This is the timing heart of the MDA memory (paper Section III, Figs. 2-6):
the array can open either a physical row into the row buffer or a
physical column into the column buffer, and subsequent accesses along the
open dimension are buffer hits.  Bit-slicing (Fig. 5/6) is what makes a
column activation deliver whole *words*; at this abstraction level it
appears simply as the column buffer existing at all, plus the one-cycle
column-decode adder charged by the controller.

Open-page policy (Table I): buffers stay open until a conflicting
activation replaces them.  ``MemoryConfig.sub_buffers`` > 1 enables the
multiple sub-row-buffer scheme of Gulur et al. that the paper compares
against (Section IX-B): each bank then keeps that many rows *and*
columns open, with FIFO replacement among them.  The paper found "less
than 1% impact" for single-threaded runs — the ablation bench checks
the same holds here.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.config import MemoryConfig
from ..common.stats import StatGroup
from ..common.types import Orientation


class CrosspointBank:
    """Timing state for one bank: open buffers and busy horizon."""

    def __init__(self, config: MemoryConfig, stats: StatGroup) -> None:
        self._config = config
        self._stats = stats
        # Most recently opened entry last; capped at config.sub_buffers.
        self._open_rows: List[int] = []
        self._open_cols: List[int] = []
        self._busy_until = 0
        # Pre-scaled array timings (scaled() is deterministic per
        # config) and pre-bound counter cells: every line access goes
        # through `access`, so this is one of the simulator's hottest
        # paths.  Banks of one memory share the cells (one StatGroup).
        self._activate_cost = config.scaled(config.activate_cycles)
        self._read_cost = config.scaled(config.buffer_access_cycles)
        self._write_cost = config.scaled(config.write_cycles)
        self._sub_buffers = config.sub_buffers
        self._column_extra = config.column_decode_extra
        self._c_buffer_hits = stats.counter("buffer_hits")
        self._c_buffer_misses = stats.counter("buffer_misses")
        self._c_hits_by_orient = (stats.counter("row_buffer_hits"),
                                  stats.counter("col_buffer_hits"))
        self._c_misses_by_orient = (stats.counter("row_buffer_misses"),
                                    stats.counter("col_buffer_misses"))
        self._c_reads = stats.counter("reads")
        self._c_writes = stats.counter("writes")

    @property
    def open_row(self) -> Optional[int]:
        """Most recently opened row (None when nothing is open)."""
        return self._open_rows[-1] if self._open_rows else None

    @property
    def open_col(self) -> Optional[int]:
        return self._open_cols[-1] if self._open_cols else None

    @property
    def busy_until(self) -> int:
        return self._busy_until

    def would_hit(self, orientation: Orientation, buffer_key: int) -> bool:
        """True if an access now would be a buffer hit (FR-FCFS input)."""
        buffers = (self._open_rows if orientation is Orientation.ROW
                   else self._open_cols)
        return buffer_key in buffers

    def access(self, orientation: Orientation, buffer_key: int,
               is_write: bool, at: int) -> int:
        """Service one line access; returns first-data-ready time.

        The bank is occupied from ``max(at, busy_until)`` until the
        returned time.  A buffer miss pays an activation; writes pay the
        (slower, for STT) array write instead of the buffer read.
        """
        start = max(at, self._busy_until)
        cost = 0
        is_row = orientation is Orientation.ROW
        buffers = self._open_rows if is_row else self._open_cols
        if buffer_key in buffers:
            self._c_buffer_hits.value += 1
            self._c_hits_by_orient[not is_row].value += 1
        else:
            cost += self._activate_cost
            self._c_buffer_misses.value += 1
            self._c_misses_by_orient[not is_row].value += 1
            buffers.append(buffer_key)
            if len(buffers) > self._sub_buffers:
                buffers.pop(0)
        if is_write:
            cost += self._write_cost
            self._c_writes.value += 1
        else:
            cost += self._read_cost
            self._c_reads.value += 1
        if not is_row:
            cost += self._column_extra
        ready = start + cost
        self._busy_until = ready
        return ready

    def reset(self) -> None:
        self._open_rows.clear()
        self._open_cols.clear()
        self._busy_until = 0
