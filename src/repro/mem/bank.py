"""A crosspoint bank with both a row buffer and a column buffer.

This is the timing heart of the MDA memory (paper Section III, Figs. 2-6):
the array can open either a physical row into the row buffer or a
physical column into the column buffer, and subsequent accesses along the
open dimension are buffer hits.  Bit-slicing (Fig. 5/6) is what makes a
column activation deliver whole *words*; at this abstraction level it
appears simply as the column buffer existing at all, plus the one-cycle
column-decode adder charged by the controller.

Open-page policy (Table I): buffers stay open until a conflicting
activation replaces them.  ``MemoryConfig.sub_buffers`` > 1 enables the
multiple sub-row-buffer scheme of Gulur et al. that the paper compares
against (Section IX-B): each bank then keeps that many rows *and*
columns open, with FIFO replacement among them.  The paper found "less
than 1% impact" for single-threaded runs — the ablation bench checks
the same holds here.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.config import MemoryConfig
from ..common.stats import StatGroup
from ..common.types import Orientation


class CrosspointBank:
    """Timing state for one bank: open buffers and busy horizon."""

    def __init__(self, config: MemoryConfig, stats: StatGroup) -> None:
        self._config = config
        self._stats = stats
        # Most recently opened entry last; capped at config.sub_buffers.
        self._open_rows: List[int] = []
        self._open_cols: List[int] = []
        self._busy_until = 0

    @property
    def open_row(self) -> Optional[int]:
        """Most recently opened row (None when nothing is open)."""
        return self._open_rows[-1] if self._open_rows else None

    @property
    def open_col(self) -> Optional[int]:
        return self._open_cols[-1] if self._open_cols else None

    @property
    def busy_until(self) -> int:
        return self._busy_until

    def would_hit(self, orientation: Orientation, buffer_key: int) -> bool:
        """True if an access now would be a buffer hit (FR-FCFS input)."""
        buffers = (self._open_rows if orientation is Orientation.ROW
                   else self._open_cols)
        return buffer_key in buffers

    def access(self, orientation: Orientation, buffer_key: int,
               is_write: bool, at: int) -> int:
        """Service one line access; returns first-data-ready time.

        The bank is occupied from ``max(at, busy_until)`` until the
        returned time.  A buffer miss pays an activation; writes pay the
        (slower, for STT) array write instead of the buffer read.
        """
        config = self._config
        start = max(at, self._busy_until)
        cost = 0
        if self.would_hit(orientation, buffer_key):
            self._stats.add("buffer_hits")
            self._stats.add("row_buffer_hits" if orientation is
                            Orientation.ROW else "col_buffer_hits")
        else:
            cost += config.scaled(config.activate_cycles)
            self._stats.add("buffer_misses")
            self._stats.add("row_buffer_misses" if orientation is
                            Orientation.ROW else "col_buffer_misses")
            self._open(orientation, buffer_key)
        if is_write:
            cost += config.scaled(config.write_cycles)
            self._stats.add("writes")
        else:
            cost += config.scaled(config.buffer_access_cycles)
            self._stats.add("reads")
        if orientation is Orientation.COLUMN:
            cost += config.column_decode_extra
        ready = start + cost
        self._busy_until = ready
        return ready

    def _open(self, orientation: Orientation, buffer_key: int) -> None:
        buffers = (self._open_rows if orientation is Orientation.ROW
                   else self._open_cols)
        buffers.append(buffer_key)
        if len(buffers) > self._config.sub_buffers:
            buffers.pop(0)

    def reset(self) -> None:
        self._open_rows.clear()
        self._open_cols.clear()
        self._busy_until = 0
