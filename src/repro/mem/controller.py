"""FRFCFS-WQF memory controller for the MDA memory (paper Table I).

The controller models the pieces of FR-FCFS / write-queue-first scheduling
that matter for a single-threaded trace:

* **open-page preference** — buffer hits are cheap because banks keep
  their row and column buffers open (:class:`CrosspointBank`);
* **posted writes** — writebacks enter a per-channel write queue and are
  acknowledged immediately; the queue drains to the low watermark when it
  fills past the high watermark, pushing bank and bus horizons forward
  (this is where write traffic interferes with reads);
* **overlap ordering** — a read that overlaps any queued write (same
  oriented line, or a perpendicular line in the same tile) forces those
  writes to drain first.  Together with the 2-D MSHRs this implements the
  paper's requirement that "transactions that have overlapping words
  should be ordered, even if the access directions are different".

Data-bus occupancy is tracked per channel; reads complete for the
requester at critical-word-first time while the full burst occupies the
bus.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..common.config import MemoryConfig
from ..common.stats import StatRegistry
from ..common.types import LINE_BYTES, WORDS_PER_LINE, lines_overlap
from .bank import CrosspointBank
from .decoder import AddressDecoder, DecodedLine


class _Channel:
    """Per-channel bus horizon and pending write queue."""

    __slots__ = ("bus_free_at", "write_queue")

    def __init__(self) -> None:
        self.bus_free_at = 0
        self.write_queue: List[Tuple[int, DecodedLine]] = []


class MemoryController:
    """Schedules decoded line requests onto banks and buses."""

    def __init__(self, config: MemoryConfig, stats: StatRegistry) -> None:
        self._config = config
        self._decoder = AddressDecoder(config)
        self._stats = stats.group("memory")
        bank_stats = stats.group("memory.banks")
        total_banks = (config.channels * config.ranks_per_channel
                       * config.banks_per_rank)
        self._banks = [CrosspointBank(config, bank_stats)
                       for _ in range(total_banks)]
        self._channels = [_Channel() for _ in range(config.channels)]
        # Critical-word-first: the requester waits only for the first
        # word's share of the burst.
        self._critical_beats = max(1, config.burst_cycles // WORDS_PER_LINE)
        self._c_line_reads = self._stats.counter("line_reads")
        self._c_bytes_read = self._stats.counter("bytes_read")
        self._c_read_cycles = self._stats.counter("read_cycles")
        self._c_line_writes = self._stats.counter("line_writes")
        self._c_bytes_written = self._stats.counter("bytes_written")
        self._c_writes_drained = self._stats.counter("writes_drained")

    @property
    def decoder(self) -> AddressDecoder:
        return self._decoder

    def buffer_state(self, line_id: int) -> Tuple[Tuple[int, int, int],
                                                  bool]:
        """Read-only locality probe: ``(region_key, would_hit)``.

        ``region_key`` identifies the (bank, orientation, buffer) a
        line maps to; ``would_hit`` is True when an access issued now
        would be a buffer hit.  The RBLA install policy of the
        die-stacked tier (Meza et al.) consults this without touching
        bank state — probing never opens or closes a buffer.
        """
        decoded = self._decoder.decode_line(line_id)
        bank_index = self._decoder.bank_key(decoded)
        hit = self._banks[bank_index].would_hit(decoded.orientation,
                                                decoded.buffer_key)
        return ((bank_index, int(decoded.orientation),
                 decoded.buffer_key), hit)

    def read_line(self, line_id: int, now: int) -> int:
        """Service a line read; returns critical-word completion time."""
        decoded = self._decoder.decode_line(line_id)
        channel = self._channels[decoded.channel]
        self._drain_idle(channel, now)
        self._drain_overlapping(channel, line_id, now)
        if len(channel.write_queue) >= self._config.write_queue_high:
            self._drain_to_low(channel, now)
        bank = self._banks[self._decoder.bank_key(decoded)]
        data_ready = bank.access(decoded.orientation, decoded.buffer_key,
                                 is_write=False, at=now)
        first_beat = max(data_ready, channel.bus_free_at)
        channel.bus_free_at = first_beat + self._config.burst_cycles
        completion = first_beat + self._critical_beats
        self._c_line_reads.value += 1
        self._c_bytes_read.value += LINE_BYTES
        self._c_read_cycles.value += completion - now
        return completion

    def write_line(self, line_id: int, now: int) -> int:
        """Post a line writeback; returns the (cheap) ack time."""
        decoded = self._decoder.decode_line(line_id)
        channel = self._channels[decoded.channel]
        self._drain_idle(channel, now)
        channel.write_queue.append((line_id, decoded))
        self._c_line_writes.value += 1
        self._c_bytes_written.value += LINE_BYTES
        if len(channel.write_queue) >= self._config.write_queue_high:
            self._drain_to_low(channel, now)
        return now + 1

    def drain_all(self, now: int) -> int:
        """Flush every queued write (end-of-simulation); returns horizon."""
        horizon = now
        for channel in self._channels:
            while channel.write_queue:
                horizon = max(horizon,
                              self._drain_one(channel, horizon))
        return horizon

    # -- internals ----------------------------------------------------------

    def _drain_overlapping(self, channel: _Channel, line_id: int,
                           now: int) -> None:
        """Drain queued writes whose words overlap ``line_id``."""
        if not channel.write_queue:
            return
        keep: List[Tuple[int, DecodedLine]] = []
        for entry in channel.write_queue:
            if lines_overlap(entry[0], line_id):
                self._service_write(channel, entry, now)
                self._stats.add("ordering_drains")
            else:
                keep.append(entry)
        channel.write_queue = keep

    def _drain_idle(self, channel: _Channel, now: int) -> None:
        """Opportunistic FR-FCFS write drain into idle bus time.

        Any queued write that fits before ``now`` on the (otherwise
        idle) data bus is retired in that window, so writebacks do not
        linger until a later overlapping read pays for them.
        """
        while channel.write_queue and channel.bus_free_at < now:
            self._drain_one(channel, channel.bus_free_at)
            self._stats.add("idle_drains")

    def _drain_to_low(self, channel: _Channel, now: int) -> None:
        """WQF drain: shrink the write queue to the low watermark."""
        self._stats.add("wq_drain_episodes")
        while len(channel.write_queue) > self._config.write_queue_low:
            self._drain_one(channel, now)

    def _drain_one(self, channel: _Channel, now: int) -> int:
        entry = channel.write_queue.pop(0)
        return self._service_write(channel, entry, now)

    def _service_write(self, channel: _Channel,
                       entry: Tuple[int, DecodedLine], now: int) -> int:
        """Move one queued write through the bus and its bank."""
        _, decoded = entry
        data_at = max(now, channel.bus_free_at)
        channel.bus_free_at = data_at + self._config.burst_cycles
        bank = self._banks[self._decoder.bank_key(decoded)]
        done = bank.access(decoded.orientation, decoded.buffer_key,
                           is_write=True, at=data_at)
        self._c_writes_drained.value += 1
        return done

    def reset(self) -> None:
        for bank in self._banks:
            bank.reset()
        for channel in self._channels:
            channel.bus_free_at = 0
            channel.write_queue.clear()

    def pending_writes(self) -> int:
        """Total writes currently queued across channels."""
        return sum(len(ch.write_queue) for ch in self._channels)

    def bank_states(self) -> Dict[int, Tuple[object, object]]:
        """Open (row, column) buffer keys per bank index (debugging)."""
        return {i: (bank.open_row, bank.open_col)
                for i, bank in enumerate(self._banks)}
