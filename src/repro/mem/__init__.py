"""MDA main memory model: decode, crosspoint banks, controller."""

from .bank import CrosspointBank
from .controller import MemoryController
from .decoder import AddressDecoder, DecodedLine
from .mda_memory import MdaMemory

__all__ = [
    "AddressDecoder",
    "CrosspointBank",
    "DecodedLine",
    "MdaMemory",
    "MemoryController",
]
