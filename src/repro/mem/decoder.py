"""MDA address decode (paper Fig. 8).

The physical address is partitioned, LSB to MSB, as::

    | byte (3) | row word offset (3) | col word offset (3) |   <- one tile
    | CH | RK | BK | C (tile-column select) | R (tile-row select) |

The nine low bits address one 512-byte tile, so channel / rank / bank
interleaving operates on whole tiles ("a column aligned tile is the unit
of interleaving") and never splits a column line across banks.  The
channel, rank, and bank bits sit directly above the tile offset — "we
push the selection of bank, rank, and channel bits as much as possible
toward the LSB to enhance channel, rank and bank-level parallelism".

Within a bank, tiles form a ``C x R`` grid.  The bank's **row buffer**
holds one physical array row: every word with tile-row select ``R`` and
in-tile row ``r`` across all ``C`` tile columns.  The **column buffer**
symmetrically holds one physical array column: every word with tile
column ``C`` and in-tile column ``c`` across all tile rows.  Buffer-hit
timing therefore keys on ``(R, r)`` for rows and ``(C, c)`` for columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..common.config import MemoryConfig
from ..common.types import Orientation, line_id_parts


def _log2(value: int) -> int:
    return value.bit_length() - 1


@dataclass(frozen=True, slots=True)
class DecodedLine:
    """A line request decoded to its physical location.

    Attributes:
        channel / rank / bank: topology coordinates.
        row_id: physical row index within the bank, ``R * 8 + r``
            (meaningful for ROW-oriented accesses).
        col_id: physical column index within the bank, ``C * 8 + c``
            (meaningful for COLUMN-oriented accesses).
        orientation: access orientation the line was requested in.
        tile: global tile index (used for overlap checks).
        index: line index within the tile (``r`` for rows, ``c`` for
            columns).
    """

    channel: int
    rank: int
    bank: int
    row_id: int
    col_id: int
    orientation: Orientation
    tile: int
    index: int

    @property
    def buffer_key(self) -> int:
        """Buffer-hit key in the buffer matching the orientation."""
        if self.orientation is Orientation.ROW:
            return self.row_id
        return self.col_id


class AddressDecoder:
    """Maps oriented line ids to channels, ranks, banks, and buffers."""

    def __init__(self, config: MemoryConfig) -> None:
        self._config = config
        self._ch_bits = _log2(config.channels)
        self._rk_bits = _log2(config.ranks_per_channel)
        self._bk_bits = _log2(config.banks_per_rank)
        self._c_bits = _log2(config.tile_cols_per_bank)
        self._ch_mask = config.channels - 1
        self._rk_mask = config.ranks_per_channel - 1
        self._bk_mask = config.banks_per_rank - 1
        self._c_mask = config.tile_cols_per_bank - 1
        # Decode is a pure function of (config, line_id) and the hot
        # loop revisits the same lines constantly; memoize per decoder.
        self._decoded: Dict[int, DecodedLine] = {}

    @property
    def config(self) -> MemoryConfig:
        return self._config

    def decode_line(self, line_id: int) -> DecodedLine:
        """Decode an oriented line id (see :mod:`repro.common.types`)."""
        cached = self._decoded.get(line_id)
        if cached is not None:
            return cached
        tile, orientation, index = line_id_parts(line_id)
        bits = tile
        channel = bits & self._ch_mask
        bits >>= self._ch_bits
        rank = bits & self._rk_mask
        bits >>= self._rk_bits
        bank = bits & self._bk_mask
        bits >>= self._bk_bits
        tile_col = bits & self._c_mask
        tile_row = bits >> self._c_bits
        if orientation is Orientation.ROW:
            row_id = tile_row * 8 + index
            col_id = tile_col * 8  # first column the line crosses
        else:
            row_id = tile_row * 8  # first row the line crosses
            col_id = tile_col * 8 + index
        decoded = DecodedLine(
            channel=channel,
            rank=rank,
            bank=bank,
            row_id=row_id,
            col_id=col_id,
            orientation=orientation,
            tile=tile,
            index=index,
        )
        self._decoded[line_id] = decoded
        return decoded

    def bank_key(self, decoded: DecodedLine) -> int:
        """Dense index of the (channel, rank, bank) triple."""
        per_channel = (self._config.ranks_per_channel
                       * self._config.banks_per_rank)
        return (decoded.channel * per_channel
                + decoded.rank * self._config.banks_per_rank
                + decoded.bank)
