"""MDA address decode (paper Fig. 8).

The physical address is partitioned, LSB to MSB, as::

    | byte (3) | row word offset (3) | col word offset (3) |   <- one tile
    | CH | RK | BK | C (tile-column select) | R (tile-row select) |

The nine low bits address one 512-byte tile, so channel / rank / bank
interleaving operates on whole tiles ("a column aligned tile is the unit
of interleaving") and never splits a column line across banks.  The
channel, rank, and bank bits sit directly above the tile offset — "we
push the selection of bank, rank, and channel bits as much as possible
toward the LSB to enhance channel, rank and bank-level parallelism".

Within a bank, tiles form a ``C x R`` grid.  The bank's **row buffer**
holds one physical array row: every word with tile-row select ``R`` and
in-tile row ``r`` across all ``C`` tile columns.  The **column buffer**
symmetrically holds one physical array column: every word with tile
column ``C`` and in-tile column ``c`` across all tile rows.  Buffer-hit
timing therefore keys on ``(R, r)`` for rows and ``(C, c)`` for columns.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from ..common.config import MemoryConfig
from ..common.types import Orientation, line_id_parts


def _log2(value: int) -> int:
    return value.bit_length() - 1


@lru_cache(maxsize=8)
def interleave_tables(channels: int, ranks_per_channel: int,
                      banks_per_rank: int, tile_cols_per_bank: int
                      ) -> Tuple[array, array, array, array, array, int]:
    """Interleaving decode tables, built once per memory geometry.

    The ``CH | RK | BK | C`` fields all live in the low bits of the
    tile number (see the module docstring), so one table indexed by
    those bits replaces the per-field mask/shift chain: returns
    ``(channel, rank, bank, tile_col, bank_key, low_bits)`` where the
    first five are flat per-low-bit-pattern lookup arrays (``bank_key``
    is the dense (channel, rank, bank) index the controller keys its
    bank map on) and ``low_bits`` is the field width — the tile row is
    simply ``tile >> low_bits``.
    """
    ch_bits = _log2(channels)
    rk_bits = _log2(ranks_per_channel)
    bk_bits = _log2(banks_per_rank)
    c_bits = _log2(tile_cols_per_bank)
    low_bits = ch_bits + rk_bits + bk_bits + c_bits
    size = 1 << low_bits
    chan_t = array("H", bytes(2 * size))
    rank_t = array("H", bytes(2 * size))
    bank_t = array("H", bytes(2 * size))
    col_t = array("H", bytes(2 * size))
    key_t = array("Q", bytes(8 * size))
    per_channel = ranks_per_channel * banks_per_rank
    for low in range(size):
        bits = low
        channel = bits & (channels - 1)
        bits >>= ch_bits
        rank = bits & (ranks_per_channel - 1)
        bits >>= rk_bits
        bank = bits & (banks_per_rank - 1)
        bits >>= bk_bits
        chan_t[low] = channel
        rank_t[low] = rank
        bank_t[low] = bank
        col_t[low] = bits & (tile_cols_per_bank - 1)
        key_t[low] = (channel * per_channel + rank * banks_per_rank
                      + bank)
    return chan_t, rank_t, bank_t, col_t, key_t, low_bits


@dataclass(frozen=True, slots=True)
class DecodedLine:
    """A line request decoded to its physical location.

    Attributes:
        channel / rank / bank: topology coordinates.
        row_id: physical row index within the bank, ``R * 8 + r``
            (meaningful for ROW-oriented accesses).
        col_id: physical column index within the bank, ``C * 8 + c``
            (meaningful for COLUMN-oriented accesses).
        orientation: access orientation the line was requested in.
        tile: global tile index (used for overlap checks).
        index: line index within the tile (``r`` for rows, ``c`` for
            columns).
    """

    channel: int
    rank: int
    bank: int
    row_id: int
    col_id: int
    orientation: Orientation
    tile: int
    index: int

    @property
    def buffer_key(self) -> int:
        """Buffer-hit key in the buffer matching the orientation."""
        if self.orientation is Orientation.ROW:
            return self.row_id
        return self.col_id


class AddressDecoder:
    """Maps oriented line ids to channels, ranks, banks, and buffers."""

    def __init__(self, config: MemoryConfig) -> None:
        self._config = config
        (self._chan_t, self._rank_t, self._bank_t, self._col_t,
         self._key_t, self._low_bits) = interleave_tables(
            config.channels, config.ranks_per_channel,
            config.banks_per_rank, config.tile_cols_per_bank)
        self._low_mask = (1 << self._low_bits) - 1
        # Decode is a pure function of (config, line_id) and the hot
        # loop revisits the same lines constantly; memoize per decoder.
        self._decoded: Dict[int, DecodedLine] = {}

    @property
    def config(self) -> MemoryConfig:
        return self._config

    def decode_line(self, line_id: int) -> DecodedLine:
        """Decode an oriented line id (see :mod:`repro.common.types`)."""
        cached = self._decoded.get(line_id)
        if cached is not None:
            return cached
        tile, orientation, index = line_id_parts(line_id)
        low = tile & self._low_mask
        channel = self._chan_t[low]
        rank = self._rank_t[low]
        bank = self._bank_t[low]
        tile_col = self._col_t[low]
        tile_row = tile >> self._low_bits
        if orientation is Orientation.ROW:
            row_id = tile_row * 8 + index
            col_id = tile_col * 8  # first column the line crosses
        else:
            row_id = tile_row * 8  # first row the line crosses
            col_id = tile_col * 8 + index
        decoded = DecodedLine(
            channel=channel,
            rank=rank,
            bank=bank,
            row_id=row_id,
            col_id=col_id,
            orientation=orientation,
            tile=tile,
            index=index,
        )
        self._decoded[line_id] = decoded
        return decoded

    def bank_key(self, decoded: DecodedLine) -> int:
        """Dense index of the (channel, rank, bank) triple."""
        return self._key_t[decoded.tile & self._low_mask]
