"""BLAS kernels: sgemm, ssyrk, ssyr2k, strmm (paper Section VI-B).

All four follow the paper's expository style (the "naive MxM algorithm"
of Section V-A): perfectly nested loops, accumulators in registers, no
blocking.  Each kernel mixes row-preference and column-preference
references, which is exactly why the paper picked them ("a set of
benchmarks featuring both row and column access affinities").
"""

from __future__ import annotations

from ..sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program


def _var(name: str) -> Affine:
    return Affine.of(name)


def build_sgemm(n: int) -> Program:
    """MatOut = MatR x MatC (paper Section V-A listing).

    With ``k`` innermost, ``MatR[i][k]`` is a row-wise walk and
    ``MatC[k][j]`` a column-wise walk — the motivating example for
    column vectorization.
    """
    mat_r = ArrayDecl("MatR", n, n)
    mat_c = ArrayDecl("MatC", n, n)
    mat_out = ArrayDecl("MatOut", n, n)
    nest = LoopNest(
        name="mm",
        loops=[Loop.over("i", n), Loop.over("j", n), Loop.over("k", n)],
        refs=[
            ArrayRef(mat_r, _var("i"), _var("k")),
            ArrayRef(mat_c, _var("k"), _var("j")),
            # sum accumulates in a register; the store lands once per
            # (i, j) after the reduction loop.
            ArrayRef(mat_out, _var("i"), _var("j"), is_write=True,
                     depth=2, when="after"),
        ],
    )
    return Program("sgemm", [mat_r, mat_c, mat_out], [nest])


def build_ssyrk(n: int) -> Program:
    """C := A' x A + C followed by a row-wise rescale pass.

    The transposed product makes both ``A`` walks column-wise; the
    trailing row-major pass gives the nest-to-nest preference shift the
    paper observes for ssyrk in Fig. 15 ("column occupancy first
    increases and then decreases due to neighboring loop nests
    exhibiting different preferences").
    """
    a = ArrayDecl("A", n, n)
    c = ArrayDecl("C", n, n)
    product = LoopNest(
        name="syrk",
        loops=[Loop.over("i", n), Loop.over("j", n), Loop.over("k", n)],
        refs=[
            ArrayRef(a, _var("k"), _var("i")),
            ArrayRef(a, _var("k"), _var("j")),
            ArrayRef(c, _var("i"), _var("j"), depth=2, when="before"),
            ArrayRef(c, _var("i"), _var("j"), is_write=True,
                     depth=2, when="after"),
        ],
    )
    rescale = LoopNest(
        name="rescale",
        loops=[Loop.over("i", n), Loop.over("j", n)],
        refs=[
            ArrayRef(c, _var("i"), _var("j")),
            ArrayRef(c, _var("i"), _var("j"), is_write=True),
        ],
    )
    return Program("ssyrk", [a, c], [product, rescale])


def build_ssyr2k(n: int) -> Program:
    """C := A x B' + B' x A + C, one nest per product.

    The first product walks ``A`` and ``B`` row-wise; the second walks
    them column-wise — a rank-2k update variant chosen to exercise both
    orientations on the same data structures (the property the paper's
    benchmark selection calls out).
    """
    a = ArrayDecl("A", n, n)
    b = ArrayDecl("B", n, n)
    c = ArrayDecl("C", n, n)
    row_product = LoopNest(
        name="ab_t",
        loops=[Loop.over("i", n), Loop.over("j", n), Loop.over("k", n)],
        refs=[
            ArrayRef(a, _var("i"), _var("k")),
            ArrayRef(b, _var("j"), _var("k")),
            ArrayRef(c, _var("i"), _var("j"), depth=2, when="before"),
            ArrayRef(c, _var("i"), _var("j"), is_write=True,
                     depth=2, when="after"),
        ],
    )
    col_product = LoopNest(
        name="b_t_a",
        loops=[Loop.over("i", n), Loop.over("j", n), Loop.over("k", n)],
        refs=[
            ArrayRef(b, _var("k"), _var("i")),
            ArrayRef(a, _var("k"), _var("j")),
            ArrayRef(c, _var("i"), _var("j"), depth=2, when="before"),
            ArrayRef(c, _var("i"), _var("j"), is_write=True,
                     depth=2, when="after"),
        ],
    )
    return Program("ssyr2k", [a, b, c], [row_product, col_product])


def build_strmm(n: int) -> Program:
    """B := A x B with upper-triangular A.

    The reduction loop runs ``k in [i, n)``, exercising the affine loop
    bounds and producing misaligned vector groups; ``A[i][k]`` is
    row-wise, ``B[k][j]`` column-wise.
    """
    a = ArrayDecl("A", n, n)
    b = ArrayDecl("B", n, n)
    nest = LoopNest(
        name="trmm",
        loops=[
            Loop.over("i", n),
            Loop.over("j", n),
            Loop.bounded("k", Affine.of("i"), n),
        ],
        refs=[
            ArrayRef(a, _var("i"), _var("k")),
            ArrayRef(b, _var("k"), _var("j")),
            ArrayRef(b, _var("i"), _var("j"), is_write=True,
                     depth=2, when="after"),
        ],
    )
    return Program("strmm", [a, b], [nest])
