"""Extra kernels beyond the paper's benchmark suite.

The paper's introduction motivates MDA memories with "myriad algorithms
spanning from matrix multiplication to vision processing to database
queries"; these kernels extend the suite for downstream users (they are
*not* used by the paper-figure experiments):

* ``transpose``  — B = A', the canonical forced row/column mix;
* ``jacobi2d``   — 5-point stencil sweep, row-oriented with reuse;
* ``conv1d_col`` — vertical 1-D convolution, pure column streams;
* ``covariance`` — mean-centered A'A, mixing full-column reductions
  with row-wise centering;
* ``backsub``    — back-substitution on an upper-triangular system,
  a triangular column walk.
"""

from __future__ import annotations

from ..sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program


def build_transpose(n: int) -> Program:
    """B = A' with j innermost: A row-wise, B column-wise."""
    a = ArrayDecl("A", n, n)
    b = ArrayDecl("B", n, n)
    nest = LoopNest(
        "transpose",
        [Loop.over("i", n), Loop.over("j", n)],
        [ArrayRef(a, Affine.of("i"), Affine.of("j")),
         ArrayRef(b, Affine.of("j"), Affine.of("i"), is_write=True)],
    )
    return Program("transpose", [a, b], [nest])


def build_jacobi2d(n: int, sweeps: int = 2) -> Program:
    """Ping-pong 5-point Jacobi sweeps over the grid interior."""
    grids = [ArrayDecl("U0", n, n), ArrayDecl("U1", n, n)]
    nests = []
    for sweep in range(sweeps):
        src = grids[sweep % 2]
        dst = grids[(sweep + 1) % 2]
        nests.append(LoopNest(
            f"jacobi_{sweep}",
            [Loop.bounded("i", 1, n - 1), Loop.bounded("j", 1, n - 1)],
            [
                ArrayRef(src, Affine.of("i"), Affine.of("j")),
                ArrayRef(src, Affine.of("i", const=-1), Affine.of("j")),
                ArrayRef(src, Affine.of("i", const=1), Affine.of("j")),
                ArrayRef(src, Affine.of("i"), Affine.of("j", const=-1)),
                ArrayRef(src, Affine.of("i"), Affine.of("j", const=1)),
                ArrayRef(dst, Affine.of("i"), Affine.of("j"),
                         is_write=True),
            ],
        ))
    return Program("jacobi2d", grids, nests)


def build_conv1d_col(n: int, taps: int = 5) -> Program:
    """Vertical 1-D convolution: every column filtered independently."""
    image = ArrayDecl("Img", n, n)
    out = ArrayDecl("Flt", n, n)
    refs = [ArrayRef(image, Affine.of("i", const=t), Affine.of("j"))
            for t in range(taps)]
    refs.append(ArrayRef(out, Affine.of("i"), Affine.of("j"),
                         is_write=True))
    nest = LoopNest(
        "conv1d_col",
        [Loop.over("j", n), Loop.bounded("i", 0, n - taps + 1)],
        refs,
    )
    return Program("conv1d_col", [image, out], [nest])


def build_covariance(n: int) -> Program:
    """Mean-center the columns of A, then form C = A' x A."""
    a = ArrayDecl("A", n, n)
    meanv = ArrayDecl("Mean", 1, n)
    c = ArrayDecl("C", n, n)
    # Column means: walk each column (column preference).
    means = LoopNest(
        "col_means",
        [Loop.over("j", n), Loop.over("i", n)],
        [ArrayRef(a, Affine.of("i"), Affine.of("j")),
         ArrayRef(meanv, Affine.constant(0), Affine.of("j"),
                  is_write=True, depth=1, when="after")],
    )
    # Centering: row-major update pass.
    center = LoopNest(
        "center",
        [Loop.over("i", n), Loop.over("j", n)],
        [ArrayRef(a, Affine.of("i"), Affine.of("j")),
         ArrayRef(meanv, Affine.constant(0), Affine.of("j")),
         ArrayRef(a, Affine.of("i"), Affine.of("j"), is_write=True)],
    )
    # C = A' x A (column walks, like ssyrk's product).
    product = LoopNest(
        "outer_product",
        [Loop.over("i", n), Loop.over("j", n), Loop.over("k", n)],
        [ArrayRef(a, Affine.of("k"), Affine.of("i")),
         ArrayRef(a, Affine.of("k"), Affine.of("j")),
         ArrayRef(c, Affine.of("i"), Affine.of("j"), is_write=True,
                  depth=2, when="after")],
    )
    return Program("covariance", [a, meanv, c], [means, center, product])


def build_backsub(n: int) -> Program:
    """Solve Ux = b by back-substitution (U upper-triangular).

    The inner update ``b[j] -= U[j][i] * x[i]`` walks a *column* of U
    above the pivot — a triangular column access.
    """
    u = ArrayDecl("U", n, n)
    b = ArrayDecl("B", n, 1)
    x = ArrayDecl("X", n, 1)
    # For each pivot i (outer), update all rows j < i... expressed with
    # normalized loops: i over [0, n), j over [0, n - i - ...] is not
    # affine-friendly, so walk j over [0, i) via the triangular bound.
    solve = LoopNest(
        "backsub",
        [Loop.over("i", n), Loop.bounded("j", 0, Affine.of("i"))],
        [
            ArrayRef(u, Affine.of("j"), Affine.of("i")),  # column of U
            ArrayRef(x, Affine.of("i"), Affine.constant(0), depth=1),
            ArrayRef(b, Affine.of("j"), Affine.constant(0)),
            ArrayRef(b, Affine.of("j"), Affine.constant(0),
                     is_write=True),
        ],
    )
    return Program("backsub", [u, b, x], [solve])
