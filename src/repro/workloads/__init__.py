"""The paper's benchmark suite, expressed in the program IR."""

from .blas import build_sgemm, build_ssyr2k, build_ssyrk, build_strmm
from .htap import build_htap1, build_htap2
from .extra import (
    build_backsub,
    build_conv1d_col,
    build_covariance,
    build_jacobi2d,
    build_transpose,
)
from .registry import (
    extended_workload_names,
    HTAP_SIZES,
    MATRIX_SIZES,
    WorkloadSpec,
    build_workload,
    get_workload,
    workload_names,
)
from .sobel import build_sobel

__all__ = [
    "HTAP_SIZES",
    "MATRIX_SIZES",
    "WorkloadSpec",
    "build_backsub",
    "build_conv1d_col",
    "build_covariance",
    "build_htap1",
    "build_htap2",
    "build_jacobi2d",
    "build_sgemm",
    "build_transpose",
    "build_sobel",
    "build_ssyr2k",
    "build_ssyrk",
    "build_strmm",
    "build_workload",
    "extended_workload_names",
    "get_workload",
    "workload_names",
]
