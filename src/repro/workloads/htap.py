"""HTAP workloads (paper Section VI-B, from the GS-DRAM suite [40]).

A single row-major table serves both transaction-style row accesses and
analytics-style column scans — the hybrid pattern that motivates
decoupling layout from access direction (paper Section V-A's column-IO
database discussion).

* ``htap1`` — analytics-dominant: several full column scans (aggregates
  with a predicate column), plus a sparse set of row materializations
  for the matching tuples.
* ``htap2`` — transactions-dominant: read-modify-write over half the
  rows, plus a smaller analytical column pass.
"""

from __future__ import annotations

from ..sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program


def build_htap1(rows: int, cols: int) -> Program:
    """Analytical HTAP: column scans plus selective row fetches."""
    table = ArrayDecl("T", rows, cols)
    scan_cols = min(4, cols // 4)
    # Each query scans its value column q*3+1 against a shared
    # predicate column 0 (the WHERE clause) — the predicate column is
    # the only data reused across queries.
    column_scan = LoopNest(
        name="column_scan",
        loops=[Loop.over("q", scan_cols), Loop.over("r", rows)],
        refs=[
            ArrayRef(table, Affine.of("r"), Affine.constant(0)),
            ArrayRef(table, Affine.of("r"), Affine.of("q", coeff=3,
                                                      const=1)),
        ],
    )
    # Materialize every fourth row for the result set.
    row_fetch = LoopNest(
        name="row_fetch",
        loops=[Loop.over("s", rows // 4), Loop.over("w", cols)],
        refs=[
            ArrayRef(table, Affine.of("s", coeff=4, const=1),
                     Affine.of("w")),
        ],
    )
    return Program("htap1", [table], [column_scan, row_fetch])


def build_htap2(rows: int, cols: int) -> Program:
    """Transactions-dominant HTAP with a recurring analytic pass.

    Row read-modify-write over a quarter of the rows, interleaved with
    an 8-column analytic scan — roughly an 80/20 row/column volume
    split, matching the htap2 mix of the paper's Fig. 10.
    """
    table = ArrayDecl("T", rows, cols)
    txn = LoopNest(
        name="txn_rmw",
        loops=[Loop.over("t", rows // 4), Loop.over("w", cols)],
        refs=[
            ArrayRef(table, Affine.of("t", coeff=4, const=2),
                     Affine.of("w")),
            ArrayRef(table, Affine.of("t", coeff=4, const=2),
                     Affine.of("w"), is_write=True),
        ],
    )
    scan_cols = min(8, cols // 8) or 1
    analytic = LoopNest(
        name="analytic_scan",
        loops=[Loop.over("a", scan_cols), Loop.over("r", rows)],
        refs=[
            ArrayRef(table, Affine.of("r"),
                     Affine.of("a", coeff=7, const=3)),
        ],
    )
    return Program("htap2", [table], [txn, analytic])
