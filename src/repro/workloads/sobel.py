"""Sobel edge filter, vertical traversal (paper Section VI-B).

"The sobel benchmark evaluated is a basic Sobel filter for vertical
traversal": the image is walked down each column (innermost loop over
the row index), so all eight stencil taps and the output store are
column-preference accesses.  The +/-1 row offsets make most vector
groups straddle two column lines — the misaligned-vector path of the
trace generator.
"""

from __future__ import annotations

from ..sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program


def build_sobel(n: int) -> Program:
    """Vertical-traversal Sobel over an ``n x n`` image interior."""
    image = ArrayDecl("In", n, n)
    out = ArrayDecl("Out", n, n)
    taps = []
    # Gx and Gy stencil taps; the (0, 0) center has zero weight in both
    # kernels and is not read.
    for di, dj in ((-1, -1), (-1, 0), (-1, 1),
                   (0, -1), (0, 1),
                   (1, -1), (1, 0), (1, 1)):
        taps.append(ArrayRef(image,
                             Affine.of("i", const=di),
                             Affine.of("j", const=dj)))
    nest = LoopNest(
        name="sobel_v",
        loops=[Loop.bounded("j", 1, n - 1), Loop.bounded("i", 1, n - 1)],
        refs=taps + [
            ArrayRef(out, Affine.of("i"), Affine.of("j"), is_write=True),
        ],
    )
    return Program("sobel", [image, out], [nest])
