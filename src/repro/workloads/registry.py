"""Workload registry: the paper's seven benchmarks, scaled.

Scale factor S = 8 versus the paper (DESIGN.md): "small" maps the
paper's 256x256 inputs to 32x32, "large" maps 512x512 to 64x64; the
HTAP table (paper 2048x256 / 2048x512) maps to 256x32 / 256x64.  Cache
capacities in :mod:`repro.core.system` are scaled by S^2 = 64, so every
working-set : capacity ratio — the quantity the paper's figures sweep —
is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..common.errors import ConfigError
from ..sw.program import Program
from .blas import build_sgemm, build_ssyr2k, build_ssyrk, build_strmm
from .htap import build_htap1, build_htap2
from .sobel import build_sobel

#: Paper input label -> scaled square-matrix dimension.
MATRIX_SIZES: Dict[str, int] = {"small": 32, "large": 64}

#: Paper HTAP table shape, scaled: (rows, cols) per input label.
HTAP_SIZES: Dict[str, tuple] = {"small": (256, 32), "large": (256, 64)}


@dataclass(frozen=True)
class WorkloadSpec:
    """A named benchmark and how to build it at a given input size."""

    name: str
    builder: Callable[[str], Program]
    description: str

    def build(self, size: str = "large") -> Program:
        return self.builder(size)


def _matrix_kernel(build: Callable[[int], Program]) \
        -> Callable[[str], Program]:
    def builder(size: str) -> Program:
        return build(_matrix_n(size))
    return builder


def _matrix_n(size: str) -> int:
    try:
        return MATRIX_SIZES[size]
    except KeyError:
        raise ConfigError(
            f"unknown input size {size!r}; use 'small' or 'large'") \
            from None


def _htap_kernel(build: Callable[[int, int], Program]) \
        -> Callable[[str], Program]:
    def builder(size: str) -> Program:
        try:
            rows, cols = HTAP_SIZES[size]
        except KeyError:
            raise ConfigError(
                f"unknown input size {size!r}; use 'small' or 'large'") \
                from None
        return build(rows, cols)
    return builder


#: Kernels beyond the paper's suite (module ``repro.workloads.extra``);
#: available through the registry but excluded from paper experiments.
_EXTRA_SPECS: List["WorkloadSpec"] = []

_SPECS: List[WorkloadSpec] = [
    WorkloadSpec("sgemm", _matrix_kernel(build_sgemm),
                 "dense matrix multiply (LAPACK BLAS)"),
    WorkloadSpec("ssyr2k", _matrix_kernel(build_ssyr2k),
                 "symmetric rank-2k update (LAPACK BLAS)"),
    WorkloadSpec("ssyrk", _matrix_kernel(build_ssyrk),
                 "symmetric rank-k update (LAPACK BLAS)"),
    WorkloadSpec("strmm", _matrix_kernel(build_strmm),
                 "triangular matrix multiply (LAPACK BLAS)"),
    WorkloadSpec("sobel", _matrix_kernel(build_sobel),
                 "Sobel filter, vertical traversal"),
    WorkloadSpec("htap1", _htap_kernel(build_htap1),
                 "analytics-dominant hybrid row/column table workload"),
    WorkloadSpec("htap2", _htap_kernel(build_htap2),
                 "transactions-dominant hybrid row/column table workload"),
]

def _build_extra_specs() -> List[WorkloadSpec]:
    from .extra import (
        build_backsub,
        build_conv1d_col,
        build_covariance,
        build_jacobi2d,
        build_transpose,
    )
    return [
        WorkloadSpec("transpose", _matrix_kernel(build_transpose),
                     "matrix transpose (forced row/column mix)"),
        WorkloadSpec("jacobi2d", _matrix_kernel(build_jacobi2d),
                     "5-point Jacobi stencil, two sweeps"),
        WorkloadSpec("conv1d_col", _matrix_kernel(build_conv1d_col),
                     "vertical 1-D convolution"),
        WorkloadSpec("covariance", _matrix_kernel(build_covariance),
                     "column means + centering + A'A"),
        WorkloadSpec("backsub", _matrix_kernel(build_backsub),
                     "triangular back-substitution"),
    ]


_EXTRA_SPECS.extend(_build_extra_specs())

_BY_NAME: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (*_SPECS, *_EXTRA_SPECS)
}


def workload_names() -> List[str]:
    """The paper's benchmark list, in its reporting order."""
    return [spec.name for spec in _SPECS]


def extended_workload_names() -> List[str]:
    """Every registered kernel, including the non-paper extras."""
    return [spec.name for spec in (*_SPECS, *_EXTRA_SPECS)]


def get_workload(name: str) -> WorkloadSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; known: "
            f"{extended_workload_names()}") from None


def build_workload(name: str, size: str = "large") -> Program:
    """Build benchmark ``name`` at input ``size`` ('small'/'large')."""
    return get_workload(name).build(size)
