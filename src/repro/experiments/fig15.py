"""Fig. 15: column- vs row-line cache occupancy over time.

Tracks the fraction of resident column-oriented lines per cache level
while sgemm and ssyrk run on the 1P2L hierarchy (1 MB-scaled LLC).
Paper observations to match in shape:

* sgemm — "the column preference is stable over the execution period"
  and low at L1 ("only a few of those columns are present in the cache
  at a time, while row-oriented data cycles through");
* ssyrk — "it first increases and then decreases (due to neighboring
  loop nests exhibiting different preferences in the later part of the
  execution)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.results import format_table
from .runner import ExperimentRunner

WORKLOADS = ("sgemm", "ssyrk")
DEFAULT_SAMPLES = 40


@dataclass
class OccupancySeries:
    """Column-occupancy fraction over time for one level."""

    points: List[Tuple[int, float]] = field(default_factory=list)

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def peak(self) -> float:
        return max(self.values(), default=0.0)

    def final(self) -> float:
        values = self.values()
        return values[-1] if values else 0.0


@dataclass
class Fig15Result:
    """series[workload][level] -> column occupancy over cycles."""

    series: Dict[str, Dict[str, OccupancySeries]] = \
        field(default_factory=dict)

    def report(self) -> str:
        from ..core.charts import sparkline
        blocks = []
        for workload, levels in self.series.items():
            spark_lines = [
                f"  {name}: {sparkline(levels[name].values(), 0.0, 1.0)}"
                for name in sorted(levels)
            ]
            blocks.append(f"{workload}: column-occupancy sparklines "
                          f"(0..1)\n" + "\n".join(spark_lines))
        for workload, levels in self.series.items():
            rows: List[List[object]] = []
            names = sorted(levels)
            length = max(len(levels[n].points) for n in names)
            for idx in range(length):
                row: List[object] = []
                for name in names:
                    points = levels[name].points
                    if idx < len(points):
                        cycles, frac = points[idx]
                        if not row:
                            row.append(cycles)
                        row.append(frac)
                    else:
                        row.append("")
                rows.append(row)
            table = format_table(("cycles", *names), rows)
            blocks.append(f"{workload}: column occupancy fraction\n"
                          f"{table}")
        return "\n\n".join(blocks)


def run_fig15(runner: Optional[ExperimentRunner] = None,
              workloads: Optional[List[str]] = None,
              size: str = "large",
              design: str = "1P2L",
              samples: int = DEFAULT_SAMPLES) -> Fig15Result:
    runner = runner or ExperimentRunner()
    result = Fig15Result()
    for workload in workloads or WORKLOADS:
        # Choose the sampling stride from a cheap trace-length estimate
        # so every run yields roughly `samples` points.
        probe = runner.run(design, workload, size,
                           sample_every=stride_for(workload, size,
                                                   samples))
        per_level: Dict[str, OccupancySeries] = {}
        for sample in probe.samples:
            for level, (rows, cols) in sample.by_level.items():
                total = rows + cols
                frac = cols / total if total else 0.0
                per_level.setdefault(level, OccupancySeries()) \
                    .points.append((sample.cycles, frac))
        result.series[workload] = per_level
    return result


def stride_for(workload: str, size: str, samples: int) -> int:
    """Ops between occupancy samples, targeting ``samples`` points."""
    from ..sw.tracegen import trace_length
    from ..workloads.registry import build_workload
    length = trace_length(build_workload(workload, size), logical_dims=2)
    return max(1, length // samples)


def main(argv=None) -> None:
    from .plans import figure_runner
    print(run_fig15(figure_runner('fig15', argv)).report())


if __name__ == "__main__":
    main()
