"""Layout-mismatch experiment (paper Section IV-C, Design 0 note).

"Our experiments indicate that running a 1P1L cache hierarchy with a
*P2L optimized memory could incur average slowdowns on the order of 2x,
due to the mismatch between data layout and access pattern as well as
extra data traffic caused by padding."

Reproduced by compiling for logical dimension 1 (row preference only,
no column vectorization) while laying the arrays out with the MDA-tiled
layout.  **Known fidelity gap** (see EXPERIMENTS.md): the paper's
penalty comes from power-of-two pitch padding (conflict misses, padded
traffic) and broken long-stream vectorization in real compiled code.
At this model's scale — vector groups exactly one tile wide, matrix
shapes already multiples of 8 — those costs vanish, and the tiled
layout instead behaves like software cache-blocking, so the measured
ratio can fall *below* 1.  The experiment reports the measured ratio
either way; the deviation and its cause are recorded rather than
papered over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.results import format_table, mean, normalized
from ..core.simulator import run_simulation
from ..core.system import make_system
from ..sw.layout import TiledLayout
from ..workloads.registry import build_workload, workload_names


@dataclass
class LayoutMismatchResult:
    matched: Dict[str, int] = field(default_factory=dict)
    mismatched: Dict[str, int] = field(default_factory=dict)

    def slowdown(self, workload: str) -> float:
        return normalized(self.mismatched[workload],
                          self.matched[workload])

    def average_slowdown(self) -> float:
        return mean(self.slowdown(w) for w in self.matched)

    def report(self) -> str:
        rows: List[List[object]] = []
        for workload in self.matched:
            rows.append([workload, self.matched[workload],
                         self.mismatched[workload],
                         self.slowdown(workload)])
        rows.append(["average", "", "", self.average_slowdown()])
        return format_table(
            ("workload", "1-D layout cycles", "2-D layout cycles",
             "slowdown"), rows)


def run_layout_mismatch(workloads: Optional[List[str]] = None,
                        size: str = "large",
                        llc_mb: float = 1.0) -> LayoutMismatchResult:
    result = LayoutMismatchResult()
    for workload in workloads or workload_names():
        program = build_workload(workload, size)
        system = make_system("1P1L", llc_mb)
        matched = run_simulation(system, program=program)
        result.matched[program.name] = matched.cycles
        mismatched = run_simulation(
            make_system("1P1L", llc_mb), program=program,
            layout=TiledLayout(program.arrays))
        result.mismatched[program.name] = mismatched.cycles
    return result


def main() -> None:
    print(run_layout_mismatch().report())


if __name__ == "__main__":
    main()
