"""Regenerate every experiment into a results directory.

``python -m repro.experiments.run_all [outdir]`` writes one ``.txt``
report per table/figure (plus the extensions) and a ``summary.json``
with the headline metrics — the full-evaluation artifact a release
would ship.  Runs share one :class:`ExperimentRunner`, so common
simulation points are computed once.  The planned simulation points of
every selected figure are collected and deduplicated up front, then
satisfied from the persistent run cache under ``OUTDIR/.runcache``
(``--no-cache`` / ``--refresh`` to bypass) and simulated in parallel
under ``--jobs N``; a warm cache regenerates the complete artifact set
in seconds.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from .dynamic_orientation import run_dynamic_orientation
from .energy import run_energy
from .fig10 import run_fig10
from .fig11 import run_fig11
from .fig12 import run_fig12
from .fig13 import run_fig13
from .fig14 import run_fig14
from .fig15 import run_fig15
from .fig16 import run_fig16
from .fig17 import run_fig17
from .future_tiling import run_future_tiling
from .layout_mismatch import run_layout_mismatch
from .multiprogram import run_multiprogram
from ..common.errors import (
    EXIT_INTERRUPTED,
    EXIT_SWEEP_FAILED,
    SweepFailed,
    SweepInterrupted,
)
from ..cache.hierarchy import CacheHierarchy
from ..common.stats import StatRegistry
from ..core import kernels, vector
from ..core.simulator import trace_cache_info
from ..sw.tracestore import TRACECACHE_DIRNAME
from . import faults
from .plans import apply_shards, describe_trace_info, plan_for
from .runner import (
    RUNCACHE_DIRNAME,
    ExperimentRunner,
    RunKey,
    system_for_key,
)
from .supervisor import RetryPolicy, RunJournal, Supervisor
from .table1 import run_table1
from .tier_modes import run_tier_modes


def _experiments(runner: Optional[ExperimentRunner]) \
        -> Dict[str, Tuple[Callable[[], object],
                           Callable[[object], Dict[str, float]]]]:
    """Name -> (runner thunk, summary extractor).

    ``runner`` may be ``None`` when only the name set matters (the
    thunks capture it lazily and are never called then, e.g. by
    :func:`coverage_report`).
    """
    return {
        "table1": (run_table1, lambda r: {}),
        "fig10": (run_fig10, lambda r: {
            "avg_column_fraction_large":
                r.average_column_fraction("large")}),
        "fig11": (lambda: run_fig11(runner), lambda r: {
            "avg_normalized_l1_hit_rate_1p2l":
                r.average_normalized("1P2L")}),
        "fig12": (lambda: run_fig12(runner), lambda r: {
            f"avg_normalized_cycles_1p2l_{llc}mb":
                r.average_normalized(llc, "1P2L")
            for llc in r.llc_points}),
        "fig13": (lambda: run_fig13(runner), lambda r: {
            "avg_normalized_cycles_resident_1p2l":
                r.average_normalized("1P2L")}),
        "fig14": (lambda: run_fig14(runner), lambda r: {
            "avg_normalized_llc_accesses_1p2l":
                r.average_accesses("1P2L"),
            "avg_normalized_memory_bytes_1p2l":
                r.average_bytes("1P2L")}),
        "fig15": (lambda: run_fig15(runner), lambda r: {
            "ssyrk_llc_peak_column_occupancy":
                r.series["ssyrk"]["L3"].peak()}),
        "fig16": (lambda: run_fig16(runner), lambda r: {
            "slow_write_gap": r.asymmetry_gap()}),
        "fig17": (lambda: run_fig17(runner), lambda r: {
            "avg_normalized_1p2l_vs_fast_baseline":
                r.average_normalized("1P2L")}),
        "layout_mismatch": (run_layout_mismatch, lambda r: {
            "avg_slowdown": r.average_slowdown()}),
        "future_tiling": (run_future_tiling, lambda r: {
            "collaborative_wins": float(r.collaborative_wins())}),
        "energy": (lambda: run_energy(runner), lambda r: {
            "avg_normalized_energy_1p2l":
                r.average_normalized("1P2L")}),
        "dynamic_orientation": (run_dynamic_orientation, lambda r: {
            "fill_reduction": r.fill_reduction(),
            "cycle_payoff": r.prediction_payoff()}),
        "multiprogram": (run_multiprogram, lambda r: {
            "avg_normalized_makespan_1p2l":
                r.average_normalized("1P2L"),
            "avg_sub_buffer_gain": r.average_sub_buffer_gain()}),
        "tier_modes": (lambda: run_tier_modes(runner), lambda r: {
            "avg_normalized_cycles_tier_cache":
                r.average_normalized("1P2L+DC$"),
            "avg_normalized_cycles_tier_flat":
                r.average_normalized("1P2L+DFlat"),
            "avg_normalized_cycles_tier_hybrid":
                r.average_normalized("1P2L+DC$/Flat"),
            "tier_cache_hit_rate": r.tier_hit_rate("1P2L+DC$")}),
    }


def dispatch_for_key(key: RunKey) -> str:
    """Which replay engine one planned point dispatches to.

    Mirrors :meth:`TraceDrivenCpu.run` without materializing the
    trace: sampled points replay on the packed interpreter (the
    sampler needs per-op callbacks), everything else asks
    :func:`repro.core.vector.supports` and
    :func:`repro.core.kernels.supports` against the point's real
    hierarchy.  Returns ``"vector"``, ``"kernel"`` or ``"packed"``.
    """
    if key.sample_every:
        return "packed"
    hierarchy = CacheHierarchy(system_for_key(key), StatRegistry(),
                               "lru")
    if not kernels.supports(hierarchy):
        return "packed"
    return "vector" if vector.supports(hierarchy) else "kernel"


def coverage_report(names: Optional[Tuple[str, ...]] = None) \
        -> Dict[str, str]:
    """Replay-engine dispatch per planned figure configuration.

    Collapses the selected experiments' run plans to the unique
    configurations that decide dispatch (design, memory variant,
    resident mapping, sampled or not, die-stacked tier mode —
    workloads and LLC sizes share a hierarchy shape) and classifies
    each one.  This is the
    ``run_all --dry-run`` payload; ``benchmarks/check_kernel_coverage``
    diffs it against a committed baseline so a config silently falling
    off the fast paths fails CI.
    """
    experiments = _experiments(None)
    selected = [name for name in experiments
                if not names or name in names]
    report: Dict[str, str] = {}
    for key in plan_for(selected):
        label = (f"{key.design}|mem={key.memory}"
                 f"|resident={int(key.resident)}"
                 f"|sampled={int(bool(key.sample_every))}")
        tier_mode = dict(key.overrides).get("tier.mode")
        if tier_mode:
            # Tier-enabled points classify separately: the gate must
            # see that adding the tier did not de-kernelize the config.
            label += f"|tier={tier_mode}"
        if label not in report:
            report[label] = dispatch_for_key(key)
    return dict(sorted(report.items()))


def run_all(outdir: str = "results",
            only: Optional[Tuple[str, ...]] = None,
            verbose: bool = True,
            jobs: int = 1,
            use_cache: bool = True,
            refresh: bool = False,
            resume: bool = False,
            max_retries: int = 2,
            run_timeout: Optional[float] = None,
            inject_faults: Optional[str] = None,
            shards: int = 1) \
        -> Dict[str, Dict[str, float]]:
    """Run every (or the selected) experiment; returns the summary.

    Args:
        outdir: results directory; the persistent run cache lives in
            ``outdir/.runcache`` unless ``use_cache`` is false, and
            the lifecycle journal in ``outdir/.runjournal``.
        only: restrict to these experiment names.
        verbose: progress logging on stderr.
        jobs: worker processes for the shared simulation points.
        use_cache: read/write the persistent run cache.
        refresh: re-simulate cached points, overwriting their entries.
        resume: replay the ``run_all`` journal and pick up where an
            interrupted sweep stopped (completed points come back from
            the persistent cache).
        max_retries: retry budget per simulation point for transient
            failures (crashed/hung workers, timeouts).
        run_timeout: per-point wall-clock budget in seconds (pool
            mode); ``None`` disables it.
        inject_faults: deterministic fault-injection spec (see
            :mod:`repro.experiments.faults`); ``None`` leaves the
            ``REPRO_FAULTS`` environment arming untouched.
        shards: replay each unsampled trace as this many window-aligned
            cold-cache epochs, parallel under ``jobs`` and merged
            deterministically (see :class:`RunKey`); 1 keeps the
            classic whole-trace replay.

    Raises:
        SweepInterrupted: SIGINT/SIGTERM stopped the sweep (the
            journal was flushed first; rerun with ``resume=True``).
        SweepFailed: a point exhausted its retries or failed hard.
    """
    os.makedirs(outdir, exist_ok=True)
    cache_dir = os.path.join(outdir, RUNCACHE_DIRNAME) if use_cache \
        else None
    trace_dir = os.path.join(outdir, TRACECACHE_DIRNAME) if use_cache \
        else None
    runner = ExperimentRunner(verbose=verbose, jobs=jobs,
                              cache_dir=cache_dir, refresh=refresh,
                              trace_dir=trace_dir, shards=shards)
    experiments = _experiments(runner)
    selected = [name for name in experiments
                if not only or name in only]
    # Collect every planned simulation point across the selected
    # figures up front, dedupe, and fill the runner's memo (from the
    # persistent cache where possible, worker processes otherwise);
    # the per-figure run loops below then replay them as memo hits.
    plan = apply_shards(plan_for(selected), shards)
    if plan:
        if verbose:
            print(f"== prefetch: {len(plan)} unique simulation points "
                  f"==", file=sys.stderr)
        fault_plan = faults.parse_spec(inject_faults) \
            if inject_faults else None
        supervisor = Supervisor(
            runner,
            journal=RunJournal.for_suite(outdir, "run_all"),
            policy=RetryPolicy(max_retries=max(0, max_retries)),
            run_timeout=run_timeout,
            resume=resume,
            fault_plan=fault_plan)
        report = supervisor.supervise(plan)
        if verbose and (report.retries or report.resumed
                        or report.degraded_serial):
            print(f"== supervisor: {report.describe()} ==",
                  file=sys.stderr)
    summary: Dict[str, Dict[str, float]] = {}
    for name in selected:
        thunk, extract = experiments[name]
        started = time.time()
        if verbose:
            print(f"== {name} ==", file=sys.stderr)
        result = thunk()
        report = result.report()
        with open(os.path.join(outdir, f"{name}.txt"), "w") as handle:
            handle.write(report + "\n")
        summary[name] = dict(extract(result),
                             seconds=round(time.time() - started, 1))
    if verbose:
        info = runner.cache_info()
        print(f"== run cache: {info.describe()} ==", file=sys.stderr)
        print(f"== trace cache: "
              f"{describe_trace_info(trace_cache_info())} ==",
              file=sys.stderr)
    with open(os.path.join(outdir, "summary.json"), "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    return summary


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.run_all",
        description="regenerate every experiment artifact")
    parser.add_argument("outdir", nargs="?", default=None,
                        help="output directory (default: results)")
    parser.add_argument("--outdir", dest="outdir_opt", default=None,
                        metavar="DIR",
                        help="output directory (flag form, for "
                             "`repro experiment run_all`)")
    parser.add_argument("names", nargs="*",
                        help="restrict to these experiments "
                             "(default: all)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        metavar="N",
                        help="simulate up to N points in parallel "
                             "(default: 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the persistent "
                             "run cache")
    parser.add_argument("--refresh", action="store_true",
                        help="re-simulate cached points and overwrite "
                             "their cache entries")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress logging")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep from its "
                             "journal (OUTDIR/.runjournal)")
    parser.add_argument("--max-retries", type=int, default=2,
                        metavar="N",
                        help="retry a transiently failed run at most "
                             "N times (default: 2)")
    parser.add_argument("--run-timeout", type=float, default=None,
                        metavar="SECS",
                        help="per-run wall-clock budget; over-budget "
                             "runs are killed and retried")
    parser.add_argument("--inject-faults", default=None,
                        metavar="SPEC",
                        help="deterministic fault injection, e.g. "
                             "worker_crash:0.1,seed:7 (also read "
                             "from $REPRO_FAULTS)")
    parser.add_argument("--shards", type=int, default=1,
                        metavar="N",
                        help="split each trace into N window-aligned "
                             "cold-cache epochs, replayed in parallel "
                             "under --jobs and merged "
                             "deterministically (default: 1)")
    parser.add_argument("--dry-run", action="store_true",
                        help="simulate nothing: print the replay-"
                             "engine dispatch (vector/kernel/packed) "
                             "of every planned figure configuration "
                             "as JSON and exit")
    args = parser.parse_args(argv)
    outdir = args.outdir_opt or args.outdir or "results"
    if args.dry_run:
        report = coverage_report(tuple(args.names) or None)
        if not args.quiet:
            counts: Dict[str, int] = {}
            for engine in report.values():
                counts[engine] = counts.get(engine, 0) + 1
            described = ", ".join(f"{count} {engine}" for engine, count
                                  in sorted(counts.items()))
            print(f"== kernel coverage: {len(report)} configs "
                  f"({described}) ==", file=sys.stderr)
        print(json.dumps(report, indent=2, sort_keys=True))
        return
    try:
        summary = run_all(outdir, tuple(args.names) or None,
                          verbose=not args.quiet, jobs=args.jobs,
                          use_cache=not args.no_cache,
                          refresh=args.refresh,
                          resume=args.resume,
                          max_retries=args.max_retries,
                          run_timeout=args.run_timeout,
                          inject_faults=args.inject_faults,
                          shards=args.shards)
    except SweepInterrupted as exc:
        print(f"interrupted: {exc}\n(rerun with --resume to pick up "
              f"where this sweep stopped)", file=sys.stderr)
        raise SystemExit(EXIT_INTERRUPTED) from exc
    except SweepFailed as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        raise SystemExit(EXIT_SWEEP_FAILED) from exc
    print(json.dumps(summary, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
