"""Regenerate every experiment into a results directory.

``python -m repro.experiments.run_all [outdir]`` writes one ``.txt``
report per table/figure (plus the extensions) and a ``summary.json``
with the headline metrics — the full-evaluation artifact a release
would ship.  Runs share one :class:`ExperimentRunner`, so common
simulation points are computed once; expect ~10-15 minutes for the
complete set at the default sizes.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from .dynamic_orientation import run_dynamic_orientation
from .energy import run_energy
from .fig10 import run_fig10
from .fig11 import run_fig11
from .fig12 import run_fig12
from .fig13 import run_fig13
from .fig14 import run_fig14
from .fig15 import run_fig15
from .fig16 import run_fig16
from .fig17 import run_fig17
from .future_tiling import run_future_tiling
from .layout_mismatch import run_layout_mismatch
from .multiprogram import run_multiprogram
from .runner import ExperimentRunner
from .table1 import run_table1


def _experiments(runner: ExperimentRunner) \
        -> Dict[str, Tuple[Callable[[], object],
                           Callable[[object], Dict[str, float]]]]:
    """Name -> (runner thunk, summary extractor)."""
    return {
        "table1": (run_table1, lambda r: {}),
        "fig10": (run_fig10, lambda r: {
            "avg_column_fraction_large":
                r.average_column_fraction("large")}),
        "fig11": (lambda: run_fig11(runner), lambda r: {
            "avg_normalized_l1_hit_rate_1p2l":
                r.average_normalized("1P2L")}),
        "fig12": (lambda: run_fig12(runner), lambda r: {
            f"avg_normalized_cycles_1p2l_{llc}mb":
                r.average_normalized(llc, "1P2L")
            for llc in r.llc_points}),
        "fig13": (lambda: run_fig13(runner), lambda r: {
            "avg_normalized_cycles_resident_1p2l":
                r.average_normalized("1P2L")}),
        "fig14": (lambda: run_fig14(runner), lambda r: {
            "avg_normalized_llc_accesses_1p2l":
                r.average_accesses("1P2L"),
            "avg_normalized_memory_bytes_1p2l":
                r.average_bytes("1P2L")}),
        "fig15": (lambda: run_fig15(runner), lambda r: {
            "ssyrk_llc_peak_column_occupancy":
                r.series["ssyrk"]["L3"].peak()}),
        "fig16": (lambda: run_fig16(runner), lambda r: {
            "slow_write_gap": r.asymmetry_gap()}),
        "fig17": (lambda: run_fig17(runner), lambda r: {
            "avg_normalized_1p2l_vs_fast_baseline":
                r.average_normalized("1P2L")}),
        "layout_mismatch": (run_layout_mismatch, lambda r: {
            "avg_slowdown": r.average_slowdown()}),
        "future_tiling": (run_future_tiling, lambda r: {
            "collaborative_wins": float(r.collaborative_wins())}),
        "energy": (lambda: run_energy(runner), lambda r: {
            "avg_normalized_energy_1p2l":
                r.average_normalized("1P2L")}),
        "dynamic_orientation": (run_dynamic_orientation, lambda r: {
            "fill_reduction": r.fill_reduction(),
            "cycle_payoff": r.prediction_payoff()}),
        "multiprogram": (run_multiprogram, lambda r: {
            "avg_normalized_makespan_1p2l":
                r.average_normalized("1P2L"),
            "avg_sub_buffer_gain": r.average_sub_buffer_gain()}),
    }


def run_all(outdir: str = "results",
            only: Optional[Tuple[str, ...]] = None,
            verbose: bool = True) -> Dict[str, Dict[str, float]]:
    """Run every (or the selected) experiment; returns the summary."""
    os.makedirs(outdir, exist_ok=True)
    runner = ExperimentRunner(verbose=verbose)
    summary: Dict[str, Dict[str, float]] = {}
    for name, (thunk, extract) in _experiments(runner).items():
        if only and name not in only:
            continue
        started = time.time()
        if verbose:
            print(f"== {name} ==", file=sys.stderr)
        result = thunk()
        report = result.report()
        with open(os.path.join(outdir, f"{name}.txt"), "w") as handle:
            handle.write(report + "\n")
        summary[name] = dict(extract(result),
                             seconds=round(time.time() - started, 1))
    with open(os.path.join(outdir, "summary.json"), "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    return summary


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "results"
    only = tuple(sys.argv[2:]) or None
    summary = run_all(outdir, only)
    print(json.dumps(summary, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
