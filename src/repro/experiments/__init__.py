"""Experiment modules: one per evaluation table/figure of the paper."""

from .dynamic_orientation import (
    DynamicOrientationResult,
    run_dynamic_orientation,
)
from .energy import EnergyResult, run_energy
from .fig10 import Fig10Result, run_fig10
from .future_tiling import FutureTilingResult, run_future_tiling
from .fig11 import Fig11Result, run_fig11
from .fig12 import Fig12Result, run_fig12
from .fig13 import Fig13Result, run_fig13
from .fig14 import Fig14Result, run_fig14
from .fig15 import Fig15Result, run_fig15
from .fig16 import Fig16Result, run_fig16
from .fig17 import Fig17Result, run_fig17
from .layout_mismatch import LayoutMismatchResult, run_layout_mismatch
from .multiprogram import MultiProgramExperimentResult, run_multiprogram
from .faults import FaultPlan
from .run_all import run_all
from .runner import ExperimentRunner, FAST_MEMORY_FACTOR
from .supervisor import (
    RetryPolicy,
    RunJournal,
    Supervisor,
    SweepReport,
)
from .table1 import Table1Result, run_table1

__all__ = [
    "ExperimentRunner",
    "FAST_MEMORY_FACTOR",
    "FaultPlan",
    "RetryPolicy",
    "RunJournal",
    "Supervisor",
    "SweepReport",
    "DynamicOrientationResult",
    "EnergyResult",
    "Fig10Result",
    "Fig11Result",
    "Fig12Result",
    "Fig13Result",
    "Fig14Result",
    "Fig15Result",
    "Fig16Result",
    "Fig17Result",
    "FutureTilingResult",
    "LayoutMismatchResult",
    "Table1Result",
    "run_dynamic_orientation",
    "run_energy",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_all",
    "run_multiprogram",
    "run_fig17",
    "run_future_tiling",
    "run_layout_mismatch",
    "run_table1",
]
