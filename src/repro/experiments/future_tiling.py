"""Future-work experiment: hardware-software collaborative tiling.

Paper Section X: "the compiler can tile a loop nest such that the tile
size (in each dimension) matches the 2-D block size used by the 2P2L
cache...  We expect such hardware-software collaborative tiling to
generate better results than software tiling or hardware tiling (2P2L)
alone."

Four points per workload:

* ``1P2L``            — hardware 2-D lines, untiled loops;
* ``1P2L+tiling``     — software tiling alone;
* ``2P2L``            — hardware tiling (2-D blocks) alone;
* ``2P2L+tiling``     — the collaborative point, loops tiled 8x8x8 to
  match the 512-byte 2-D block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.results import format_table, mean, normalized
from ..core.simulator import run_simulation
from ..core.system import make_system
from ..sw.tiling import tile_program
from ..workloads.registry import build_workload

#: Matrix kernels whose loops are rectangular and 8-divisible.
WORKLOADS = ("sgemm", "ssyr2k", "ssyrk")
#: A "desirable multiple" (2x) of the 8-line 2-D block dimension: big
#: enough to amortize the per-tile accumulator traffic, small enough
#: that a working tile set fits the scaled caches.
TILE = 16


@dataclass
class FutureTilingResult:
    """Cycles per (variant, workload), normalized to untiled 1P1L."""

    baseline: Dict[str, int] = field(default_factory=dict)
    cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)

    VARIANTS = ("1P2L", "1P2L+tiling", "2P2L", "2P2L+tiling")

    def normalized_cycles(self, variant: str, workload: str) -> float:
        return normalized(self.cycles[variant][workload],
                          self.baseline[workload])

    def average_normalized(self, variant: str) -> float:
        return mean(self.normalized_cycles(variant, w)
                    for w in self.baseline)

    def collaborative_wins(self) -> bool:
        """Does 2P2L+tiling beat both single-sided variants on
        average (the paper's expectation)?"""
        collab = self.average_normalized("2P2L+tiling")
        return (collab <= self.average_normalized("2P2L")
                and collab <= self.average_normalized("1P2L+tiling"))

    def report(self) -> str:
        rows: List[List[object]] = []
        for workload in self.baseline:
            rows.append([workload,
                         *(self.normalized_cycles(v, workload)
                           for v in self.VARIANTS)])
        rows.append(["average",
                     *(self.average_normalized(v)
                       for v in self.VARIANTS)])
        table = format_table(("workload", *self.VARIANTS), rows)
        verdict = ("collaborative tiling wins on average"
                   if self.collaborative_wins()
                   else "collaborative tiling does NOT win on average")
        return f"{table}\n\n{verdict}"


def run_future_tiling(workloads: Optional[List[str]] = None,
                      size: str = "large",
                      llc_mb: float = 1.0) -> FutureTilingResult:
    result = FutureTilingResult()
    tile_sizes = {"i": TILE, "j": TILE, "k": TILE}
    for workload in workloads or WORKLOADS:
        plain = build_workload(workload, size)
        tiled = tile_program(plain, tile_sizes)
        base = run_simulation(make_system("1P1L", llc_mb),
                              program=plain)
        result.baseline[workload] = base.cycles
        points = {
            "1P2L": ("1P2L", plain),
            "1P2L+tiling": ("1P2L", tiled),
            "2P2L": ("2P2L", plain),
            "2P2L+tiling": ("2P2L", tiled),
        }
        for label, (design, program) in points.items():
            run = run_simulation(make_system(design, llc_mb),
                                 program=program)
            result.cycles.setdefault(label, {})[workload] = run.cycles
    return result


def main() -> None:
    print(run_future_tiling().report())


if __name__ == "__main__":
    main()
