"""Fig. 11: L1 hit rates normalized to 1P1L (with prefetching).

Setup: 1 MB-scaled LLC, large (paper 512x512) input.  The paper reports
1P2L averaging 12% better (18% for Same-Set) while noting that "1P2L
does not guarantee a better L1 hit rate than 1P1L for all benchmarks".

Reproduction caveat (EXPERIMENTS.md): hit rates are per memory
*operation*; MDA designs replace 8 scalar column ops with one vector op,
so their op mix differs from the baseline's more than in the paper,
widening the per-benchmark spread in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.results import format_table, mean, normalized
from ..workloads.registry import workload_names
from .runner import ExperimentRunner

DESIGNS = ("1P2L", "1P2L_SameSet", "2P2L")


@dataclass
class Fig11Result:
    """Absolute and normalized L1 hit rates per design and workload."""

    baseline: Dict[str, float] = field(default_factory=dict)
    rates: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def normalized_rate(self, design: str, workload: str) -> float:
        return normalized(self.rates[design][workload],
                          self.baseline[workload])

    def average_normalized(self, design: str) -> float:
        return mean(self.normalized_rate(design, w)
                    for w in self.baseline)

    def report(self) -> str:
        rows: List[List[object]] = []
        for workload in self.baseline:
            row: List[object] = [workload, self.baseline[workload]]
            row.extend(self.normalized_rate(d, workload)
                       for d in DESIGNS)
            rows.append(row)
        rows.append(["average", "",
                     *(self.average_normalized(d) for d in DESIGNS)])
        return format_table(
            ("workload", "1P1L hit rate",
             *(f"{d} (norm)" for d in DESIGNS)), rows)


def run_fig11(runner: Optional[ExperimentRunner] = None,
              workloads: Optional[List[str]] = None,
              size: str = "large",
              llc_mb: float = 1.0) -> Fig11Result:
    runner = runner or ExperimentRunner()
    result = Fig11Result()
    for workload in workloads or workload_names():
        base = runner.run("1P1L", workload, size, llc_mb)
        result.baseline[workload] = base.l1_hit_rate()
        for design in DESIGNS:
            run = runner.run(design, workload, size, llc_mb)
            result.rates.setdefault(design, {})[workload] = \
                run.l1_hit_rate()
    return result


def main(argv=None) -> None:
    from .plans import figure_runner
    print(run_fig11(figure_runner('fig11', argv)).report())


if __name__ == "__main__":
    main()
