"""Fig. 16: impact of highly-asymmetric write latency on 2P2L.

Section VIII, on-chip NVM read/write asymmetry: the 2P2L LLC is re-run
with writes taking 20 additional cycles.  Paper: "2P2L with asymmetric
write latency performs slightly worse than symmetric 2P2L, with a
difference of 0.4% on average", trend vs baseline unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.results import format_table, mean, normalized
from ..workloads.registry import workload_names
from .runner import ExperimentRunner

DESIGNS = ("1P2L", "1P2L_SameSet", "2P2L", "2P2L_SlowWrite")


@dataclass
class Fig16Result:
    baseline: Dict[str, int] = field(default_factory=dict)
    cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def normalized_cycles(self, design: str, workload: str) -> float:
        return normalized(self.cycles[design][workload],
                          self.baseline[workload])

    def average_normalized(self, design: str) -> float:
        return mean(self.normalized_cycles(design, w)
                    for w in self.baseline)

    def asymmetry_gap(self) -> float:
        """Average slowdown of slow-write 2P2L over symmetric 2P2L."""
        return (self.average_normalized("2P2L_SlowWrite")
                - self.average_normalized("2P2L"))

    def report(self) -> str:
        rows: List[List[object]] = []
        for workload in self.baseline:
            rows.append([workload,
                         *(self.normalized_cycles(d, workload)
                           for d in DESIGNS)])
        rows.append(["average",
                     *(self.average_normalized(d) for d in DESIGNS)])
        table = format_table(("workload", *DESIGNS), rows)
        return (f"{table}\n\nslow-write penalty vs symmetric 2P2L: "
                f"{100 * self.asymmetry_gap():+.2f}% of baseline")


def run_fig16(runner: Optional[ExperimentRunner] = None,
              workloads: Optional[List[str]] = None,
              size: str = "large",
              llc_mb: float = 1.0) -> Fig16Result:
    runner = runner or ExperimentRunner()
    result = Fig16Result()
    for workload in workloads or workload_names():
        base = runner.run("1P1L", workload, size, llc_mb)
        result.baseline[workload] = base.cycles
        for design in DESIGNS:
            run = runner.run(design, workload, size, llc_mb)
            result.cycles.setdefault(design, {})[workload] = run.cycles
    return result


def main(argv=None) -> None:
    from .plans import figure_runner
    print(run_fig16(figure_runner('fig16', argv)).report())


if __name__ == "__main__":
    main()
