"""Fig. 13: cache-resident working sets (small input, 2 MB L2-as-LLC).

The sensitivity check of Section VIII: with the whole working set
resident in a large LLC, the memory-bandwidth advantage mostly
disappears, but L1<->L2 transfer reduction remains.  Paper: 1P2L
reduces execution time by ~14% on average, 2P2L ~16% — much smaller
than the non-resident case but still positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.results import format_table, mean, normalized
from ..workloads.registry import workload_names
from .runner import ExperimentRunner

DESIGNS = ("1P2L", "2P2L")


@dataclass
class Fig13Result:
    baseline: Dict[str, int] = field(default_factory=dict)
    cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def normalized_cycles(self, design: str, workload: str) -> float:
        return normalized(self.cycles[design][workload],
                          self.baseline[workload])

    def average_normalized(self, design: str) -> float:
        return mean(self.normalized_cycles(design, w)
                    for w in self.baseline)

    def report(self) -> str:
        rows: List[List[object]] = []
        for workload in self.baseline:
            rows.append([workload,
                         *(self.normalized_cycles(d, workload)
                           for d in DESIGNS)])
        rows.append(["average",
                     *(self.average_normalized(d) for d in DESIGNS)])
        return format_table(("workload", *DESIGNS), rows)


def run_fig13(runner: Optional[ExperimentRunner] = None,
              workloads: Optional[List[str]] = None,
              size: str = "small") -> Fig13Result:
    runner = runner or ExperimentRunner()
    result = Fig13Result()
    for workload in workloads or workload_names():
        base = runner.run("1P1L", workload, size, resident=True)
        result.baseline[workload] = base.cycles
        for design in DESIGNS:
            run = runner.run(design, workload, size, resident=True)
            result.cycles.setdefault(design, {})[workload] = run.cycles
    return result


def main(argv=None) -> None:
    from .plans import figure_runner
    print(run_fig13(figure_runner('fig13', argv)).report())


if __name__ == "__main__":
    main()
