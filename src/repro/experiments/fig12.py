"""Fig. 12: execution cycles normalized to 1P1L, across LLC capacities.

The paper's headline figure: total cycles for 1P2L (Different-Set),
1P2L_SameSet, and 2P2L, each normalized to the prefetching 1P1L
baseline, with the LLC swept over {1, 1.5, 2, 4} MB (scaled here to
{16, 24, 32, 64} KB) on the large input.

Paper shape to match: average reductions of 64/65/46/45% (1P2L),
72/68/64/57% (Same-Set), 65/66/41/39% (2P2L); benefits shrink as the
LLC approaches the working set; 2P2L's worst case can exceed baseline
near the 2 MB working-set edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.results import format_table, mean, normalized
from ..workloads.registry import workload_names
from .runner import ExperimentRunner

DESIGNS = ("1P2L", "1P2L_SameSet", "2P2L")
LLC_POINTS = (1.0, 1.5, 2.0, 4.0)


@dataclass
class Fig12Result:
    """cycles[llc_mb][design][workload], plus baseline cycles."""

    baseline: Dict[Tuple[float, str], int] = field(default_factory=dict)
    cycles: Dict[Tuple[float, str, str], int] = field(default_factory=dict)
    workloads: List[str] = field(default_factory=list)
    llc_points: Tuple[float, ...] = LLC_POINTS

    def normalized_cycles(self, llc_mb: float, design: str,
                          workload: str) -> float:
        return normalized(self.cycles[(llc_mb, design, workload)],
                          self.baseline[(llc_mb, workload)])

    def average_normalized(self, llc_mb: float, design: str) -> float:
        return mean(self.normalized_cycles(llc_mb, design, w)
                    for w in self.workloads)

    def average_reduction_percent(self, llc_mb: float,
                                  design: str) -> float:
        return 100.0 * (1.0 - self.average_normalized(llc_mb, design))

    def report(self) -> str:
        from ..core.charts import bar_chart
        blocks = []
        for llc in self.llc_points:
            rows: List[List[object]] = []
            for workload in self.workloads:
                rows.append([
                    workload,
                    *(self.normalized_cycles(llc, d, workload)
                      for d in DESIGNS),
                ])
            rows.append(["average",
                         *(self.average_normalized(llc, d)
                           for d in DESIGNS)])
            table = format_table(("workload", *DESIGNS), rows)
            blocks.append(f"LLC = {llc} MB (paper scale)\n{table}")
        chart = bar_chart(
            [(f"{d} @ {llc}MB", self.average_normalized(llc, d))
             for d in DESIGNS for llc in self.llc_points],
            max_value=1.0)
        blocks.append("average normalized cycles (1.0 = baseline)\n"
                      + chart)
        return "\n\n".join(blocks)


def run_fig12(runner: Optional[ExperimentRunner] = None,
              workloads: Optional[List[str]] = None,
              llc_points: Optional[Tuple[float, ...]] = None,
              size: str = "large") -> Fig12Result:
    runner = runner or ExperimentRunner()
    result = Fig12Result()
    result.workloads = list(workloads or workload_names())
    result.llc_points = tuple(llc_points or LLC_POINTS)
    for llc in result.llc_points:
        for workload in result.workloads:
            base = runner.run("1P1L", workload, size, llc)
            result.baseline[(llc, workload)] = base.cycles
            for design in DESIGNS:
                run = runner.run(design, workload, size, llc)
                result.cycles[(llc, design, workload)] = run.cycles
    return result


def main(argv=None) -> None:
    from .plans import figure_runner
    print(run_fig12(figure_runner('fig12', argv)).report())


if __name__ == "__main__":
    main()
