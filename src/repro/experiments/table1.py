"""Table I: experimental setup.

Prints the reproduction's equivalent of the paper's Table I — the scaled
cache geometry, memory organization and timing, and CPU model — next to
the paper's values, making the scale factor explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..common.config import CpuConfig, MemoryConfig
from ..core.results import format_table
from ..core.system import (
    LLC_SIZES,
    RESIDENT_LLC_BYTES,
    make_system,
)


@dataclass
class Table1Result:
    """Rows of (parameter, paper value, this reproduction)."""

    rows: List[Tuple[str, str, str]]

    def report(self) -> str:
        return format_table(("parameter", "paper", "this repo"),
                            self.rows)


def run_table1() -> Table1Result:
    """Collect the setup table from live configuration objects."""
    system = make_system("1P2L", llc_mb=1.0)
    l1, l2, l3 = system.levels
    mem = MemoryConfig()
    cpu = CpuConfig()
    llc_list = "/".join(str(b // 1024) for b in
                        (LLC_SIZES[k] for k in sorted(LLC_SIZES)))
    rows = [
        ("CPU", "X86 OoO, 3 GHz (gem5)",
         f"trace-driven, MLP window {cpu.mlp_window}"),
        ("L1 D-cache", "32KB, 4-way, 2c tag + 2c data, parallel",
         f"{l1.size_bytes // 1024}KB, {l1.assoc}-way, "
         f"{l1.tag_latency}c tag + {l1.data_latency}c data, parallel"),
        ("L2", "256KB, 8-way, 6c tag + 9c data, sequential",
         f"{l2.size_bytes // 1024}KB, {l2.assoc}-way, "
         f"{l2.tag_latency}c tag + {l2.data_latency}c data, sequential"),
        ("L3 (LLC)", "1/1.5/2/4MB, 8-way, 8c tag + 12c data",
         f"{llc_list}KB, {l3.assoc}-way, "
         f"{l3.tag_latency}c tag + {l3.data_latency}c data"),
        ("L2-as-LLC (resident)", "2MB, 8-way",
         f"{RESIDENT_LLC_BYTES // 1024}KB, 8-way"),
        ("Main memory", "4GB STT-RAM (NVMain), 4 channels",
         f"MDA STT model, {mem.channels} channels x "
         f"{mem.ranks_per_channel} rank x {mem.banks_per_rank} banks"),
        ("Memory controller", "FRFCFS-WQF, open page",
         f"FRFCFS-WQF (wq {mem.write_queue_low}/"
         f"{mem.write_queue_high}), open page, both buffers"),
        ("Array timings", "Everspin STT parameters",
         f"act {mem.activate_cycles}c, access "
         f"{mem.buffer_access_cycles}c, write {mem.write_cycles}c, "
         f"burst {mem.burst_cycles}c, col decode "
         f"+{mem.column_decode_extra}c"),
        ("Inputs", "256x256 / 512x512 (htap 2048x256/512)",
         "32x32 / 64x64 (htap 256x32/64); scale S=8"),
    ]
    return Table1Result(rows)


def main() -> None:
    print(run_table1().report())


if __name__ == "__main__":
    main()
