"""Die-stacked tier mode comparison (extension beyond the paper).

The paper's Section IX points at main-memory techniques layered under
the LLC; this experiment sweeps the polymorphic die-stacked tier
(:mod:`repro.tier`) through its three personalities — tag-in-DRAM
**cache**, addressable **flat** region, and a 50/50 **hybrid** — on a
1P2L hierarchy, against the tier-less 1P2L and 2P2L designs, across
the workload registry.  Cycles are normalized to the 1P1L baseline,
matching the other figures' presentation.

The tier variants ride on :class:`RunKey` overrides (``tier.mode``,
``tier.size_bytes``, ...), the same dotted-path vocabulary the
simulation service accepts, so every point memoizes and shards like
any other planned configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.charts import bar_chart
from ..core.results import format_table, mean, normalized
from ..workloads.registry import workload_names
from .runner import ExperimentRunner, RunKey, simulate_run_key

#: Stacked capacity of every tier variant.  Caches here are scaled
#: 64x down from the paper's (see DESIGN.md), so 64 KiB stands in for
#: a 4 MB die-stack: 4x the scaled 1 MB-label LLC, yet smaller than
#: most large-size working sets (64-128 KiB) — flat placement fully
#: absorbs some kernels and splits others, so the three personalities
#: genuinely diverge.
DEFAULT_TIER_BYTES = 64 * 1024


def tier_overrides(mode: str) -> Tuple[Tuple[str, object], ...]:
    """The override tuple configuring one tier personality."""
    pairs = [("tier.mode", mode),
             ("tier.size_bytes", DEFAULT_TIER_BYTES)]
    if mode == "hybrid":
        pairs.append(("tier.cache_fraction", 0.5))
    return tuple(sorted(pairs))


#: (design, label, overrides) per compared variant.  Labels follow the
#: :meth:`SystemConfig.describe` taxonomy suffixes.
VARIANTS: Tuple[Tuple[str, str, Tuple[Tuple[str, object], ...]], ...] = (
    ("1P2L", "1P2L", ()),
    ("2P2L", "2P2L", ()),
    ("1P2L", "1P2L+DC$", tier_overrides("cache")),
    ("1P2L", "1P2L+DFlat", tier_overrides("flat")),
    ("1P2L", "1P2L+DC$/Flat", tier_overrides("hybrid")),
)

LABELS = tuple(label for _, label, _ in VARIANTS)

#: The tier counters the report aggregates per variant.
_TIER_COUNTERS = ("fetches", "hits", "flat_hits", "rbla_bypasses",
                  "slow_open_hits")


def plan_tier_modes(workloads: Optional[List[str]] = None,
                    size: str = "large",
                    llc_mb: float = 1.0) -> List[RunKey]:
    keys = []
    for workload in workloads or workload_names():
        keys.append(RunKey("1P1L", workload, size, llc_mb,
                           False, "default", 0))
        for design, _, overrides in VARIANTS:
            keys.append(RunKey(design, workload, size, llc_mb,
                               False, "default", 0, overrides))
    return keys


@dataclass
class TierModesResult:
    baseline: Dict[str, int] = field(default_factory=dict)
    cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: label -> summed tier counters across workloads.
    tier: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def normalized_cycles(self, label: str, workload: str) -> float:
        return normalized(self.cycles[label][workload],
                          self.baseline[workload])

    def average_normalized(self, label: str) -> float:
        return mean(self.normalized_cycles(label, w)
                    for w in self.baseline)

    def tier_hit_rate(self, label: str) -> float:
        """Fraction of below-LLC fetches the tier served itself."""
        counters = self.tier.get(label, {})
        fetches = counters.get("fetches", 0)
        if not fetches:
            return 0.0
        served = counters.get("hits", 0) + counters.get("flat_hits", 0)
        return served / fetches

    def best_label(self) -> str:
        """The variant with the lowest average normalized cycles."""
        return min(LABELS, key=self.average_normalized)

    def report(self) -> str:
        rows: List[List[object]] = []
        for workload in self.baseline:
            rows.append([workload,
                         *(self.normalized_cycles(label, workload)
                           for label in LABELS)])
        rows.append(["average",
                     *(self.average_normalized(label)
                       for label in LABELS)])
        table = format_table(("workload", *LABELS), rows)
        chart = bar_chart([(label, self.average_normalized(label))
                           for label in LABELS], max_value=1.0)
        tier_lines = []
        for label in LABELS:
            counters = self.tier.get(label, {})
            if not counters.get("fetches"):
                continue
            tier_lines.append(
                f"  {label}: hit rate "
                f"{100 * self.tier_hit_rate(label):.1f}%, "
                f"rbla bypasses {counters.get('rbla_bypasses', 0)}, "
                f"slow-side open-buffer hits "
                f"{counters.get('slow_open_hits', 0)}")
        tier_block = ("\n\ntier service (summed over workloads):\n"
                      + "\n".join(tier_lines)) if tier_lines else ""
        return (f"{table}\n\naverage cycles vs 1P1L baseline "
                f"(shorter bar = faster):\n{chart}{tier_block}\n\n"
                f"best variant: {self.best_label()}")


def _point(runner: ExperimentRunner, key: RunKey):
    """Recall one point, simulating in-process if it was not planned
    (``ExperimentRunner.run`` cannot carry overrides)."""
    result = runner.lookup(key)
    if result is None:
        result = simulate_run_key(key)
        runner.record_result(key, result)
    return result


def run_tier_modes(runner: Optional[ExperimentRunner] = None,
                   workloads: Optional[List[str]] = None,
                   size: str = "large",
                   llc_mb: float = 1.0) -> TierModesResult:
    runner = runner or ExperimentRunner()
    result = TierModesResult()
    for workload in workloads or workload_names():
        base = runner.run("1P1L", workload, size, llc_mb)
        result.baseline[workload] = base.cycles
        for design, label, overrides in VARIANTS:
            shards = runner.shards
            key = RunKey(design, workload, size, llc_mb, False,
                         "default", 0, overrides, shards=shards)
            run = _point(runner, key)
            result.cycles.setdefault(label, {})[workload] = run.cycles
            flat = run.stats.flat()
            bucket = result.tier.setdefault(label, {})
            for name in _TIER_COUNTERS:
                bucket[name] = bucket.get(name, 0) \
                    + flat.get(f"tier.{name}", 0)
    return result


def main(argv=None) -> None:
    from .plans import figure_runner
    print(run_tier_modes(figure_runner('tier_modes', argv)).report())


if __name__ == "__main__":
    main()
