"""Extension experiment: multiprogrammed workloads (Section IX-B).

The paper defers parallel workloads to future work but predicts that
multiple sub-row buffers, "very useful for multiprogrammed workloads",
matter more there.  This experiment runs pairs of programs on two
cores with private L1/L2 over a shared LLC and MDA memory, and checks:

* the MDA benefit survives co-location (makespan vs the 1P1L pair);
* adding bank sub-buffers helps the *baseline* pair more than it
  helped the single-program runs (the paper's <1% single-thread
  finding vs its multiprogrammed expectation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.config import MemoryConfig
from ..core.multicore import MultiProgramResult, run_multiprogrammed
from ..core.results import format_table, mean, normalized
from ..core.system import make_system
from ..workloads.registry import build_workload

#: Co-scheduled pairs mixing row-heavy and column-heavy programs.
PAIRS: Tuple[Tuple[str, str], ...] = (
    ("sobel", "htap2"),
    ("htap1", "htap2"),
    ("sobel", "htap1"),
)
DESIGNS = ("1P2L", "2P2L")


@dataclass
class MultiProgramExperimentResult:
    makespans: Dict[str, Dict[str, int]] = field(default_factory=dict)
    sub_buffer_gain: Dict[str, float] = field(default_factory=dict)
    pairs: List[str] = field(default_factory=list)

    def normalized_makespan(self, design: str, pair: str) -> float:
        return normalized(self.makespans[design][pair],
                          self.makespans["1P1L"][pair])

    def average_normalized(self, design: str) -> float:
        return mean(self.normalized_makespan(design, p)
                    for p in self.pairs)

    def average_sub_buffer_gain(self) -> float:
        return mean(self.sub_buffer_gain[p] for p in self.pairs)

    def report(self) -> str:
        rows: List[List[object]] = []
        for pair in self.pairs:
            rows.append([
                pair,
                *(self.normalized_makespan(d, pair) for d in DESIGNS),
                self.sub_buffer_gain[pair],
            ])
        rows.append(["average",
                     *(self.average_normalized(d) for d in DESIGNS),
                     self.average_sub_buffer_gain()])
        table = format_table(
            ("pair", *(f"{d} makespan" for d in DESIGNS),
             "1P1L sub-buffer speedup"), rows)
        return table


def run_multiprogram(pairs: Optional[Sequence[Tuple[str, str]]] = None,
                     size: str = "small",
                     sub_buffers: int = 4) \
        -> MultiProgramExperimentResult:
    result = MultiProgramExperimentResult()
    for left, right in pairs or PAIRS:
        label = f"{left}+{right}"
        result.pairs.append(label)
        programs = [build_workload(left, size),
                    build_workload(right, size)]
        for design in ("1P1L", *DESIGNS):
            run = run_multiprogrammed(make_system(design), programs)
            result.makespans.setdefault(design, {})[label] = \
                run.makespan
        # Sub-buffer sensitivity on the baseline pair.
        multi_buf = run_multiprogrammed(
            make_system("1P1L",
                        memory=MemoryConfig(sub_buffers=sub_buffers)),
            programs)
        result.sub_buffer_gain[label] = normalized(
            result.makespans["1P1L"][label], multi_buf.makespan)
    return result


def main() -> None:
    print(run_multiprogram().report())


if __name__ == "__main__":
    main()
