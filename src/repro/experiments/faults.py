"""Deterministic fault injection for the experiment engine.

Every recovery path the supervisor promises — crashed workers are
detected and their points retried, hung workers are reaped by the
heartbeat monitor, corrupt cache entries are quarantined and re-read
as misses — is exercised by injecting the corresponding fault on
purpose, deterministically, so CI tests the paths instead of trusting
them.

A :class:`FaultPlan` names per-site firing rates and a seed::

    REPRO_FAULTS=worker_crash:0.1,worker_hang:0.05,cache_corrupt:0.2,seed:7

or the equivalent ``--inject-faults`` CLI spec.  Whether a given site
fires is a pure function of ``(seed, site, token)`` — the token is a
stable identifier such as ``"<cache_key>:<attempt>"`` — via a SHA-256
draw, so the same plan fires the same faults regardless of worker
scheduling order, process boundaries, or wall-clock time.  Retries get
a fresh draw because the attempt number is part of the token.

Sites:

* ``worker_crash`` — the pool worker ``os._exit``\\ s mid-run,
  modeling an OOM kill or segfault.
* ``worker_hang``  — the worker stalls its heartbeat and sleeps for
  ``hang_seconds``, modeling a wedged worker.
* ``cache_corrupt`` — a freshly written run-cache or trace-store entry
  is truncated in place, modeling a torn write / bad disk.

Service sites (fired inside ``repro serve`` workers, exercised by the
chaos bench and supervised by the pre-fork master):

* ``serve_worker_kill`` — the serving process ``os._exit``\\ s in the
  middle of handling a request, modeling an OOM-killed worker; the
  master restarts it and clients retry over a new connection.
* ``serve_slow_request`` — one request is delayed ``slow_seconds``
  before being handled, modeling a degraded worker (tail latency).
* ``serve_cache_corrupt`` — an existing run-cache entry is truncated
  just before a service read, modeling bit rot read under
  concurrency; the quarantine path must count it once and re-simulate.

The plan is *armed* process-globally (:func:`arm`); forked pool
workers inherit the armed plan, and the supervisor passes the spec
through its worker initializer for non-fork start methods.  The
``REPRO_FAULTS`` environment variable arms lazily on first use; the
test suite disarms it around every test so unit tests stay hermetic
unless they arm a plan explicitly.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..common.errors import ConfigError

#: Environment variable holding a fault spec (see module docstring).
ENV_VAR = "REPRO_FAULTS"

#: The injectable fault sites.
SITES = ("worker_crash", "worker_hang", "cache_corrupt",
         "serve_worker_kill", "serve_slow_request",
         "serve_cache_corrupt")

#: Exit status used by an injected worker crash (distinct from real
#: failure codes so supervisor logs can attribute it).
CRASH_EXIT_CODE = 41

#: Exit status used by an injected serving-worker kill (distinct from
#: CRASH_EXIT_CODE so the master's restart log can attribute it).
SERVE_KILL_EXIT_CODE = 43

#: Plan keys that are knobs rather than site rates.
_KNOBS = ("seed", "hang_seconds", "slow_seconds")


@dataclass(frozen=True)
class FaultPlan:
    """Per-site firing rates plus the seed that makes them repeatable."""

    rates: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0
    hang_seconds: float = 30.0
    slow_seconds: float = 0.25

    def __post_init__(self) -> None:
        for site, rate in self.rates.items():
            if site not in SITES:
                raise ConfigError(
                    f"unknown fault site {site!r}; known: "
                    f"{', '.join(SITES)}")
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"fault rate for {site} must be in [0, 1], "
                    f"got {rate}")

    def rate(self, site: str) -> float:
        return self.rates.get(site, 0.0)

    def should_fire(self, site: str, token: str) -> bool:
        """Deterministic draw: does ``site`` fire for ``token``?

        The draw hashes ``seed|site|token`` and compares the top 64
        bits against the site's rate, so it is identical across
        processes and invocations and independent of call order.
        """
        rate = self.rate(site)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}|{site}|{token}".encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < rate

    def spec(self) -> str:
        """Serialize back to the ``REPRO_FAULTS`` spec syntax."""
        parts = [f"{site}:{rate:g}"
                 for site, rate in sorted(self.rates.items())]
        parts.append(f"seed:{self.seed}")
        if self.hang_seconds != FaultPlan.hang_seconds:  # type: ignore[comparison-overlap]
            parts.append(f"hang_seconds:{self.hang_seconds:g}")
        if self.slow_seconds != FaultPlan.slow_seconds:  # type: ignore[comparison-overlap]
            parts.append(f"slow_seconds:{self.slow_seconds:g}")
        return ",".join(parts)


def parse_spec(spec: str) -> FaultPlan:
    """Parse a ``site:rate,...,seed:N`` spec into a :class:`FaultPlan`.

    Raises:
        ConfigError: malformed syntax, unknown site, or bad rate.
    """
    rates: Dict[str, float] = {}
    seed = 0
    hang_seconds = FaultPlan.hang_seconds
    slow_seconds = FaultPlan.slow_seconds
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition(":")
        if not sep:
            raise ConfigError(
                f"malformed fault spec entry {part!r} "
                f"(expected site:rate)")
        name = name.strip()
        try:
            if name == "seed":
                seed = int(value)
            elif name == "hang_seconds":
                hang_seconds = float(value)
            elif name == "slow_seconds":
                slow_seconds = float(value)
            else:
                rates[name] = float(value)
        except ValueError as exc:
            raise ConfigError(
                f"bad value in fault spec entry {part!r}") from exc
    return FaultPlan(rates=rates, seed=seed,
                     hang_seconds=hang_seconds,
                     slow_seconds=slow_seconds)


# -- process-global arming ----------------------------------------------------

_UNSET = object()
_active: object = _UNSET  # _UNSET | None | FaultPlan


def arm(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Arm (or with ``None`` explicitly disable) fault injection."""
    global _active
    _active = plan
    return plan


def disarm() -> None:
    """Return to the unarmed state (``REPRO_FAULTS`` re-read lazily)."""
    global _active
    _active = _UNSET


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, arming lazily from ``REPRO_FAULTS`` if unset."""
    global _active
    if _active is _UNSET:
        spec = os.environ.get(ENV_VAR)
        _active = parse_spec(spec) if spec else None
    return _active  # type: ignore[return-value]


# -- fault sites --------------------------------------------------------------


def maybe_crash_worker(token: str,
                       plan: Optional[FaultPlan] = None) -> None:
    """``worker_crash`` site: exit the process abruptly if armed.

    ``os._exit`` skips atexit/finally handlers, modeling a SIGKILL/OOM
    as closely as a cooperative site can.
    """
    plan = active_plan() if plan is None else plan
    if plan is not None and plan.should_fire("worker_crash", token):
        os._exit(CRASH_EXIT_CODE)


def maybe_hang_worker(token: str,
                      plan: Optional[FaultPlan] = None,
                      stall: Optional[object] = None) -> bool:
    """``worker_hang`` site: stall the heartbeat and sleep if armed.

    ``stall`` is the heartbeat's stop event (set before sleeping so
    the monitor sees a genuinely silent worker).  Returns True when
    the hang fired.
    """
    plan = active_plan() if plan is None else plan
    if plan is None or not plan.should_fire("worker_hang", token):
        return False
    if stall is not None:
        stall.set()
    time.sleep(plan.hang_seconds)
    return True


def maybe_corrupt_file(path: str, token: str,
                       plan: Optional[FaultPlan] = None) -> bool:
    """``cache_corrupt`` site: truncate a just-written entry if armed.

    Keeps the first half of the file (minimum one byte), modeling a
    torn write that survived a crash.  Returns True when it fired.
    """
    plan = active_plan() if plan is None else plan
    if plan is None or not plan.should_fire("cache_corrupt", token):
        return False
    return _truncate_in_place(path)


def _truncate_in_place(path: str) -> bool:
    """Halve a file in place (minimum one byte); False if unreadable."""
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
    except OSError:
        return False
    return True


# -- service fault sites ------------------------------------------------------


def maybe_kill_server(token: str,
                      plan: Optional[FaultPlan] = None) -> None:
    """``serve_worker_kill`` site: exit the serving process abruptly.

    Fired mid-request by a ``repro serve`` worker; ``os._exit`` models
    an OOM kill, so in-flight connections die without a response and
    the pre-fork master sees a nonzero exit.
    """
    plan = active_plan() if plan is None else plan
    if plan is not None and plan.should_fire("serve_worker_kill",
                                             token):
        os._exit(SERVE_KILL_EXIT_CODE)


def maybe_slow_request(token: str,
                       plan: Optional[FaultPlan] = None) -> float:
    """``serve_slow_request`` site: seconds to delay one request.

    Returns 0.0 when the site does not fire; the (async) server awaits
    the returned delay so a slow request stalls only its own
    connection, never the event loop.
    """
    plan = active_plan() if plan is None else plan
    if plan is None or not plan.should_fire("serve_slow_request",
                                            token):
        return 0.0
    return plan.slow_seconds


def maybe_corrupt_served_entry(path: str, token: str,
                               plan: Optional[FaultPlan] = None) -> bool:
    """``serve_cache_corrupt`` site: truncate an *existing* cache entry.

    Unlike ``cache_corrupt`` (which tears a fresh write) this fires
    just before a service-side cache read, modeling bit rot discovered
    under concurrency: the next load must quarantine the entry exactly
    once and fall through to a fresh simulation.
    """
    plan = active_plan() if plan is None else plan
    if plan is None or not plan.should_fire("serve_cache_corrupt",
                                            token):
        return False
    return _truncate_in_place(path)
