"""Fig. 14: LLC accesses and LLC<->memory transfer, normalized.

Setup: 1 MB-scaled LLC, large input.  Paper: "substantially fewer L3
accesses (only 22% of 1P1L, only 20% with 1P2L_SameSet, on average)"
and "total bytes of memory transfer for 1P2L reduced to only 21% of
1P1L (15% for 1P2L_SameSet)" — the MSHR column coalescing and 8x
column-fetch density at work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.results import format_table, mean, normalized
from ..workloads.registry import workload_names
from .runner import ExperimentRunner

DESIGNS = ("1P2L", "1P2L_SameSet", "2P2L")


@dataclass
class Fig14Result:
    """(llc_accesses, memory_bytes) per design and workload."""

    baseline: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    values: Dict[str, Dict[str, Tuple[int, int]]] = \
        field(default_factory=dict)

    def normalized_accesses(self, design: str, workload: str) -> float:
        return normalized(self.values[design][workload][0],
                          self.baseline[workload][0])

    def normalized_bytes(self, design: str, workload: str) -> float:
        return normalized(self.values[design][workload][1],
                          self.baseline[workload][1])

    def average_accesses(self, design: str) -> float:
        return mean(self.normalized_accesses(design, w)
                    for w in self.baseline)

    def average_bytes(self, design: str) -> float:
        return mean(self.normalized_bytes(design, w)
                    for w in self.baseline)

    def report(self) -> str:
        rows: List[List[object]] = []
        for workload in self.baseline:
            row: List[object] = [workload]
            for design in DESIGNS:
                row.append(self.normalized_accesses(design, workload))
                row.append(self.normalized_bytes(design, workload))
            rows.append(row)
        avg: List[object] = ["average"]
        for design in DESIGNS:
            avg.append(self.average_accesses(design))
            avg.append(self.average_bytes(design))
        rows.append(avg)
        headers = ["workload"]
        for design in DESIGNS:
            headers.append(f"{design} acc")
            headers.append(f"{design} bytes")
        return format_table(headers, rows)


def run_fig14(runner: Optional[ExperimentRunner] = None,
              workloads: Optional[List[str]] = None,
              size: str = "large",
              llc_mb: float = 1.0) -> Fig14Result:
    runner = runner or ExperimentRunner()
    result = Fig14Result()
    for workload in workloads or workload_names():
        base = runner.run("1P1L", workload, size, llc_mb)
        result.baseline[workload] = (base.llc_requests(),
                                     base.memory_bytes())
        for design in DESIGNS:
            run = runner.run(design, workload, size, llc_mb)
            result.values.setdefault(design, {})[workload] = (
                run.llc_requests(), run.memory_bytes())
    return result


def main(argv=None) -> None:
    from .plans import figure_runner
    print(run_fig14(figure_runner('fig14', argv)).report())


if __name__ == "__main__":
    main()
