"""Run plans: every simulation point a figure needs, known up front.

Each ``plan_figNN`` mirrors the run loop of its figure module exactly,
but yields :class:`RunKey` descriptions instead of executing them.  The
scheduler (:meth:`ExperimentRunner.prefetch`) dedupes the keys across
figures and fans the unique points out over worker processes; the
figure's ``run_figNN`` then replays the same calls as memo hits, so the
reported numbers are bit-identical to a sequential run.

:func:`figure_runner` is the shared CLI shim: it gives every figure's
``main`` the ``--jobs`` / ``--no-cache`` / ``--refresh`` flags and a
prefetched runner backed by the persistent cache.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import Callable, Dict, Iterable, List, Optional

from ..common.errors import (
    EXIT_INTERRUPTED,
    EXIT_SWEEP_FAILED,
    SweepFailed,
    SweepInterrupted,
)
from ..core.simulator import trace_cache_info
from ..sw.tracestore import TRACECACHE_DIRNAME
from ..workloads.registry import workload_names
from . import faults, fig11, fig12, fig13, fig15, fig16, fig17, \
    tier_modes
from .runner import RUNCACHE_DIRNAME, ExperimentRunner, RunKey
from .supervisor import RetryPolicy, RunJournal, Supervisor


def plan_fig11(workloads: Optional[List[str]] = None,
               size: str = "large",
               llc_mb: float = 1.0) -> List[RunKey]:
    keys = []
    for workload in workloads or workload_names():
        keys.append(RunKey("1P1L", workload, size, llc_mb,
                           False, "default", 0))
        for design in fig11.DESIGNS:
            keys.append(RunKey(design, workload, size, llc_mb,
                               False, "default", 0))
    return keys


def plan_fig12(workloads: Optional[List[str]] = None,
               llc_points: Optional[Iterable[float]] = None,
               size: str = "large") -> List[RunKey]:
    keys = []
    for llc_mb in llc_points or fig12.LLC_POINTS:
        for workload in workloads or workload_names():
            keys.append(RunKey("1P1L", workload, size, llc_mb,
                               False, "default", 0))
            for design in fig12.DESIGNS:
                keys.append(RunKey(design, workload, size, llc_mb,
                                   False, "default", 0))
    return keys


def plan_fig13(workloads: Optional[List[str]] = None,
               size: str = "small") -> List[RunKey]:
    keys = []
    for workload in workloads or workload_names():
        keys.append(RunKey("1P1L", workload, size, 1.0,
                           True, "default", 0))
        for design in fig13.DESIGNS:
            keys.append(RunKey(design, workload, size, 1.0,
                               True, "default", 0))
    return keys


def plan_fig14(workloads: Optional[List[str]] = None,
               size: str = "large",
               llc_mb: float = 1.0) -> List[RunKey]:
    # Fig. 14 visits exactly the Fig. 11 design x workload space.
    return plan_fig11(workloads, size, llc_mb)


def plan_fig15(workloads: Optional[List[str]] = None,
               size: str = "large", design: str = "1P2L",
               samples: int = fig15.DEFAULT_SAMPLES) -> List[RunKey]:
    keys = []
    for workload in workloads or fig15.WORKLOADS:
        stride = fig15.stride_for(workload, size, samples)
        keys.append(RunKey(design, workload, size, 1.0,
                           False, "default", stride))
    return keys


def plan_fig16(workloads: Optional[List[str]] = None,
               size: str = "large",
               llc_mb: float = 1.0) -> List[RunKey]:
    keys = []
    for workload in workloads or workload_names():
        keys.append(RunKey("1P1L", workload, size, llc_mb,
                           False, "default", 0))
        for design in fig16.DESIGNS:
            keys.append(RunKey(design, workload, size, llc_mb,
                               False, "default", 0))
    return keys


def plan_fig17(workloads: Optional[List[str]] = None,
               size: str = "large",
               llc_mb: float = 1.0) -> List[RunKey]:
    keys = []
    for _, design, memory in fig17.VARIANTS:
        for workload in workloads or workload_names():
            keys.append(RunKey(design, workload, size, llc_mb,
                               False, memory, 0))
    return keys


def plan_energy(workloads: Optional[List[str]] = None,
                size: str = "large",
                llc_mb: float = 1.0) -> List[RunKey]:
    # The energy extension prices the Fig. 11 design x workload space.
    return plan_fig11(workloads, size, llc_mb)


def plan_tier_modes(workloads: Optional[List[str]] = None,
                    size: str = "large",
                    llc_mb: float = 1.0) -> List[RunKey]:
    # Tier personalities ride on overrides; the plan mirrors the
    # experiment's run loop exactly (see tier_modes.plan_tier_modes).
    return tier_modes.plan_tier_modes(workloads, size, llc_mb)


#: Experiments with a precomputable run plan.  Experiments absent here
#: (table1, fig10, layout_mismatch, ...) drive the simulator directly
#: with bespoke systems or layouts and run sequentially as before.
PLANNERS: Dict[str, Callable[[], List[RunKey]]] = {
    "fig11": plan_fig11,
    "fig12": plan_fig12,
    "fig13": plan_fig13,
    "fig14": plan_fig14,
    "fig15": plan_fig15,
    "fig16": plan_fig16,
    "fig17": plan_fig17,
    "energy": plan_energy,
    "tier_modes": plan_tier_modes,
}


def plan_for(names: Iterable[str]) -> List[RunKey]:
    """Deduplicated run plan covering every named experiment.

    Unknown names are skipped (they have no precomputable plan), and
    duplicate points shared between figures appear once, in first-seen
    order.
    """
    keys: List[RunKey] = []
    for name in names:
        planner = PLANNERS.get(name)
        if planner is not None:
            keys.extend(planner())
    return list(dict.fromkeys(keys))


def add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared scheduler/cache flags, on any experiment parser."""
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        metavar="N",
                        help="simulate up to N points in parallel "
                             "(default: 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the persistent "
                             "run cache")
    parser.add_argument("--refresh", action="store_true",
                        help="re-simulate cached points and overwrite "
                             "their cache entries")
    parser.add_argument("--outdir", default="results",
                        help="results directory; the run cache lives "
                             "in OUTDIR/.runcache (default: results)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep from its "
                             "journal (OUTDIR/.runjournal)")
    parser.add_argument("--max-retries", type=int, default=2,
                        metavar="N",
                        help="retry a transiently failed run at most "
                             "N times (default: 2)")
    parser.add_argument("--run-timeout", type=float, default=None,
                        metavar="SECS",
                        help="per-run wall-clock budget; a run over "
                             "budget is killed and retried "
                             "(default: none)")
    parser.add_argument("--inject-faults", default=None,
                        metavar="SPEC",
                        help="deterministic fault injection, e.g. "
                             "worker_crash:0.1,seed:7 (also read "
                             "from $REPRO_FAULTS)")
    parser.add_argument("--shards", type=int, default=1,
                        metavar="N",
                        help="split each trace into N window-aligned "
                             "cold-cache epochs, replayed in parallel "
                             "under --jobs and merged "
                             "deterministically (default: 1 = "
                             "whole-trace replay; sampled runs always "
                             "replay whole)")
    parser.add_argument("--profile", action="store_true",
                        help="profile the sweep under cProfile: dump "
                             "OUTDIR/profile.pstats and print the top "
                             "20 functions by cumulative time to "
                             "stderr; pool workers under --jobs N "
                             "dump per-worker profiles that merge "
                             "into the same file")


def apply_shards(keys: List[RunKey], shards: int) -> List[RunKey]:
    """Shard every shardable key of a plan.

    Sampled keys (``sample_every > 0``) keep their positional
    occupancy semantics and stay whole-trace; everything else replays
    as ``shards`` cold-cache epochs.
    """
    if shards <= 1:
        return keys
    return [key if key.sample_every
            else dataclasses.replace(key, shards=shards)
            for key in keys]


def runner_from_args(args: argparse.Namespace,
                     verbose: bool = True) -> ExperimentRunner:
    """An :class:`ExperimentRunner` configured by the shared flags."""
    cache_dir = None if args.no_cache else \
        os.path.join(args.outdir, RUNCACHE_DIRNAME)
    trace_dir = None if args.no_cache else \
        os.path.join(args.outdir, TRACECACHE_DIRNAME)
    return ExperimentRunner(verbose=verbose, jobs=args.jobs,
                            cache_dir=cache_dir, refresh=args.refresh,
                            trace_dir=trace_dir,
                            shards=getattr(args, "shards", 1))


def supervisor_from_args(args: argparse.Namespace,
                         runner: ExperimentRunner,
                         suite: str,
                         handle_signals: bool = True) -> Supervisor:
    """A :class:`Supervisor` configured by the shared CLI flags.

    The lifecycle journal lives at ``OUTDIR/.runjournal/<suite>.jsonl``
    regardless of ``--no-cache`` (the journal records what happened;
    the cache records results).  The simulation service reuses this
    builder with ``handle_signals=False`` — it supervises batches from
    a worker thread and owns SIGTERM itself.
    """
    fault_plan = None
    if getattr(args, "inject_faults", None):
        fault_plan = faults.parse_spec(args.inject_faults)
    return Supervisor(
        runner,
        journal=RunJournal.for_suite(args.outdir, suite),
        policy=RetryPolicy(max_retries=max(0, args.max_retries)),
        run_timeout=args.run_timeout,
        resume=getattr(args, "resume", False),
        fault_plan=fault_plan,
        handle_signals=handle_signals)


def run_supervised(supervisor: Supervisor,
                   plan: List[RunKey]) -> None:
    """Supervise a plan for a CLI entry point, mapping outcomes to
    exit codes: SIGINT/SIGTERM exits 130, permanent failures exit 3."""
    try:
        report = supervisor.supervise(plan)
    except SweepInterrupted as exc:
        print(f"  interrupted: {exc}", file=sys.stderr)
        raise SystemExit(EXIT_INTERRUPTED) from exc
    except SweepFailed as exc:
        print(f"  sweep failed: {exc}", file=sys.stderr)
        raise SystemExit(EXIT_SWEEP_FAILED) from exc
    if report.retries or report.resumed or report.degraded_serial:
        print(f"  supervisor: {report.describe()}", file=sys.stderr)


def describe_trace_info(info: Dict[str, int]) -> str:
    """One-line summary of :func:`trace_cache_info` counters."""
    return (f"{info['hits']} memo hits, {info['store_hits']} store "
            f"hits, {info['generated']} generated")


def figure_runner(name: str,
                  argv: Optional[List[str]] = None) -> ExperimentRunner:
    """Parse an experiment CLI and return a prefetched runner.

    Used by every planned figure's ``main``: collects the figure's run
    plan, satisfies it from the persistent cache, simulates what is
    missing (in parallel under ``--jobs``, supervised — journaled,
    retried, resumable), and hands back a runner on which the figure's
    run loop is pure memo hits.
    """
    parser = argparse.ArgumentParser(
        prog=f"repro.experiments.{name}",
        description=f"regenerate {name} (see the module docstring)")
    add_engine_arguments(parser)
    args = parser.parse_args(argv)
    runner = runner_from_args(args)
    planner = PLANNERS.get(name)
    if planner is not None:
        # Profiling covers the simulation sweep (the figure's own run
        # loop afterwards is pure memo hits, not worth the overhead).
        from ..common.profile_util import profiled
        plan = apply_shards(planner(),
                            getattr(args, "shards", 1))
        with profiled(args.outdir, enabled=args.profile):
            run_supervised(supervisor_from_args(args, runner, name),
                           plan)
        info = runner.cache_info()
        if info.requests:
            print(f"  [{name}] run cache: {info.describe()}",
                  file=sys.stderr)
            print(f"  [{name}] trace cache: "
                  f"{describe_trace_info(trace_cache_info())}",
                  file=sys.stderr)
    return runner
