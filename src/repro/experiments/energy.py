"""Extension experiment: energy comparison across designs.

Not a paper figure — the paper motivates MDA access partly through
activation energy ("row opening is a costly operation ... in terms of
both latency and power", Section III) but reports no energy numbers.
This experiment prices each design's event counts with
:class:`~repro.core.energy.EnergyModel` and reports memory-system
energy normalized to the 1P1L baseline, alongside the activation-count
reduction that drives it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.energy import EnergyBreakdown, EnergyModel, EnergyParams
from ..core.results import format_table, mean, normalized
from ..workloads.registry import workload_names
from .runner import ExperimentRunner

DESIGNS = ("1P2L", "1P2L_SameSet", "2P2L")


@dataclass
class EnergyResult:
    """Total energy and activation counts per design and workload."""

    baseline: Dict[str, EnergyBreakdown] = field(default_factory=dict)
    breakdowns: Dict[str, Dict[str, EnergyBreakdown]] = \
        field(default_factory=dict)
    activations: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def normalized_energy(self, design: str, workload: str) -> float:
        return normalized(self.breakdowns[design][workload].total_pj,
                          self.baseline[workload].total_pj)

    def average_normalized(self, design: str) -> float:
        return mean(self.normalized_energy(design, w)
                    for w in self.baseline)

    def report(self) -> str:
        rows: List[List[object]] = []
        for workload in self.baseline:
            row: List[object] = [workload]
            row.extend(self.normalized_energy(d, workload)
                       for d in DESIGNS)
            row.append(self.activations["1P1L"][workload])
            row.append(self.activations["1P2L"][workload])
            rows.append(row)
        rows.append(["average",
                     *(self.average_normalized(d) for d in DESIGNS),
                     "", ""])
        return format_table(
            ("workload", *(f"{d} energy" for d in DESIGNS),
             "1P1L activates", "1P2L activates"), rows)


def run_energy(runner: Optional[ExperimentRunner] = None,
               workloads: Optional[List[str]] = None,
               size: str = "large", llc_mb: float = 1.0,
               params: Optional[EnergyParams] = None) -> EnergyResult:
    runner = runner or ExperimentRunner()
    model = EnergyModel(params)
    result = EnergyResult()
    for workload in workloads or workload_names():
        base = runner.run("1P1L", workload, size, llc_mb)
        result.baseline[workload] = model.evaluate(base.stats)
        result.activations.setdefault("1P1L", {})[workload] = \
            base.stats.group("memory.banks").get("buffer_misses")
        for design in DESIGNS:
            run = runner.run(design, workload, size, llc_mb)
            result.breakdowns.setdefault(design, {})[workload] = \
                model.evaluate(run.stats)
            if design == "1P2L":
                result.activations.setdefault("1P2L", {})[workload] = \
                    run.stats.group("memory.banks").get("buffer_misses")
    return result


def main(argv=None) -> None:
    from .plans import figure_runner
    print(run_energy(figure_runner('energy', argv)).report())


if __name__ == "__main__":
    main()
