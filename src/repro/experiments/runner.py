"""Shared experiment runner with run memoization.

Several figures reuse the same simulation points (e.g. the 1 MB-LLC
baseline appears in Figs. 11, 12, 14, 16); the runner caches completed
:class:`RunResult` objects per configuration key so a full-suite
regeneration simulates each point exactly once.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..common.config import MemoryConfig
from ..core.simulator import RunResult, run_simulation
from ..core.system import make_resident_system, make_system

#: Paper Fig. 17 evaluates a 1.6x faster main memory.
FAST_MEMORY_FACTOR = 1.6


@dataclass(frozen=True)
class RunKey:
    """Identity of one simulation point."""

    design: str
    workload: str
    size: str
    llc_mb: float
    resident: bool
    memory: str  # "default" or "fast"
    sample_every: int


class ExperimentRunner:
    """Builds systems, runs simulations, memoizes results."""

    def __init__(self, verbose: bool = False) -> None:
        self._cache: Dict[RunKey, RunResult] = {}
        self._verbose = verbose

    def run(self, design: str, workload: str, size: str = "large",
            llc_mb: float = 1.0, resident: bool = False,
            memory: str = "default",
            sample_every: int = 0) -> RunResult:
        """Simulate (or recall) one point."""
        key = RunKey(design, workload, size, llc_mb, resident, memory,
                     sample_every)
        if key in self._cache:
            return self._cache[key]
        mem_cfg = self._memory_config(memory)
        if resident:
            system = make_resident_system(design, memory=mem_cfg)
        else:
            system = make_system(design, llc_mb, memory=mem_cfg)
        started = time.time()
        result = run_simulation(system, workload=workload, size=size,
                                sample_every=sample_every)
        if self._verbose:
            print(f"  ran {design} / {workload} / {size} "
                  f"(llc={llc_mb}MB mem={memory}"
                  f"{' resident' if resident else ''}): "
                  f"{result.cycles} cycles "
                  f"[{time.time() - started:.1f}s]",
                  file=sys.stderr)
        self._cache[key] = result
        return result

    @staticmethod
    def _memory_config(variant: str) -> MemoryConfig:
        base = MemoryConfig()
        if variant == "default":
            return base
        if variant == "fast":
            return base.faster(FAST_MEMORY_FACTOR)
        raise ValueError(f"unknown memory variant {variant!r}")

    @property
    def runs_completed(self) -> int:
        return len(self._cache)
