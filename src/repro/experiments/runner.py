"""Shared experiment engine: memoized, disk-cached, parallel runs.

Several figures reuse the same simulation points (e.g. the 1 MB-LLC
baseline appears in Figs. 11, 12, 14, 16); the runner caches completed
:class:`RunResult` objects per configuration key so a full-suite
regeneration simulates each point exactly once.  On top of the
in-process memo this module provides:

* a **persistent run cache** (pickles under ``results/.runcache/`` by
  default, keyed by a stable hash of the :class:`RunKey` plus a
  fingerprint of the fully-resolved :class:`SystemConfig`) so re-runs
  and partial sweeps skip already-simulated points across processes;
* a **process-pool scheduler** (:meth:`ExperimentRunner.prefetch`) that
  takes the deduplicated set of points a figure suite needs and fans
  the uncached ones out over ``multiprocessing`` workers.

Every path funnels through :func:`simulate_run_key`, so parallel,
cached, and sequential executions produce bit-identical statistics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import pickle
import sys
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..common.config import MemoryConfig, SystemConfig, apply_overrides
from ..common.errors import LockTimeout
from ..common.locking import file_lock, lock_path_for
from ..common.profile_util import maybe_profile_worker
from ..common.types import ShardPlan
from ..core.simulator import (
    RunResult,
    configure_trace_store,
    ensure_trace,
    merge_run_results,
    reset_trace_counters,
    run_simulation,
    trace_cache_info,
)
from ..core.system import make_resident_system, make_system
from ..sw.tracestore import TRACECACHE_DIRNAME  # noqa: F401 (re-export)
from . import faults

#: Paper Fig. 17 evaluates a 1.6x faster main memory.
FAST_MEMORY_FACTOR = 1.6

#: Bump when the on-disk payload layout changes; old entries become
#: silent misses rather than unpickling hazards.  v2: per-request
#: latency histogram counters (``cpu.lat_hist_b*``) and the kernelized
#: replay path's always-present counter cells joined the stats.  v3:
#: ``SystemConfig`` grew the die-stacked ``tier`` field — pre-tier
#: entries (whose fingerprints lack it) can never collide with
#: tier-enabled runs.
CACHE_FORMAT_VERSION = 3

#: Default location of the persistent run cache, relative to an
#: experiment output directory.
RUNCACHE_DIRNAME = ".runcache"


@dataclass(frozen=True)
class RunKey:
    """Identity of one simulation point.

    ``overrides`` carries optional :class:`SystemConfig` overrides as a
    sorted tuple of ``(dotted_path, value)`` pairs (hashable, so keys
    with overrides still memoize) — see
    :func:`repro.common.config.apply_overrides` for the path schema.
    The figure planners never set it; the simulation service does.
    """

    design: str
    workload: str
    size: str
    llc_mb: float
    resident: bool
    memory: str  # "default" or "fast"
    sample_every: int
    overrides: Tuple[Tuple[str, object], ...] = ()
    #: Epoch count of the sharded replay (see
    #: :func:`repro.core.simulator.run_simulation`'s ``shard=``): the
    #: packed trace splits at window-aligned boundaries into this many
    #: cold-cache epochs whose stats merge deterministically.  1 (the
    #: default) is the classic whole-trace replay.  Incompatible with
    #: ``sample_every``.
    shards: int = 1


def memory_config(variant: str) -> MemoryConfig:
    """The :class:`MemoryConfig` for a run key's memory variant."""
    base = MemoryConfig()
    if variant == "default":
        return base
    if variant == "fast":
        return base.faster(FAST_MEMORY_FACTOR)
    raise ValueError(f"unknown memory variant {variant!r}")


def system_for_key(key: RunKey) -> SystemConfig:
    """Build the fully-resolved system a run key describes."""
    mem_cfg = memory_config(key.memory)
    if key.resident:
        system = make_resident_system(key.design, memory=mem_cfg)
    else:
        system = make_system(key.design, key.llc_mb, memory=mem_cfg)
    if key.overrides:
        system = apply_overrides(system, dict(key.overrides))
    return system


def shard_plan_for(key: RunKey) -> ShardPlan:
    """The epoch plan a sharded key replays (materializes the trace).

    A pure function of the trace length and ``key.shards``, so the
    parent scheduler, serial fallback, and every pool worker cut the
    same boundaries independently.
    """
    _, trace = ensure_trace(*trace_key_for(key))
    return ShardPlan.plan(len(trace), key.shards)


def simulate_run_key(key: RunKey) -> RunResult:
    """Execute one simulation point (the single source of truth).

    Sequential runs, pool workers, and cache refills all call this, so
    every execution path yields bit-identical statistics.  Sharded
    keys replay their epochs serially here and merge — the reference
    the pool execution must (and does) match bit for bit.
    """
    system = system_for_key(key)
    if key.shards <= 1:
        return run_simulation(system, workload=key.workload,
                              size=key.size,
                              sample_every=key.sample_every)
    if key.sample_every:
        raise ValueError("sample_every and shards>1 are mutually "
                         "exclusive (samples are positional within "
                         "one replay)")
    plan = shard_plan_for(key)
    parts = [run_simulation(system, workload=key.workload,
                            size=key.size, shard=(i, key.shards))
             for i in range(plan.shards)]
    return merge_run_results(parts)


def config_fingerprint(system: SystemConfig) -> str:
    """Stable hash of every field of a resolved system configuration.

    Any change to :class:`MemoryConfig`, :class:`CacheLevelConfig`,
    :class:`CpuConfig`, or the level stack itself changes the
    fingerprint, invalidating persistent cache entries made under the
    old configuration.
    """
    payload = dataclasses.asdict(system)
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cache_key(key: RunKey) -> str:
    """Filename-safe persistent-cache key for one simulation point."""
    key_fields = dataclasses.asdict(key)
    if not key_fields.get("overrides"):
        # Keys without overrides hash exactly as they did before the
        # field existed, keeping pre-existing cache entries and journal
        # identities valid.
        key_fields.pop("overrides", None)
    if key_fields.get("shards", 1) <= 1:
        # Same compatibility rule for the sharding field: unsharded
        # keys keep their pre-existing hashes.
        key_fields.pop("shards", None)
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "key": key_fields,
        "config": config_fingerprint(system_for_key(key)),
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


#: Suffix a quarantined (corrupt) cache entry is renamed to.
QUARANTINE_SUFFIX = ".corrupt"


class RunCache:
    """Persistent on-disk store of completed :class:`RunResult` objects.

    One pickle per simulation point, written atomically; a corrupt or
    format-mismatched entry reads as a miss, never as an error.  A
    corrupt entry is additionally *quarantined* — renamed to
    ``<entry>.pkl.corrupt`` and counted in :attr:`corrupt_quarantined` —
    so it is read (and fails) once instead of on every lookup, and the
    bad bytes survive for postmortem inspection.

    Writes take an advisory lock on ``<root>/.lock`` so two concurrent
    ``repro`` invocations sharing an OUTDIR cannot interleave
    directory mutations (see :mod:`repro.common.locking`); a lock that
    never frees skips the best-effort write and counts in
    :attr:`lock_timeouts` rather than wedging the sweep.
    """

    def __init__(self, root: str,
                 lock_timeout: float = 10.0) -> None:
        self._root = root
        self._lock_timeout = lock_timeout
        #: Corrupt entries quarantined by :meth:`load` so far.
        self.corrupt_quarantined = 0
        #: Best-effort writes skipped because the lock stayed held.
        self.lock_timeouts = 0

    @property
    def root(self) -> str:
        return self._root

    def path_for(self, key: RunKey) -> str:
        return os.path.join(self._root, cache_key(key) + ".pkl")

    def load(self, key: RunKey) -> Optional[RunResult]:
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, TypeError):
            self._quarantine(path)
            return None
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        if payload.get("format") != CACHE_FORMAT_VERSION:
            # A valid entry from an older writer: a silent miss (it is
            # overwritten in place on the next store), not corruption.
            return None
        return payload.get("result")

    def store(self, key: RunKey, result: RunResult) -> None:
        os.makedirs(self._root, exist_ok=True)
        path = self.path_for(key)
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "key": dataclasses.asdict(key),
            "result": result,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with file_lock(lock_path_for(self._root),
                           timeout=self._lock_timeout):
                with open(tmp, "wb") as handle:
                    pickle.dump(payload, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
        except LockTimeout:
            self.lock_timeouts += 1
            try:
                os.remove(tmp)
            except OSError:
                pass
            return
        faults.maybe_corrupt_file(path, token=os.path.basename(path))

    def _quarantine(self, path: str) -> None:
        try:
            os.replace(path, path + QUARANTINE_SUFFIX)
        except OSError:
            return
        self.corrupt_quarantined += 1

    def clear(self) -> int:
        """Delete every cache entry (quarantined ones too); returns
        the number of live entries removed."""
        removed = 0
        if not os.path.isdir(self._root):
            return removed
        for name in os.listdir(self._root):
            if name.endswith(".pkl"):
                os.remove(os.path.join(self._root, name))
                removed += 1
            elif name.endswith(".pkl" + QUARANTINE_SUFFIX):
                os.remove(os.path.join(self._root, name))
        return removed

    def __len__(self) -> int:
        if not os.path.isdir(self._root):
            return 0
        return sum(1 for name in os.listdir(self._root)
                   if name.endswith(".pkl"))


@dataclass
class CacheInfo:
    """Hit/miss accounting for one :class:`ExperimentRunner`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    corrupt_quarantined: int = 0
    lock_timeouts: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def hit_fraction(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        text = (f"{self.memory_hits} memo hits, {self.disk_hits} disk "
                f"hits, {self.misses} simulated")
        if self.corrupt_quarantined:
            text += (f", {self.corrupt_quarantined} corrupt entries "
                     f"quarantined")
        if self.lock_timeouts:
            text += f", {self.lock_timeouts} writes skipped (lock held)"
        return text


def trace_key_for(key: RunKey) -> Tuple[str, str, int]:
    """The ``(workload, size, logical_dims)`` trace identity of a key.

    Every design point sharing this triple replays the same packed
    trace; the scheduler materializes each distinct triple once in the
    parent before forking workers.
    """
    return key.workload, key.size, system_for_key(key).logical_dims


def _pool_job(
        job: Tuple[RunKey, Optional[int]]
) -> Tuple[RunKey, Optional[int], RunResult, float, int,
           Dict[str, int]]:
    """Worker-side wrapper: one key (or one epoch of one sharded key).

    ``job`` is ``(key, None)`` for a whole simulation point or
    ``(key, index)`` for epoch ``index`` of ``key.shards``; the parent
    merges epoch parts in index order.  Also reports the worker's pid
    and its cumulative trace-cache counters, so the parent can verify
    that forked workers replayed inherited traces instead of
    regenerating them.
    """
    key, index = job
    started = time.time()
    with maybe_profile_worker():
        if index is None:
            result = simulate_run_key(key)
        else:
            result = run_simulation(system_for_key(key),
                                    workload=key.workload,
                                    size=key.size,
                                    shard=(index, key.shards))
    return (key, index, result, time.time() - started, os.getpid(),
            trace_cache_info())


class ExperimentRunner:
    """Builds systems, runs simulations, memoizes and caches results.

    Args:
        verbose: log each simulated (or disk-recalled) point to stderr.
        jobs: default worker-process count for :meth:`prefetch`.
        cache_dir: directory of the persistent run cache; ``None``
            (the default) keeps the runner purely in-memory.
        refresh: ignore existing persistent entries (they are
            overwritten with freshly simulated results).
        trace_dir: directory of the persistent packed-trace store;
            ``None`` leaves the process-global store configuration
            untouched.
    """

    def __init__(self, verbose: bool = False, jobs: int = 1,
                 cache_dir: Optional[str] = None,
                 refresh: bool = False,
                 trace_dir: Optional[str] = None,
                 shards: int = 1) -> None:
        self._cache: Dict[RunKey, RunResult] = {}
        self._verbose = verbose
        self._jobs = max(1, int(jobs))
        self._shards = max(1, int(shards))
        self._disk = RunCache(cache_dir) if cache_dir else None
        self._refresh = refresh
        self._info = CacheInfo()
        # Cumulative trace-cache counters per worker pid (last snapshot
        # wins; snapshots are monotone within one worker's lifetime).
        self._worker_traces: Dict[int, Dict[str, int]] = {}
        if trace_dir is not None:
            configure_trace_store(trace_dir)

    # -- running -------------------------------------------------------------

    def run(self, design: str, workload: str, size: str = "large",
            llc_mb: float = 1.0, resident: bool = False,
            memory: str = "default",
            sample_every: int = 0) -> RunResult:
        """Simulate (or recall) one point.

        Built keys inherit the runner's default shard count (sampled
        points always replay whole-trace), so figures re-deriving a
        prefetched plan through here land on the same memo entries.
        """
        key = RunKey(design, workload, size, llc_mb, resident, memory,
                     sample_every,
                     shards=self._shards if not sample_every else 1)
        cached = self._cache.get(key)
        if cached is not None:
            self._info.memory_hits += 1
            return cached
        result = self._load_from_disk(key)
        if result is not None:
            self._info.disk_hits += 1
            self._cache[key] = result
            self._log(key, result, seconds=0.0, source="runcache")
            return result
        self._info.misses += 1
        started = time.time()
        result = simulate_run_key(key)
        self._log(key, result, seconds=time.time() - started)
        self._store(key, result)
        return result

    def prefetch(self, keys: Iterable[RunKey],
                 jobs: Optional[int] = None) -> int:
        """Ensure every key is memo-resident; returns points simulated.

        Deduplicates ``keys``, satisfies what it can from the memo and
        the persistent cache, and fans the remaining unique points out
        over ``jobs`` worker processes (the runner's default when not
        given).  After this returns, :meth:`run` for any of the keys is
        a memo hit.
        """
        jobs = self._jobs if jobs is None else max(1, int(jobs))
        pending: List[RunKey] = []
        for key in dict.fromkeys(keys):
            if key in self._cache:
                continue
            result = self._load_from_disk(key)
            if result is not None:
                self._info.disk_hits += 1
                self._cache[key] = result
                self._log(key, result, seconds=0.0, source="runcache")
                continue
            pending.append(key)
        if not pending:
            return 0
        self._info.misses += len(pending)
        if jobs == 1:
            for key in pending:
                started = time.time()
                result = simulate_run_key(key)
                self._log(key, result, seconds=time.time() - started)
                self._store(key, result)
            return len(pending)
        # Materialize every distinct trace the pending points replay in
        # the parent *before* forking, so workers inherit the packed
        # buffers copy-on-write and the process tree generates each
        # (workload, size, dims) trace at most once.
        for workload, size, dims in dict.fromkeys(
                trace_key_for(key) for key in pending):
            ensure_trace(workload, size, dims)
        # Sharded keys fan out one pool job per epoch (the trace is
        # already materialized, so the epoch plan is a cheap length
        # computation); their parts merge in the parent as they
        # complete.  Everything else is one job per key.
        jobs_list: List[Tuple[RunKey, Optional[int]]] = []
        shard_parts: Dict[RunKey, List[Optional[RunResult]]] = {}
        for key in pending:
            epochs = shard_plan_for(key).shards if key.shards > 1 \
                else 1
            if epochs > 1:
                shard_parts[key] = [None] * epochs
                jobs_list.extend((key, i) for i in range(epochs))
            else:
                jobs_list.append((key, None))
        if len(jobs_list) == 1:
            key = pending[0]
            started = time.time()
            result = simulate_run_key(key)
            self._log(key, result, seconds=time.time() - started)
            self._store(key, result)
            return 1
        # POSIX fork keeps workers importable regardless of how the
        # parent was launched (pytest, -m, REPL); fall back otherwise.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        workers = min(jobs, len(jobs_list))
        if self._verbose:
            print(f"  scheduling {len(pending)} simulation points "
                  f"({len(jobs_list)} jobs) over {workers} workers",
                  file=sys.stderr)
        # Workers zero their (inherited) trace counters at fork, so the
        # snapshots they report count post-fork activity only.
        with ctx.Pool(processes=workers,
                      initializer=reset_trace_counters) as pool:
            for key, index, result, seconds, pid, traces in \
                    pool.imap_unordered(_pool_job, jobs_list):
                self._worker_traces[pid] = traces
                if index is not None:
                    parts = shard_parts[key]
                    parts[index] = result
                    if any(part is None for part in parts):
                        continue
                    result = merge_run_results(parts)
                    self._log(key, result, seconds=seconds,
                              source=f"{len(parts)} shards")
                    self._store(key, result)
                    continue
                self._log(key, result, seconds=seconds)
                self._store(key, result)
        return len(pending)

    # -- cache management ----------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Forget memoized results and reset hit/miss accounting.

        Args:
            disk: also delete the persistent cache entries on disk.
        """
        self._cache.clear()
        self._info = CacheInfo()
        if disk and self._disk is not None:
            self._disk.clear()

    def cache_info(self) -> CacheInfo:
        """A snapshot of the hit/miss accounting so far."""
        info = dataclasses.replace(self._info)
        if self._disk is not None:
            info.corrupt_quarantined = self._disk.corrupt_quarantined
            info.lock_timeouts = self._disk.lock_timeouts
        return info

    # -- supervisor hooks ----------------------------------------------------

    def lookup(self, key: RunKey) -> Optional[RunResult]:
        """Memo-or-disk lookup with hit accounting; never simulates."""
        cached = self._cache.get(key)
        if cached is not None:
            self._info.memory_hits += 1
            return cached
        result = self._load_from_disk(key)
        if result is not None:
            self._info.disk_hits += 1
            self._cache[key] = result
            self._log(key, result, seconds=0.0, source="runcache")
        return result

    def record_result(self, key: RunKey, result: RunResult,
                      seconds: float = 0.0) -> None:
        """Adopt an externally simulated result into memo and disk.

        Counts as a miss (the point really was simulated, just under
        the supervisor's control rather than :meth:`run`'s).
        """
        self._info.misses += 1
        self._log(key, result, seconds=seconds)
        self._store(key, result)

    def worker_trace_info(self) -> Dict[int, Dict[str, int]]:
        """Last trace-cache snapshot reported by each pool worker pid.

        A cold parallel sweep whose traces were pre-materialized shows
        ``generated == 0`` in every snapshot: workers replayed the
        inherited buffers rather than re-walking kernels.
        """
        return {pid: dict(info)
                for pid, info in self._worker_traces.items()}

    @property
    def runs_completed(self) -> int:
        return len(self._cache)

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def shards(self) -> int:
        """Default epoch count :meth:`run` stamps on built keys.

        Experiments that construct override-carrying keys by hand
        (``run`` cannot express overrides) mirror this so their keys
        land on the same memo entries a prefetched plan produced."""
        return self._shards

    @property
    def run_cache(self) -> Optional[RunCache]:
        return self._disk

    # -- internals -----------------------------------------------------------

    def _load_from_disk(self, key: RunKey) -> Optional[RunResult]:
        if self._disk is None or self._refresh:
            return None
        return self._disk.load(key)

    def _store(self, key: RunKey, result: RunResult) -> None:
        self._cache[key] = result
        if self._disk is not None:
            self._disk.store(key, result)

    def _log(self, key: RunKey, result: RunResult, seconds: float,
             source: str = "simulated") -> None:
        if not self._verbose:
            return
        origin = "" if source == "simulated" else f" <{source}>"
        print(f"  ran {key.design} / {key.workload} / {key.size} "
              f"(llc={key.llc_mb}MB mem={key.memory}"
              f"{' resident' if key.resident else ''}): "
              f"{result.cycles} cycles "
              f"[{seconds:.1f}s]{origin}",
              file=sys.stderr)

    @staticmethod
    def _memory_config(variant: str) -> MemoryConfig:
        """Backwards-compatible alias for :func:`memory_config`."""
        return memory_config(variant)
