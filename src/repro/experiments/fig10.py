"""Fig. 10: access orientation and size preferences, by data volume.

For each benchmark and both input sizes, the trace is classified into
the paper's four categories — Row Scalar, Row Vector, Column Scalar,
Column Vector — weighted by bytes accessed.  The paper's headline: every
benchmark exercises column preference, and "column preferences
constitute about 40% of total data accesses" on average.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.results import format_table, mean
from ..sw.tracegen import TraceMix, generate_trace, trace_mix
from ..workloads.registry import build_workload, workload_names

SIZES = ("small", "large")


@dataclass
class Fig10Result:
    """Per-(workload, size) access mixes."""

    mixes: Dict[str, Dict[str, TraceMix]] = field(default_factory=dict)
    sizes: List[str] = field(default_factory=lambda: list(SIZES))

    def column_fraction(self, workload: str, size: str) -> float:
        return self.mixes[workload][size].column_fraction

    def average_column_fraction(self, size: str) -> float:
        return mean(self.mixes[w][size].column_fraction
                    for w in self.mixes)

    def report(self) -> str:
        rows: List[List[object]] = []
        for size in self.sizes:
            for workload in self.mixes:
                fractions = self.mixes[workload][size].fractions()
                rows.append([
                    size, workload,
                    fractions["row_scalar"], fractions["row_vector"],
                    fractions["col_scalar"], fractions["col_vector"],
                    self.mixes[workload][size].column_fraction,
                ])
            rows.append([size, "average", "", "", "", "",
                         self.average_column_fraction(size)])
        return format_table(
            ("input", "workload", "row_scalar", "row_vector",
             "col_scalar", "col_vector", "col_total"), rows)


def run_fig10(workloads: Optional[List[str]] = None,
              sizes: Optional[List[str]] = None) -> Fig10Result:
    """Classify the logically 2-D trace of each benchmark."""
    result = Fig10Result(sizes=list(sizes or SIZES))
    for workload in workloads or workload_names():
        result.mixes[workload] = {}
        for size in result.sizes:
            program = build_workload(workload, size)
            trace = generate_trace(program, logical_dims=2)
            result.mixes[workload][size] = trace_mix(trace)
    return result


def main() -> None:
    print(run_fig10().report())


if __name__ == "__main__":
    main()
