"""Extension experiment: dynamic orientation prediction on legacy code.

Paper Section IV-C notes the 1P2L lookup scheme "would be compatible
with a dynamically predicted orientation preference with no additional
overheads on the cache hit path".  This experiment quantifies the
payoff on the scenario where prediction matters most: **legacy
binaries** — code compiled without MDA annotations, every access
carrying the default row preference and column walks left as strided
scalars — running over the MDA-compliant tiled layout.

Three systems per workload, all fed the same legacy (logical-1-D,
scalar-column) trace on the tiled layout:

* ``1P1L``     — the conventional hierarchy (no column capability);
* ``1P2L``     — MDA cache but static (all-row) annotations: column
  capability present yet never exercised;
* ``1P2L_Dyn`` — the runtime predictor recovers column-line fills and
  their MSHR coalescing without recompilation.

Measured outcome (EXPERIMENTS.md): the predictor recovers most of the
*hit rate* — L1 fills drop ~2-3x versus static row annotations — but
end-to-end cycles do not improve under this CPU model, because the
recovered hits wait on a single in-flight column fill where the static
row path overlapped eight independent fills.  An honest negative
result that supports the paper's choice of static annotation mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.results import format_table, mean, normalized
from ..core.simulator import run_simulation
from ..core.system import make_system
from ..sw.layout import TiledLayout
from ..workloads.registry import build_workload

DESIGNS = ("1P1L", "1P2L", "1P2L_Dyn")
#: Kernels with heavy scalar column walks in legacy compilation
#: (ssyrk also qualifies but its serialized legacy trace is large;
#: pass workloads=["ssyrk"] explicitly to include it).
WORKLOADS = ("sgemm", "sobel")


@dataclass
class DynamicOrientationResult:
    cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    mem_reads: Dict[str, Dict[str, int]] = field(default_factory=dict)
    l1_fills: Dict[str, Dict[str, int]] = field(default_factory=dict)
    workloads: List[str] = field(default_factory=list)

    def normalized_cycles(self, design: str, workload: str) -> float:
        return normalized(self.cycles[design][workload],
                          self.cycles["1P1L"][workload])

    def average_normalized(self, design: str) -> float:
        return mean(self.normalized_cycles(design, w)
                    for w in self.workloads)

    def prediction_payoff(self) -> float:
        """Average cycles of 1P2L_Dyn relative to static-row 1P2L."""
        ratios = [normalized(self.cycles["1P2L_Dyn"][w],
                             self.cycles["1P2L"][w])
                  for w in self.workloads]
        return mean(ratios)

    def fill_reduction(self) -> float:
        """Average L1 fill traffic of 1P2L_Dyn vs static-row 1P2L."""
        ratios = [normalized(self.l1_fills["1P2L_Dyn"][w],
                             self.l1_fills["1P2L"][w])
                  for w in self.workloads]
        return mean(ratios)

    def report(self) -> str:
        rows: List[List[object]] = []
        for workload in self.workloads:
            rows.append([
                workload,
                *(self.normalized_cycles(d, workload)
                  for d in DESIGNS[1:]),
                self.l1_fills["1P2L"][workload],
                self.l1_fills["1P2L_Dyn"][workload],
            ])
        rows.append(["average",
                     *(self.average_normalized(d) for d in DESIGNS[1:]),
                     "", ""])
        table = format_table(
            ("workload", "1P2L (static rows)", "1P2L_Dyn",
             "L1 fills static", "L1 fills dyn"), rows)
        return (f"{table}\n\ndynamic vs static annotations: "
                f"{self.prediction_payoff():.3f}x cycles, "
                f"{self.fill_reduction():.3f}x L1 fill traffic")


def run_dynamic_orientation(workloads: Optional[List[str]] = None,
                            size: str = "large",
                            llc_mb: float = 1.0) \
        -> DynamicOrientationResult:
    result = DynamicOrientationResult()
    result.workloads = list(workloads or WORKLOADS)
    for workload in result.workloads:
        program = build_workload(workload, size)
        layout = TiledLayout(program.arrays)
        for design in DESIGNS:
            # Legacy trace: 1-D compilation (row annotations, scalar
            # column walks) over the MDA tiled layout.
            run = run_simulation(make_system(design, llc_mb),
                                 program=program, layout=layout,
                                 compile_dims=1)
            result.cycles.setdefault(design, {})[workload] = run.cycles
            result.mem_reads.setdefault(design, {})[workload] = \
                run.memory_reads()
            result.l1_fills.setdefault(design, {})[workload] = \
                run.stats.group("cache.L1").get("fills")
    return result


def main() -> None:
    print(run_dynamic_orientation().report())


if __name__ == "__main__":
    main()
