"""Fig. 17: benefits in the presence of 1.6x faster main memory.

Section VIII, main memory speed: every design is re-run with a 1.6x
faster MDA memory ("-fast" variants).  Paper shape to match:

* the benefit trend survives the faster memory ("1P2L-fast reducing
  61% of the execution time over 1P1L-fast");
* 1P2L on the *baseline* memory still beats 1P1L-fast ("reducing 41%
  of the execution time"), i.e. MDA caching is worth more than a 1.6x
  memory-speed advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.results import format_table, mean, normalized
from ..workloads.registry import workload_names
from .runner import ExperimentRunner

#: (label, design, memory variant) — normalized against 1P1L-fast.
VARIANTS: Tuple[Tuple[str, str, str], ...] = (
    ("1P1L-fast", "1P1L", "fast"),
    ("1P2L", "1P2L", "default"),
    ("1P2L-fast", "1P2L", "fast"),
    ("1P2L_SameSet", "1P2L_SameSet", "default"),
    ("1P2L_SameSet-fast", "1P2L_SameSet", "fast"),
    ("2P2L", "2P2L", "default"),
    ("2P2L-fast", "2P2L", "fast"),
)


@dataclass
class Fig17Result:
    """Cycles per (label, workload); baseline is 1P1L-fast."""

    cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    workloads: List[str] = field(default_factory=list)

    def normalized_cycles(self, label: str, workload: str) -> float:
        return normalized(self.cycles[label][workload],
                          self.cycles["1P1L-fast"][workload])

    def average_normalized(self, label: str) -> float:
        return mean(self.normalized_cycles(label, w)
                    for w in self.workloads)

    def report(self) -> str:
        labels = [label for label, _, _ in VARIANTS if
                  label != "1P1L-fast"]
        rows: List[List[object]] = []
        for workload in self.workloads:
            rows.append([workload,
                         *(self.normalized_cycles(lbl, workload)
                           for lbl in labels)])
        rows.append(["average",
                     *(self.average_normalized(lbl) for lbl in labels)])
        return format_table(("workload (vs 1P1L-fast)", *labels), rows)


def run_fig17(runner: Optional[ExperimentRunner] = None,
              workloads: Optional[List[str]] = None,
              size: str = "large",
              llc_mb: float = 1.0) -> Fig17Result:
    runner = runner or ExperimentRunner()
    result = Fig17Result()
    result.workloads = list(workloads or workload_names())
    for label, design, memory in VARIANTS:
        for workload in result.workloads:
            run = runner.run(design, workload, size, llc_mb,
                             memory=memory)
            result.cycles.setdefault(label, {})[workload] = run.cycles
    return result


def main(argv=None) -> None:
    from .plans import figure_runner
    print(run_fig17(figure_runner('fig17', argv)).report())


if __name__ == "__main__":
    main()
