"""Fault-tolerant supervision for the experiment engine.

The scheduler in :mod:`repro.experiments.runner` fans a sweep's
deduplicated simulation points out over a ``multiprocessing`` pool —
fast, but brittle: one OOM-killed worker lost the whole ``run_all``,
a hung worker stalled it forever, and Ctrl-C ended in a traceback
storm with no record of what had finished.  The :class:`Supervisor`
wraps pool dispatch with the machinery a multi-hour campaign needs:

* **per-run wall-clock timeouts** and **heartbeat monitoring** — each
  supervised worker touches a per-run heartbeat file from a daemon
  thread; a run whose heartbeat goes stale (crashed or wedged worker)
  or whose deadline passes gets its pool torn down and is retried,
  while innocently terminated neighbors are requeued without losing
  retry budget;
* **capped exponential-backoff retries**, classifying failures as
  transient or permanent via :func:`repro.common.errors.classify_error`
  — deterministic simulator errors fail fast, environmental ones get
  ``max_retries`` more chances;
* **graceful degradation** — if the pool cannot be (re)created the
  sweep continues in-process, serially, rather than dying;
* an **append-only journal** (``OUTDIR/.runjournal/<suite>.jsonl``)
  recording every run's lifecycle (``pending → running →
  done/failed/skipped``), so an interrupted sweep resumes from where
  it stopped (``--resume``) and ``repro journal`` can show exactly
  what a dead sweep was doing;
* **clean interruption** — SIGINT/SIGTERM terminate the pool, flush
  the journal, and surface as :class:`SweepInterrupted` (CLI exit
  130) instead of a multiprocessing traceback storm.

Results flow through the same :class:`ExperimentRunner` memo and
persistent cache as unsupervised runs, so supervised, serial, and
resumed sweeps all produce bit-identical statistics.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import shutil
import signal
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..common.errors import (
    PoolBroken,
    RunTimeout,
    SweepFailed,
    SweepInterrupted,
    WorkerHang,
    classify_error,
)
from ..common.profile_util import maybe_profile_worker
from ..core.simulator import ensure_trace
from . import faults
from .runner import (
    ExperimentRunner,
    RunKey,
    cache_key,
    simulate_run_key,
    trace_key_for,
)

#: Journal directory, relative to an experiment output directory.
JOURNAL_DIRNAME = ".runjournal"

#: Bump when the journal line schema changes; old lines are skipped on
#: replay rather than misread (same contract as the caches).
JOURNAL_FORMAT_VERSION = 1

#: Run lifecycle states recorded in the journal.
RUN_STATES = ("pending", "running", "done", "failed", "skipped",
              "requeued")


# -- journal ------------------------------------------------------------------


@dataclass
class JournalState:
    """The replayed view of one suite's journal."""

    #: Latest lifecycle state per cache key.
    states: Dict[str, str] = field(default_factory=dict)
    #: Highest attempt number seen per cache key.
    attempts: Dict[str, int] = field(default_factory=dict)
    #: Last known :class:`RunKey` fields per cache key.
    keys: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Last recorded error string per cache key.
    errors: Dict[str, str] = field(default_factory=dict)
    #: Journal lines that were unparseable (torn writes, garbage).
    corrupt_lines: int = 0
    #: Parseable events replayed.
    events: int = 0
    #: True when the last sweep event was an interruption.
    interrupted: bool = False

    def counts(self) -> Dict[str, int]:
        """Number of keys currently in each lifecycle state."""
        out: Dict[str, int] = {}
        for state in self.states.values():
            out[state] = out.get(state, 0) + 1
        return out

    def in_state(self, state: str) -> List[str]:
        return [ck for ck, st in self.states.items() if st == state]


class RunJournal:
    """Append-only JSONL journal of a sweep's run lifecycles.

    One line per event, flushed as written so a crash loses at most
    the line being written; replay (:meth:`replay`) tolerates torn,
    truncated, or garbage lines by skipping them — a journal can never
    fail to load.
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._handle = None

    @classmethod
    def for_suite(cls, outdir: str, suite: str) -> "RunJournal":
        return cls(os.path.join(outdir, JOURNAL_DIRNAME,
                                f"{suite}.jsonl"))

    @property
    def path(self) -> str:
        return self._path

    @property
    def suite(self) -> str:
        name = os.path.basename(self._path)
        return name[:-len(".jsonl")] if name.endswith(".jsonl") else name

    def append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            os.makedirs(os.path.dirname(self._path) or ".",
                        exist_ok=True)
            self._handle = open(self._path, "a", encoding="utf-8")
        record = dict(record, v=JOURNAL_FORMAT_VERSION,
                      t=round(time.time(), 3))
        self._handle.write(json.dumps(record, sort_keys=True,
                                      default=str) + "\n")
        self._handle.flush()

    def record_event(self, event: str, **fields: Any) -> None:
        self.append(dict(fields, event=event))

    def record_run(self, key: RunKey, ck: str, state: str,
                   attempt: int = 0, **fields: Any) -> None:
        self.append(dict(fields, event="run", ck=ck, state=state,
                         attempt=attempt, key=dataclasses.asdict(key)))

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            try:
                os.fsync(self._handle.fileno())
            except OSError:
                pass

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def exists(self) -> bool:
        return os.path.exists(self._path)

    def replay(self) -> JournalState:
        return replay_journal(self._path)


def replay_journal(path: str) -> JournalState:
    """Replay a journal file into its latest per-run states.

    Never raises on malformed content: unparseable or unrecognized
    lines (including a torn final line from a crashed writer) are
    counted in :attr:`JournalState.corrupt_lines` and skipped.
    """
    state = JournalState()
    try:
        handle = open(path, "r", encoding="utf-8", errors="replace")
    except OSError:
        return state
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                state.corrupt_lines += 1
                continue
            if not isinstance(record, dict) \
                    or record.get("v") != JOURNAL_FORMAT_VERSION:
                state.corrupt_lines += 1
                continue
            state.events += 1
            event = record.get("event")
            if event == "run":
                ck = record.get("ck")
                run_state = record.get("state")
                if not isinstance(ck, str) \
                        or run_state not in RUN_STATES:
                    continue
                state.states[ck] = run_state
                attempt = record.get("attempt")
                if isinstance(attempt, int):
                    state.attempts[ck] = max(
                        state.attempts.get(ck, 0), attempt)
                key = record.get("key")
                if isinstance(key, dict):
                    state.keys[ck] = key
                error = record.get("error")
                if isinstance(error, str):
                    state.errors[ck] = error
            elif event == "sweep_interrupted":
                state.interrupted = True
            elif event in ("sweep_start", "sweep_end"):
                state.interrupted = False
    return state


# -- retry policy -------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient failures."""

    #: Maximum number of *retries* (re-dispatches beyond the first
    #: attempt) per run; a run is attempted at most ``max_retries + 1``
    #: times.
    max_retries: int = 2
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap: float = 30.0

    def delay(self, attempt: int) -> float:
        """Backoff before re-dispatching after failed attempt N (1-based)."""
        if attempt < 1:
            return 0.0
        return min(self.backoff_cap,
                   self.backoff_base
                   * self.backoff_factor ** (attempt - 1))


# -- report -------------------------------------------------------------------


@dataclass
class SweepReport:
    """What a supervised sweep did, for callers and exit codes."""

    total: int = 0
    from_cache: int = 0
    resumed: int = 0
    simulated: int = 0
    retries: int = 0
    requeued: int = 0
    failed: List[Tuple[RunKey, str]] = field(default_factory=list)
    interrupted: bool = False
    degraded_serial: bool = False

    @property
    def completed(self) -> int:
        return self.from_cache + self.simulated

    def describe(self) -> str:
        text = (f"{self.completed}/{self.total} points "
                f"({self.from_cache} cached, {self.simulated} "
                f"simulated, {self.retries} retries)")
        if self.resumed:
            text += f", {self.resumed} resumed from journal"
        if self.failed:
            text += f", {len(self.failed)} FAILED"
        if self.interrupted:
            text += ", interrupted"
        if self.degraded_serial:
            text += ", degraded to serial"
        return text


# -- worker side --------------------------------------------------------------


def _worker_init(fault_spec: Optional[str]) -> None:
    """Pool-worker initializer: quiet signals, arm fault injection.

    Workers ignore SIGINT so a Ctrl-C in the parent does not unleash
    one KeyboardInterrupt traceback per worker; the supervisor's
    handler terminates the pool deliberately instead.  The fault spec
    is re-armed explicitly so non-fork start methods inject too.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    if fault_spec:
        faults.arm(faults.parse_spec(fault_spec))
    else:
        faults.arm(None)


def _touch(path: str) -> None:
    with open(path, "a"):
        os.utime(path, None)


def _supervised_entry(key: RunKey, ck: str, attempt: int,
                      hb_dir: str, hb_interval: float) \
        -> Tuple[str, Any, float, int]:
    """Worker-side wrapper: heartbeat + fault sites around one run."""
    hb_path = os.path.join(hb_dir, ck + ".hb")
    stop = threading.Event()
    _touch(hb_path)

    def beat() -> None:
        while not stop.wait(hb_interval):
            try:
                _touch(hb_path)
            except OSError:
                return

    thread = threading.Thread(target=beat, daemon=True,
                              name=f"heartbeat-{ck[:8]}")
    thread.start()
    token = f"{ck}:{attempt}"
    try:
        faults.maybe_crash_worker(token)
        faults.maybe_hang_worker(token, stall=stop)
        started = time.time()
        with maybe_profile_worker():
            result = simulate_run_key(key)
        return ck, result, time.time() - started, os.getpid()
    finally:
        stop.set()


# -- supervisor ---------------------------------------------------------------


class _Task:
    """Parent-side bookkeeping for one dispatched run."""

    __slots__ = ("key", "ck", "attempt", "result", "dispatched")

    def __init__(self, key: RunKey, ck: str, attempt: int,
                 result: Any, dispatched: float) -> None:
        self.key = key
        self.ck = ck
        self.attempt = attempt
        self.result = result
        self.dispatched = dispatched


class Supervisor:
    """Fault-tolerant dispatch of a run plan over an
    :class:`ExperimentRunner`.

    Args:
        runner: provides the memo, the persistent cache, worker count
            (``runner.jobs``), and verbose logging.
        journal: lifecycle journal; ``None`` supervises without one.
        policy: retry/backoff knobs (:class:`RetryPolicy`).
        run_timeout: per-run wall-clock budget in seconds (pool mode
            only — a serial in-process run cannot be killed safely);
            ``None`` disables the deadline.
        heartbeat_interval: how often workers touch their heartbeat
            file.
        heartbeat_timeout: how long a dispatched run may go without a
            heartbeat before its worker is declared dead or hung.
        poll_interval: parent poll cadence.
        resume: replay the journal first and report previously
            completed points as resumed (their results come from the
            persistent run cache as usual).
        fault_plan: arm deterministic fault injection for this sweep
            (also inherited by pool workers).
        handle_signals: install SIGINT/SIGTERM handlers around
            :meth:`supervise` (the CLI default).  The simulation
            service supervises batches from a worker thread and owns
            signal handling itself, so it passes ``False`` — the
            handlers would be silently skipped off the main thread
            anyway, but being explicit keeps the lifecycle deliberate.
        sleep/clock: injectable timing for tests.
    """

    def __init__(self, runner: ExperimentRunner,
                 journal: Optional[RunJournal] = None,
                 policy: Optional[RetryPolicy] = None,
                 run_timeout: Optional[float] = None,
                 heartbeat_interval: float = 1.0,
                 heartbeat_timeout: float = 15.0,
                 poll_interval: float = 0.05,
                 resume: bool = False,
                 fault_plan: Optional[faults.FaultPlan] = None,
                 handle_signals: bool = True,
                 sleep=time.sleep,
                 clock=time.time) -> None:
        self._runner = runner
        self._journal = journal
        self._policy = policy or RetryPolicy()
        self._run_timeout = run_timeout
        self._hb_interval = heartbeat_interval
        self._hb_timeout = heartbeat_timeout
        self._poll = poll_interval
        self._resume = resume
        self._handle_signals = handle_signals
        self._sleep = sleep
        self._clock = clock
        self._stop_signal: Optional[int] = None
        if fault_plan is not None:
            faults.arm(fault_plan)

    # -- public API ----------------------------------------------------------

    @property
    def journal(self) -> Optional[RunJournal]:
        return self._journal

    def request_stop(self, signum: int = signal.SIGINT) -> None:
        """Ask the sweep to stop at the next poll (signal-handler safe)."""
        self._stop_signal = signum

    def supervise(self, keys: Iterable[RunKey],
                  strict: bool = True) -> SweepReport:
        """Run every key to completion, retrying transient failures.

        Returns the :class:`SweepReport`; raises
        :class:`SweepInterrupted` on SIGINT/SIGTERM (journal flushed
        first) and, when ``strict``, :class:`SweepFailed` if any point
        exhausted its retries or failed permanently.
        """
        plan = list(dict.fromkeys(keys))
        report = SweepReport(total=len(plan))
        prior = JournalState()
        if self._resume and self._journal is not None \
                and self._journal.exists():
            prior = self._journal.replay()
        self._journal_event("sweep_start", plan=len(plan),
                            resume=self._resume)
        queue: List[Tuple[float, str, RunKey]] = []
        attempts: Dict[str, int] = {}
        now = self._clock()
        for key in plan:
            ck = cache_key(key)
            result = self._runner.lookup(key)
            if result is not None:
                report.from_cache += 1
                if prior.states.get(ck) == "done":
                    report.resumed += 1
                self._journal_run(key, ck, "skipped",
                                  reason="cached")
                continue
            attempts[ck] = 0
            self._journal_run(key, ck, "pending")
            queue.append((now, ck, key))
        self._stop_signal = None
        old_handlers = self._install_handlers()
        try:
            if queue:
                if self._runner.jobs > 1 and len(queue) > 1:
                    try:
                        self._run_pool(queue, attempts, report)
                    except PoolBroken as exc:
                        report.degraded_serial = True
                        self._journal_event("pool_degraded",
                                            error=str(exc))
                        self._log(f"pool unavailable ({exc}); "
                                  f"continuing serially")
                        self._run_serial(queue, attempts, report)
                else:
                    self._run_serial(queue, attempts, report)
        finally:
            self._restore_handlers(old_handlers)
            report.interrupted = self._stop_signal is not None
            if report.interrupted:
                self._journal_event("sweep_interrupted",
                                    signal=self._stop_signal)
            else:
                self._journal_event(
                    "sweep_end", completed=report.completed,
                    simulated=report.simulated,
                    failed=len(report.failed),
                    retries=report.retries)
            if self._journal is not None:
                self._journal.flush()
        if report.interrupted:
            raise SweepInterrupted(
                f"sweep interrupted by signal {self._stop_signal} "
                f"({report.describe()})", report=report)
        if strict and report.failed:
            raise SweepFailed(
                f"{len(report.failed)} point(s) failed permanently "
                f"({report.describe()})", report=report)
        return report

    # -- signal handling ------------------------------------------------------

    def _install_handlers(self):
        handlers = {}
        if not self._handle_signals:
            return handlers
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                handlers[signum] = signal.signal(
                    signum, self._handle_signal)
            except ValueError:  # not the main thread
                pass
        return handlers

    def _restore_handlers(self, handlers) -> None:
        for signum, old in handlers.items():
            try:
                signal.signal(signum, old)
            except ValueError:  # pragma: no cover
                pass

    def _handle_signal(self, signum, _frame) -> None:
        self.request_stop(signum)

    # -- serial path ----------------------------------------------------------

    def _run_serial(self, queue: List[Tuple[float, str, RunKey]],
                    attempts: Dict[str, int],
                    report: SweepReport) -> None:
        """In-process execution: no pool, no kill-based timeouts.

        The crash/hang fault sites live in the pool worker wrapper, so
        a degraded sweep injects only cache corruption; per-run
        timeouts are not enforced (an in-process run cannot be killed
        without taking the sweep down with it).
        """
        while queue and self._stop_signal is None:
            queue.sort(key=lambda item: item[0])
            ready_at, ck, key = queue[0]
            now = self._clock()
            if ready_at > now:
                self._sleep(min(self._poll, ready_at - now))
                continue
            queue.pop(0)
            attempts[ck] += 1
            self._journal_run(key, ck, "running",
                              attempt=attempts[ck], mode="serial")
            started = self._clock()
            try:
                result = simulate_run_key(key)
            except Exception as exc:  # noqa: BLE001 - classified below
                self._handle_failure(key, ck, exc, attempts, queue,
                                     report)
                continue
            self._complete(key, ck, result,
                           self._clock() - started, attempts[ck],
                           report)

    # -- pool path ------------------------------------------------------------

    def _make_pool(self, workers: int, fault_spec: Optional[str]):
        """A worker pool, or :class:`PoolBroken` if one cannot start."""
        try:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                ctx = multiprocessing.get_context()
            return ctx.Pool(processes=workers,
                            initializer=_worker_init,
                            initargs=(fault_spec,))
        except PoolBroken:
            raise
        except Exception as exc:
            raise PoolBroken(f"cannot create worker pool: {exc}") \
                from exc

    def _run_pool(self, queue: List[Tuple[float, str, RunKey]],
                  attempts: Dict[str, int],
                  report: SweepReport) -> None:
        # Materialize every distinct trace in the parent before
        # forking (same copy-on-write strategy as the unsupervised
        # scheduler).
        for workload, size, dims in dict.fromkeys(
                trace_key_for(key) for _, _, key in queue):
            ensure_trace(workload, size, dims)
        workers = min(self._runner.jobs, len(queue))
        plan = faults.active_plan()
        fault_spec = plan.spec() if plan is not None else None
        hb_dir = tempfile.mkdtemp(prefix="repro-heartbeats-")
        pool = self._make_pool(workers, fault_spec)
        outstanding: Dict[str, _Task] = {}
        try:
            while (queue or outstanding) \
                    and self._stop_signal is None:
                now = self._clock()
                # Dispatch up to the worker count so a queued-but-
                # unstarted task is never mistaken for a hung one.
                queue.sort(key=lambda item: item[0])
                while queue and len(outstanding) < workers \
                        and queue[0][0] <= now:
                    _, ck, key = queue.pop(0)
                    attempts[ck] += 1
                    self._journal_run(key, ck, "running",
                                      attempt=attempts[ck],
                                      mode="pool")
                    self._clear_heartbeat(hb_dir, ck)
                    handle = pool.apply_async(
                        _supervised_entry,
                        (key, ck, attempts[ck], hb_dir,
                         self._hb_interval))
                    outstanding[ck] = _Task(key, ck, attempts[ck],
                                            handle, now)
                # Reap finished tasks first, then look for stragglers.
                for ck in [ck for ck, task in outstanding.items()
                           if task.result.ready()]:
                    task = outstanding.pop(ck)
                    try:
                        _, result, seconds, _pid = task.result.get()
                    except Exception as exc:  # noqa: BLE001
                        self._handle_failure(task.key, ck, exc,
                                             attempts, queue, report)
                        continue
                    self._complete(task.key, ck, result, seconds,
                                   task.attempt, report)
                culprit = self._find_straggler(outstanding, hb_dir,
                                               now)
                if culprit is not None:
                    pool = self._reap_straggler(
                        pool, culprit, outstanding, attempts, queue,
                        report, hb_dir, workers, fault_spec)
                    continue
                if queue or outstanding:
                    self._sleep(self._poll)
        finally:
            if self._stop_signal is not None:
                pool.terminate()
            else:
                pool.close()
            pool.join()
            shutil.rmtree(hb_dir, ignore_errors=True)

    def _find_straggler(self, outstanding: Dict[str, _Task],
                        hb_dir: str, now: float) -> Optional[str]:
        """The cache key of a timed-out or heartbeat-dead task, if any."""
        for ck, task in outstanding.items():
            if self._run_timeout is not None \
                    and now - task.dispatched > self._run_timeout:
                return ck
            last = task.dispatched
            try:
                last = max(last, os.path.getmtime(
                    os.path.join(hb_dir, ck + ".hb")))
            except OSError:
                pass
            if now - last > self._hb_timeout:
                return ck
        return None

    def _reap_straggler(self, pool, culprit: str,
                        outstanding: Dict[str, _Task],
                        attempts: Dict[str, int],
                        queue: List[Tuple[float, str, RunKey]],
                        report: SweepReport, hb_dir: str,
                        workers: int, fault_spec: Optional[str]):
        """Tear down the pool around a dead/hung run; requeue the rest.

        The culprit is charged a (transient) failed attempt; innocent
        casualties of the terminate are requeued without losing
        budget.  Returns the replacement pool (raises
        :class:`PoolBroken` if one cannot be made — the caller then
        degrades to serial execution with the queue intact).
        """
        task = outstanding.pop(culprit)
        now = self._clock()
        if self._run_timeout is not None \
                and now - task.dispatched > self._run_timeout:
            exc: Exception = RunTimeout(
                f"run exceeded {self._run_timeout:.1f}s wall-clock "
                f"budget")
        else:
            exc = WorkerHang(
                f"no heartbeat for {self._hb_timeout:.1f}s "
                f"(worker dead or wedged)")
        pool.terminate()
        pool.join()
        for other in list(outstanding.values()):
            # Dispatch charged an attempt; hand it back.
            attempts[other.ck] -= 1
            report.requeued += 1
            self._journal_run(other.key, other.ck, "requeued",
                              attempt=other.attempt,
                              reason="pool torn down")
            queue.append((now, other.ck, other.key))
        outstanding.clear()
        self._handle_failure(task.key, culprit, exc, attempts, queue,
                             report)
        self._clear_heartbeat(hb_dir, culprit)
        return self._make_pool(workers, fault_spec)

    @staticmethod
    def _clear_heartbeat(hb_dir: str, ck: str) -> None:
        try:
            os.remove(os.path.join(hb_dir, ck + ".hb"))
        except OSError:
            pass

    # -- shared completion/failure paths --------------------------------------

    def _complete(self, key: RunKey, ck: str, result, seconds: float,
                  attempt: int, report: SweepReport) -> None:
        self._runner.record_result(key, result, seconds=seconds)
        report.simulated += 1
        self._journal_run(key, ck, "done", attempt=attempt,
                          seconds=round(seconds, 3))

    def _handle_failure(self, key: RunKey, ck: str, exc: Exception,
                        attempts: Dict[str, int],
                        queue: List[Tuple[float, str, RunKey]],
                        report: SweepReport) -> None:
        kind = classify_error(exc)
        attempt = attempts[ck]
        retrying = (kind == "transient"
                    and attempt <= self._policy.max_retries)
        self._journal_run(key, ck, "failed", attempt=attempt,
                          error=f"{type(exc).__name__}: {exc}",
                          error_class=kind, final=not retrying)
        if retrying:
            delay = self._policy.delay(attempt)
            report.retries += 1
            self._log(f"retrying {key.design}/{key.workload} in "
                      f"{delay:.1f}s (attempt {attempt} failed: "
                      f"{exc})")
            queue.append((self._clock() + delay, ck, key))
        else:
            report.failed.append((key, f"{type(exc).__name__}: "
                                       f"{exc}"))
            self._log(f"giving up on {key.design}/{key.workload} "
                      f"after {attempt} attempt(s): {exc}")

    # -- plumbing -------------------------------------------------------------

    def _journal_run(self, key: RunKey, ck: str, state: str,
                     **fields) -> None:
        if self._journal is not None:
            self._journal.record_run(key, ck, state, **fields)

    def _journal_event(self, event: str, **fields) -> None:
        if self._journal is not None:
            self._journal.record_event(event, **fields)

    def _log(self, message: str) -> None:
        print(f"  [supervisor] {message}", file=sys.stderr)
