"""System builders for the paper's design points (Section IV-C).

Capacities are the paper's Table I values divided by the scale factor
S^2 = 64 (DESIGN.md): L1 32 KB -> 1 KB, L2 256 KB -> 4 KB, LLC
{1, 1.5, 2, 4} MB -> {16, 24, 32, 64} KB, cache-resident 2 MB L2 ->
32 KB.  Latencies are Table I's cycle counts unmodified (latency does
not scale with our capacity scaling).

Design points:

* ``1P1L``          — Design 0 baseline, stride prefetcher enabled.
* ``1P2L``          — Design 1, Different-Set mapping.
* ``1P2L_SameSet``  — Design 1, Same-Set mapping.
* ``2P2L``          — Design 2: 1P2L L1/L2 over a sparse-fill 2P2L LLC
  with STT timing.
* ``2P2L_Dense``    — Design 2 with dense block fill (ablation).
* ``2P2L_SlowWrite``— Design 2 with +20-cycle writes (Fig. 16).
* ``3P`` / ``2P2L_L1`` — Design 3 (2P2L at every level), the paper's
  future-work point, provided as an extension.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.config import (
    CacheLevelConfig,
    CpuConfig,
    MemoryConfig,
    PrefetcherConfig,
    SystemConfig,
)
from ..common.errors import ConfigError

#: Paper LLC label (MB) -> scaled capacity in bytes.
LLC_SIZES: Dict[float, int] = {
    1.0: 16 * 1024,
    1.5: 24 * 1024,
    2.0: 32 * 1024,
    4.0: 64 * 1024,
}

# The L1 is scaled by 8x (linearly) rather than the LLC's 64x: column
# strips (one line per matrix row) shrink only linearly with the matrix
# dimension, and the paper's strip:L1 ratio (512 lines : 32 KB = 1:1 at
# the large input) is what sets the baseline's L1 hit rate.  A 4 KB L1
# preserves that ratio exactly; the L2 splits the difference.  See
# DESIGN.md and EXPERIMENTS.md.
L1_BYTES = 4 * 1024
L2_BYTES = 8 * 1024
RESIDENT_LLC_BYTES = 32 * 1024  # the paper's 2 MB L2-as-LLC

DESIGN_NAMES = ("1P1L", "1P2L", "1P2L_SameSet", "1P2L_Dyn", "2P2L",
                "2P2L_Dense", "2P2L_SlowWrite", "2P2L_L1")


def _l1(logical_dims: int, mapping: str = "different_set",
        prefetch: bool = False) -> CacheLevelConfig:
    return CacheLevelConfig(
        name="L1",
        size_bytes=L1_BYTES,
        assoc=4,
        tag_latency=2,
        data_latency=2,
        sequential_tag_data=False,  # Table I: parallel tag/data
        logical_dims=logical_dims,
        physical_dims=1,
        mapping=mapping,
        prefetcher=PrefetcherConfig(enabled=prefetch),
    )


def _l2(logical_dims: int, mapping: str = "different_set") \
        -> CacheLevelConfig:
    return CacheLevelConfig(
        name="L2",
        size_bytes=L2_BYTES,
        assoc=8,
        tag_latency=6,
        data_latency=9,
        sequential_tag_data=True,
        logical_dims=logical_dims,
        physical_dims=1,
        mapping=mapping,
    )


def _llc_sram(size_bytes: int, logical_dims: int,
              mapping: str = "different_set",
              name: str = "L3",
              prefetch: bool = False) -> CacheLevelConfig:
    return CacheLevelConfig(
        name=name,
        size_bytes=size_bytes,
        assoc=8,
        tag_latency=8,
        data_latency=12,
        sequential_tag_data=True,
        logical_dims=logical_dims,
        physical_dims=1,
        mapping=mapping,
        prefetcher=PrefetcherConfig(enabled=prefetch),
    )


def _llc_stt(size_bytes: int, sparse: bool, write_extra: int,
             name: str = "L3") -> CacheLevelConfig:
    """2P2L LLC "modeled with STT parameters" (paper Section VII)."""
    return CacheLevelConfig(
        name=name,
        size_bytes=size_bytes,
        assoc=8,
        tag_latency=8,
        data_latency=14,
        sequential_tag_data=True,
        logical_dims=2,
        physical_dims=2,
        sparse_fill=sparse,
        write_extra_latency=write_extra,
    )


def llc_bytes(llc_mb: float) -> int:
    """Scaled LLC capacity for a paper LLC label (1/1.5/2/4 MB)."""
    try:
        return LLC_SIZES[float(llc_mb)]
    except KeyError:
        raise ConfigError(
            f"unknown LLC point {llc_mb!r}; known: "
            f"{sorted(LLC_SIZES)}") from None


def make_system(design: str, llc_mb: float = 1.0,
                memory: Optional[MemoryConfig] = None,
                cpu: Optional[CpuConfig] = None) -> SystemConfig:
    """A 3-level system (Table I) for one design point."""
    memory = memory or MemoryConfig()
    cpu = cpu or CpuConfig()
    size = llc_bytes(llc_mb)
    if design == "1P1L":
        # The baseline runs with prefetching enabled (paper Section
        # VII).  The stride prefetcher sits at the LLC, trained on the
        # miss stream — the placement where it is honestly beneficial
        # in this model (pollution in the scaled L1 would *hurt* the
        # baseline; see EXPERIMENTS.md fidelity notes).
        levels = [_l1(1), _l2(1), _llc_sram(size, 1, prefetch=True)]
    elif design == "1P2L":
        levels = [_l1(2), _l2(2), _llc_sram(size, 2, "different_set")]
    elif design == "1P2L_SameSet":
        levels = [_l1(2, mapping="same_set"), _l2(2, mapping="same_set"),
                  _llc_sram(size, 2, "same_set")]
    elif design == "1P2L_Dyn":
        # Section IV-C extension: the L1 predicts scalar orientation at
        # runtime instead of trusting static annotations.
        from dataclasses import replace as _replace
        levels = [_replace(_l1(2), dynamic_orientation=True), _l2(2),
                  _llc_sram(size, 2, "different_set")]
    elif design == "2P2L":
        levels = [_l1(2), _l2(2), _llc_stt(size, sparse=True,
                                           write_extra=0)]
    elif design == "2P2L_Dense":
        levels = [_l1(2), _l2(2), _llc_stt(size, sparse=False,
                                           write_extra=0)]
    elif design == "2P2L_SlowWrite":
        levels = [_l1(2), _l2(2), _llc_stt(size, sparse=True,
                                           write_extra=20)]
    elif design in ("2P2L_L1", "3P"):
        # Design 3 extension: crosspoint arrays at every level.  The L1
        # must hold whole 2-D blocks, so it gets 4 block frames.
        l1 = CacheLevelConfig(
            name="L1", size_bytes=2048, assoc=2, tag_latency=2,
            data_latency=3, sequential_tag_data=False,
            logical_dims=2, physical_dims=2, sparse_fill=True)
        l2 = CacheLevelConfig(
            name="L2", size_bytes=L2_BYTES, assoc=4, tag_latency=6,
            data_latency=10, sequential_tag_data=True,
            logical_dims=2, physical_dims=2, sparse_fill=True)
        levels = [l1, l2, _llc_stt(size, sparse=True, write_extra=0)]
    else:
        raise ConfigError(
            f"unknown design {design!r}; known: {DESIGN_NAMES}")
    return SystemConfig(levels=levels, memory=memory, cpu=cpu,
                        name=f"{design}@{llc_mb}MB")


def make_resident_system(design: str,
                         memory: Optional[MemoryConfig] = None,
                         cpu: Optional[CpuConfig] = None) -> SystemConfig:
    """The cache-resident setup of Fig. 13: L1 + 2 MB L2 as LLC."""
    memory = memory or MemoryConfig()
    cpu = cpu or CpuConfig()
    size = RESIDENT_LLC_BYTES
    if design == "1P1L":
        levels = [_l1(1), _llc_sram(size, 1, name="L2", prefetch=True)]
    elif design == "1P2L":
        levels = [_l1(2), _llc_sram(size, 2, "different_set", name="L2")]
    elif design == "1P2L_SameSet":
        levels = [_l1(2, mapping="same_set"),
                  _llc_sram(size, 2, "same_set", name="L2")]
    elif design in ("2P2L", "2P2L_Dense", "2P2L_SlowWrite"):
        sparse = design != "2P2L_Dense"
        extra = 20 if design == "2P2L_SlowWrite" else 0
        levels = [_l1(2), _llc_stt(size, sparse=sparse,
                                   write_extra=extra, name="L2")]
    else:
        raise ConfigError(
            f"unknown design {design!r} for resident system")
    return SystemConfig(levels=levels, memory=memory, cpu=cpu,
                        name=f"{design}@resident")
