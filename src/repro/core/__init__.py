"""Core simulation: CPU model, systems, driver, result helpers."""

from .charts import bar_chart, grouped_bar_chart, sparkline
from .cpu import TraceDrivenCpu
from .multicore import (
    CoreResult,
    MultiProgramResult,
    as_run_result,
    run_multiprogrammed,
)
from .energy import EnergyBreakdown, EnergyModel, EnergyParams, energy_of_run
from .report import (
    comparison_to_dict,
    run_to_dict,
    runs_to_json,
    system_to_dict,
)
from .results import (
    format_table,
    geomean,
    mean,
    normalized,
    reduction_percent,
)
from .simulator import OccupancySample, RunResult, run_simulation, run_trace
from .system import (
    DESIGN_NAMES,
    LLC_SIZES,
    llc_bytes,
    make_resident_system,
    make_system,
)

__all__ = [
    "DESIGN_NAMES",
    "CoreResult",
    "MultiProgramResult",
    "as_run_result",
    "bar_chart",
    "grouped_bar_chart",
    "sparkline",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
    "energy_of_run",
    "LLC_SIZES",
    "OccupancySample",
    "RunResult",
    "TraceDrivenCpu",
    "comparison_to_dict",
    "format_table",
    "geomean",
    "llc_bytes",
    "make_resident_system",
    "make_system",
    "mean",
    "normalized",
    "reduction_percent",
    "run_multiprogrammed",
    "run_simulation",
    "run_to_dict",
    "runs_to_json",
    "system_to_dict",
    "run_trace",
]
