"""Batched, array-vectorized replay over the fused flat-store kernel.

:mod:`repro.core.kernels` (PR 4) retires packed requests one at a time;
this module retires *windows* of them with numpy.  The idea:

* Replay the packed trace in fixed chunks (``CHUNK`` requests).  For
  each chunk, classify every request against the live L1 tag/meta
  arrays with one gather per probe kind: a request is *bulk-eligible*
  when the fused scalar loop would take its plain-hit fast path —
  the preferred line is resident, and (scalar writes) the
  perpendicular duplicate is absent, and (reads) no fill for the line
  is in flight.
* A **dependency window** is a maximal run of consecutive
  bulk-eligible requests.  Plain hits only touch LRU stamps and dirty
  bits of *resident* slots — they never change set membership, MSHR
  state, or the stall window — so every request in the window still
  sees exactly the state it was classified against, and the whole
  window can retire with vectorized scatters: last-writer-wins age
  stamps, OR-accumulated dirty bits, bucketed latency-histogram
  counts.
* Every other request replays **scalar**, sharing one carried
  :class:`repro.core.kernels._Span2L` state with the bulk windows:
  long scalar runs go through :func:`repro.core.kernels._replay_2l_span`
  — the fused kernel loop itself, so miss bursts replay at full kernel
  speed — and isolated rows through a closure that mirrors one
  ``_replay_2l`` iteration via the tail methods.  After scalar work
  that may have restructured the cache, the L1 sets it can have
  touched are poisoned for the rest of the chunk; later classified
  hits in a poisoned set re-probe scalar too.  Once every set is
  poisoned, the remainder of the chunk replays as one fused kernel
  span.  Chunk boundaries re-classify everything.

The result is bit-identical to ``run_kernel`` — counters, latency
histograms, and cycle counts — which `tests/test_vector.py` enforces
three ways (object path vs scalar kernel vs vector kernel).  Miss-
dominated traces degenerate to the fused kernel loop plus a small
classification overhead; hit-dense traces retire windows thousands of
requests long at numpy speed.

Coverage: everything :func:`repro.core.kernels.supports` covers except
dynamic orientation (the predictor trains on every scalar access in
order, so no window of them can retire out of band).  Logically 2-D
L1s take the window machinery above; 1P1L L1s take a simpler variant
(:func:`_replay_vector_1l`) whose classify is exact by construction —
one probe, no perpendicular state.  Either way the levels *below* the
L1 are reached only through the scalar tails, so a 2P2L last level
rides along unchanged.

Dispatch: :meth:`repro.core.cpu.TraceDrivenCpu.run` only routes traces
of at least :data:`MIN_VECTOR_TRACE` requests here — below ~2 chunks
the classification overhead outweighs the windows it finds, and the
scalar kernel is faster.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from typing import List

from ..common.types import WINDOW_ALIGN
from . import kernels

try:  # optional accelerator (same dependency policy as kernels._np)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the test env
    _np = None

#: Module-level switch: benches and tests flip this to pin the scalar
#: ``run_kernel`` path (see :func:`vector_disabled`).
VECTOR_ENABLED = True

#: Requests classified per batch.  Chunk boundaries only bound how far
#: one classification can see — they never change results — so this
#: trades gather width against re-classification frequency.  Shard
#: boundaries align to the same quantum (``WINDOW_ALIGN``).
CHUNK = WINDOW_ALIGN

#: Windows at or below this length retire through a plain-Python hit
#: loop: numpy's per-call overhead (argsort + scatters) only pays for
#: itself on longer runs.
SMALL_WINDOW = 6

#: Scalar runs at or above this length replay through the fused kernel
#: span (:func:`repro.core.kernels._replay_2l_span`), amortizing its
#: local-binding prologue; shorter ones take the per-row scalar step.
SPAN_MIN = 16

#: Demotion guard for miss-dominated traces: once this many requests
#: have replayed, a trace that has retired fewer than 1 in
#: ``DEMOTE_FRACTION`` of them through bulk windows hands the entire
#: remainder to the fused kernel span — classification is pure
#: overhead there.  Results are unchanged (the span *is* the kernel
#: loop); only the crossover cost of the first few chunks remains.
DEMOTE_AFTER = 4 * CHUNK
DEMOTE_FRACTION = 4


def _demotion_due(start: int, bulk_rows: int) -> bool:
    """True when the demotion guard fires at chunk offset ``start``.

    The guard's expression, factored out of both replay loops so the
    decision lives in exactly one place.
    """
    return start >= DEMOTE_AFTER and bulk_rows * DEMOTE_FRACTION < start

#: Traces shorter than this replay through the scalar kernel even when
#: :func:`supports` says yes: below ~2 chunks the vector path's
#: classification overhead lands in the 0.78-0.86x crossover zone.
#: ``TraceDrivenCpu.run`` consults this when dispatching.
MIN_VECTOR_TRACE = 2 * CHUNK


def supports(hierarchy) -> bool:
    """True when the vector replay covers this hierarchy exactly.

    Uncovered-but-kernel-supported hierarchies replay through
    ``run_kernel`` — same results, scalar speed.  Dynamic orientation
    is kernel-only: the predictor trains on every scalar access in
    program order, which no bulk window can honor.
    """
    if not VECTOR_ENABLED or _np is None:
        return False
    if not kernels.supports(hierarchy):
        return False
    return not hierarchy.l1.config.dynamic_orientation


class _VectorDisabled:
    """Context manager forcing the scalar ``run_kernel`` path.

    Same contract as :class:`repro.core.kernels._KernelDisabled`:
    restores the prior state on any exit, nests, rejects re-entry, and
    restores on garbage collection of an abandoned entered instance.
    """

    __slots__ = ("_prior",)

    def __init__(self) -> None:
        self._prior = None

    def __enter__(self) -> "_VectorDisabled":
        global VECTOR_ENABLED
        if self._prior is not None:
            raise RuntimeError("vector_disabled() context entered "
                               "twice; create a fresh one per block")
        self._prior = VECTOR_ENABLED
        VECTOR_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def __del__(self) -> None:
        self._restore()

    def _restore(self) -> None:
        global VECTOR_ENABLED
        if self._prior is not None:
            VECTOR_ENABLED = self._prior
            self._prior = None


def vector_disabled() -> _VectorDisabled:
    """Force the scalar ``run_kernel`` path within a ``with`` block."""
    return _VectorDisabled()


def window_spans(bulk_flags) -> List[tuple]:
    """``(start, stop, is_bulk)`` spans of a chunk's eligibility mask.

    The planner's window boundaries, exposed for tests: spans tile the
    chunk exactly, alternate in kind, and every bulk span is a maximal
    run (before set-poisoning, which can only split bulk spans
    further).
    """
    spans = []
    start = 0
    n = len(bulk_flags)
    for i in range(1, n + 1):
        if i == n or bool(bulk_flags[i]) != bool(bulk_flags[start]):
            spans.append((start, i, bool(bulk_flags[start])))
            start = i
    return spans


def classify_chunk(engine, packed_words, start=0, stop=None):
    """The bulk-eligibility mask one chunk would be planned with.

    Debug/test hook: runs the classification pass of
    :func:`_replay_vector` (or :func:`_replay_vector_1l` for a 1-D L1)
    against the engine's *current* L1 state (``now`` taken as the
    replay start) without executing anything.
    """
    l1 = engine.levels[0]
    if isinstance(l1, kernels._Kernel2L):
        packed, _ = kernels._predecode_2l(packed_words)
        if stop is None:
            stop = len(packed)
        p_np = _np.asarray(packed[start:stop], dtype=_np.int64)
        bulk, _, _, _ = _classify(engine, l1, p_np, now=0)
        return bulk
    packed, _ = kernels._predecode_1l(packed_words)
    if stop is None:
        stop = len(packed)
    p_np = _np.asarray(packed[start:stop], dtype=_np.int64)
    bulk, _, _ = _classify_1l(engine, l1, p_np, now=0)
    return bulk


def _classify(engine, l1, p_np, now):
    """Vectorized plain-hit classification for one chunk.

    Returns ``(bulk, slot, setn, osetn)`` — the eligibility mask, the
    classified hit slot per row (meaningful only where the row hit),
    and the L1 set numbers of the preferred and perpendicular lines
    (for set-poisoning).
    """
    np = _np
    tags_view = engine._tags_view
    meta_view = engine._meta_view
    assoc = l1.assoc
    num_sets = l1.num_sets
    line = p_np >> 7
    mode = (p_np >> 4) & 3
    other = (line & -16) | (p_np & 15)
    if l1.same_set:
        setn = (line >> 4) % num_sets
        osetn = (other >> 4) % num_sets
    else:
        setn = ((line >> 4) + (line & 7)) % num_sets
        osetn = ((other >> 4) + (other & 7)) % num_sets
    lane = np.arange(assoc, dtype=np.int64)
    g = setn * assoc
    g = g[:, None] + lane
    hitm = (tags_view[g] == line[:, None]) & ((meta_view[g] & 1) == 1)
    has_hit = hitm.any(axis=1)
    slot = setn * assoc + np.argmax(hitm, axis=1)
    # Bulk = the fused loop's plain-hit fast path:
    #  * modes 0/2 (reads): resident, and no in-flight fill for the
    #    line (a live ready_at entry means the early-hit-wait branch,
    #    which feeds the stall window — scalar);
    #  * mode 1 (scalar write): resident and perpendicular duplicate
    #    absent;
    #  * mode 3 (vector write): always scalar — its fast path reads
    #    tile_count, which bulk execution does not track.
    bulk = has_hit & (mode != 3)
    m1 = mode == 1
    if m1.any():
        og = osetn * assoc
        og = og[:, None] + lane
        ohit = ((tags_view[og] == other[:, None])
                & ((meta_view[og] & 1) == 1)).any(axis=1)
        bulk &= ~(m1 & ohit)
    ready_at = l1.ready_at
    if ready_at:
        live = [k for k, v in ready_at.items() if v > now]
        if live:
            live_np = np.fromiter(live, dtype=np.int64, count=len(live))
            bulk &= ~(((mode & 1) == 0) & np.isin(line, live_np))
    return bulk, slot, setn, osetn


class VectorEngine(kernels.KernelEngine):
    """A :class:`KernelEngine` whose replay retires hit windows in bulk.

    Construction swaps the L1 metadata list for an ``array('Q')`` so
    numpy can alias it in place (``tags`` already is one); the scalar
    tails keep reading boxed Python ints from it, so every slow path
    stays byte-for-byte the kernel's.
    """

    def __init__(self, hierarchy) -> None:
        super().__init__(hierarchy)
        l1 = self.levels[0]
        if isinstance(l1, kernels._Kernel2P2L):
            raise kernels.SimulationError(
                "VectorEngine requires a physically 1-D L1; "
                "use KernelEngine for 2P2L-L1 designs")
        if self.l1_predictor is not None:
            raise kernels.SimulationError(
                "VectorEngine does not cover dynamic orientation; "
                "use KernelEngine for predictor-enabled designs")
        l1.meta = array("Q", l1.meta)
        # Writable aliases: scalar-path writes through l1.tags/l1.meta
        # are immediately visible to the gathers and vice versa.
        self._tags_view = _np.frombuffer(l1.tags, dtype=_np.int64)
        self._meta_view = _np.frombuffer(l1.meta, dtype=_np.int64)

    def replay(self, trace, cpu_config, cpu_group) -> int:
        """Drive a packed trace through the vector loop; returns cycles."""
        if isinstance(self.levels[0], kernels._Kernel2L):
            return _replay_vector(self, trace, cpu_config, cpu_group)
        return _replay_vector_1l(self, trace, cpu_config, cpu_group)


def _replay_vector(engine: VectorEngine, trace, cpu_config,
                   cpu_group) -> int:
    """Chunked window replay over a logically 2-D (1P2L) L1.

    Structure per chunk: classify every request against the live L1
    arrays, then walk the chunk executing maximal bulk windows with
    numpy scatters and everything else scalar — long scalar runs (and
    the whole remainder once every set is poisoned) through the fused
    kernel span, isolated rows through the per-row step.
    """
    np = _np
    l1 = engine.levels[0]
    meta_view = engine._meta_view
    window_size = cpu_config.mlp_window
    issue_cost = cpu_config.cycles_per_op
    cfg = l1.cfg
    pipelined = cfg.hit_latency + 3 * cfg.tag_latency
    hit_latency = l1.hit_latency
    swrite_latency = 2 * l1.tag_latency + l1.data_write_latency
    vwrite_latency = 9 * l1.tag_latency + l1.data_write_latency
    hb_hit = hit_latency.bit_length()
    hb_sw = swrite_latency.bit_length()
    hb_vw = vwrite_latency.bit_length()
    slots_get = l1.slot_of.get
    meta_arr = l1.meta
    ready_at = l1.ready_at
    ready_get = ready_at.get
    tile_get = l1.tile_count.get
    age_cell = l1.age
    age_limit = kernels.AGE_LIMIT
    compact = l1._compact_ages
    c_early = l1.c_early_hit_waits
    scalar_read_tail = l1.scalar_read_tail
    scalar_write_tail = l1.scalar_write_tail
    vector_read_tail = l1.vector_read_tail
    vector_write_tail = l1.vector_write_tail
    lvl1 = l1.level_index
    same_set = l1.same_set
    num_sets = l1.num_sets
    span_replay = kernels._replay_2l_span

    st = kernels._Span2L()
    window = st.window
    hist = st.hist

    packed, demand = kernels._predecode_2l(trace.words)
    total = len(packed)
    p_all = np.asarray(packed, dtype=np.int64) if total \
        else np.zeros(0, dtype=np.int64)
    k8 = np.arange(8, dtype=np.int64)

    # Sets that scalar work may have restructured (install/evict/fill)
    # this chunk; classified hits in these sets re-probe scalar.
    # Cleared at every chunk boundary.
    dirty_sets = set()

    def poison(line: int, mode: int, p: int) -> None:
        """Poison every L1 set the completed scalar step can have
        restructured: the preferred line's set, the perpendicular
        duplicate's set (scalar modes), and — for vector accesses,
        whose tails may duplicate-evict the whole crossing tile — the
        sets of all eight perpendicular lines."""
        if same_set:
            dirty_sets.add((line >> 4) % num_sets)
            return
        tile_row = line >> 4
        if mode & 2:  # vector: perp lines k=0..7 live in 8 spread sets
            for k in range(8):
                dirty_sets.add((tile_row + k) % num_sets)
        else:
            dirty_sets.add((tile_row + (line & 7)) % num_sets)
            # perpendicular duplicate: other & 7 == p & 7
            dirty_sets.add((tile_row + (p & 7)) % num_sets)

    def step(idx: int) -> None:
        """One ``_replay_2l`` iteration for request ``idx``, verbatim.

        Unlike the fused loop this calls the miss tails instead of
        inlining them — the counters land in the same cells either
        way — and poisons the touched sets when a tail ran.  Scalar
        state lives on ``st`` so steps interleave exactly with fused
        spans and bulk windows.
        """
        p = packed[idx]
        line = p >> 7
        mode = (p >> 4) & 3
        now = st.now + issue_cost
        st.now = now
        if mode == 2:  # vector read
            slot = slots_get(line)
            if slot is not None:
                st.n_probes += 1
                st.n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                    | (stamp << 16)
                ready = ready_get(line)
                if ready is None:
                    hist[hb_hit] += 1
                    return
                if ready <= now:
                    del ready_at[line]
                    hist[hb_hit] += 1
                    return
                c_early.value += 1
                latency = ready + hit_latency - now
            else:
                completion, level = vector_read_tail(line, now)
                if level == lvl1:
                    st.n_hits += 1
                else:
                    st.n_misses += 1
                latency = completion - now
                poison(line, mode, p)
            hist[latency.bit_length()] += 1
            if latency > pipelined:
                heappush(window, now + latency)
                st.n_tracked += 1
                while len(window) > window_size:
                    earliest = heappop(window)
                    if earliest > now:
                        st.stalled += earliest - now
                        now = earliest
                st.now = now
        elif mode == 0:  # scalar read
            slot = slots_get(line)
            if slot is not None:
                st.n_probes += 1
                st.n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                    | (stamp << 16)
                ready = ready_get(line)
                if ready is None:
                    hist[hb_hit] += 1
                    return
                if ready <= now:
                    del ready_at[line]
                    hist[hb_hit] += 1
                    return
                c_early.value += 1
                latency = ready + hit_latency - now
            else:
                other = (line & -16) | (p & 15)
                completion, level = scalar_read_tail(line, other, now)
                if level == lvl1:
                    st.n_hits += 1
                else:
                    st.n_misses += 1
                latency = completion - now
                poison(line, mode, p)
            hist[latency.bit_length()] += 1
            if latency > pipelined:
                heappush(window, now + latency)
                st.n_tracked += 1
                while len(window) > window_size:
                    earliest = heappop(window)
                    if earliest > now:
                        st.stalled += earliest - now
                        now = earliest
                st.now = now
        elif mode == 1:  # scalar write (posted; never stalls the core)
            slot = slots_get(line)
            offset = p & 7
            other = (line & -16) | (p & 15)
            if slot is not None and slots_get(other) is None:
                st.n_probes += 2
                st.n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                    | (256 << offset) | (stamp << 16)
                hist[hb_sw] += 1
                return
            completion, level = scalar_write_tail(
                line, other, 1 << offset, 1 << (line & 7), now)
            if level == lvl1:
                st.n_hits += 1
            else:
                st.n_misses += 1
            hist[(completion - now).bit_length()] += 1
            poison(line, mode, p)
        else:  # vector write (posted)
            slot = slots_get(line)
            if slot is not None and tile_get((line >> 3) ^ 1) is None:
                st.n_probes += 9
                st.n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) | 0xFF00 \
                    | (stamp << 16)
                hist[hb_vw] += 1
                return
            completion, level = vector_write_tail(line, now)
            if level == lvl1:
                st.n_hits += 1
            else:
                st.n_misses += 1
            hist[(completion - now).bit_length()] += 1
            poison(line, mode, p)

    # Requests retired through bulk windows so far (the demotion
    # guard's numerator); a mutable cell so the per-chunk bulk_exec
    # closure can charge it.
    bulk_rows = [0]

    for start in range(0, total, CHUNK):
        if _demotion_due(start, bulk_rows[0]):
            # Miss-dominated: classification is not paying for itself.
            # The fused kernel span replays the rest bit-identically.
            span_replay(engine, packed, start, total, cpu_config, st)
            break
        stop = min(start + CHUNK, total)
        # Drop ready entries that are stale for every request of this
        # chunk (``now`` only advances).  Deleting one is inert: every
        # consumer treats ready <= now exactly like absence.  What
        # remains is small and marks the in-flight lines whose reads
        # must take a scalar path.
        if ready_at:
            stale = [k for k, v in ready_at.items() if v <= st.now]
            for k in stale:
                del ready_at[k]
        p_np = p_all[start:stop]
        bulk, slot_np, setn_np, osetn_np = _classify(engine, l1, p_np,
                                                     st.now)
        mode_np = (p_np >> 4) & 3
        dirty_sets.clear()
        dirty_cache: List = [None]
        n = stop - start
        # Maximal constant-eligibility spans; set-poisoning can only
        # split bulk spans further, never extend them.
        if n > 1:
            flips = np.flatnonzero(bulk[1:] != bulk[:-1]) + 1
            bounds = [0] + flips.tolist() + [n]
        else:
            bounds = [0, n]
        first_bulk = bool(bulk[0]) if n else False

        def dirty_arr():
            da = dirty_cache[0]
            if da is None or da.size != len(dirty_sets):
                da = np.fromiter(dirty_sets, dtype=np.int64,
                                 count=len(dirty_sets))
                dirty_cache[0] = da
            return da

        def poison_span(a: int, b: int) -> None:
            """Poison the union of sets the rows of [a, b) can touch.

            Used after a fused span call, which does not report which
            rows actually restructured; conservatively charges every
            row (plain hits included) — over-poisoning only sends more
            rows down the exact scalar path.
            """
            if same_set:
                dirty_sets.update(np.unique(setn_np[a:b]).tolist())
                return
            m = mode_np[a:b]
            vec = m >= 2
            if vec.any():
                trow = p_np[a:b][vec] >> 11  # line >> 4
                dirty_sets.update(np.unique(
                    (trow[:, None] + k8) % num_sets).tolist())
            if not vec.all():
                sc = ~vec
                dirty_sets.update(np.unique(setn_np[a:b][sc]).tolist())
                dirty_sets.update(
                    np.unique(osetn_np[a:b][sc]).tolist())

        def screen(a: int, b: int):
            """Poisoned-set mask for classified-hit rows [a, b)."""
            fl = np.isin(setn_np[a:b], dirty_arr())
            m1 = mode_np[a:b] == 1
            if m1.any():
                fl |= m1 & np.isin(osetn_np[a:b], dirty_arr())
            return fl

        def bulk_exec(i: int, t: int) -> None:
            """Retire guaranteed plain hits [i, t) in bulk.

            Never poisons: plain hits only touch stamps and dirty
            bits.  The age-limit guard drops to per-row steps so the
            stamp compaction lands exactly where the fused loop would
            put it.
            """
            w = t - i
            stamp0 = age_cell[0]
            if stamp0 + w > age_limit:
                for r in range(i, t):
                    step(start + r)
                return
            if w <= SMALL_WINDOW:
                probes = 0
                for r in range(i, t):
                    p = packed[start + r]
                    slot = slots_get(p >> 7)
                    if (p >> 4) & 1:
                        meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                            | (256 << (p & 7)) | (age_cell[0] << 16)
                        hist[hb_sw] += 1
                        probes += 2
                    else:
                        meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                            | (age_cell[0] << 16)
                        hist[hb_hit] += 1
                        probes += 1
                    age_cell[0] += 1
                st.now += issue_cost * w
                st.n_hits += w
                st.n_probes += probes
                bulk_rows[0] += w
                return
            sl = slot_np[i:t]
            age_cell[0] = stamp0 + w
            # Group the window by slot (stable, so each group keeps
            # request order); the last touch carries the highest
            # stamp, dirty bits OR together.
            order = np.argsort(sl, kind="stable")
            ssl = sl[order]
            seg = np.flatnonzero(ssl[1:] != ssl[:-1]) + 1
            starts = np.concatenate(([0], seg))
            usl = ssl[starts]
            ends = np.concatenate((seg, [w])) - 1
            # stamps are stamp0 + row offset, so the max stamp per
            # group is stamp0 + its last row.
            ms = stamp0 + order[ends]
            m1w = mode_np[i:t] == 1
            w1 = int(m1w.sum()) if m1w.any() else 0
            if w1:
                dirty_add = np.where(
                    m1w, np.int64(256) << (p_np[i:t] & 7),
                    np.int64(0))
                od = np.bitwise_or.reduceat(dirty_add[order], starts)
                meta_view[usl] = (meta_view[usl] & 0xFFFF) | od \
                    | (ms << 16)
            else:
                meta_view[usl] = (meta_view[usl] & 0xFFFF) \
                    | (ms << 16)
            st.now += issue_cost * w
            w02 = w - w1
            st.n_hits += w
            st.n_probes += w02 + 2 * w1
            hist[hb_hit] += w02
            hist[hb_sw] += w1
            bulk_rows[0] += w

        for si in range(len(bounds) - 1):
            a = bounds[si]
            b = bounds[si + 1]
            if len(dirty_sets) >= num_sets:
                # Every set is poisoned: nothing can retire in bulk
                # before the next chunk re-classifies.  Replay the
                # remainder as one fused kernel span.
                span_replay(engine, packed, start + a, stop,
                            cpu_config, st)
                break
            if first_bulk == bool(si & 1):  # classified-miss span
                if b - a >= SPAN_MIN:
                    span_replay(engine, packed, start + a, start + b,
                                cpu_config, st)
                    poison_span(a, b)
                else:
                    for r in range(a, b):
                        step(start + r)
                continue
            # Classified-hit span.
            if not dirty_sets:
                bulk_exec(a, b)
                continue
            flagged = screen(a, b)
            cnt = int(flagged.sum())
            if cnt == 0:
                bulk_exec(a, b)
                continue
            if 2 * cnt >= b - a:
                # Mostly poisoned: one fused span beats stumbling
                # through it row by row.
                span_replay(engine, packed, start + a, start + b,
                            cpu_config, st)
                poison_span(a, b)
                continue
            # Mixed: walk flagged rows scalar, unflagged runs in bulk.
            # A scalar step can grow the poisoned set, so the
            # remainder re-screens whenever it does (bounded: the set
            # can grow at most num_sets times per chunk).
            fl = flagged.tolist()
            dn = len(dirty_sets)
            i = a
            while i < b:
                if fl[i - a]:
                    step(start + i)
                    i += 1
                    if len(dirty_sets) != dn and i < b:
                        dn = len(dirty_sets)
                        fl[i - a:] = screen(i, b).tolist()
                    continue
                j = i + 1
                while j < b and not fl[j - a]:
                    j += 1
                bulk_exec(i, j)
                i = j

    now = st.now
    while window:
        earliest = heappop(window)
        if earliest > now:
            now = earliest
    horizon = engine.hierarchy.finish(now)
    if horizon > now:
        now = horizon
    kernels._flush_shared(cpu_group, l1, len(trace), now, st.stalled,
                          st.n_tracked, st.n_hits, st.n_misses,
                          st.n_probes, demand, st.hist)
    return now


def _classify_1l(engine, l1, p_np, now):
    """Vectorized plain-hit classification for a 1P1L chunk.

    Exact by construction: a 1-D L1 has no perpendicular state, so a
    request is bulk-eligible iff its line is resident and no fill for
    it is still in flight.  Unlike the 2-D classify, *writes* are also
    screened against live ``ready_at`` entries — the 1-D hit path
    consults them for every mode.  Returns ``(bulk, slot, setn)``.
    """
    np = _np
    tags_view = engine._tags_view
    meta_view = engine._meta_view
    assoc = l1.assoc
    num_sets = l1.num_sets
    line = p_np >> 5
    # Dense row-line set mapping, as _Kernel1L._set_base.
    setn = (((line >> 4) << 3) | (line & 7)) % num_sets
    lane = np.arange(assoc, dtype=np.int64)
    g = setn * assoc
    g = g[:, None] + lane
    hitm = (tags_view[g] == line[:, None]) & ((meta_view[g] & 1) == 1)
    has_hit = hitm.any(axis=1)
    slot = setn * assoc + np.argmax(hitm, axis=1)
    bulk = has_hit
    ready_at = l1.ready_at
    if ready_at:
        live = [k for k, v in ready_at.items() if v > now]
        if live:
            live_np = np.fromiter(live, dtype=np.int64, count=len(live))
            bulk = bulk & ~np.isin(line, live_np)
    return bulk, slot, setn


def _replay_vector_1l(engine: VectorEngine, trace, cpu_config,
                      cpu_group) -> int:
    """Chunked window replay over a conventional (1P1L) L1.

    The same plan/execute machinery as :func:`_replay_vector` with the
    simpler classify of :func:`_classify_1l`: one probe per request,
    no perpendicular duplicates, so a scalar miss poisons only the
    missed line's own set and every mode is window-eligible.  Scalar
    work routes through :func:`repro.core.kernels._replay_1l_span` /
    a per-row mirror of its loop body.
    """
    np = _np
    l1 = engine.levels[0]
    meta_view = engine._meta_view
    window_size = cpu_config.mlp_window
    issue_cost = cpu_config.cycles_per_op
    cfg = l1.cfg
    pipelined = cfg.hit_latency + 3 * cfg.tag_latency
    hit_latency = l1.hit_latency
    write_latency = l1.write_latency
    hb_read = hit_latency.bit_length()
    hb_write = write_latency.bit_length()
    slots_get = l1.slot_of.get
    meta_arr = l1.meta
    ready_at = l1.ready_at
    ready_get = ready_at.get
    age_cell = l1.age
    age_limit = kernels.AGE_LIMIT
    compact = l1._compact_ages
    c_early = l1.c_early_hit_waits
    get_line_miss = l1.get_line_miss
    lvl1 = l1.level_index
    num_sets = l1.num_sets
    scalar, vector = kernels._SCALAR, kernels._VECTOR
    span_replay = kernels._replay_1l_span

    st = kernels._Span2L()
    window = st.window
    hist = st.hist

    packed, demand = kernels._predecode_1l(trace.words)
    total = len(packed)
    p_all = np.asarray(packed, dtype=np.int64) if total \
        else np.zeros(0, dtype=np.int64)

    # Sets that scalar work may have restructured this chunk (a 1-D
    # miss installs and evicts only within the missed line's set).
    dirty_sets = set()

    def step(idx: int) -> None:
        """One ``_replay_1l_span`` iteration for request ``idx``."""
        p = packed[idx]
        line = p >> 5
        mode = (p >> 3) & 3
        is_write = mode & 1
        now = st.now + issue_cost
        st.now = now
        st.n_probes += 1
        slot = slots_get(line)
        if slot is not None:
            st.n_hits += 1
            if is_write:
                meta_arr[slot] |= 0xFF00 if mode == 3 \
                    else 256 << (p & 7)
                latency = write_latency
                bucket = hb_write
            else:
                latency = hit_latency
                bucket = hb_read
            stamp = age_cell[0]
            if stamp >= age_limit:
                compact()
                stamp = age_cell[0]
            age_cell[0] = stamp + 1
            meta_arr[slot] = (meta_arr[slot] & 0xFFFF) | (stamp << 16)
            ready = ready_get(line)
            if ready is None:
                hist[bucket] += 1
                return
            if ready <= now:
                del ready_at[line]
                hist[bucket] += 1
                return
            c_early.value += 1
            latency = ready + latency - now
        else:
            if is_write:
                dirty = 0xFF if mode == 3 else 1 << (p & 7)
            else:
                dirty = 0
            completion, level = get_line_miss(
                line, now, vector if mode & 2 else scalar, dirty)
            if level == lvl1:
                st.n_hits += 1
            else:
                st.n_misses += 1
            latency = completion - now
            dirty_sets.add(
                ((((line >> 4) << 3) | (line & 7)) % num_sets))
        hist[latency.bit_length()] += 1
        if latency > pipelined and not is_write:
            heappush(window, now + latency)
            st.n_tracked += 1
            while len(window) > window_size:
                earliest = heappop(window)
                if earliest > now:
                    st.stalled += earliest - now
                    now = earliest
            st.now = now

    bulk_rows = [0]

    for start in range(0, total, CHUNK):
        if _demotion_due(start, bulk_rows[0]):
            span_replay(engine, packed, start, total, cpu_config, st)
            break
        stop = min(start + CHUNK, total)
        if ready_at:
            stale = [k for k, v in ready_at.items() if v <= st.now]
            for k in stale:
                del ready_at[k]
        p_np = p_all[start:stop]
        bulk, slot_np, setn_np = _classify_1l(engine, l1, p_np, st.now)
        mode_np = (p_np >> 3) & 3
        dirty_sets.clear()
        dirty_cache: List = [None]
        n = stop - start
        if n > 1:
            flips = np.flatnonzero(bulk[1:] != bulk[:-1]) + 1
            bounds = [0] + flips.tolist() + [n]
        else:
            bounds = [0, n]
        first_bulk = bool(bulk[0]) if n else False

        def dirty_arr():
            da = dirty_cache[0]
            if da is None or da.size != len(dirty_sets):
                da = np.fromiter(dirty_sets, dtype=np.int64,
                                 count=len(dirty_sets))
                dirty_cache[0] = da
            return da

        def screen(a: int, b: int):
            """Poisoned-set mask for classified-hit rows [a, b)."""
            return np.isin(setn_np[a:b], dirty_arr())

        def poison_span(a: int, b: int) -> None:
            dirty_sets.update(np.unique(setn_np[a:b]).tolist())

        def bulk_exec(i: int, t: int) -> None:
            """Retire guaranteed plain hits [i, t) in bulk."""
            w = t - i
            stamp0 = age_cell[0]
            if stamp0 + w > age_limit:
                for r in range(i, t):
                    step(start + r)
                return
            if w <= SMALL_WINDOW:
                for r in range(i, t):
                    p = packed[start + r]
                    slot = slots_get(p >> 5)
                    if (p >> 3) & 1:
                        meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                            | (0xFF00 if (p >> 3) & 2
                               else 256 << (p & 7)) \
                            | (age_cell[0] << 16)
                        hist[hb_write] += 1
                    else:
                        meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                            | (age_cell[0] << 16)
                        hist[hb_read] += 1
                    age_cell[0] += 1
                st.now += issue_cost * w
                st.n_hits += w
                st.n_probes += w
                bulk_rows[0] += w
                return
            sl = slot_np[i:t]
            age_cell[0] = stamp0 + w
            order = np.argsort(sl, kind="stable")
            ssl = sl[order]
            seg = np.flatnonzero(ssl[1:] != ssl[:-1]) + 1
            starts = np.concatenate(([0], seg))
            usl = ssl[starts]
            ends = np.concatenate((seg, [w])) - 1
            ms = stamp0 + order[ends]
            mw = mode_np[i:t]
            wr = (mw & 1) == 1
            nw = int(wr.sum()) if wr.any() else 0
            if nw:
                dirty_add = np.where(
                    wr,
                    np.where(mw == 3, np.int64(0xFF00),
                             np.int64(256) << (p_np[i:t] & 7)),
                    np.int64(0))
                od = np.bitwise_or.reduceat(dirty_add[order], starts)
                meta_view[usl] = (meta_view[usl] & 0xFFFF) | od \
                    | (ms << 16)
            else:
                meta_view[usl] = (meta_view[usl] & 0xFFFF) \
                    | (ms << 16)
            st.now += issue_cost * w
            st.n_hits += w
            st.n_probes += w
            hist[hb_read] += w - nw
            hist[hb_write] += nw
            bulk_rows[0] += w

        for si in range(len(bounds) - 1):
            a = bounds[si]
            b = bounds[si + 1]
            if len(dirty_sets) >= num_sets:
                span_replay(engine, packed, start + a, stop,
                            cpu_config, st)
                break
            if first_bulk == bool(si & 1):  # classified-miss span
                if b - a >= SPAN_MIN:
                    span_replay(engine, packed, start + a, start + b,
                                cpu_config, st)
                    poison_span(a, b)
                else:
                    for r in range(a, b):
                        step(start + r)
                continue
            if not dirty_sets:
                bulk_exec(a, b)
                continue
            flagged = screen(a, b)
            cnt = int(flagged.sum())
            if cnt == 0:
                bulk_exec(a, b)
                continue
            if 2 * cnt >= b - a:
                span_replay(engine, packed, start + a, start + b,
                            cpu_config, st)
                poison_span(a, b)
                continue
            fl = flagged.tolist()
            dn = len(dirty_sets)
            i = a
            while i < b:
                if fl[i - a]:
                    step(start + i)
                    i += 1
                    if len(dirty_sets) != dn and i < b:
                        dn = len(dirty_sets)
                        fl[i - a:] = screen(i, b).tolist()
                    continue
                j = i + 1
                while j < b and not fl[j - a]:
                    j += 1
                bulk_exec(i, j)
                i = j

    now = st.now
    while window:
        earliest = heappop(window)
        if earliest > now:
            now = earliest
    horizon = engine.hierarchy.finish(now)
    if horizon > now:
        now = horizon
    kernels._flush_shared(cpu_group, l1, len(trace), now, st.stalled,
                          st.n_tracked, st.n_hits, st.n_misses,
                          st.n_probes, demand, st.hist)
    return now
