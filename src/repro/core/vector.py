"""Batched, array-vectorized replay over the fused flat-store kernel.

:mod:`repro.core.kernels` (PR 4) retires packed requests one at a time;
this module retires *windows* of them with numpy.  The idea:

* Replay the packed trace in fixed chunks (``CHUNK`` requests).  For
  each chunk, classify every request against the live L1 tag/meta
  arrays with one gather per probe kind: a request is *bulk-eligible*
  when the fused scalar loop would take its plain-hit fast path —
  the preferred line is resident, and (scalar writes) the
  perpendicular duplicate is absent, and (reads) no fill for the line
  is in flight.
* A **dependency window** is a maximal run of consecutive
  bulk-eligible requests.  Plain hits only touch LRU stamps and dirty
  bits of *resident* slots — they never change set membership, MSHR
  state, or the stall window — so every request in the window still
  sees exactly the state it was classified against, and the whole
  window can retire with vectorized scatters: last-writer-wins age
  stamps, OR-accumulated dirty bits, bucketed latency-histogram
  counts.
* Classified-**miss** spans first attempt the bulk miss executor
  (:func:`_bulk_miss`): read misses whose lines the level below the
  L1 serves closed-form (resident there, no perpendicular or
  in-flight hazards) retire as one window — per-set install ranks via
  argsort against the live victim order, MSHR merge/retire/capacity
  through a packed :class:`repro.core.kernels.MshrTable`, fill
  completions applied as one latency scatter into the tag/meta/LRU
  stores, lower-level LRU touches folded per slot, and (for a
  prefetching lower level) the stride automaton advanced in one
  planned step over the window's quiescent training prefix.  Only the
  per-row issue clock and the outstanding-read window stay a Python
  loop — the MSHR completions they consume are genuinely sequential.
* Every other request replays **scalar**, sharing one carried
  :class:`repro.core.kernels._Span2L` state with the bulk windows:
  long scalar runs go through :func:`repro.core.kernels._replay_2l_span`
  — the fused kernel loop itself — and isolated rows through a
  closure that mirrors one ``_replay_2l`` iteration via the tail
  methods.  After scalar work that may have restructured the cache,
  the L1 sets it can have touched are poisoned for the rest of the
  chunk; later classified hits in a poisoned set re-probe scalar too.
  Once every set is poisoned, the remainder of the chunk replays as
  one fused kernel span.  Chunk boundaries re-classify everything.

The result is bit-identical to ``run_kernel`` — counters, latency
histograms, and cycle counts — which `tests/test_vector.py` enforces
three ways (object path vs scalar kernel vs vector kernel).  Hit-dense
traces retire windows thousands of requests long at numpy speed;
miss-heavy traces whose misses are served by the next level down now
retire in bulk too, and only miss bursts that reach memory (or carry
write/hazard state) drop to the fused kernel loop.

Coverage: everything :func:`repro.core.kernels.supports` covers except
dynamic orientation (the predictor trains on every scalar access in
order, so no window of them can retire out of band).  Logically 2-D
L1s take the window machinery above; 1P1L L1s take a simpler variant
(:func:`_replay_vector_1l`) whose classify is exact by construction —
one probe, no perpendicular state.  Either way the levels *below* the
L1 are reached only through the scalar tails, so a 2P2L last level
rides along unchanged.

Dispatch: :meth:`repro.core.cpu.TraceDrivenCpu.run` only routes traces
of at least :data:`MIN_VECTOR_TRACE` requests here — below ~2 chunks
the classification overhead outweighs the windows it finds, and the
scalar kernel is faster.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from typing import List

from ..common.stats import lat_bucket, lat_hist_counts
from ..common.types import WINDOW_ALIGN
from . import kernels

try:  # optional accelerator (same dependency policy as kernels._np)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the test env
    _np = None

#: Module-level switch: benches and tests flip this to pin the scalar
#: ``run_kernel`` path (see :func:`vector_disabled`).
VECTOR_ENABLED = True

#: Requests classified per batch.  Chunk boundaries only bound how far
#: one classification can see — they never change results — so this
#: trades gather width against re-classification frequency.  Shard
#: boundaries align to the same quantum (``WINDOW_ALIGN``).
CHUNK = WINDOW_ALIGN

#: Windows at or below this length retire through a plain-Python hit
#: loop: numpy's per-call overhead (argsort + scatters) only pays for
#: itself on longer runs.
SMALL_WINDOW = 6

#: Scalar runs at or above this length replay through the fused kernel
#: span (:func:`repro.core.kernels._replay_2l_span`), amortizing its
#: local-binding prologue; shorter ones take the per-row scalar step.
SPAN_MIN = 16

#: Classified-miss spans at or above this length attempt the bulk miss
#: executor; shorter ones go straight to the fused kernel span (the
#: qualification gathers would not pay for themselves).
MISS_SPAN_MIN = 64

#: Bulk miss windows below this many qualifying rows fall back to the
#: fused kernel span: the argsort/scatter overhead is only amortized
#: by longer runs.
MISS_BULK_MIN = 32

#: Diagnostic cell (NOT a stat — registry contents stay bit-identical
#: to the scalar kernel): rows retired through the bulk miss executor
#: since import.  Tests read it to assert the miss path vectorized.
BULK_MISS_ROWS = [0]

#: Traces shorter than this replay through the scalar kernel even when
#: :func:`supports` says yes: below ~2 chunks the vector path's
#: classification overhead lands in the 0.78-0.86x crossover zone.
#: ``TraceDrivenCpu.run`` consults this when dispatching.
MIN_VECTOR_TRACE = 2 * CHUNK


def supports(hierarchy) -> bool:
    """True when the vector replay covers this hierarchy exactly.

    Uncovered-but-kernel-supported hierarchies replay through
    ``run_kernel`` — same results, scalar speed.  Dynamic orientation
    is kernel-only: the predictor trains on every scalar access in
    program order, which no bulk window can honor.
    """
    if not VECTOR_ENABLED or _np is None:
        return False
    if not kernels.supports(hierarchy):
        return False
    return not hierarchy.l1.config.dynamic_orientation


class _VectorDisabled:
    """Context manager forcing the scalar ``run_kernel`` path.

    Same contract as :class:`repro.core.kernels._KernelDisabled`:
    restores the prior state on any exit, nests, rejects re-entry, and
    restores on garbage collection of an abandoned entered instance.
    """

    __slots__ = ("_prior",)

    def __init__(self) -> None:
        self._prior = None

    def __enter__(self) -> "_VectorDisabled":
        global VECTOR_ENABLED
        if self._prior is not None:
            raise RuntimeError("vector_disabled() context entered "
                               "twice; create a fresh one per block")
        self._prior = VECTOR_ENABLED
        VECTOR_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def __del__(self) -> None:
        self._restore()

    def _restore(self) -> None:
        global VECTOR_ENABLED
        if self._prior is not None:
            VECTOR_ENABLED = self._prior
            self._prior = None


def vector_disabled() -> _VectorDisabled:
    """Force the scalar ``run_kernel`` path within a ``with`` block."""
    return _VectorDisabled()


def window_spans(bulk_flags) -> List[tuple]:
    """``(start, stop, is_bulk)`` spans of a chunk's eligibility mask.

    The planner's window boundaries, exposed for tests: spans tile the
    chunk exactly, alternate in kind, and every bulk span is a maximal
    run (before set-poisoning, which can only split bulk spans
    further).
    """
    spans = []
    start = 0
    n = len(bulk_flags)
    for i in range(1, n + 1):
        if i == n or bool(bulk_flags[i]) != bool(bulk_flags[start]):
            spans.append((start, i, bool(bulk_flags[start])))
            start = i
    return spans


def classify_chunk(engine, packed_words, start=0, stop=None):
    """The bulk-eligibility mask one chunk would be planned with.

    Debug/test hook: runs the classification pass of
    :func:`_replay_vector` (or :func:`_replay_vector_1l` for a 1-D L1)
    against the engine's *current* L1 state (``now`` taken as the
    replay start) without executing anything.
    """
    l1 = engine.levels[0]
    if isinstance(l1, kernels._Kernel2L):
        packed, _ = kernels._predecode_2l(packed_words)
        if stop is None:
            stop = len(packed)
        p_np = _np.asarray(packed[start:stop], dtype=_np.int64)
        bulk, _, _, _ = _classify(engine, l1, p_np, now=0)
        return bulk
    packed, _ = kernels._predecode_1l(packed_words)
    if stop is None:
        stop = len(packed)
    p_np = _np.asarray(packed[start:stop], dtype=_np.int64)
    bulk, _, _ = _classify_1l(engine, l1, p_np, now=0)
    return bulk


def _classify(engine, l1, p_np, now):
    """Vectorized plain-hit classification for one chunk.

    Returns ``(bulk, slot, setn, osetn)`` — the eligibility mask, the
    classified hit slot per row (meaningful only where the row hit),
    and the L1 set numbers of the preferred and perpendicular lines
    (for set-poisoning).
    """
    np = _np
    tags_view = engine._tags_view
    meta_view = engine._meta_view
    assoc = l1.assoc
    num_sets = l1.num_sets
    line = p_np >> 7
    mode = (p_np >> 4) & 3
    other = (line & -16) | (p_np & 15)
    if l1.same_set:
        setn = (line >> 4) % num_sets
        osetn = (other >> 4) % num_sets
    else:
        setn = ((line >> 4) + (line & 7)) % num_sets
        osetn = ((other >> 4) + (other & 7)) % num_sets
    lane = np.arange(assoc, dtype=np.int64)
    g = setn * assoc
    g = g[:, None] + lane
    hitm = (tags_view[g] == line[:, None]) & ((meta_view[g] & 1) == 1)
    has_hit = hitm.any(axis=1)
    slot = setn * assoc + np.argmax(hitm, axis=1)
    # Bulk = the fused loop's plain-hit fast path:
    #  * modes 0/2 (reads): resident, and no in-flight fill for the
    #    line (a live ready_at entry means the early-hit-wait branch,
    #    which feeds the stall window — scalar);
    #  * mode 1 (scalar write): resident and perpendicular duplicate
    #    absent;
    #  * mode 3 (vector write): always scalar — its fast path reads
    #    tile_count, which bulk execution does not track.
    bulk = has_hit & (mode != 3)
    m1 = mode == 1
    if m1.any():
        og = osetn * assoc
        og = og[:, None] + lane
        ohit = ((tags_view[og] == other[:, None])
                & ((meta_view[og] & 1) == 1)).any(axis=1)
        bulk &= ~(m1 & ohit)
    ready_at = l1.ready_at
    if ready_at:
        live = [k for k, v in ready_at.items() if v > now]
        if live:
            live_np = np.fromiter(live, dtype=np.int64, count=len(live))
            bulk &= ~(((mode & 1) == 0) & np.isin(line, live_np))
    return bulk, slot, setn, osetn


class _ServeModel:
    """Closed-form lower-level hit serving for bulk miss windows.

    Captures the level below the L1 when a window of L1 read misses
    whose lines are resident there completes with closed-form
    latencies: the inline-serve path (``lower_store``-wired
    ``_Kernel2L`` / non-prefetching ``_Kernel1L`` lowers), the
    ``fetch_line`` hit of a prefetching ``_Kernel1L`` whose stride
    automaton stays quiescent across the window (planned per window),
    or the presence-bit ``fetch_line`` hit of a ``_Kernel2P2L`` last
    level.  All three are the same transaction — request/probe
    counters, one LRU touch, ``completion = issue + hit_latency`` —
    so one model covers them.
    """

    __slots__ = ("store", "kind", "tags_view", "meta_view",
                 "present_view", "hit_latency", "level_index",
                 "prefetching")


def _make_serve_model(lower):
    """Build the :class:`_ServeModel` for ``lower``, or None.

    Converts the lower level's meta (and 2P2L presence) list to an
    ``array('Q')`` aliased by numpy, exactly as :class:`VectorEngine`
    does for the L1 — the scalar paths index the array the same way
    they indexed the list.
    """
    if isinstance(lower, kernels._Kernel2L):
        kind, prefetching = "2l", False
    elif isinstance(lower, kernels._Kernel1L):
        kind, prefetching = "1l", lower.prefetch_enabled
    elif isinstance(lower, kernels._Kernel2P2L):
        kind, prefetching = "2p2l", False
    else:
        return None
    if not isinstance(lower.meta, array):
        lower.meta = array("Q", lower.meta)
    sm = _ServeModel()
    sm.store = lower
    sm.kind = kind
    sm.prefetching = prefetching
    sm.tags_view = _np.frombuffer(lower.tags, dtype=_np.int64)
    sm.meta_view = _np.frombuffer(lower.meta, dtype=_np.int64)
    if kind == "2p2l":
        if not isinstance(lower.present, array):
            lower.present = array("Q", lower.present)
        sm.present_view = _np.frombuffer(lower.present, dtype=_np.int64)
    else:
        sm.present_view = None
    sm.hit_latency = lower.hit_latency
    sm.level_index = lower.level_index
    return sm


def _serve_resident(sm, line):
    """``(served, slot)`` per row of ``line`` (an int64 array).

    ``served[i]`` is True when the lower level serves ``line[i]`` with
    its closed-form hit path right now; ``slot[i]`` is the slot whose
    LRU stamp that serve touches (garbage where not served).
    """
    np = _np
    store = sm.store
    assoc = store.assoc
    num_sets = store.num_sets
    lane = np.arange(assoc, dtype=np.int64)
    if sm.kind == "2p2l":
        tile = line >> 4
        g = ((tile % num_sets) * assoc)[:, None] + lane
        hitm = (sm.tags_view[g] == tile[:, None]) \
            & ((sm.meta_view[g] & 1) == 1)
        has = hitm.any(axis=1)
        slot = (tile % num_sets) * assoc + np.argmax(hitm, axis=1)
        ok = has & ((sm.present_view[slot]
                     & (np.int64(1) << (line & 15))) != 0)
        return ok, slot
    if sm.kind == "2l":
        number = (line >> 4) if store.same_set \
            else (line >> 4) + (line & 7)
    else:
        number = ((line >> 4) << 3) | (line & 7)
    g = ((number % num_sets) * assoc)[:, None] + lane
    hitm = (sm.tags_view[g] == line[:, None]) \
        & ((sm.meta_view[g] & 1) == 1)
    has = hitm.any(axis=1)
    slot = (number % num_sets) * assoc + np.argmax(hitm, axis=1)
    return has, slot


def _apply_serves(sm, s_slots):
    """Fold ``len(s_slots)`` lower-level hit serves (program order).

    Exactly the per-serve hit transaction run in sequence: one fetch
    request and tag probe each, and an LRU stamp per serve — the last
    serve of a slot carries its highest stamp, so a stable argsort by
    slot scatters each slot's final stamp in one pass.  The caller
    guarantees the stamps stay below ``AGE_LIMIT`` (no compaction).
    """
    np = _np
    store = sm.store
    ns = len(s_slots)
    store.c_fetch_requests.value += ns
    store.c_tag_probes.value += ns
    stamp0 = store.age[0]
    store.age[0] = stamp0 + ns
    order = np.argsort(s_slots, kind="stable")
    ssl = s_slots[order]
    seg = np.flatnonzero(ssl[1:] != ssl[:-1]) + 1
    starts = np.concatenate(([0], seg))
    usl = ssl[starts]
    ends = np.concatenate((seg, [ns])) - 1
    ms = stamp0 + order[ends]
    mv = sm.meta_view
    mv[usl] = (mv[usl] & 0xFFFF) | (ms << 16)


def _bulk_miss(engine, l1, sm, st, p_np, setn_np, osetn_np, a, b,
               two_l, window_size, issue_cost, pipelined):
    """Retire a prefix of the classified-miss span ``[a, b)`` in bulk.

    Qualifies the longest prefix of rows whose whole miss transaction
    is closed-form — read, (re-checked) non-resident in the L1, served
    by the lower level's hit path, no perpendicular/in-flight/dirty-
    victim hazards — then executes it: a per-row Python loop walks
    only the genuinely sequential clock/MSHR/stall-window state
    through a packed :class:`repro.core.kernels.MshrTable`, and every
    array-shaped effect (install ranks and victims, tag/meta/stamp
    scatters, lower-level touches, histogram counts, counter sums)
    lands vectorized afterwards.  Returns the number of rows consumed;
    0 means the caller replays the span through the scalar kernel.
    Bit-identical to the scalar transactions by construction — every
    hazard that would make a row's outcome depend on non-modeled state
    truncates the window instead.
    """
    np = _np
    store_l2 = sm.store
    pslice = p_np[a:b]
    n = b - a
    if two_l:
        line = pslice >> 7
        mode = (pslice >> 4) & 3
    else:
        line = pslice >> 5
        mode = (pslice >> 3) & 3
    q = (mode & 1) == 0  # reads only: writes carry dirty/duplicate state
    if not q.any():
        return 0
    setn = setn_np[a:b]
    tags_view = engine._tags_view
    meta_view = engine._meta_view
    assoc = l1.assoc
    lane = np.arange(assoc, dtype=np.int64)
    # Re-probe residency against the *live* arrays — the chunk
    # classification is stale once scalar work ran before this span.
    g = (setn * assoc)[:, None] + lane
    q &= ~((tags_view[g] == line[:, None])
           & ((meta_view[g] & 1) == 1)).any(axis=1)
    if two_l:
        # Scalar reads with the perpendicular duplicate resident take
        # the misoriented-hit branch — scalar path.
        m0 = mode == 0
        if m0.any():
            other = (line & -16) | (pslice & 15)
            og = (osetn_np[a:b] * assoc)[:, None] + lane
            ohit = ((tags_view[og] == other[:, None])
                    & ((meta_view[og] & 1) == 1)).any(axis=1)
            q &= ~(m0 & ohit)
        # fill_line's duplicate-clean gate and the MSHR ordering
        # barrier both key on the perpendicular (tile, orientation):
        # exclude rows whose perpendicular key is resident or in
        # flight before the window, or installed by an *earlier*
        # window row (installs are clean, so the gate alone would be
        # a no-op, but the barrier would raise issue times).
        tk = line >> 3
        pk = tk ^ 1
        if l1.tile_count:
            tck = np.fromiter(l1.tile_count.keys(), dtype=np.int64,
                              count=len(l1.tile_count))
            q &= ~np.isin(pk, tck)
        if l1.pending_tiles:
            ptk = np.fromiter(l1.pending_tiles.keys(), dtype=np.int64,
                              count=len(l1.pending_tiles))
            q &= ~np.isin(pk, ptk)
        utk, first_idx = np.unique(tk, return_index=True)
        pos = np.minimum(np.searchsorted(utk, pk), utk.size - 1)
        q &= ~((utk[pos] == pk)
               & (first_idx[pos] < np.arange(n, dtype=np.int64)))
    served, l2slot = _serve_resident(sm, line)
    q &= served
    l2_ready = store_l2.ready_at
    if l2_ready:
        rk = np.fromiter(l2_ready.keys(), dtype=np.int64,
                         count=len(l2_ready))
        q &= ~np.isin(line, rk)
    if sm.prefetching and l1.pending_at:
        # Serve order must be static for the prefetch plan: no row may
        # coalesce with a pre-existing in-flight fill.
        pnd = np.fromiter(l1.pending_at.keys(), dtype=np.int64,
                          count=len(l1.pending_at))
        q &= ~np.isin(line, pnd)
    k0 = n if q.all() else int(np.argmax(~q))
    if k0 < MISS_BULK_MIN:
        return 0
    limit = k0
    line0 = line[:k0]
    setn0 = setn[:k0]
    # Install ranks: position of each row among the window's installs
    # into its own set (stable by set, so program order within a set).
    ordr = np.argsort(setn0, kind="stable")
    ss = setn0[ordr]
    seg = np.flatnonzero(ss[1:] != ss[:-1]) + 1
    gstart = np.concatenate(([0], seg))
    counts = np.diff(np.concatenate((gstart, [k0])))
    rank_sorted = np.arange(k0, dtype=np.int64) \
        - np.repeat(gstart, counts)
    ranks = np.empty(k0, dtype=np.int64)
    ranks[ordr] = rank_sorted
    # Victim order per touched set: stable argsort of the live meta
    # words reproduces the repeated strict-< argmin scan (invalid
    # slots are meta == 0 and win first; valid stamps are unique), and
    # install r of a set takes order[r % assoc] — after ``assoc``
    # installs the set is entirely window lines in install order.
    su = ss[gstart]
    mat = meta_view[(su * assoc)[:, None] + lane]
    order = np.argsort(mat, axis=1, kind="stable")
    sidx = np.searchsorted(su, setn0)
    tslot = setn0 * assoc + order[sidx, ranks % assoc]
    pre = ranks < assoc
    vmeta = meta_view[tslot]
    vvalid = pre & ((vmeta & 1) == 1)
    # A dirty victim writes back through the lower level — scalar.
    vdirty = vvalid & (((vmeta >> 8) & 0xFF) != 0)
    if vdirty.any():
        limit = min(limit, int(np.argmax(vdirty)))
    # Repeated lines: a later occurrence only misses again if at least
    # ``assoc`` same-set installs separate it from the previous one
    # (its install must already be evicted when the repeat probes).
    lo = np.argsort(line0, kind="stable")
    sl_lines = line0[lo]
    same = sl_lines[1:] == sl_lines[:-1]
    if same.any():
        reps = lo[1:][same]
        if sm.prefetching:
            # A coalescing repeat would skip a serve and desync the
            # prefetch plan: require all-distinct lines instead.
            limit = min(limit, int(reps.min()))
        else:
            bad = same & ((ranks[lo][1:] - ranks[lo][:-1]) <= assoc)
            if bad.any():
                limit = min(limit, int(lo[1:][bad].min()))
    if limit < MISS_BULK_MIN:
        return 0
    age0 = l1.age[0]
    l2_age0 = store_l2.age[0]
    age_limit = kernels.AGE_LIMIT
    if age0 + limit > age_limit or l2_age0 + limit > age_limit:
        # Stamp compaction would fire mid-window — scalar lands it
        # exactly where the fused loop would.
        return 0
    pf_state = None
    addrs = None
    if sm.prefetching:
        addrs = (((line0[:limit] >> 4) << 9)
                 | ((line0[:limit] & 7) << 6)).tolist()
        quiet, pf_state = store_l2.prefetcher.plan_quiescent(0, addrs)
        if quiet < limit:
            limit = quiet
            if limit < MISS_BULK_MIN:
                return 0
            # A prefix of a quiescent prefix is quiescent: re-plan for
            # the exact state after ``limit`` observes.
            _, pf_state = store_l2.prefetcher.plan_quiescent(
                0, addrs[:limit])
    if two_l:
        tagl = l1.tag_latency
        probes_np = np.where(mode[:limit] == 0, 2 * tagl, 9 * tagl)
        p0 = int(probes_np[0])
        pconst = bool((probes_np == p0).all())
    else:
        probes_np = None
        p0 = l1.tag_latency
        pconst = True
    table = kernels.MshrTable.seed(l1)
    if not table.monotone:
        # Out-of-order seed completions (mixed-depth fills): the FIFO
        # retire would pop out of order — scalar replays the span.
        return 0
    comp_shift = kernels._MSHR_COMP_SHIFT
    slot_shift = kernels._MSHR_SLOT_SHIFT
    ready_at = l1.ready_at
    hitl = sm.hit_latency
    dlat = l1.data_latency
    lvl = sm.level_index
    cap = l1.mshr_capacity
    window = st.window
    fast = False
    lat_c = p0 + hitl + dlat
    # -- uniform fast path.  When every row costs the same probe, all
    # lines are distinct and none coalesce with a seeded fill, the
    # outstanding-read seeds are all due before the window's first
    # completion, and (verified below against the solved clock) the
    # MSHR never hits capacity, the whole window collapses to one
    # max-plus recurrence on the issue clock:
    #
    #   t[j+1] = max(t[j], merged[j - (W - S)]) + issue_cost
    #
    # where ``merged`` is the sorted seed dones followed by the
    # window's own completions (latencies are the constant ``lat_c``,
    # so dones are just ``t + lat_c``).  Everything else — retire
    # head, MSHR earliest, per-row fill times — is closed-form
    # arithmetic on ``t``, and the per-row Python work drops to the
    # three-op recurrence itself. --
    if pconst and lat_c > pipelined and len(window) <= window_size \
            and (table.last_completion is None
                 or table.last_completion
                 <= st.now + issue_cost + p0 + hitl):
        d0 = st.now + issue_cost + lat_c
        sorted_seed = sorted(window)
        if not sorted_seed or sorted_seed[-1] <= d0:
            ul = np.unique(line0[:limit])
            clean = ul.size == limit
            if clean and table.index:
                sk = np.fromiter(table.index.keys(), dtype=np.int64,
                                 count=len(table.index))
                clean = not np.isin(ul, sk).any()
            if clean:
                head0 = table.head
                nlen0 = len(table.lines)
                s_len = len(sorted_seed)
                ic = issue_cost
                t = st.now
                merged = sorted_seed
                m_append = merged.append
                off = window_size - s_len
                stall_add = 0
                j0 = off if off < limit else limit
                for j in range(j0):
                    t += ic
                    m_append(t + lat_c)
                # Pops lag appends by the window size, so iterating
                # ``merged`` while appending to it is safe.
                m_iter = iter(merged)
                for j in range(j0, limit):
                    t += ic
                    m_append(t + lat_c)
                    v = next(m_iter)
                    if v > t:
                        stall_add += v - t
                        t = v
                t_arr = np.asarray(merged[s_len:],
                                   dtype=np.int64) - lat_c
                fill = t_arr + p0
                comp_arr = fill + hitl
                s0 = nlen0 - head0
                if s0:
                    words0 = table.words
                    seedc = np.fromiter(
                        (words0[x] >> comp_shift
                         for x in range(head0, nlen0)),
                        dtype=np.int64, count=s0)
                    allc = np.concatenate((seedc, comp_arr))
                else:
                    allc = comp_arr
                retired = np.searchsorted(allc, fill, side="right")
                live = s0 + np.arange(limit, dtype=np.int64) - retired
                if int(live.max()) < cap:
                    fast = True
                    k = limit
                    lines_l = line0[:limit].tolist()
                    ready_at.update(
                        zip(lines_l, merged[len(merged) - limit:]))
                    pops = limit - off
                    # A sorted list is a valid heap; contents equal
                    # the sequential pops' leftovers exactly.
                    window[:] = merged[pops:] if pops > 0 else merged
                    st.now = t
                    st.stalled += stall_add
                    table.lines.extend(lines_l)
                    table.words.extend(
                        ((comp_arr << comp_shift)
                         | (tslot[:limit] << slot_shift)
                         | lvl).tolist())
                    table.head = head0 + int(retired[-1])
                    # Final earliest: every row's gate passes (the
                    # prior insert left earliest <= its fill time),
                    # each recompute lands above the row's fill, and
                    # the closing insert-min pulls it back to it.
                    table.earliest = int(fill[-1])
                    table.flush(l1)
                    n_coal = n_stall = 0
                    n_tracked = k
    if not fast:
        probes = probes_np.tolist() if two_l else [p0] * limit
        # -- the sequential core: clock, FIFO MSHR, stall window.  The
        # MshrTable's flat arrays are walked inline as locals:
        # retirement and the capacity scan are head-pointer advances,
        # inserts are appends.  Completions stay nondecreasing by
        # construction for uniform probe costs; a row that would break
        # the order (a probe-cost drop or a backdated coalesce)
        # rewinds to the row boundary and commits the prefix — the
        # append-only arrays make the rewind a three-word restore. --
        words_t = table.words
        lines_t = table.lines
        index_t = table.index
        head = table.head
        mshr_earliest = table.earliest
        lastc = table.last_completion
        nlen = len(lines_t)
        new_dones: list = []
        wptr = 0
        last_done = None
        now = st.now
        stalled = st.stalled
        lines_l = line0[:limit].tolist()
        tslot_l = tslot[:limit].tolist()
        serves = []
        serve_append = serves.append
        lats = []
        lat_append = lats.append
        n_coal = n_stall = n_tracked = 0
        index_get = index_t.get
        k = limit
        j = 0
        while j < limit:
            ln = lines_l[j]
            r_now = now
            r_head = head
            r_earliest = mshr_earliest
            now += issue_cost
            fnow = now + probes[j]
            # retire(fnow): pops are a head advance (completions sorted).
            if head < nlen and (mshr_earliest is None
                                or fnow >= mshr_earliest):
                while head < nlen and (words_t[head] >> comp_shift) <= fnow:
                    del index_t[lines_t[head]]
                    head += 1
                mshr_earliest = (words_t[head] >> comp_shift) \
                    if head < nlen else None
            pos = index_get(ln)
            if pos is not None:
                comp = words_t[pos] >> comp_shift
                coalesced = True
            else:
                issue = fnow
                if nlen - head >= cap:
                    # Structural stall: the oldest live completion is the
                    # capacity scan's min; retiring to it frees >= 1 slot.
                    stall_until = words_t[head] >> comp_shift
                    if stall_until > issue:
                        issue = stall_until
                    n_stall += 1
                    while head < nlen \
                            and (words_t[head] >> comp_shift) <= stall_until:
                        del index_t[lines_t[head]]
                        head += 1
                    mshr_earliest = (words_t[head] >> comp_shift) \
                        if head < nlen else None
                comp = issue + hitl
                if lastc is not None and comp < lastc:
                    now, head, mshr_earliest = r_now, r_head, r_earliest
                    k = j
                    break
                coalesced = False
            done = comp + dlat
            lat = done - now
            if lat > pipelined and last_done is not None \
                    and done < last_done:
                # A backdated tracked completion would break the sorted
                # stall-window tail — commit the prefix.
                now, head, mshr_earliest = r_now, r_head, r_earliest
                k = j
                break
            if coalesced:
                n_coal += 1
            else:
                index_t[ln] = nlen
                lines_t.append(ln)
                words_t.append((comp << comp_shift)
                               | (tslot_l[j] << slot_shift) | lvl)
                nlen += 1
                lastc = comp
                if mshr_earliest is None or issue < mshr_earliest:
                    mshr_earliest = issue
                serve_append(j)
            ready_at[ln] = done
            lat_append(lat)
            if lat > pipelined:
                last_done = done
                new_dones.append(done)
                n_tracked += 1
                if len(window) + len(new_dones) - wptr > window_size:
                    # Pop-min across the seeded heap and the sorted new
                    # tail (exactly one pop: size never exceeds limit + 1).
                    if window and (wptr >= len(new_dones)
                                   or window[0] <= new_dones[wptr]):
                        earliest = heappop(window)
                    else:
                        earliest = new_dones[wptr]
                        wptr += 1
                    if earliest > now:
                        stalled += earliest - now
                        now = earliest
            j += 1
        if k == 0:
            return 0
        st.now = now
        st.stalled = stalled
        for done in new_dones[wptr:]:
            heappush(window, done)
        table.head = head
        table.earliest = mshr_earliest
        table.flush(l1)
    if sm.prefetching and k < limit:
        # The window shrank after planning: re-plan the committed
        # prefix (a prefix of a quiescent prefix is quiescent).
        _, pf_state = store_l2.prefetcher.plan_quiescent(0, addrs[:k])
    # -- plan the array-side effects against the pre-window state --
    ranks_k = ranks[:k]
    tslot_k = tslot[:k]
    line_k = line0[:k]
    vv = vvalid[:k]
    n_pre_evict = int(vv.sum())
    victim_lines = tags_view[tslot_k[vv]].tolist() if n_pre_evict \
        else []
    n_evict = n_pre_evict + int((ranks_k >= assoc).sum())
    m_of = np.bincount(sidx[:k], minlength=su.size)
    surv = ranks_k >= (m_of[sidx[:k]] - assoc)
    if two_l:
        n_m0 = int((mode[:k] == 0).sum())
    else:
        n_m0 = 0
    # -- one scatter installs the window: every touched slot ends with
    # its last install (a survivor), reads are clean, stamps are
    # age0 + row index --
    stamps = age0 + np.arange(k, dtype=np.int64)
    l1.age[0] = age0 + k
    sv = np.flatnonzero(surv)
    s_slots = tslot_k[sv]
    s_lines = line_k[sv]
    if two_l:
        s_meta = (stamps[sv] << 16) | ((s_lines >> 2) & 2) | 1
    else:
        s_meta = (stamps[sv] << 16) | 1
    tags_view[s_slots] = s_lines
    meta_view[s_slots] = s_meta
    slots_d = l1.slot_of
    if two_l:
        tile_count = l1.tile_count
        if n_pre_evict:
            for vl in victim_lines:
                del slots_d[vl]
                key = vl >> 3
                cnt = tile_count[key] - 1
                if cnt:
                    tile_count[key] = cnt
                else:
                    del tile_count[key]
        # else: cold/dense fill fast path — no occupants to surgere.
        for ln, slot in zip(s_lines.tolist(), s_slots.tolist()):
            slots_d[ln] = slot
            key = ln >> 3
            cnt = tile_count.get(key)
            tile_count[key] = 1 if cnt is None else cnt + 1
    else:
        if n_pre_evict:
            for vl in victim_lines:
                del slots_d[vl]
        for ln, slot in zip(s_lines.tolist(), s_slots.tolist()):
            slots_d[ln] = slot
    # -- counters, lower-level serves, histogram --
    st.n_misses += k
    st.n_tracked += n_tracked
    l1.c_mshr_coalesced.value += n_coal
    ns = k if fast else len(serves)
    l1.c_allocations.value += ns
    l1.c_fills.value += ns
    l1.c_full_stalls.value += n_stall
    l1.c_evictions.value += n_evict
    if two_l:
        st.n_probes += 9 * (k - n_m0)
        l1.c_tag_probes.value += 2 * n_m0
    else:
        st.n_probes += k
    if ns:
        if fast:
            _apply_serves(sm, l2slot[:k])
        else:
            _apply_serves(sm, l2slot[:k][np.asarray(serves,
                                                    dtype=np.int64)])
    if sm.prefetching:
        store_l2.prefetcher.apply_state(0, pf_state)
    hist = st.hist
    if fast:
        hist[lat_bucket(lat_c)] += k
    else:
        for bucket, cnt in lat_hist_counts(lats):
            hist[bucket] += cnt
    BULK_MISS_ROWS[0] += k
    return k


class VectorEngine(kernels.KernelEngine):
    """A :class:`KernelEngine` whose replay retires hit windows in bulk.

    Construction swaps the L1 metadata list for an ``array('Q')`` so
    numpy can alias it in place (``tags`` already is one); the scalar
    tails keep reading boxed Python ints from it, so every slow path
    stays byte-for-byte the kernel's.
    """

    def __init__(self, hierarchy) -> None:
        super().__init__(hierarchy)
        l1 = self.levels[0]
        if isinstance(l1, kernels._Kernel2P2L):
            raise kernels.SimulationError(
                "VectorEngine requires a physically 1-D L1; "
                "use KernelEngine for 2P2L-L1 designs")
        if self.l1_predictor is not None:
            raise kernels.SimulationError(
                "VectorEngine does not cover dynamic orientation; "
                "use KernelEngine for predictor-enabled designs")
        l1.meta = array("Q", l1.meta)
        # Writable aliases: scalar-path writes through l1.tags/l1.meta
        # are immediately visible to the gathers and vice versa.
        self._tags_view = _np.frombuffer(l1.tags, dtype=_np.int64)
        self._meta_view = _np.frombuffer(l1.meta, dtype=_np.int64)
        # Bulk miss windows additionally alias the level below the L1
        # (when its hit path is closed-form; None sends miss spans to
        # the fused kernel span unconditionally).
        lower = l1.lower
        self._serve = _make_serve_model(lower) \
            if isinstance(lower, kernels._FlatStore) else None

    def replay(self, trace, cpu_config, cpu_group) -> int:
        """Drive a packed trace through the vector loop; returns cycles."""
        if isinstance(self.levels[0], kernels._Kernel2L):
            return _replay_vector(self, trace, cpu_config, cpu_group)
        return _replay_vector_1l(self, trace, cpu_config, cpu_group)


def _replay_vector(engine: VectorEngine, trace, cpu_config,
                   cpu_group) -> int:
    """Chunked window replay over a logically 2-D (1P2L) L1.

    Structure per chunk: classify every request against the live L1
    arrays, then walk the chunk executing maximal bulk windows with
    numpy scatters and everything else scalar — long scalar runs (and
    the whole remainder once every set is poisoned) through the fused
    kernel span, isolated rows through the per-row step.
    """
    np = _np
    l1 = engine.levels[0]
    meta_view = engine._meta_view
    window_size = cpu_config.mlp_window
    issue_cost = cpu_config.cycles_per_op
    cfg = l1.cfg
    pipelined = cfg.hit_latency + 3 * cfg.tag_latency
    hit_latency = l1.hit_latency
    swrite_latency = 2 * l1.tag_latency + l1.data_write_latency
    vwrite_latency = 9 * l1.tag_latency + l1.data_write_latency
    hb_hit = hit_latency.bit_length()
    hb_sw = swrite_latency.bit_length()
    hb_vw = vwrite_latency.bit_length()
    slots_get = l1.slot_of.get
    meta_arr = l1.meta
    ready_at = l1.ready_at
    ready_get = ready_at.get
    tile_get = l1.tile_count.get
    age_cell = l1.age
    age_limit = kernels.AGE_LIMIT
    compact = l1._compact_ages
    c_early = l1.c_early_hit_waits
    scalar_read_tail = l1.scalar_read_tail
    scalar_write_tail = l1.scalar_write_tail
    vector_read_tail = l1.vector_read_tail
    vector_write_tail = l1.vector_write_tail
    lvl1 = l1.level_index
    same_set = l1.same_set
    num_sets = l1.num_sets
    span_replay = kernels._replay_2l_span
    serve = engine._serve

    st = kernels._Span2L()
    window = st.window
    hist = st.hist

    packed, demand = kernels._predecode_2l(trace.words)
    total = len(packed)
    p_all = np.asarray(packed, dtype=np.int64) if total \
        else np.zeros(0, dtype=np.int64)
    k8 = np.arange(8, dtype=np.int64)

    # Sets that scalar work may have restructured (install/evict/fill)
    # this chunk; classified hits in these sets re-probe scalar.
    # Cleared at every chunk boundary.
    dirty_sets = set()

    def poison(line: int, mode: int, p: int) -> None:
        """Poison every L1 set the completed scalar step can have
        restructured: the preferred line's set, the perpendicular
        duplicate's set (scalar modes), and — for vector accesses,
        whose tails may duplicate-evict the whole crossing tile — the
        sets of all eight perpendicular lines."""
        if same_set:
            dirty_sets.add((line >> 4) % num_sets)
            return
        tile_row = line >> 4
        if mode & 2:  # vector: perp lines k=0..7 live in 8 spread sets
            for k in range(8):
                dirty_sets.add((tile_row + k) % num_sets)
        else:
            dirty_sets.add((tile_row + (line & 7)) % num_sets)
            # perpendicular duplicate: other & 7 == p & 7
            dirty_sets.add((tile_row + (p & 7)) % num_sets)

    def step(idx: int) -> None:
        """One ``_replay_2l`` iteration for request ``idx``, verbatim.

        Unlike the fused loop this calls the miss tails instead of
        inlining them — the counters land in the same cells either
        way — and poisons the touched sets when a tail ran.  Scalar
        state lives on ``st`` so steps interleave exactly with fused
        spans and bulk windows.
        """
        p = packed[idx]
        line = p >> 7
        mode = (p >> 4) & 3
        now = st.now + issue_cost
        st.now = now
        if mode == 2:  # vector read
            slot = slots_get(line)
            if slot is not None:
                st.n_probes += 1
                st.n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                    | (stamp << 16)
                ready = ready_get(line)
                if ready is None:
                    hist[hb_hit] += 1
                    return
                if ready <= now:
                    del ready_at[line]
                    hist[hb_hit] += 1
                    return
                c_early.value += 1
                latency = ready + hit_latency - now
            else:
                completion, level = vector_read_tail(line, now)
                if level == lvl1:
                    st.n_hits += 1
                else:
                    st.n_misses += 1
                latency = completion - now
                poison(line, mode, p)
            hist[latency.bit_length()] += 1
            if latency > pipelined:
                heappush(window, now + latency)
                st.n_tracked += 1
                while len(window) > window_size:
                    earliest = heappop(window)
                    if earliest > now:
                        st.stalled += earliest - now
                        now = earliest
                st.now = now
        elif mode == 0:  # scalar read
            slot = slots_get(line)
            if slot is not None:
                st.n_probes += 1
                st.n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                    | (stamp << 16)
                ready = ready_get(line)
                if ready is None:
                    hist[hb_hit] += 1
                    return
                if ready <= now:
                    del ready_at[line]
                    hist[hb_hit] += 1
                    return
                c_early.value += 1
                latency = ready + hit_latency - now
            else:
                other = (line & -16) | (p & 15)
                completion, level = scalar_read_tail(line, other, now)
                if level == lvl1:
                    st.n_hits += 1
                else:
                    st.n_misses += 1
                latency = completion - now
                poison(line, mode, p)
            hist[latency.bit_length()] += 1
            if latency > pipelined:
                heappush(window, now + latency)
                st.n_tracked += 1
                while len(window) > window_size:
                    earliest = heappop(window)
                    if earliest > now:
                        st.stalled += earliest - now
                        now = earliest
                st.now = now
        elif mode == 1:  # scalar write (posted; never stalls the core)
            slot = slots_get(line)
            offset = p & 7
            other = (line & -16) | (p & 15)
            if slot is not None and slots_get(other) is None:
                st.n_probes += 2
                st.n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                    | (256 << offset) | (stamp << 16)
                hist[hb_sw] += 1
                return
            completion, level = scalar_write_tail(
                line, other, 1 << offset, 1 << (line & 7), now)
            if level == lvl1:
                st.n_hits += 1
            else:
                st.n_misses += 1
            hist[(completion - now).bit_length()] += 1
            poison(line, mode, p)
        else:  # vector write (posted)
            slot = slots_get(line)
            if slot is not None and tile_get((line >> 3) ^ 1) is None:
                st.n_probes += 9
                st.n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) | 0xFF00 \
                    | (stamp << 16)
                hist[hb_vw] += 1
                return
            completion, level = vector_write_tail(line, now)
            if level == lvl1:
                st.n_hits += 1
            else:
                st.n_misses += 1
            hist[(completion - now).bit_length()] += 1
            poison(line, mode, p)

    for start in range(0, total, CHUNK):
        stop = min(start + CHUNK, total)
        # Drop ready entries that are stale for every request of this
        # chunk (``now`` only advances).  Deleting one is inert: every
        # consumer treats ready <= now exactly like absence.  What
        # remains is small and marks the in-flight lines whose reads
        # must take a scalar path.
        if ready_at:
            stale = [k for k, v in ready_at.items() if v <= st.now]
            for k in stale:
                del ready_at[k]
        if serve is not None and serve.store.ready_at:
            # Same purge for the serving level: live entries disqualify
            # bulk miss rows, stale ones are inert.
            l2_ready = serve.store.ready_at
            stale = [k for k, v in l2_ready.items() if v <= st.now]
            for k in stale:
                del l2_ready[k]
        p_np = p_all[start:stop]
        bulk, slot_np, setn_np, osetn_np = _classify(engine, l1, p_np,
                                                     st.now)
        mode_np = (p_np >> 4) & 3
        dirty_sets.clear()
        dirty_cache: List = [None]
        n = stop - start
        # Maximal constant-eligibility spans; set-poisoning can only
        # split bulk spans further, never extend them.
        if n > 1:
            flips = np.flatnonzero(bulk[1:] != bulk[:-1]) + 1
            bounds = [0] + flips.tolist() + [n]
        else:
            bounds = [0, n]
        first_bulk = bool(bulk[0]) if n else False

        def dirty_arr():
            da = dirty_cache[0]
            if da is None or da.size != len(dirty_sets):
                da = np.fromiter(dirty_sets, dtype=np.int64,
                                 count=len(dirty_sets))
                dirty_cache[0] = da
            return da

        def poison_span(a: int, b: int) -> None:
            """Poison the union of sets the rows of [a, b) can touch.

            Used after a fused span call, which does not report which
            rows actually restructured; conservatively charges every
            row (plain hits included) — over-poisoning only sends more
            rows down the exact scalar path.
            """
            if same_set:
                dirty_sets.update(np.unique(setn_np[a:b]).tolist())
                return
            m = mode_np[a:b]
            vec = m >= 2
            if vec.any():
                trow = p_np[a:b][vec] >> 11  # line >> 4
                dirty_sets.update(np.unique(
                    (trow[:, None] + k8) % num_sets).tolist())
            if not vec.all():
                sc = ~vec
                dirty_sets.update(np.unique(setn_np[a:b][sc]).tolist())
                dirty_sets.update(
                    np.unique(osetn_np[a:b][sc]).tolist())

        def screen(a: int, b: int):
            """Poisoned-set mask for classified-hit rows [a, b)."""
            fl = np.isin(setn_np[a:b], dirty_arr())
            m1 = mode_np[a:b] == 1
            if m1.any():
                fl |= m1 & np.isin(osetn_np[a:b], dirty_arr())
            return fl

        def bulk_exec(i: int, t: int) -> None:
            """Retire guaranteed plain hits [i, t) in bulk.

            Never poisons: plain hits only touch stamps and dirty
            bits.  The age-limit guard drops to per-row steps so the
            stamp compaction lands exactly where the fused loop would
            put it.
            """
            w = t - i
            stamp0 = age_cell[0]
            if stamp0 + w > age_limit:
                for r in range(i, t):
                    step(start + r)
                return
            if w <= SMALL_WINDOW:
                probes = 0
                for r in range(i, t):
                    p = packed[start + r]
                    slot = slots_get(p >> 7)
                    if (p >> 4) & 1:
                        meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                            | (256 << (p & 7)) | (age_cell[0] << 16)
                        hist[hb_sw] += 1
                        probes += 2
                    else:
                        meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                            | (age_cell[0] << 16)
                        hist[hb_hit] += 1
                        probes += 1
                    age_cell[0] += 1
                st.now += issue_cost * w
                st.n_hits += w
                st.n_probes += probes
                return
            sl = slot_np[i:t]
            age_cell[0] = stamp0 + w
            # Group the window by slot (stable, so each group keeps
            # request order); the last touch carries the highest
            # stamp, dirty bits OR together.
            order = np.argsort(sl, kind="stable")
            ssl = sl[order]
            seg = np.flatnonzero(ssl[1:] != ssl[:-1]) + 1
            starts = np.concatenate(([0], seg))
            usl = ssl[starts]
            ends = np.concatenate((seg, [w])) - 1
            # stamps are stamp0 + row offset, so the max stamp per
            # group is stamp0 + its last row.
            ms = stamp0 + order[ends]
            m1w = mode_np[i:t] == 1
            w1 = int(m1w.sum()) if m1w.any() else 0
            if w1:
                dirty_add = np.where(
                    m1w, np.int64(256) << (p_np[i:t] & 7),
                    np.int64(0))
                od = np.bitwise_or.reduceat(dirty_add[order], starts)
                meta_view[usl] = (meta_view[usl] & 0xFFFF) | od \
                    | (ms << 16)
            else:
                meta_view[usl] = (meta_view[usl] & 0xFFFF) \
                    | (ms << 16)
            st.now += issue_cost * w
            w02 = w - w1
            st.n_hits += w
            st.n_probes += w02 + 2 * w1
            hist[hb_hit] += w02
            hist[hb_sw] += w1

        for si in range(len(bounds) - 1):
            a = bounds[si]
            b = bounds[si + 1]
            if len(dirty_sets) >= num_sets and serve is None:
                # Every set is poisoned and there is no bulk miss
                # executor: nothing can retire in bulk before the next
                # chunk re-classifies.  Replay the remainder as one
                # fused kernel span.  (With a serve model, classified-
                # miss spans still qualify against live state, so the
                # loop keeps walking spans instead.)
                span_replay(engine, packed, start + a, stop,
                            cpu_config, st)
                break
            if first_bulk == bool(si & 1):  # classified-miss span
                if serve is not None:
                    # Bulk miss windows qualify against live state, so
                    # poisoned sets don't block them; each consumed
                    # prefix restructures only its rows' own sets.
                    while b - a >= MISS_SPAN_MIN:
                        k = _bulk_miss(engine, l1, serve, st, p_np,
                                       setn_np, osetn_np, a, b, True,
                                       window_size, issue_cost,
                                       pipelined)
                        if not k:
                            break
                        dirty_sets.update(
                            np.unique(setn_np[a:a + k]).tolist())
                        a += k
                if b - a >= SPAN_MIN:
                    span_replay(engine, packed, start + a, start + b,
                                cpu_config, st)
                    poison_span(a, b)
                else:
                    for r in range(a, b):
                        step(start + r)
                continue
            # Classified-hit span.
            if not dirty_sets:
                bulk_exec(a, b)
                continue
            flagged = screen(a, b)
            cnt = int(flagged.sum())
            if cnt == 0:
                bulk_exec(a, b)
                continue
            if 2 * cnt >= b - a:
                # Mostly poisoned: the stale classification says hit,
                # but poisoned rows often miss live (installs evicted
                # them since the chunk started) — let the bulk miss
                # executor drain what qualifies before falling back to
                # one fused span.
                if serve is not None:
                    while b - a >= MISS_BULK_MIN:
                        k = _bulk_miss(engine, l1, serve, st, p_np,
                                       setn_np, osetn_np, a, b, True,
                                       window_size, issue_cost,
                                       pipelined)
                        if not k:
                            break
                        dirty_sets.update(
                            np.unique(setn_np[a:a + k]).tolist())
                        a += k
                    if a >= b:
                        continue
                span_replay(engine, packed, start + a, start + b,
                            cpu_config, st)
                poison_span(a, b)
                continue
            # Mixed: walk flagged rows scalar, unflagged runs in bulk.
            # A scalar step can grow the poisoned set, so the
            # remainder re-screens whenever it does (bounded: the set
            # can grow at most num_sets times per chunk).
            fl = flagged.tolist()
            dn = len(dirty_sets)
            i = a
            while i < b:
                if fl[i - a]:
                    step(start + i)
                    i += 1
                    if len(dirty_sets) != dn and i < b:
                        dn = len(dirty_sets)
                        fl[i - a:] = screen(i, b).tolist()
                    continue
                j = i + 1
                while j < b and not fl[j - a]:
                    j += 1
                bulk_exec(i, j)
                i = j

    now = st.now
    while window:
        earliest = heappop(window)
        if earliest > now:
            now = earliest
    horizon = engine.hierarchy.finish(now)
    if horizon > now:
        now = horizon
    kernels._flush_shared(cpu_group, l1, len(trace), now, st.stalled,
                          st.n_tracked, st.n_hits, st.n_misses,
                          st.n_probes, demand, st.hist)
    return now


def _classify_1l(engine, l1, p_np, now):
    """Vectorized plain-hit classification for a 1P1L chunk.

    Exact by construction: a 1-D L1 has no perpendicular state, so a
    request is bulk-eligible iff its line is resident and no fill for
    it is still in flight.  Unlike the 2-D classify, *writes* are also
    screened against live ``ready_at`` entries — the 1-D hit path
    consults them for every mode.  Returns ``(bulk, slot, setn)``.
    """
    np = _np
    tags_view = engine._tags_view
    meta_view = engine._meta_view
    assoc = l1.assoc
    num_sets = l1.num_sets
    line = p_np >> 5
    # Dense row-line set mapping, as _Kernel1L._set_base.
    setn = (((line >> 4) << 3) | (line & 7)) % num_sets
    lane = np.arange(assoc, dtype=np.int64)
    g = setn * assoc
    g = g[:, None] + lane
    hitm = (tags_view[g] == line[:, None]) & ((meta_view[g] & 1) == 1)
    has_hit = hitm.any(axis=1)
    slot = setn * assoc + np.argmax(hitm, axis=1)
    bulk = has_hit
    ready_at = l1.ready_at
    if ready_at:
        live = [k for k, v in ready_at.items() if v > now]
        if live:
            live_np = np.fromiter(live, dtype=np.int64, count=len(live))
            bulk = bulk & ~np.isin(line, live_np)
    return bulk, slot, setn


def _replay_vector_1l(engine: VectorEngine, trace, cpu_config,
                      cpu_group) -> int:
    """Chunked window replay over a conventional (1P1L) L1.

    The same plan/execute machinery as :func:`_replay_vector` with the
    simpler classify of :func:`_classify_1l`: one probe per request,
    no perpendicular duplicates, so a scalar miss poisons only the
    missed line's own set and every mode is window-eligible.  Scalar
    work routes through :func:`repro.core.kernels._replay_1l_span` /
    a per-row mirror of its loop body.
    """
    np = _np
    l1 = engine.levels[0]
    meta_view = engine._meta_view
    window_size = cpu_config.mlp_window
    issue_cost = cpu_config.cycles_per_op
    cfg = l1.cfg
    pipelined = cfg.hit_latency + 3 * cfg.tag_latency
    hit_latency = l1.hit_latency
    write_latency = l1.write_latency
    hb_read = hit_latency.bit_length()
    hb_write = write_latency.bit_length()
    slots_get = l1.slot_of.get
    meta_arr = l1.meta
    ready_at = l1.ready_at
    ready_get = ready_at.get
    age_cell = l1.age
    age_limit = kernels.AGE_LIMIT
    compact = l1._compact_ages
    c_early = l1.c_early_hit_waits
    get_line_miss = l1.get_line_miss
    lvl1 = l1.level_index
    num_sets = l1.num_sets
    scalar, vector = kernels._SCALAR, kernels._VECTOR
    span_replay = kernels._replay_1l_span
    serve = engine._serve

    st = kernels._Span2L()
    window = st.window
    hist = st.hist

    packed, demand = kernels._predecode_1l(trace.words)
    total = len(packed)
    p_all = np.asarray(packed, dtype=np.int64) if total \
        else np.zeros(0, dtype=np.int64)

    # Sets that scalar work may have restructured this chunk (a 1-D
    # miss installs and evicts only within the missed line's set).
    dirty_sets = set()

    def step(idx: int) -> None:
        """One ``_replay_1l_span`` iteration for request ``idx``."""
        p = packed[idx]
        line = p >> 5
        mode = (p >> 3) & 3
        is_write = mode & 1
        now = st.now + issue_cost
        st.now = now
        st.n_probes += 1
        slot = slots_get(line)
        if slot is not None:
            st.n_hits += 1
            if is_write:
                meta_arr[slot] |= 0xFF00 if mode == 3 \
                    else 256 << (p & 7)
                latency = write_latency
                bucket = hb_write
            else:
                latency = hit_latency
                bucket = hb_read
            stamp = age_cell[0]
            if stamp >= age_limit:
                compact()
                stamp = age_cell[0]
            age_cell[0] = stamp + 1
            meta_arr[slot] = (meta_arr[slot] & 0xFFFF) | (stamp << 16)
            ready = ready_get(line)
            if ready is None:
                hist[bucket] += 1
                return
            if ready <= now:
                del ready_at[line]
                hist[bucket] += 1
                return
            c_early.value += 1
            latency = ready + latency - now
        else:
            if is_write:
                dirty = 0xFF if mode == 3 else 1 << (p & 7)
            else:
                dirty = 0
            completion, level = get_line_miss(
                line, now, vector if mode & 2 else scalar, dirty)
            if level == lvl1:
                st.n_hits += 1
            else:
                st.n_misses += 1
            latency = completion - now
            dirty_sets.add(
                ((((line >> 4) << 3) | (line & 7)) % num_sets))
        hist[latency.bit_length()] += 1
        if latency > pipelined and not is_write:
            heappush(window, now + latency)
            st.n_tracked += 1
            while len(window) > window_size:
                earliest = heappop(window)
                if earliest > now:
                    st.stalled += earliest - now
                    now = earliest
            st.now = now

    for start in range(0, total, CHUNK):
        stop = min(start + CHUNK, total)
        if ready_at:
            stale = [k for k, v in ready_at.items() if v <= st.now]
            for k in stale:
                del ready_at[k]
        if serve is not None and serve.store.ready_at:
            l2_ready = serve.store.ready_at
            stale = [k for k, v in l2_ready.items() if v <= st.now]
            for k in stale:
                del l2_ready[k]
        p_np = p_all[start:stop]
        bulk, slot_np, setn_np = _classify_1l(engine, l1, p_np, st.now)
        mode_np = (p_np >> 3) & 3
        dirty_sets.clear()
        dirty_cache: List = [None]
        n = stop - start
        if n > 1:
            flips = np.flatnonzero(bulk[1:] != bulk[:-1]) + 1
            bounds = [0] + flips.tolist() + [n]
        else:
            bounds = [0, n]
        first_bulk = bool(bulk[0]) if n else False

        def dirty_arr():
            da = dirty_cache[0]
            if da is None or da.size != len(dirty_sets):
                da = np.fromiter(dirty_sets, dtype=np.int64,
                                 count=len(dirty_sets))
                dirty_cache[0] = da
            return da

        def screen(a: int, b: int):
            """Poisoned-set mask for classified-hit rows [a, b)."""
            return np.isin(setn_np[a:b], dirty_arr())

        def poison_span(a: int, b: int) -> None:
            dirty_sets.update(np.unique(setn_np[a:b]).tolist())

        def bulk_exec(i: int, t: int) -> None:
            """Retire guaranteed plain hits [i, t) in bulk."""
            w = t - i
            stamp0 = age_cell[0]
            if stamp0 + w > age_limit:
                for r in range(i, t):
                    step(start + r)
                return
            if w <= SMALL_WINDOW:
                for r in range(i, t):
                    p = packed[start + r]
                    slot = slots_get(p >> 5)
                    if (p >> 3) & 1:
                        meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                            | (0xFF00 if (p >> 3) & 2
                               else 256 << (p & 7)) \
                            | (age_cell[0] << 16)
                        hist[hb_write] += 1
                    else:
                        meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                            | (age_cell[0] << 16)
                        hist[hb_read] += 1
                    age_cell[0] += 1
                st.now += issue_cost * w
                st.n_hits += w
                st.n_probes += w
                return
            sl = slot_np[i:t]
            age_cell[0] = stamp0 + w
            order = np.argsort(sl, kind="stable")
            ssl = sl[order]
            seg = np.flatnonzero(ssl[1:] != ssl[:-1]) + 1
            starts = np.concatenate(([0], seg))
            usl = ssl[starts]
            ends = np.concatenate((seg, [w])) - 1
            ms = stamp0 + order[ends]
            mw = mode_np[i:t]
            wr = (mw & 1) == 1
            nw = int(wr.sum()) if wr.any() else 0
            if nw:
                dirty_add = np.where(
                    wr,
                    np.where(mw == 3, np.int64(0xFF00),
                             np.int64(256) << (p_np[i:t] & 7)),
                    np.int64(0))
                od = np.bitwise_or.reduceat(dirty_add[order], starts)
                meta_view[usl] = (meta_view[usl] & 0xFFFF) | od \
                    | (ms << 16)
            else:
                meta_view[usl] = (meta_view[usl] & 0xFFFF) \
                    | (ms << 16)
            st.now += issue_cost * w
            st.n_hits += w
            st.n_probes += w
            hist[hb_read] += w - nw
            hist[hb_write] += nw

        for si in range(len(bounds) - 1):
            a = bounds[si]
            b = bounds[si + 1]
            if len(dirty_sets) >= num_sets and serve is None:
                span_replay(engine, packed, start + a, stop,
                            cpu_config, st)
                break
            if first_bulk == bool(si & 1):  # classified-miss span
                if serve is not None:
                    while b - a >= MISS_SPAN_MIN:
                        k = _bulk_miss(engine, l1, serve, st, p_np,
                                       setn_np, None, a, b, False,
                                       window_size, issue_cost,
                                       pipelined)
                        if not k:
                            break
                        dirty_sets.update(
                            np.unique(setn_np[a:a + k]).tolist())
                        a += k
                if b - a >= SPAN_MIN:
                    span_replay(engine, packed, start + a, start + b,
                                cpu_config, st)
                    poison_span(a, b)
                else:
                    for r in range(a, b):
                        step(start + r)
                continue
            if not dirty_sets:
                bulk_exec(a, b)
                continue
            flagged = screen(a, b)
            cnt = int(flagged.sum())
            if cnt == 0:
                bulk_exec(a, b)
                continue
            if 2 * cnt >= b - a:
                # Mostly poisoned: try the bulk miss executor against
                # live state first (the stale hit classification often
                # hides evicted-since-chunk-start misses).
                if serve is not None:
                    while b - a >= MISS_BULK_MIN:
                        k = _bulk_miss(engine, l1, serve, st, p_np,
                                       setn_np, None, a, b, False,
                                       window_size, issue_cost,
                                       pipelined)
                        if not k:
                            break
                        dirty_sets.update(
                            np.unique(setn_np[a:a + k]).tolist())
                        a += k
                    if a >= b:
                        continue
                span_replay(engine, packed, start + a, start + b,
                            cpu_config, st)
                poison_span(a, b)
                continue
            fl = flagged.tolist()
            dn = len(dirty_sets)
            i = a
            while i < b:
                if fl[i - a]:
                    step(start + i)
                    i += 1
                    if len(dirty_sets) != dn and i < b:
                        dn = len(dirty_sets)
                        fl[i - a:] = screen(i, b).tolist()
                    continue
                j = i + 1
                while j < b and not fl[j - a]:
                    j += 1
                bulk_exec(i, j)
                i = j

    now = st.now
    while window:
        earliest = heappop(window)
        if earliest > now:
            now = earliest
    horizon = engine.hierarchy.finish(now)
    if horizon > now:
        now = horizon
    kernels._flush_shared(cpu_group, l1, len(trace), now, st.stalled,
                          st.n_tracked, st.n_hits, st.n_misses,
                          st.n_probes, demand, st.hist)
    return now
