"""Post-hoc energy accounting.

The paper motivates MDA column access partly through energy ("row
opening is a costly operation for a memory array in terms of both
latency and power", Section III): a column fetch replaces up to eight
row activations with one column activation.  This module prices the
event counters a simulation already collects — no hot-path cost — with
per-event energies for the memory array, the buses, and the cache
arrays, and reports a per-component breakdown.

Default event energies are order-of-magnitude values assembled from the
STT-MRAM / SRAM literature the paper draws on (activation dominated by
wordline/sense energy; STT writes several times read energy; SRAM tag
probes far below array accesses).  They are configuration, not truth:
every value can be overridden, and the experiments only rely on ratios
between designs, which are driven by the event *counts*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from ..common.errors import ConfigError
from ..common.stats import StatRegistry


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies in picojoules."""

    # Main-memory array events (per event).
    mem_activate_pj: float = 900.0      # open a row/column into a buffer
    mem_buffer_access_pj: float = 150.0  # CAS-like open-buffer read
    mem_array_write_pj: float = 1100.0  # STT array write (per line)
    mem_burst_pj: float = 120.0         # 64-byte channel transfer

    # Cache array events (per event, per level technology).
    sram_tag_probe_pj: float = 4.0
    sram_data_access_pj: float = 24.0
    stt_tag_probe_pj: float = 5.0
    stt_data_read_pj: float = 30.0
    stt_data_write_pj: float = 95.0

    # Interconnect between cache levels (per 64-byte line moved).
    link_transfer_pj: float = 18.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigError(f"{f.name} must be >= 0")


@dataclass
class EnergyBreakdown:
    """Energy per component, in picojoules."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        return sum(self.components.values())

    @property
    def total_nj(self) -> float:
        return self.total_pj / 1000.0

    def fraction(self, component: str) -> float:
        total = self.total_pj
        if total == 0:
            return 0.0
        return self.components.get(component, 0.0) / total

    def report(self) -> str:
        lines: List[str] = []
        width = max((len(k) for k in self.components), default=4)
        for name in sorted(self.components,
                           key=self.components.get, reverse=True):
            value = self.components[name]
            lines.append(f"{name:<{width}}  {value / 1000.0:12.1f} nJ  "
                         f"({100 * self.fraction(name):5.1f}%)")
        lines.append(f"{'total':<{width}}  {self.total_nj:12.1f} nJ")
        return "\n".join(lines)


class EnergyModel:
    """Prices a finished run's statistics registry."""

    def __init__(self, params: Optional[EnergyParams] = None) -> None:
        self._params = params or EnergyParams()

    @property
    def params(self) -> EnergyParams:
        return self._params

    def evaluate(self, stats: StatRegistry) -> EnergyBreakdown:
        """Energy breakdown for one run's statistics."""
        p = self._params
        out = EnergyBreakdown()

        banks = stats.group("memory.banks") if "memory.banks" in stats \
            else None
        if banks is not None:
            activates = banks.get("buffer_misses")
            reads = banks.get("reads")
            writes = banks.get("writes")
            out.components["memory.array"] = (
                activates * p.mem_activate_pj
                + reads * p.mem_buffer_access_pj
                + writes * p.mem_array_write_pj)
        if "memory" in stats:
            mem = stats["memory"]
            bursts = mem.get("line_reads") + mem.get("writes_drained")
            out.components["memory.bus"] = bursts * p.mem_burst_pj

        for name, grp in stats.items():
            if not name.startswith("cache.") or name.count(".") != 1:
                continue
            level = name.split(".", 1)[1]
            is_stt = grp.get("is_stt_array", 0) == 1
            tag_pj = p.stt_tag_probe_pj if is_stt else p.sram_tag_probe_pj
            read_pj = p.stt_data_read_pj if is_stt \
                else p.sram_data_access_pj
            write_pj = p.stt_data_write_pj if is_stt \
                else p.sram_data_access_pj
            probes = grp.get("tag_probes")
            data_reads = grp.get("hits") + grp.get("fetch_requests")
            data_writes = (grp.get("fills") + grp.get("writebacks_in")
                           + grp.get("demand_writes"))
            moved = grp.get("fills") + grp.get("writebacks_out")
            out.components[f"cache.{level}"] = (
                probes * tag_pj
                + data_reads * read_pj + data_writes * write_pj)
            out.components.setdefault("links", 0.0)
            out.components["links"] += moved * p.link_transfer_pj
        return out


def energy_of_run(result,
                  params: Optional[EnergyParams] = None) -> EnergyBreakdown:
    """Convenience wrapper: price a :class:`RunResult`."""
    return EnergyModel(params).evaluate(result.stats)
