"""The simulation driver: one workload through one system.

``run_simulation`` is the package's main entry point: it builds the
hierarchy, compiles the workload for the system's logical dimensionality
(choosing the matching memory layout per the paper's protocol), drives
the trace through the CPU model, and returns a :class:`RunResult` with
every statistic the experiment modules consume.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cache.hierarchy import CacheHierarchy
from ..common.config import SystemConfig
from ..common.stats import StatRegistry
from ..common.types import PackedTrace, ShardPlan
from ..sw.layout import Layout, make_layout
from ..sw.program import Program
from ..sw.tracegen import generate_packed_trace, generate_trace
from ..sw.tracestore import TraceStore
from ..workloads.registry import build_workload
from .cpu import TraceDrivenCpu

# -- Trace materialization cache ---------------------------------------------
#
# A trace is a pure function of (workload, size, logical_dims) when the
# layout is the protocol default, yet every design point sharing those
# three re-walked the kernel IR from scratch.  Materializing the packed
# trace once and replaying it across designs removes the whole compile +
# walk cost from all but the first run of each (workload, size, dims).
#
# Three tiers, fastest first:
#   1. in-process memo (this OrderedDict; shared copy-on-write with
#      forked pool workers when the parent materializes before forking);
#   2. the persistent trace store, when one has been configured
#      (``OUTDIR/.tracecache``) — a disk read instead of a kernel walk;
#   3. trace generation proper, which also populates the store.

_TraceKey = Tuple[str, str, int]
_TRACE_CACHE: "OrderedDict[_TraceKey, Tuple[str, PackedTrace]]" = \
    OrderedDict()
_TRACE_CACHE_MAX = 16
_TRACE_STORE: Optional[TraceStore] = None
_trace_cache_hits = 0
_trace_cache_misses = 0
_trace_store_hits = 0
_trace_store_misses = 0
_traces_generated = 0


def configure_trace_store(root: Optional[str]) -> Optional[TraceStore]:
    """Attach (or detach, with ``None``) the persistent trace store.

    Returns the active store.  The store is process-global because the
    materialization memo it backs is too; forked pool workers inherit
    the configuration.
    """
    global _TRACE_STORE
    _TRACE_STORE = TraceStore(root) if root else None
    return _TRACE_STORE


def trace_store() -> Optional[TraceStore]:
    """The currently configured persistent trace store, if any."""
    return _TRACE_STORE


def ensure_trace(workload: str, size: str,
                 logical_dims: int) -> Tuple[str, PackedTrace]:
    """Materialize (memo -> store -> generate) one default-layout trace.

    The scheduler calls this in the parent process for every distinct
    trace a run plan needs before forking workers, so the whole process
    tree generates each trace at most once.
    """
    return _materialized_trace(workload, size, logical_dims)


def _materialized_trace(workload: str, size: str,
                        logical_dims: int) -> Tuple[str, PackedTrace]:
    """(program name, packed trace) for a default-layout workload."""
    global _trace_cache_hits, _trace_cache_misses
    global _trace_store_hits, _trace_store_misses, _traces_generated
    key = (workload, size, logical_dims)
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        _trace_cache_hits += 1
        _TRACE_CACHE.move_to_end(key)
        return cached
    _trace_cache_misses += 1
    entry = None
    if _TRACE_STORE is not None:
        entry = _TRACE_STORE.load(workload, size, logical_dims)
        if entry is not None:
            _trace_store_hits += 1
        else:
            _trace_store_misses += 1
    if entry is None:
        program = build_workload(workload, size)
        layout = make_layout(program.arrays, logical_dims)
        trace = generate_packed_trace(program, logical_dims, layout)
        _traces_generated += 1
        entry = (program.name, trace)
        if _TRACE_STORE is not None:
            _TRACE_STORE.store(workload, size, logical_dims,
                               program.name, trace)
    _TRACE_CACHE[key] = entry
    while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
        _TRACE_CACHE.popitem(last=False)
    return entry


def clear_trace_cache() -> None:
    """Drop all materialized traces (tests and benchmarks)."""
    _TRACE_CACHE.clear()
    reset_trace_counters()


def reset_trace_counters() -> None:
    """Zero the trace-cache counters without dropping the memo.

    Forked pool workers call this as their initializer so the
    snapshots they report count activity since the fork rather than
    counter values inherited from the parent.
    """
    global _trace_cache_hits, _trace_cache_misses
    global _trace_store_hits, _trace_store_misses, _traces_generated
    _trace_cache_hits = 0
    _trace_cache_misses = 0
    _trace_store_hits = 0
    _trace_store_misses = 0
    _traces_generated = 0


def trace_cache_info() -> Dict[str, int]:
    """Hit/miss/entry counts of the trace materialization tiers.

    ``hits``/``misses``/``entries`` describe the in-process memo;
    ``store_hits``/``store_misses`` the persistent trace store (both 0
    when no store is configured); ``corrupt_quarantined`` counts corrupt
    store entries the store quarantined (the same counter name the run
    cache's ``cache_info`` reports); ``generated`` counts actual
    kernel walks performed by this process.
    """
    return {"hits": _trace_cache_hits, "misses": _trace_cache_misses,
            "entries": len(_TRACE_CACHE),
            "store_hits": _trace_store_hits,
            "store_misses": _trace_store_misses,
            "corrupt_quarantined": (_TRACE_STORE.corrupt_quarantined
                                    if _TRACE_STORE is not None else 0),
            "generated": _traces_generated}


@dataclass
class OccupancySample:
    """Row/column line occupancy of every level at one instant."""

    ops: int
    cycles: int
    by_level: Dict[str, Tuple[int, int]]


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    system: SystemConfig
    workload: str
    cycles: int
    ops: int
    stats: StatRegistry
    samples: List[OccupancySample] = field(default_factory=list)

    # -- derived metrics used across the figures --------------------------

    def l1_hit_rate(self) -> float:
        grp = self.stats.group("cache.L1")
        return grp.ratio("hits", "demand_accesses")

    def llc_requests(self) -> int:
        """Demand traffic arriving at the LLC (paper Fig. 14, left)."""
        name = self.system.llc.name
        grp = self.stats.group(f"cache.{name}")
        return grp.get("fetch_requests") + grp.get("writebacks_in")

    def memory_bytes(self) -> int:
        """Bytes moved between LLC and memory (paper Fig. 14, right)."""
        grp = self.stats.group("memory")
        return grp.get("bytes_read") + grp.get("bytes_written")

    def memory_reads(self) -> int:
        return self.stats.group("memory").get("line_reads")

    def column_buffer_hits(self) -> int:
        return self.stats.group("memory.banks").get("col_buffer_hits")

    def partial_writeback_savings(self) -> float:
        """Fraction of writeback words elided by per-word dirty bits.

        The paper adds 8 dirty bits per line "to mitigate the impact of
        extra writebacks caused by false sharing of intersecting cache
        lines"; this reports how much of the line-granular writeback
        volume those bits mark clean (0.0 when every written-back word
        was dirty, or when nothing was written back).
        """
        port = self.stats.group("memory.port")
        lines = port.get("writebacks")
        if lines == 0:
            return 0.0
        dirty_words = port.get("dirty_words_written")
        return 1.0 - dirty_words / (8 * lines)

    def describe(self) -> str:
        return (f"{self.workload} on {self.system.name}: "
                f"{self.cycles} cycles, {self.ops} ops, "
                f"L1 hit rate {self.l1_hit_rate():.3f}")


def run_simulation(system: SystemConfig,
                   program: Optional[Program] = None,
                   workload: Optional[str] = None,
                   size: str = "large",
                   layout: Optional[Layout] = None,
                   sample_every: int = 0,
                   replacement: str = "lru",
                   compile_dims: Optional[int] = None,
                   shard: Optional[Tuple[int, int]] = None) -> RunResult:
    """Simulate one workload on one system configuration.

    Args:
        system: the design point (see :mod:`repro.core.system`).
        program: an explicit kernel IR; mutually exclusive with
            ``workload``.
        workload: a registry benchmark name to build at ``size``.
        size: 'small' (paper 256x256) or 'large' (paper 512x512).
        layout: override the memory layout.  By default the layout
            matches the hierarchy's logical dimensionality, as the
            paper's evaluation protocol requires; overriding it
            reproduces the layout-mismatch experiment.
        sample_every: record orientation occupancy every N ops
            (paper Fig. 15); 0 disables sampling.
        replacement: cache replacement policy name.
        compile_dims: override the logical dimensionality the trace is
            compiled for (e.g. 1 to model a legacy binary — no column
            annotations or column vectorization — on a 2-D hierarchy).
        shard: replay epoch ``(index, count)`` of the sharded run
            instead of the whole trace.  The packed trace is cut at
            ``WINDOW_ALIGN``-aligned boundaries (:class:`ShardPlan`)
            and each epoch replays from a cold cache — the
            context-switch execution model, identical whether the
            epochs run serially or across pool workers.  Only valid
            for default-layout registry workloads without occupancy
            sampling; merge epoch results with
            :func:`merge_run_results`.
    """
    if (program is None) == (workload is None):
        raise ValueError("pass exactly one of program= or workload=")
    logical_dims = compile_dims or system.logical_dims
    if shard is not None:
        if program is not None or layout is not None:
            raise ValueError("shard= requires a default-layout "
                             "registry workload")
        if sample_every:
            raise ValueError("occupancy sampling cannot be sharded "
                             "(samples are positional within one "
                             "replay)")
    if program is None and layout is None:
        # Default-layout registry run: replay the materialized trace
        # shared by every design with this logical dimensionality.
        name, trace = _materialized_trace(workload, size, logical_dims)
        if shard is not None:
            index, count = shard
            plan = ShardPlan.plan(len(trace), count)
            if not 0 <= index < plan.shards:
                raise ValueError(
                    f"shard index {index} out of range for "
                    f"{plan.shards}-epoch plan (requested {count})")
            begin, end = plan.bounds[index], plan.bounds[index + 1]
            trace = PackedTrace(trace.words[begin:end])
    else:
        if program is None:
            program = build_workload(workload, size)
        if layout is None:
            layout = make_layout(program.arrays, logical_dims)
        name = program.name
        trace = generate_trace(program, logical_dims, layout)
    stats = StatRegistry()
    hierarchy = CacheHierarchy(system, stats, replacement)
    samples: List[OccupancySample] = []

    def sampler(ops: int, now: int) -> None:
        samples.append(OccupancySample(
            ops=ops, cycles=now,
            by_level=hierarchy.occupancy_by_level()))

    cpu = TraceDrivenCpu(system.cpu, hierarchy, stats)
    cycles = cpu.run(trace,
                     sampler=sampler if sample_every else None,
                     sample_every=sample_every)
    ops = stats.group("cpu").get("ops")
    return RunResult(system=system, workload=name,
                     cycles=cycles, ops=ops, stats=stats,
                     samples=samples)


def merge_run_results(parts: List[RunResult]) -> RunResult:
    """Deterministically merge per-epoch results of one sharded run.

    Counters sum cell by cell through the stat groups' own tables (no
    string parsing), cycles and ops sum across epochs, and derived
    metrics (hit rates, traffic) recompute from the summed counters.
    Addition is order-independent over ints, so serial and pool
    executions of the same epoch plan merge to bit-identical
    statistics.  Occupancy samples are positional within one replay
    and refuse to merge.
    """
    if not parts:
        raise ValueError("merge_run_results needs at least one part")
    if len(parts) == 1:
        return parts[0]
    for part in parts:
        if part.samples:
            raise ValueError("occupancy samples cannot be merged "
                             "across shards")
    stats = StatRegistry()
    for part in parts:
        for group_name, group in part.stats.items():
            target = stats.group(group_name)
            for cell, value in group.counters().items():
                target.add(cell, value)
    return RunResult(system=parts[0].system,
                     workload=parts[0].workload,
                     cycles=sum(part.cycles for part in parts),
                     ops=sum(part.ops for part in parts),
                     stats=stats)


def run_trace(system: SystemConfig, trace,
              replacement: str = "lru",
              name: str = "trace") -> RunResult:
    """Drive an explicit request iterable through a system.

    For externally produced or file-loaded traces (see
    :mod:`repro.sw.tracefile`); the caller is responsible for the trace
    matching the hierarchy's capabilities (row-only requests for a
    logically 1-D system).
    """
    stats = StatRegistry()
    hierarchy = CacheHierarchy(system, stats, replacement)
    cpu = TraceDrivenCpu(system.cpu, hierarchy, stats)
    cycles = cpu.run(trace)
    ops = stats.group("cpu").get("ops")
    return RunResult(system=system, workload=name, cycles=cycles,
                     ops=ops, stats=stats)
