"""Structure-of-arrays cache kernels and the fused replay loop.

The object model (:mod:`repro.cache`) keeps per-line state in Python
dicts and per-set :class:`LruSet` objects, and every request crosses
several method boundaries (``access`` -> ``_vector_read`` ->
``_fill_line`` -> ``fetch_line`` -> ...).  Profiling the packed replay
loop shows that essentially all time is spent in those cache levels —
the memory controller underneath is noise — so this module rebuilds the
covered designs as **flat structure-of-arrays stores** driven by one
fused loop:

* ``tags``: one ``array('Q')`` slot per cache frame holding the full
  oriented line id (set ``s`` owns slots ``[s*assoc, (s+1)*assoc)``);
* ``meta``: one packed 64-bit metadata word per frame (a flat list —
  hot paths read these words far more than they write them, and list
  reads don't box a fresh int the way ``array('Q')`` reads do)::

      bit   0      valid
      bit   1      orientation (row=0 / column=1, mirrors the tag)
      bits  8-15   per-word dirty mask
      bits 16-63   LRU age stamp

  Age stamps come from a per-level monotonic counter, so the victim of
  a full set is simply the valid slot with the smallest ``meta`` word —
  bit-identical to the insertion-ordered :class:`LruSet` the object
  path uses.  Stamps are compacted in place (order-preserving) when the
  counter reaches :data:`AGE_LIMIT`, long before bit 63.
* ``slot_of``: line id -> slot index, the presence/lookup accelerator
  over the canonical arrays;
* ``tile_count``: (tile, orientation) -> resident-line count, which
  lets the hot paths skip the eight-way perpendicular scans (duplicate
  eviction, Fig. 9 cleaning) whenever a tile holds no crossing lines.

Address decode is table-driven: :func:`intile_tables` maps the six
in-tile word bits (plus the orientation bit) straight to the in-tile
line index and the word's offset within the oriented line, so the
replay loop never recomputes the row/column bit-slicing per request
(the channel/rank/bank side of the decode lives in
:func:`repro.mem.decoder.interleave_tables`).

Every kernel level *shares* its statistics cells, MSHR file, and (for
1P1L) stride prefetcher with the corresponding object level, and the
chain bottoms out at the hierarchy's real :class:`MemoryPort`, so a
kernel run produces **bit-identical counters** to the object path —
``tests/test_kernels.py`` enforces this across the covered design x
workload matrix.

Coverage: LRU replacement throughout; physically 1-D levels
(``Cache1P1L`` or ``Cache1P2L``, either index mapping) anywhere in the
hierarchy; a physically 2-D block store (``Cache2P2L``, dense or
sparse fill) as the last level (:class:`_Kernel2P2L`, which packs each
block's presence and dirty line masks into one 16-bit word per slot);
and dynamic orientation prediction on a 1P2L L1 (the predictor table
mirrored into flat arrays by :class:`_FlatPredictor`, sharing the
object predictor's counter cells).  A physically 2-D L1 or mid-level,
non-LRU policies, and occupancy-sampled runs stay on the reference
``run_packed`` path (see :func:`supports`).
"""

from __future__ import annotations

from array import array
from functools import lru_cache
from heapq import heappop, heappush
from typing import Dict, List

from ..common.errors import SimulationError
from ..common.stats import LAT_HIST_KEYS
from ..common.types import AccessWidth, LINES_PER_TILE

try:  # optional accelerator for trace predecode (pure fallback below)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the test env
    _np = None

#: Module-level switch: benches and tests flip this to pin the
#: reference ``run_packed`` path (see :func:`kernel_disabled`).
KERNEL_ENABLED = True

#: LRU age stamps are compacted (order-preserving) once a level's
#: counter reaches this bound — far below the 48 bits the meta word can
#: hold, so saturation never corrupts eviction order.  Tests shrink it
#: to force compaction on tiny traces.
AGE_LIMIT = 1 << 46

# LAT_HIST_KEYS (bucket = latency.bit_length()) is shared by run /
# run_packed / run_kernel so the histograms are bit-comparable across
# paths; the canonical definition lives in repro.common.stats (the
# service layer reuses the same scheme) and is re-exported here for
# existing importers.

_SCALAR = AccessWidth.SCALAR
_VECTOR = AccessWidth.VECTOR

_META_LOW = 0xFFFF  # valid + orientation + dirty bits (ages live above)

_COLUMN_ON_1L = ("column-preference request reached a 1P1L cache; "
                 "design-0 traces must be generated with logical_dims=1")


def supports(hierarchy) -> bool:
    """True when the fused kernel covers this hierarchy exactly.

    Uncovered hierarchies replay through ``run_packed`` — same results,
    reference speed.
    """
    if not KERNEL_ENABLED:
        return False
    if hierarchy.replacement != "lru":
        return False
    levels = hierarchy.levels
    last = len(levels) - 1
    for pos, level in enumerate(levels):
        cfg = level.config
        if cfg.physical_dims == 2:
            # A 2P2L block store is covered only as the last (lowest)
            # level: there its CPU-facing ``access`` path (Design 3)
            # is never exercised, so the flat mirror only needs the
            # inter-level protocol.
            if pos == 0 or pos != last or cfg.logical_dims != 2:
                return False
        elif cfg.dynamic_orientation and \
                (pos != 0 or cfg.logical_dims != 2):
            # Orientation prediction only exists on the CPU-facing
            # scalar paths of a 1P2L L1.
            return False
    l1_cfg = hierarchy.l1.config
    if l1_cfg.logical_dims == 1 and l1_cfg.prefetcher.enabled:
        # The fused 1-D loop elides the per-access prefetcher hook;
        # that is only exact when the L1 prefetcher is off (it always
        # is — the baseline trains its prefetcher at the LLC).
        return False
    return True


class _KernelDisabled:
    """Context manager forcing the reference ``run_packed`` path.

    Restores the *prior* state on exit no matter how the block ends
    (exception, assertion failure, ``pytest.fail``), so a failing bench
    or test cannot leak the pin into later tests.  Unlike the previous
    generator-based implementation, an instance that is garbage
    collected without a clean ``__exit__`` (e.g. a bench fixture torn
    down mid-block) still restores via ``__del__``, each instance nests
    correctly, and entering twice is rejected instead of silently
    saving the wrong prior state.
    """

    __slots__ = ("_prior",)

    def __init__(self) -> None:
        self._prior = None

    def __enter__(self) -> "_KernelDisabled":
        global KERNEL_ENABLED
        if self._prior is not None:
            raise RuntimeError("kernel_disabled() context entered "
                               "twice; create a fresh one per block")
        self._prior = KERNEL_ENABLED
        KERNEL_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def __del__(self) -> None:
        self._restore()

    def _restore(self) -> None:
        global KERNEL_ENABLED
        if self._prior is not None:
            KERNEL_ENABLED = self._prior
            self._prior = None


def kernel_disabled() -> _KernelDisabled:
    """Force the reference ``run_packed`` path within a ``with`` block."""
    return _KernelDisabled()


@lru_cache(maxsize=1)
def intile_tables():
    """In-tile decode tables, built once (the geometry is fixed).

    Indexed by ``orientation << 6 | in_tile_word`` where
    ``in_tile_word`` is the word's six low address bits (row ``r`` in
    bits 3-5, column ``c`` in bits 0-2):

    * ``line_index``: the in-tile index of the oriented line holding
      the word (``r`` for row lines, ``c`` for column lines);
    * ``word_offset``: the word's position 0-7 *within* that oriented
      line (``c`` for row lines, ``r`` for column lines) — equally the
      in-tile index of the perpendicular line through the word.
    """
    line_index = array("B", bytes(128))
    word_offset = array("B", bytes(128))
    for orient in (0, 1):
        for word in range(64):
            r, c = word >> 3, word & 7
            key = (orient << 6) | word
            line_index[key] = c if orient else r
            word_offset[key] = r if orient else c
    return line_index, word_offset


@lru_cache(maxsize=1)
def _np_intile_tables():
    """The in-tile decode tables as uint64 numpy arrays."""
    line_index, word_offset = intile_tables()
    return (_np.frombuffer(line_index, dtype=_np.uint8).astype(_np.uint64),
            _np.frombuffer(word_offset, dtype=_np.uint8).astype(_np.uint64))


def _predecode_2l(words):
    """Decode a packed trace for the 2-D fused loop in one pass.

    Returns ``(packed, demand)``: one Python int per request holding
    ``line << 7 | demand_idx << 4 | perp_low`` (``perp_low`` being the
    perpendicular line's low four bits — orientation bit plus in-tile
    offset), and the 8-bin demand histogram.  The replay loop then
    dispatches on two shifts per request instead of re-slicing the
    trace word, and skips demand accounting entirely.

    With numpy available the whole pass runs vectorized; the fallback
    pays the same per-word bit-slicing the loop used to inline.
    """
    if _np is not None:
        li_tab, wo_tab = _np_intile_tables()
        w = _np.frombuffer(words, dtype=_np.uint64)
        orient = (w >> _np.uint64(18)) & _np.uint64(1)
        key = (orient << _np.uint64(6)) | ((w >> _np.uint64(19))
                                           & _np.uint64(63))
        line = (((w >> _np.uint64(25)) << _np.uint64(4))
                | (orient << _np.uint64(3)) | li_tab[key])
        didx = ((orient << _np.uint64(2))
                | ((w >> _np.uint64(16)) & _np.uint64(3)))
        perp_low = (((orient ^ _np.uint64(1)) << _np.uint64(3))
                    | wo_tab[key])
        packed = (line << _np.uint64(7)) | (didx << _np.uint64(4)) \
            | perp_low
        demand = _np.bincount(didx, minlength=8)[:8].tolist()
        return packed.tolist(), demand
    line_index_tab, word_offset_tab = intile_tables()
    packed = []
    append = packed.append
    demand = [0] * 8
    last_meta = -1
    orient_bits = obase = didx_bits = 0
    other_orient_bits = 8
    for w in words:
        m = w & 0x7FFFF
        if m != last_meta:
            last_meta = m
            orient = (m >> 18) & 1
            orient_bits = orient << 3
            other_orient_bits = (orient ^ 1) << 3
            obase = orient << 6
            didx_bits = (((orient << 2) | ((m >> 16) & 3))) << 4
        w6 = (w >> 19) & 63
        line = ((w >> 25) << 4) | orient_bits \
            | line_index_tab[obase | w6]
        demand[didx_bits >> 4] += 1
        append((line << 7) | didx_bits | other_orient_bits
               | word_offset_tab[obase | w6])
    return packed, demand


def _predecode_1l(words):
    """Decode a packed trace for the 1-D fused loop in one pass.

    Returns ``(packed, demand)`` with one int per request holding
    ``line << 5 | mode << 3 | word_offset``, plus the 4-bin demand
    histogram.  Raises on any column-preference request (1P1L traces
    must be generated with ``logical_dims=1``).
    """
    if _np is not None:
        w = _np.frombuffer(words, dtype=_np.uint64)
        if bool(((w >> _np.uint64(18)) & _np.uint64(1)).any()):
            raise SimulationError(_COLUMN_ON_1L)
        line = (((w >> _np.uint64(25)) << _np.uint64(4))
                | ((w >> _np.uint64(22)) & _np.uint64(7)))
        mode = (w >> _np.uint64(16)) & _np.uint64(3)
        packed = ((line << _np.uint64(5)) | (mode << _np.uint64(3))
                  | ((w >> _np.uint64(19)) & _np.uint64(7)))
        demand = _np.bincount(mode, minlength=4)[:4].tolist()
        return packed.tolist(), demand
    packed = []
    append = packed.append
    demand = [0] * 4
    last_meta = -1
    mode_bits = 0
    for w in words:
        m = w & 0x7FFFF
        if m != last_meta:
            last_meta = m
            if m & (1 << 18):
                raise SimulationError(_COLUMN_ON_1L)
            mode_bits = ((m >> 16) & 3) << 3
        demand[mode_bits >> 3] += 1
        line = ((w >> 25) << 4) | ((w >> 22) & 7)
        append((line << 5) | mode_bits | ((w >> 19) & 7))
    return packed, demand


def _predecode_refs(words):
    """Static reference ids (packed-word bits 0-15), one per request.

    Only the dynamic-orientation loop needs these — the static loops
    never look at the reference id — so they decode in a separate
    (numpy-gated) pass rather than widening the shared predecode.
    """
    if _np is not None:
        return (_np.frombuffer(words, dtype=_np.uint64)
                & _np.uint64(0xFFFF)).tolist()
    return [w & 0xFFFF for w in words]


class _FlatPredictor:
    """Flat-array mirror of :class:`OrientationPredictor`.

    The object predictor keeps a dict of per-reference dataclasses and
    relies on dict insertion order for FIFO table eviction.  Entries
    are never re-inserted (state mutates in place), so first-touch
    order *is* the FIFO order, and a circular slot cursor reproduces
    it exactly: the table fills slots ``0..capacity-1`` in first-touch
    order, then each eviction frees the slot under the cursor (always
    the oldest live entry) and installs the newcomer there.

    Counter cells are shared with the object predictor
    (:meth:`OrientationPredictor.counter_cells`), so a kernel replay
    leaves bit-identical predictor statistics.
    """

    __slots__ = (
        "slot_of", "refs", "last_row", "last_col", "counter",
        "capacity", "size", "head", "threshold", "saturation",
        "c_table_evictions", "c_static_fallbacks", "c_predictions",
        "c_overrides",
    )

    def __init__(self, predictor) -> None:
        capacity = predictor.capacity
        self.capacity = capacity
        self.threshold = predictor.threshold
        self.saturation = predictor.saturation
        self.slot_of: Dict[int, int] = {}
        self.refs: List[int] = [0] * capacity
        self.last_row: List[int] = [-1] * capacity
        self.last_col: List[int] = [-1] * capacity
        self.counter: List[int] = [0] * capacity
        self.size = 0
        self.head = 0
        (self.c_table_evictions, self.c_static_fallbacks,
         self.c_predictions, self.c_overrides) = predictor.counter_cells

    def observe(self, ref: int, row_line: int, col_line: int,
                static_bit: int) -> int:
        """Train on one scalar access; returns the orientation bit.

        Mirrors ``OrientationPredictor.observe_and_predict`` with line
        ids precomputed by the caller (the predecoded loop already has
        both) and orientations as line-id bits (row=0 / column=1).
        """
        slot = self.slot_of.get(ref)
        counters = self.counter
        if slot is None:
            if self.size >= self.capacity:
                head = self.head
                del self.slot_of[self.refs[head]]
                self.c_table_evictions.value += 1
                slot = head
                head += 1
                self.head = head if head < self.capacity else 0
            else:
                slot = self.size
                self.size = slot + 1
            self.slot_of[ref] = slot
            self.refs[slot] = ref
            self.last_row[slot] = -1
            self.last_col[slot] = -1
            ctr = 0
        else:
            ctr = counters[slot]
        same_row = row_line == self.last_row[slot]
        same_col = col_line == self.last_col[slot]
        if same_col and not same_row:
            if ctr < self.saturation:
                ctr += 1
        elif same_row and not same_col:
            if ctr > -self.saturation:
                ctr -= 1
        counters[slot] = ctr
        self.last_row[slot] = row_line
        self.last_col[slot] = col_line
        if ctr >= self.threshold:
            prediction = 1
        elif ctr <= -self.threshold:
            prediction = 0
        else:
            self.c_static_fallbacks.value += 1
            return static_bit
        self.c_predictions.value += 1
        if prediction != static_bit:
            self.c_overrides.value += 1
        return prediction


class _FlatStore:
    """Shared flat-store state and LRU age bookkeeping."""

    __slots__ = (
        "cfg", "level_index", "num_sets", "assoc", "tag_latency",
        "data_latency", "hit_latency", "tags", "meta", "slot_of",
        "ready_at", "age", "lower", "lower_store", "lower_slots_get",
        "demand_cells", "pending_at", "pending_lvl", "pending_tiles",
        "earliest", "mshr_capacity", "c_ordering_blocks",
        "c_full_stalls", "c_allocations", "c_hits", "c_misses",
        "c_fetch_requests", "c_tag_probes", "c_mshr_coalesced",
        "c_fills", "c_early_hit_waits",
    )

    def __init__(self, level) -> None:
        cfg = level.config
        self.cfg = cfg
        self.level_index = level.level_index
        self.num_sets = cfg.num_sets
        self.assoc = cfg.assoc
        self.tag_latency = cfg.tag_latency
        self.data_latency = cfg.data_latency
        self.hit_latency = cfg.hit_latency
        nslots = cfg.num_sets * cfg.assoc
        self.tags = array("Q", bytes(8 * nslots))
        # One packed 64-bit metadata word per slot (layout in the
        # module docstring).  A flat list, not an array('Q'): the hot
        # paths read these words far more often than they write them,
        # and a list read is a pointer load while an array read must
        # box a fresh int every time.
        self.meta: List[int] = [0] * nslots
        self.slot_of: Dict[int, int] = {}
        self.ready_at: Dict[int, int] = {}
        # One-element list so the fused loop and the slow-path methods
        # share the same mutable age counter.
        self.age: List[int] = [0]
        self.lower = None
        # Set by KernelEngine when the next level down is a flat store
        # whose fetch_line hit path has no side effects beyond
        # touch/ready bookkeeping (i.e. no per-access prefetcher):
        # the fill paths then serve lower-level hits inline.
        self.lower_store = None
        self.lower_slots_get = None
        self.demand_cells = level._demand_cells
        # Private MSHR state mirroring :class:`MshrFile` exactly (same
        # lazy-retire algorithm, same counter cells), inlined into the
        # fill paths so a miss pays no method-call round trips.  The
        # pending file is split into int-valued dicts (completion and
        # serving level) so the retire/barrier scans iterate plain
        # ints, and ``pending_tiles`` counts in-flight fills per
        # (tile, orientation) key so the 2-D ordering scan is skipped
        # outright when no perpendicular fill is outstanding.
        mshr = level.mshr
        self.pending_at: Dict[int, int] = {}
        self.pending_lvl: Dict[int, int] = {}
        self.pending_tiles: Dict[int, int] = {}
        self.earliest = None
        self.mshr_capacity = mshr.capacity
        self.c_ordering_blocks = mshr._c_ordering_blocks
        self.c_full_stalls = mshr._c_full_stalls
        self.c_allocations = mshr._c_allocations
        stats = level.stats
        self.c_hits = stats.counter("hits")
        self.c_misses = stats.counter("misses")
        self.c_fetch_requests = stats.counter("fetch_requests")
        self.c_tag_probes = stats.counter("tag_probes")
        self.c_mshr_coalesced = stats.counter("mshr_coalesced")
        self.c_fills = stats.counter("fills")
        self.c_early_hit_waits = stats.counter("early_hit_waits")

    def _stamp(self) -> int:
        """Next (unique, monotonic) LRU age, compacting at the limit."""
        age = self.age
        stamp = age[0]
        if stamp >= AGE_LIMIT:
            self._compact_ages()
            stamp = age[0]
        age[0] = stamp + 1
        return stamp

    def _compact_ages(self) -> None:
        """Re-stamp every valid slot densely, preserving LRU order."""
        meta = self.meta
        order = sorted((meta[slot] >> 16, slot)
                       for slot in range(len(meta)) if meta[slot] & 1)
        for fresh, (_, slot) in enumerate(order):
            meta[slot] = (meta[slot] & _META_LOW) | (fresh << 16)
        self.age[0] = len(order)

    def _touch(self, slot: int) -> None:
        self.meta[slot] = (self.meta[slot] & _META_LOW) \
            | (self._stamp() << 16)

    def _hit_completion(self, line: int, slot: int, now: int) -> int:
        """Touch plus data-readiness of a hit (``_data_ready`` mirror)."""
        self._touch(slot)
        ready = self.ready_at.get(line)
        if ready is not None:
            if ready <= now:
                del self.ready_at[line]
            else:
                self.c_early_hit_waits.value += 1
                return ready
        return now

    def _mshr_retire(self, now: int) -> None:
        """``MshrFile.retire_completed`` over the private pending file."""
        pending_at = self.pending_at
        if not pending_at:
            return
        earliest = self.earliest
        if earliest is not None and now < earliest:
            return
        done = []
        earliest = None
        for line, at in pending_at.items():
            if at <= now:
                done.append(line)
            elif earliest is None or at < earliest:
                earliest = at
        if done:
            pending_lvl = self.pending_lvl
            tiles = self.pending_tiles
            for line in done:
                del pending_at[line]
                del pending_lvl[line]
                key = line >> 3
                count = tiles[key] - 1
                if count:
                    tiles[key] = count
                else:
                    del tiles[key]
        self.earliest = earliest

    def _mshr_insert(self, line: int, completion: int, level: int,
                     issue: int) -> None:
        """Reserve + record an entry (``allocate`` then ``record``)."""
        self.pending_at[line] = completion
        self.pending_lvl[line] = level
        tiles = self.pending_tiles
        key = line >> 3
        count = tiles.get(key)
        tiles[key] = 1 if count is None else count + 1
        earliest = self.earliest
        if earliest is None or issue < earliest:
            earliest = issue
        if completion < earliest:
            earliest = completion
        self.earliest = earliest
        self.c_allocations.value += 1
        self.c_fills.value += 1

    def _outstanding(self, line: int, now: int):
        """``MshrFile.outstanding_fill`` over the private pending file."""
        self._mshr_retire(now)
        return self.pending_at.get(line)


#: Packed-word layout of :class:`MshrTable` entries:
#: ``completion << 20 | target_slot << 4 | serving_level``.  Twenty
#: low bits leave 44 for the completion cycle — the same headroom the
#: meta words give LRU stamps.
MSHR_LEVEL_BITS = 4
MSHR_SLOT_BITS = 16
MSHR_NO_SLOT = (1 << MSHR_SLOT_BITS) - 1
_MSHR_LEVEL_MASK = (1 << MSHR_LEVEL_BITS) - 1
_MSHR_SLOT_SHIFT = MSHR_LEVEL_BITS
_MSHR_COMP_SHIFT = MSHR_LEVEL_BITS + MSHR_SLOT_BITS


def pack_mshr_word(completion: int, level: int,
                   slot: int = MSHR_NO_SLOT) -> int:
    """Pack one pending fill into a 64-bit MSHR table word."""
    return (completion << _MSHR_COMP_SHIFT) | (slot << _MSHR_SLOT_SHIFT) \
        | level


def unpack_mshr_word(word: int):
    """Inverse of :func:`pack_mshr_word`: ``(completion, slot, level)``."""
    return (word >> _MSHR_COMP_SHIFT,
            (word >> _MSHR_SLOT_SHIFT) & MSHR_NO_SLOT,
            word & _MSHR_LEVEL_MASK)


class MshrTable:
    """Flat FIFO MSHR mirror for window-scoped bulk fills.

    Entries live as packed 64-bit pending words (:func:`pack_mshr_word`)
    in one append-only ``array('Q')`` behind a retire ``head`` pointer.
    The table relies on window completions being nondecreasing in
    insertion order — which bulk qualification enforces and
    :attr:`monotone` tracks — so retirement pops strictly front to
    back, the capacity scan's ``min(pending.values())`` is always the
    head word, and merge (coalesce), retire, and the ``earliest``
    retirement gate mirror the inlined object MSHR of
    :class:`_FlatStore` bit for bit.  :meth:`seed` copies a store's
    pending file in and :meth:`flush` writes the survivors back out, so
    a window retired through this table leaves the store exactly where
    the scalar transactions would have.  Because the word/line arrays
    are append-only (pops only advance ``head``), a bulk executor can
    rewind a partially executed row by restoring ``head``,
    ``earliest``, and ``last_completion``.
    """

    __slots__ = ("words", "lines", "index", "head", "earliest",
                 "monotone", "last_completion")

    def __init__(self) -> None:
        self.words = array("Q")
        self.lines: List[int] = []
        self.index: Dict[int, int] = {}
        self.head = 0
        self.earliest = None
        self.monotone = True
        self.last_completion = None

    def __len__(self) -> int:
        return len(self.lines) - self.head

    @classmethod
    def seed(cls, store: "_FlatStore") -> "MshrTable":
        """Copy ``store``'s pending file into a fresh table.

        A seed whose completions are not nondecreasing in the dict's
        insertion order (possible when earlier fills resolved at mixed
        depths) clears :attr:`monotone`; callers must bail to the
        scalar path then — the FIFO retire would pop out of order.
        """
        table = cls()
        lvl = store.pending_lvl
        index = table.index
        lines = table.lines
        words = table.words
        last = None
        for line, completion in store.pending_at.items():
            if last is not None and completion < last:
                table.monotone = False
            last = completion
            index[line] = len(lines)
            lines.append(line)
            words.append(pack_mshr_word(completion, lvl[line]))
        table.last_completion = last
        table.earliest = store.earliest
        return table

    def completion_of(self, line: int):
        """Pending completion of ``line`` or None (the merge probe)."""
        pos = self.index.get(line)
        if pos is None:
            return None
        return self.words[pos] >> _MSHR_COMP_SHIFT

    def level_of(self, line: int) -> int:
        return self.words[self.index[line]] & _MSHR_LEVEL_MASK

    def slot_of_line(self, line: int) -> int:
        return (self.words[self.index[line]] >> _MSHR_SLOT_SHIFT) \
            & MSHR_NO_SLOT

    def min_completion(self) -> int:
        return self.words[self.head] >> _MSHR_COMP_SHIFT

    def retire(self, now: int) -> None:
        """``_FlatStore._mshr_retire`` parity, head-pointer-driven."""
        head = self.head
        lines = self.lines
        n = len(lines)
        if head >= n:
            return
        earliest = self.earliest
        if earliest is not None and now < earliest:
            return
        words = self.words
        index = self.index
        while head < n and (words[head] >> _MSHR_COMP_SHIFT) <= now:
            del index[lines[head]]
            head += 1
        self.head = head
        self.earliest = (words[head] >> _MSHR_COMP_SHIFT) if head < n \
            else None

    def insert(self, line: int, completion: int, level: int,
               issue: int, slot: int = MSHR_NO_SLOT) -> None:
        """``_FlatStore._mshr_insert`` parity minus the counter bumps."""
        last = self.last_completion
        if last is not None and completion < last:
            self.monotone = False
        self.last_completion = completion
        self.index[line] = len(self.lines)
        self.lines.append(line)
        self.words.append(pack_mshr_word(completion, level, slot))
        earliest = self.earliest
        if earliest is None or issue < earliest:
            earliest = issue
        if completion < earliest:
            earliest = completion
        self.earliest = earliest

    def flush(self, store: "_FlatStore") -> None:
        """Write the surviving entries back into ``store``'s pending
        file (dict order is never observed by the scalar paths — every
        consumer scans for a min or a key).  Reads only the live
        ``[head:]`` region of the flat arrays, never the index, so a
        rewound table flushes correctly too."""
        pending_at = store.pending_at
        pending_lvl = store.pending_lvl
        tiles = store.pending_tiles
        pending_at.clear()
        pending_lvl.clear()
        tiles.clear()
        words = self.words
        lines = self.lines
        for pos in range(self.head, len(lines)):
            line = lines[pos]
            word = words[pos]
            pending_at[line] = word >> _MSHR_COMP_SHIFT
            pending_lvl[line] = word & _MSHR_LEVEL_MASK
            key = line >> 3
            count = tiles.get(key)
            tiles[key] = 1 if count is None else count + 1
        store.earliest = self.earliest


class _Kernel2L(_FlatStore):
    """Flat-store mirror of :class:`repro.cache.cache_1p2l.Cache1P2L`."""

    __slots__ = (
        "same_set", "data_write_latency", "tile_count", "c_misoriented",
        "c_writebacks_in", "c_writebacks_out", "c_duplicate_cleans",
        "c_evictions", "c_duplicate_evictions",
    )

    def __init__(self, level) -> None:
        super().__init__(level)
        cfg = self.cfg
        self.same_set = cfg.mapping == "same_set"
        self.data_write_latency = cfg.data_latency \
            + cfg.write_extra_latency
        self.tile_count: Dict[int, int] = {}
        stats = level.stats
        self.c_misoriented = stats.counter("misoriented_hits")
        self.c_writebacks_in = stats.counter("writebacks_in")
        self.c_writebacks_out = stats.counter("writebacks_out")
        self.c_duplicate_cleans = stats.counter("duplicate_cleans")
        self.c_evictions = stats.counter("evictions")
        self.c_duplicate_evictions = \
            stats.counter("duplicate_evictions")

    def _set_base(self, line: int) -> int:
        if self.same_set:
            number = line >> 4
        else:
            number = (line >> 4) + (line & 7)
        return (number % self.num_sets) * self.assoc

    # -- CPU-facing tails (the fused loop handles the plain hits) ------------

    def scalar_read_tail(self, preferred: int, other: int, now: int):
        """``_scalar_read`` after the preferred-orientation probe missed."""
        self.c_tag_probes.value += 2
        slot = self.slot_of.get(other)
        if slot is not None:
            self.c_misoriented.value += 1
            return (self._hit_completion(other, slot, now)
                    + self.hit_latency + self.tag_latency,
                    self.level_index)
        probe_cost = 2 * self.tag_latency
        completion, level = self.fill_line(preferred, now + probe_cost,
                                           _SCALAR)
        return completion + self.data_latency, level

    def scalar_write_tail(self, preferred: int, other: int,
                          pref_bit: int, other_bit: int, now: int):
        """Full ``_scalar_write`` mirror (miss, or duplicate present)."""
        self.c_tag_probes.value += 2
        probe_cost = 2 * self.tag_latency
        slots = self.slot_of
        slot = slots.get(preferred)
        if slot is not None:
            if other in slots:
                self.evict_line(other, now, duplicate=True)
            self.meta[slot] |= pref_bit << 8
            self._touch(slot)
            return (now + probe_cost + self.data_write_latency,
                    self.level_index)
        slot = slots.get(other)
        if slot is not None:
            self.c_misoriented.value += 1
            self.meta[slot] |= other_bit << 8
            self._touch(slot)
            return (now + probe_cost + self.data_write_latency,
                    self.level_index)
        completion, level = self.fill_line(preferred, now + probe_cost,
                                           _SCALAR)
        self.meta[slots[preferred]] |= pref_bit << 8
        return completion + self.data_write_latency, level

    def vector_read_tail(self, line: int, now: int):
        """``_vector_read`` miss: eight extra intersecting probes."""
        self.c_tag_probes.value += 9
        completion, level = self.fill_line(
            line, now + 9 * self.tag_latency, _VECTOR)
        return completion + self.data_latency, level

    def vector_write_tail(self, line: int, now: int):
        """Full ``_vector_write`` mirror (miss, or duplicates present)."""
        self.c_tag_probes.value += 9
        probe_cost = 9 * self.tag_latency
        slots = self.slot_of
        if self.tile_count.get((line >> 3) ^ 1):
            base_perp = (line & -16) | ((line & 8) ^ 8)
            for k in range(8):
                if base_perp | k in slots:
                    self.evict_line(base_perp | k, now, duplicate=True)
        slot = slots.get(line)
        if slot is not None:
            self.meta[slot] |= 0xFF << 8
            self._touch(slot)
            return (now + probe_cost + self.data_write_latency,
                    self.level_index)
        completion, level = self.fill_line(line, now + probe_cost,
                                           _VECTOR)
        self.meta[slots[line]] |= 0xFF << 8
        return completion + self.data_write_latency, level

    # -- inter-level protocol ------------------------------------------------

    def fetch_line(self, line: int, now: int, width):
        self.c_fetch_requests.value += 1
        self.c_tag_probes.value += 1
        slot = self.slot_of.get(line)
        if slot is not None:
            # Inlined touch + data-ready: this is the hot lower-level
            # hit serving an upper-level miss.
            meta = self.meta
            stamp = self.age[0]
            if stamp >= AGE_LIMIT:
                self._compact_ages()
                stamp = self.age[0]
            self.age[0] = stamp + 1
            meta[slot] = (meta[slot] & _META_LOW) | (stamp << 16)
            ready = self.ready_at.get(line)
            if ready is not None:
                if ready <= now:
                    del self.ready_at[line]
                else:
                    self.c_early_hit_waits.value += 1
                    return ready + self.hit_latency, self.level_index
            return now + self.hit_latency, self.level_index
        completion, level = self.fill_line(line, now + self.tag_latency,
                                           width)
        return completion + self.data_latency, level

    def writeback_line(self, line: int, dirty_mask: int, now: int) -> int:
        self.c_writebacks_in.value += 1
        self.c_tag_probes.value += 2
        slots = self.slot_of
        if self.tile_count.get((line >> 3) ^ 1):
            base_perp = (line & -16) | ((line & 8) ^ 8)
            for offset in range(8):
                if dirty_mask & (1 << offset) \
                        and base_perp | offset in slots:
                    self.evict_line(base_perp | offset, now,
                                    duplicate=True)
            self.clean_intersecting(line, now)
        slot = slots.get(line)
        if slot is not None:
            self.meta[slot] |= dirty_mask << 8
            self._touch(slot)
        else:
            self.install(line, now, dirty_mask)
        return now + 2 * self.tag_latency

    # -- internals ----------------------------------------------------------

    def clean_intersecting(self, line: int, now: int) -> None:
        """Fig. 9 "read to duplicate": flush dirty crossings first.

        Callers gate on ``tile_count`` holding perpendicular residents,
        so this always scans.
        """
        slots_get = self.slot_of.get
        meta = self.meta
        bit = 1 << (line & 7)
        base_perp = (line & -16) | ((line & 8) ^ 8)
        for k in range(8):
            slot = slots_get(base_perp | k)
            if slot is None:
                continue
            mask = (meta[slot] >> 8) & 0xFF
            if mask & bit:
                self.lower.writeback_line(base_perp | k, mask, now)
                meta[slot] &= ~(0xFF << 8)
                self.c_duplicate_cleans.value += 1

    def fill_line(self, line: int, now: int, width):
        """Clean crossings, fetch through the (inlined) MSHR, install.

        The whole miss transaction — lazy MSHR retire, 2-D ordering
        barrier, structural stalls, the fetch below, victim selection
        and eviction — runs in this one frame; only the recursive hop
        to the lower level and the rare dirty-victim writeback are
        calls.  Bit-identical to ``Cache1P2L._fill_line`` +
        ``MshrFile.fetch_slot`` + ``_install``.
        """
        if self.tile_count.get((line >> 3) ^ 1):
            self.clean_intersecting(line, now)
        # -- MshrFile.fetch_slot(line, now, ordered=True), inlined.
        # Retirement is eager, as in the object path: as a lower
        # level this method runs at the *upper* level's issue times,
        # which are not monotonic (a barrier- or stall-raised issue
        # can precede a later call's smaller clock), and the object's
        # retirement is permanent at the high-water mark — lazily
        # filtering by the current ``now`` would resurrect retired
        # entries into the barrier and capacity scans.  The sweep
        # self-gates on the ``earliest`` bound, so it is O(1) when
        # nothing can have retired.
        self._mshr_retire(now)
        pending_at = self.pending_at
        completion = pending_at.get(line)
        if completion is not None:
            self.c_mshr_coalesced.value += 1
            level = self.pending_lvl[line]
        else:
            issue = now
            if pending_at:
                # 2-D ordering: perpendicular outstanding fills of the
                # same tile hold this one back.  ``pending_tiles``
                # knows whether any might exist without scanning.
                perp_key = (line >> 3) ^ 1
                if self.pending_tiles.get(perp_key):
                    c_blocks = self.c_ordering_blocks
                    for other, at in pending_at.items():
                        if other >> 3 == perp_key:
                            if at > issue:
                                issue = at
                            c_blocks.value += 1
                    if issue > now:
                        self._mshr_retire(issue)
                c_stalls = self.c_full_stalls
                while len(pending_at) >= self.mshr_capacity:
                    stall_until = min(pending_at.values())
                    if stall_until > issue:
                        issue = stall_until
                    c_stalls.value += 1
                    self._mshr_retire(stall_until)
            lget = self.lower_slots_get
            lslot = lget(line) if lget is not None else None
            if lslot is not None:
                # Lower-level hit, inlined (its fetch_line fast path:
                # count, touch, data-ready — nothing else).
                lower = self.lower_store
                lower.c_fetch_requests.value += 1
                lower.c_tag_probes.value += 1
                lmeta = lower.meta
                lstamp = lower.age[0]
                if lstamp >= AGE_LIMIT:
                    lower._compact_ages()
                    lstamp = lower.age[0]
                lower.age[0] = lstamp + 1
                lmeta[lslot] = (lmeta[lslot] & _META_LOW) \
                    | (lstamp << 16)
                level = lower.level_index
                completion = issue + lower.hit_latency
                lready = lower.ready_at.get(line)
                if lready is not None:
                    if lready <= issue:
                        del lower.ready_at[line]
                    else:
                        lower.c_early_hit_waits.value += 1
                        completion = lready + lower.hit_latency
            else:
                completion, level = self.lower.fetch_line(line, issue,
                                                          width)
            # -- MshrFile.record, inlined --
            pending_at[line] = completion
            self.pending_lvl[line] = level
            tiles = self.pending_tiles
            tkey = line >> 3
            count = tiles.get(tkey)
            tiles[tkey] = 1 if count is None else count + 1
            earliest = self.earliest
            if earliest is None or issue < earliest:
                earliest = issue
            if completion < earliest:
                earliest = completion
            self.earliest = earliest
            self.c_allocations.value += 1
            self.c_fills.value += 1
        # -- _install(line, completion, dirty=0), inlined.  One scan
        # finds the victim: invalid slots hold meta == 0 and therefore
        # win the argmin before any valid slot, and among invalid slots
        # (or among valid ones, whose age stamps are unique) the strict
        # ``<`` keeps the first — exactly the object path's choice. --
        if self.same_set:
            number = line >> 4
        else:
            number = (line >> 4) + (line & 7)
        base = (number % self.num_sets) * self.assoc
        meta = self.meta
        free = base
        best = meta[base]
        for slot in range(base + 1, base + self.assoc):
            m = meta[slot]
            if m < best:
                best = m
                free = slot
        if best & 1:
            victim = self.tags[free]
            del self.slot_of[victim]
            vkey = victim >> 3
            tile_count = self.tile_count
            count = tile_count[vkey] - 1
            if count:
                tile_count[vkey] = count
            else:
                del tile_count[vkey]
            self.c_evictions.value += 1
            vmask = (best >> 8) & 0xFF
            if vmask:
                self.c_writebacks_out.value += 1
                self.lower.writeback_line(victim, vmask, completion)
        stamp = self.age[0]
        if stamp >= AGE_LIMIT:
            self._compact_ages()
            stamp = self.age[0]
        self.age[0] = stamp + 1
        self.tags[free] = line
        meta[free] = (stamp << 16) | (((line >> 3) & 1) << 1) | 1
        self.slot_of[line] = free
        key = line >> 3
        tile_count = self.tile_count
        count = tile_count.get(key)
        tile_count[key] = 1 if count is None else count + 1
        ready = completion + self.data_latency
        if ready > now:
            self.ready_at[line] = ready
        return completion, level

    def install(self, line: int, now: int, dirty_mask: int) -> None:
        base = self._set_base(line)
        meta = self.meta
        # Single victim scan: an invalid slot (meta == 0) beats every
        # valid one; among valid slots the smallest meta word is the
        # smallest age stamp, i.e. exactly the LruSet victim.
        free = base
        best = meta[base]
        for slot in range(base + 1, base + self.assoc):
            if meta[slot] < best:
                best = meta[slot]
                free = slot
        if best & 1:
            victim = self.tags[free]
            del self.slot_of[victim]
            self._evict(free, victim, now, duplicate=False)
        self.tags[free] = line
        meta[free] = (self._stamp() << 16) | ((dirty_mask & 0xFF) << 8) \
            | (((line >> 3) & 1) << 1) | 1
        self.slot_of[line] = free
        key = line >> 3
        count = self.tile_count.get(key)
        self.tile_count[key] = 1 if count is None else count + 1

    def evict_line(self, line: int, now: int, duplicate: bool) -> None:
        slot = self.slot_of.pop(line)
        self._evict(slot, line, now, duplicate)

    def _evict(self, slot: int, line: int, now: int,
               duplicate: bool) -> None:
        meta = self.meta
        mask = (meta[slot] >> 8) & 0xFF
        meta[slot] = 0
        key = line >> 3
        count = self.tile_count[key] - 1
        if count:
            self.tile_count[key] = count
        else:
            del self.tile_count[key]
        if duplicate:
            self.c_duplicate_evictions.value += 1
        else:
            self.c_evictions.value += 1
        if mask:
            self.c_writebacks_out.value += 1
            self.lower.writeback_line(line, mask, now)


class _Kernel1L(_FlatStore):
    """Flat-store mirror of :class:`repro.cache.cache_1p1l.Cache1P1L`."""

    __slots__ = (
        "write_latency", "prefetch_enabled", "prefetcher",
        "c_prefetch_fills", "c_writebacks_in", "c_writebacks_out",
        "c_evictions",
    )

    def __init__(self, level) -> None:
        super().__init__(level)
        cfg = self.cfg
        self.write_latency = cfg.hit_latency + cfg.write_extra_latency
        self.prefetch_enabled = cfg.prefetcher.enabled
        self.prefetcher = level.prefetcher
        stats = level.stats
        self.c_prefetch_fills = stats.counter("prefetch_fills")
        self.c_writebacks_in = stats.counter("writebacks_in")
        self.c_writebacks_out = stats.counter("writebacks_out")
        self.c_evictions = stats.counter("evictions")

    def _set_base(self, line: int) -> int:
        # Dense row-line number (tile << 3 | index), as the object path.
        return ((((line >> 4) << 3) | (line & 7)) % self.num_sets) \
            * self.assoc

    # -- CPU-facing ----------------------------------------------------------

    def get_line_miss(self, line: int, now: int, width,
                      dirty_mask: int):
        """``_get_line`` after the (already counted) probe missed.

        As with :meth:`_Kernel2L.fill_line`, the MSHR transaction and
        the install/evict run inlined in this one frame.
        """
        issue = now + self.tag_latency
        # -- MshrFile.fetch_slot(line, issue, ordered=False), inlined,
        # with eager retirement (see _Kernel2L.fill_line) --
        self._mshr_retire(issue)
        pending_at = self.pending_at
        completion = pending_at.get(line)
        if completion is not None:
            self.c_mshr_coalesced.value += 1
            level = self.pending_lvl[line]
        else:
            if len(pending_at) >= self.mshr_capacity:
                c_stalls = self.c_full_stalls
                while len(pending_at) >= self.mshr_capacity:
                    stall_until = min(pending_at.values())
                    if stall_until > issue:
                        issue = stall_until
                    c_stalls.value += 1
                    self._mshr_retire(stall_until)
            lget = self.lower_slots_get
            lslot = lget(line) if lget is not None else None
            if lslot is not None:
                # Lower-level hit, inlined (see _Kernel2L.fill_line).
                lower = self.lower_store
                lower.c_fetch_requests.value += 1
                lower.c_tag_probes.value += 1
                lmeta = lower.meta
                lstamp = lower.age[0]
                if lstamp >= AGE_LIMIT:
                    lower._compact_ages()
                    lstamp = lower.age[0]
                lower.age[0] = lstamp + 1
                lmeta[lslot] = (lmeta[lslot] & _META_LOW) \
                    | (lstamp << 16)
                level = lower.level_index
                completion = issue + lower.hit_latency
                lready = lower.ready_at.get(line)
                if lready is not None:
                    if lready <= issue:
                        del lower.ready_at[line]
                    else:
                        lower.c_early_hit_waits.value += 1
                        completion = lready + lower.hit_latency
            else:
                completion, level = self.lower.fetch_line(line, issue,
                                                          width)
            # -- MshrFile.record, inlined --
            pending_at[line] = completion
            self.pending_lvl[line] = level
            tiles = self.pending_tiles
            tkey = line >> 3
            count = tiles.get(tkey)
            tiles[tkey] = 1 if count is None else count + 1
            earliest = self.earliest
            if earliest is None or issue < earliest:
                earliest = issue
            if completion < earliest:
                earliest = completion
            self.earliest = earliest
            self.c_allocations.value += 1
            self.c_fills.value += 1
        # -- _install(line, completion, dirty_mask), inlined; single
        # victim scan (see _Kernel2L.fill_line) --
        base = ((((line >> 4) << 3) | (line & 7)) % self.num_sets) \
            * self.assoc
        meta = self.meta
        free = base
        best = meta[base]
        for slot in range(base + 1, base + self.assoc):
            m = meta[slot]
            if m < best:
                best = m
                free = slot
        if best & 1:
            victim = self.tags[free]
            del self.slot_of[victim]
            self.c_evictions.value += 1
            vmask = (best >> 8) & 0xFF
            if vmask:
                self.c_writebacks_out.value += 1
                self.lower.writeback_line(victim, vmask, completion)
        stamp = self.age[0]
        if stamp >= AGE_LIMIT:
            self._compact_ages()
            stamp = self.age[0]
        self.age[0] = stamp + 1
        self.tags[free] = line
        meta[free] = (stamp << 16) | ((dirty_mask & 0xFF) << 8) | 1
        self.slot_of[line] = free
        done = completion + self.data_latency
        if done > now:
            self.ready_at[line] = done
        return done, level

    # -- inter-level protocol ------------------------------------------------

    def fetch_line(self, line: int, now: int, width):
        self.c_fetch_requests.value += 1
        self.c_tag_probes.value += 1
        slot = self.slot_of.get(line)
        if slot is not None:
            # Inlined touch + data-ready hit path.
            meta = self.meta
            stamp = self.age[0]
            if stamp >= AGE_LIMIT:
                self._compact_ages()
                stamp = self.age[0]
            self.age[0] = stamp + 1
            meta[slot] = (meta[slot] & _META_LOW) | (stamp << 16)
            completion = now + self.hit_latency
            ready = self.ready_at.get(line)
            if ready is not None:
                if ready <= now:
                    del self.ready_at[line]
                else:
                    self.c_early_hit_waits.value += 1
                    completion = ready + self.hit_latency
            result = completion, self.level_index
        else:
            result = self.get_line_miss(line, now, width, 0)
        if self.prefetch_enabled:
            self._train(line, now)
        return result

    def writeback_line(self, line: int, dirty_mask: int, now: int) -> int:
        self.c_writebacks_in.value += 1
        self.c_tag_probes.value += 1
        slot = self.slot_of.get(line)
        if slot is not None:
            self.meta[slot] |= dirty_mask << 8
            self._touch(slot)
        else:
            self.install(line, now, dirty_mask)
        return now + self.tag_latency

    # -- internals ----------------------------------------------------------

    def _train(self, line: int, now: int) -> None:
        """LLC-placed stride prefetcher, trained on the miss stream."""
        addr = ((line >> 4) << 9) | ((line & 7) << 6)
        for pline in self.prefetcher.observe(0, addr):
            if pline in self.slot_of:
                continue
            if self._outstanding(pline, now) is not None:
                continue
            completion, _ = self.fetch_below(pline, now, _VECTOR)
            self.install(pline, completion, 0)
            done = completion + self.data_latency
            if done > now:
                self.ready_at[pline] = done
            self.c_prefetch_fills.value += 1

    def fetch_below(self, line: int, now: int, width):
        """``_fetch_below`` over the private MSHR (prefetch fills only;
        demand misses run the inlined copy in :meth:`get_line_miss`)."""
        self._mshr_retire(now)
        pending_at = self.pending_at
        in_flight = pending_at.get(line)
        if in_flight is not None:
            self.c_mshr_coalesced.value += 1
            return ((in_flight if in_flight > now else now),
                    self.pending_lvl[line])
        issue = now
        while len(pending_at) >= self.mshr_capacity:
            stall_until = min(pending_at.values())
            if stall_until > issue:
                issue = stall_until
            self.c_full_stalls.value += 1
            self._mshr_retire(stall_until)
        completion, level = self.lower.fetch_line(line, issue, width)
        self._mshr_insert(line, completion, level, issue)
        return completion, level

    def install(self, line: int, now: int, dirty_mask: int) -> None:
        base = self._set_base(line)
        meta = self.meta
        # Single victim scan (see _Kernel2L.install).
        free = base
        best = meta[base]
        for slot in range(base + 1, base + self.assoc):
            if meta[slot] < best:
                best = meta[slot]
                free = slot
        if best & 1:
            victim = self.tags[free]
            del self.slot_of[victim]
            mask = (best >> 8) & 0xFF
            self.c_evictions.value += 1
            if mask:
                self.c_writebacks_out.value += 1
                self.lower.writeback_line(victim, mask, now)
        self.tags[free] = line
        meta[free] = (self._stamp() << 16) | ((dirty_mask & 0xFF) << 8) | 1
        self.slot_of[line] = free


class _Kernel2P2L(_FlatStore):
    """Flat-store mirror of :class:`repro.cache.cache_2p2l.Cache2P2L`.

    One slot per 512-byte 2-D block: ``tags`` holds the tile id,
    ``meta`` only the valid bit and LRU stamp, and two parallel lists
    pack each block's per-line state into 16-bit words in the
    :func:`repro.cache.cache_2p2l.pack_block_word` layout — bit
    ``line & 15`` (rows in bits 0-7, columns in 8-15) in ``present``
    gates sparse fills and cross-direction hits, the same bit in
    ``dirty`` drives per-line writeback accounting on eviction.
    Covered only as the last level, so only the inter-level protocol
    (``fetch_line`` / ``writeback_line``) is mirrored; the Design 3
    ``access`` path stays on the reference engines.
    """

    __slots__ = (
        "sparse", "write_extra", "present", "dirty",
        "c_cross_direction_hits", "c_partial_block_hits",
        "c_writebacks_in", "c_writebacks_out", "c_dense_fill_lines",
        "c_evictions",
    )

    def __init__(self, level) -> None:
        super().__init__(level)
        cfg = self.cfg
        self.sparse = cfg.sparse_fill
        self.write_extra = cfg.write_extra_latency
        nslots = cfg.num_sets * cfg.assoc
        self.present: List[int] = [0] * nslots
        self.dirty: List[int] = [0] * nslots
        stats = level.stats
        self.c_cross_direction_hits = \
            stats.counter("cross_direction_hits")
        self.c_partial_block_hits = stats.counter("partial_block_hits")
        self.c_writebacks_in = stats.counter("writebacks_in")
        self.c_writebacks_out = stats.counter("writebacks_out")
        self.c_dense_fill_lines = stats.counter("dense_fill_lines")
        self.c_evictions = stats.counter("evictions")

    # -- inter-level protocol ------------------------------------------------

    def fetch_line(self, line: int, now: int, width):
        self.c_fetch_requests.value += 1
        self.c_tag_probes.value += 1
        slot = self.slot_of.get(line >> 4)
        if slot is not None:
            presence = self.present[slot]
            bit = 1 << (line & 15)
            if presence & bit:
                return (self._hit_completion(line, slot, now)
                        + self.hit_latency, self.level_index)
            if (presence & 0xFF) == 0xFF or (presence >> 8) == 0xFF:
                # Every word is resident via the other direction; the
                # crosspoint array streams it out either way.
                self.present[slot] = presence | bit
                self._touch(slot)
                self.c_cross_direction_hits.value += 1
                return now + self.hit_latency, self.level_index
            self.c_partial_block_hits.value += 1
        completion, level = self._fill_block_line(
            line, now + self.tag_latency, width)
        return completion + self.data_latency, level

    def writeback_line(self, line: int, dirty_mask: int, now: int) -> int:
        self.c_writebacks_in.value += 1
        self.c_tag_probes.value += 1
        tile = line >> 4
        slot = self.slot_of.get(tile)
        if slot is None:
            slot = self._allocate_slot(tile, now)
            if not self.sparse:
                self._fill_whole_block(slot, tile, (line >> 3) & 1,
                                       now, line & 7)
        else:
            self._touch(slot)
        bit = 1 << (line & 15)
        self.present[slot] |= bit
        self.dirty[slot] |= bit
        return now + self.tag_latency + self.write_extra

    # -- internals ----------------------------------------------------------

    def _fetch_below(self, line: int, now: int, width):
        """``MshrFile.fetch_slot(..., ordered=True)`` + fetch + record.

        Unlike :meth:`_Kernel2L.fill_line`, this sweeps retired
        entries *eagerly* at every call: dense fills chain fetches at
        horizon times far ahead of the CPU clock, so call times are
        not monotonic, and the object path's eager retirement is
        permanent at the high-water mark — a lazy same-``now`` filter
        would resurrect long-retired entries for the capacity check
        and stall spuriously.  The sweep self-gates on the ``earliest``
        bound, so it stays O(1) when nothing can have retired.
        """
        self._mshr_retire(now)
        pending_at = self.pending_at
        completion = pending_at.get(line)
        if completion is not None:
            self.c_mshr_coalesced.value += 1
            return ((completion if completion > now else now),
                    self.pending_lvl[line])
        issue = now
        if pending_at:
            # 2-D ordering: perpendicular outstanding fills of the
            # same tile hold this one back.
            perp_key = (line >> 3) ^ 1
            if self.pending_tiles.get(perp_key):
                c_blocks = self.c_ordering_blocks
                for other, at in pending_at.items():
                    if other >> 3 == perp_key:
                        if at > issue:
                            issue = at
                        c_blocks.value += 1
                if issue > now:
                    self._mshr_retire(issue)
            c_stalls = self.c_full_stalls
            while len(pending_at) >= self.mshr_capacity:
                stall_until = min(pending_at.values())
                if stall_until > issue:
                    issue = stall_until
                c_stalls.value += 1
                self._mshr_retire(stall_until)
        completion, level = self.lower.fetch_line(line, issue, width)
        self._mshr_insert(line, completion, level, issue)
        return completion, level

    def _fill_block_line(self, line: int, now: int, width):
        """``_fill_line_into_block``: allocate/touch, fetch, mark."""
        tile = line >> 4
        slot = self.slot_of.get(tile)
        if slot is None:
            slot = self._allocate_slot(tile, now)
        else:
            self._touch(slot)
        completion, level = self._fetch_below(line, now, width)
        # Filling writes the crosspoint array; asymmetric technologies
        # pay their write latency here.
        completion += self.write_extra
        self.present[slot] |= 1 << (line & 15)
        ready = completion + self.data_latency
        if ready > now:
            self.ready_at[line] = ready
        if not self.sparse:
            self._fill_whole_block(slot, tile, (line >> 3) & 1,
                                   completion, line & 7)
        return completion, level

    def _fill_whole_block(self, slot: int, tile: int, orient_bit: int,
                          now: int, skip_index: int) -> None:
        """Dense fill: stream the remaining lines behind the first."""
        base_line = (tile << 4) | (orient_bit << 3)
        horizon = now
        c_dense = self.c_dense_fill_lines
        for k in range(LINES_PER_TILE):
            if k == skip_index:
                continue
            horizon, _ = self._fetch_below(base_line | k, horizon,
                                           _VECTOR)
            c_dense.value += 1
        self.present[slot] = 0xFFFF

    def _allocate_slot(self, tile: int, now: int) -> int:
        """Victim scan + insert (``_allocate_block`` mirror)."""
        base = (tile % self.num_sets) * self.assoc
        meta = self.meta
        free = base
        best = meta[base]
        for slot in range(base + 1, base + self.assoc):
            m = meta[slot]
            if m < best:
                best = m
                free = slot
        if best & 1:
            victim = self.tags[free]
            del self.slot_of[victim]
            self._evict_slot(free, victim, now)
        self.tags[free] = tile
        meta[free] = (self._stamp() << 16) | 1
        self.present[free] = 0
        self.dirty[free] = 0
        self.slot_of[tile] = free
        return free

    def _evict_slot(self, slot: int, tile: int, now: int) -> None:
        """Write back every dirty line of the victim block.

        Never-filled lines have no dirty bits, so sparse blocks elide
        their writeback automatically.  Rows drain before columns,
        ascending in-tile index — the object path's exact order.
        """
        self.c_evictions.value += 1
        dirty_word = self.dirty[slot]
        if dirty_word:
            writeback = self.lower.writeback_line
            c_out = self.c_writebacks_out
            base_line = tile << 4
            for k in range(16):
                if dirty_word & (1 << k):
                    c_out.value += 1
                    writeback(base_line | k, 0xFF, now)


class KernelEngine:
    """A chain of flat-store kernel levels over the hierarchy's memory.

    Built from (and sharing every statistics cell, MSHR file, and the
    memory port with) an already-constructed :class:`CacheHierarchy`
    whose design :func:`supports` covers.
    """

    def __init__(self, hierarchy) -> None:
        self.hierarchy = hierarchy
        self.levels: List[_FlatStore] = []
        for level in hierarchy.levels:
            cfg = level.config
            if cfg.physical_dims == 2:
                self.levels.append(_Kernel2P2L(level))
            elif cfg.logical_dims == 2:
                self.levels.append(_Kernel2L(level))
            else:
                self.levels.append(_Kernel1L(level))
        for upper, lower in zip(self.levels, self.levels[1:]):
            upper.lower = lower
            # A lower level's hit path may be served inline by the
            # upper level's fill paths only when it has no side
            # effects beyond touch/ready bookkeeping: _Kernel2P2L is
            # excluded (cross-direction and partial-block branches),
            # as is a prefetching _Kernel1L.
            if isinstance(lower, _Kernel2L) or (
                    isinstance(lower, _Kernel1L)
                    and not lower.prefetch_enabled):
                upper.lower_store = lower
                upper.lower_slots_get = lower.slot_of.get
        self.levels[-1].lower = hierarchy.port
        predictor = getattr(hierarchy.l1, "predictor", None)
        self.l1_predictor = _FlatPredictor(predictor) \
            if predictor is not None else None

    def replay(self, trace, cpu_config, cpu_group) -> int:
        """Drive a packed trace through the kernel; returns cycles."""
        if isinstance(self.levels[0], _Kernel2L):
            if self.l1_predictor is not None:
                return _replay_2l_dyn(self, trace, cpu_config,
                                      cpu_group)
            return _replay_2l(self, trace, cpu_config, cpu_group)
        return _replay_1l(self, trace, cpu_config, cpu_group)


def _flush_shared(cpu_group, l1, ops, now, stalled, tracked,
                  hits, misses, probes, demand, hist) -> None:
    """Fold the loop-local accumulators into the shared stat cells."""
    cpu_group.set("ops", ops)
    cpu_group.set("cycles", now)
    cpu_group.set("stall_cycles", stalled)
    cpu_group.counter("read_misses_tracked").value += tracked
    l1.c_hits.value += hits
    l1.c_misses.value += misses
    l1.c_tag_probes.value += probes
    cells = l1.demand_cells
    for index, count in enumerate(demand):
        if count:
            for cell in cells[index]:
                cell.value += count
    for bucket, count in enumerate(hist):
        if count:
            cpu_group.set(LAT_HIST_KEYS[bucket], count)


class _Span2L:
    """Carried state of a ranged fused 2-D replay.

    One instance spans one logical replay: the clock, the cumulative
    stall cycles, the outstanding-read heap, the latency histogram,
    and the loop-local counters :func:`_flush_shared` folds at the
    end.  :func:`_replay_2l` threads one instance through a single
    full-trace span; the vector engine (:mod:`repro.core.vector`)
    threads one through interleaved scalar spans and bulk windows.
    """

    __slots__ = ("now", "stalled", "window", "hist", "n_hits",
                 "n_misses", "n_probes", "n_tracked")

    def __init__(self) -> None:
        self.now = 0
        self.stalled = 0
        self.window: List[int] = []
        self.hist = [0] * len(LAT_HIST_KEYS)
        self.n_hits = 0
        self.n_misses = 0
        self.n_probes = 0
        self.n_tracked = 0


def _replay_2l(engine: KernelEngine, trace, cpu_config,
               cpu_group) -> int:
    """Fused replay over a logically 2-D (1P2L) L1.

    Predecodes, replays the whole trace as one span, then drains the
    outstanding window, runs the hierarchy's posted-write horizon, and
    folds the carried counters into the shared cells.
    """
    l1 = engine.levels[0]
    packed, demand = _predecode_2l(trace.words)
    state = _Span2L()
    _replay_2l_span(engine, packed, 0, len(packed), cpu_config, state)
    now = state.now
    window = state.window
    while window:
        earliest = heappop(window)
        if earliest > now:
            now = earliest
    horizon = engine.hierarchy.finish(now)
    if horizon > now:
        now = horizon
    _flush_shared(cpu_group, l1, len(trace), now, state.stalled,
                  state.n_tracked, state.n_hits, state.n_misses,
                  state.n_probes, demand, state.hist)
    return now


def _replay_2l_span(engine: KernelEngine, packed, start, stop,
                    cpu_config, state) -> None:
    """Replay predecoded requests ``[start, stop)``, carrying ``state``.

    One function, local-variable bindings only: the four request modes
    dispatch on two packed-word bits, the plain-hit cases complete
    inline against the flat stores, and only misses and duplicate-copy
    cases drop into the (still flat) slow-path methods.  The shared
    counter cells are exact after every call (the span-local
    accumulators fold on exit), so spans interleave freely with other
    exact replay steps against the same engine.
    """
    l1 = engine.levels[0]
    now = state.now
    stalled = state.stalled
    window = state.window
    hist = state.hist
    window_size = cpu_config.mlp_window
    issue_cost = cpu_config.cycles_per_op
    cfg = l1.cfg
    pipelined = cfg.hit_latency + 3 * cfg.tag_latency
    hit_latency = l1.hit_latency
    swrite_latency = 2 * l1.tag_latency + l1.data_write_latency
    vwrite_latency = 9 * l1.tag_latency + l1.data_write_latency
    hb_hit = hit_latency.bit_length()
    hb_sw = swrite_latency.bit_length()
    hb_vw = vwrite_latency.bit_length()
    slots_get = l1.slot_of.get
    meta_arr = l1.meta
    ready_at = l1.ready_at
    ready_get = ready_at.get
    tile_get = l1.tile_count.get
    age_cell = l1.age
    age_limit = AGE_LIMIT
    compact = l1._compact_ages
    c_early = l1.c_early_hit_waits
    scalar_read_tail = l1.scalar_read_tail
    scalar_write_tail = l1.scalar_write_tail
    vector_write_tail = l1.vector_write_tail
    data_latency = l1.data_latency
    vprobe_cost = 9 * l1.tag_latency
    vector = _VECTOR
    # Bindings for the fully inlined vector-read miss fill (the
    # dominant miss type): L1 fill state, its MSHR file, and the
    # lower level's hit fast path.
    lower_fetch = l1.lower.fetch_line
    lower_writeback = l1.lower.writeback_line
    clean = l1.clean_intersecting
    pending_at = l1.pending_at
    pending_get = pending_at.get
    pending_lvl = l1.pending_lvl
    pending_tiles = l1.pending_tiles
    ptiles_get = pending_tiles.get
    mshr_cap = l1.mshr_capacity
    l1_retire = l1._mshr_retire
    c_blocks = l1.c_ordering_blocks
    c_stalls = l1.c_full_stalls
    c_wb_out = l1.c_writebacks_out
    tile_count = l1.tile_count
    tags_arr = l1.tags
    slots = l1.slot_of
    same_set = l1.same_set
    num_sets = l1.num_sets
    assoc = l1.assoc
    l2 = l1.lower_store
    l2slots_get = l1.lower_slots_get
    if l2 is not None:
        l2_meta = l2.meta
        l2_age = l2.age
        l2_compact = l2._compact_ages
        l2_ready = l2.ready_at
        l2_ready_get = l2_ready.get
        l2_hit_latency = l2.hit_latency
        l2_level = l2.level_index
        l2_c_early = l2.c_early_hit_waits
    n_coal = n_new_fills = n_evict = n_l2_serves = 0
    lvl1 = l1.level_index
    n_hits = n_misses = n_probes = n_tracked = 0
    if start == 0 and stop >= len(packed):
        span = packed
    else:
        span = packed[start:stop]
    for p in span:
        line = p >> 7
        mode = (p >> 4) & 3  # is_write | width << 1
        now += issue_cost
        if mode == 2:  # vector read
            slot = slots_get(line)
            if slot is not None:
                n_probes += 1
                n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                    | (stamp << 16)
                ready = ready_get(line)
                if ready is None:
                    hist[hb_hit] += 1
                    continue
                if ready <= now:
                    del ready_at[line]
                    hist[hb_hit] += 1
                    continue
                c_early.value += 1
                latency = ready + hit_latency - now
            else:
                # vector_read_tail + fill_line, fully inlined for the
                # dominant miss type: nine probes, clean gate, MSHR
                # transaction, lower fetch (hit served in place),
                # install/evict — all on the local bindings above.
                n_probes += 9
                fnow = now + vprobe_cost
                if tile_get((line >> 3) ^ 1):
                    clean(line, fnow)
                l1_retire(fnow)
                completion = pending_get(line)
                if completion is not None:
                    n_coal += 1
                    level = pending_lvl[line]
                else:
                    issue = fnow
                    if pending_at:
                        perp_key = (line >> 3) ^ 1
                        if ptiles_get(perp_key):
                            for other, at in pending_at.items():
                                if other >> 3 == perp_key:
                                    if at > issue:
                                        issue = at
                                    c_blocks.value += 1
                            if issue > fnow:
                                l1_retire(issue)
                        while len(pending_at) >= mshr_cap:
                            stall_until = min(pending_at.values())
                            if stall_until > issue:
                                issue = stall_until
                            c_stalls.value += 1
                            l1_retire(stall_until)
                    lslot = l2slots_get(line) \
                        if l2slots_get is not None else None
                    if lslot is not None:
                        n_l2_serves += 1
                        lstamp = l2_age[0]
                        if lstamp >= age_limit:
                            l2_compact()
                            lstamp = l2_age[0]
                        l2_age[0] = lstamp + 1
                        l2_meta[lslot] = (l2_meta[lslot] & 0xFFFF) \
                            | (lstamp << 16)
                        level = l2_level
                        completion = issue + l2_hit_latency
                        lready = l2_ready_get(line)
                        if lready is not None:
                            if lready <= issue:
                                del l2_ready[line]
                            else:
                                l2_c_early.value += 1
                                completion = lready + l2_hit_latency
                    else:
                        completion, level = lower_fetch(line, issue,
                                                        vector)
                    pending_at[line] = completion
                    pending_lvl[line] = level
                    tkey = line >> 3
                    cnt = ptiles_get(tkey)
                    pending_tiles[tkey] = 1 if cnt is None else cnt + 1
                    earliest = l1.earliest
                    if earliest is None or issue < earliest:
                        earliest = issue
                    if completion < earliest:
                        earliest = completion
                    l1.earliest = earliest
                    n_new_fills += 1
                if same_set:
                    number = line >> 4
                else:
                    number = (line >> 4) + (line & 7)
                base = (number % num_sets) * assoc
                free = base
                best = meta_arr[base]
                for s in range(base + 1, base + assoc):
                    mm = meta_arr[s]
                    if mm < best:
                        best = mm
                        free = s
                if best & 1:
                    victim = tags_arr[free]
                    del slots[victim]
                    vkey = victim >> 3
                    cnt = tile_count[vkey] - 1
                    if cnt:
                        tile_count[vkey] = cnt
                    else:
                        del tile_count[vkey]
                    n_evict += 1
                    vmask = (best >> 8) & 0xFF
                    if vmask:
                        c_wb_out.value += 1
                        lower_writeback(victim, vmask, completion)
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                tags_arr[free] = line
                meta_arr[free] = (stamp << 16) | ((line >> 2) & 2) | 1
                slots[line] = free
                tkey = line >> 3
                cnt = tile_get(tkey)
                tile_count[tkey] = 1 if cnt is None else cnt + 1
                ready = completion + data_latency
                if ready > fnow:
                    ready_at[line] = ready
                completion += data_latency
                if level == lvl1:
                    n_hits += 1
                else:
                    n_misses += 1
                latency = completion - now
            hist[latency.bit_length()] += 1
            if latency > pipelined:
                heappush(window, now + latency)
                n_tracked += 1
                while len(window) > window_size:
                    earliest = heappop(window)
                    if earliest > now:
                        stalled += earliest - now
                        now = earliest
        elif mode == 0:  # scalar read
            slot = slots_get(line)
            if slot is not None:
                n_probes += 1
                n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                    | (stamp << 16)
                ready = ready_get(line)
                if ready is None:
                    hist[hb_hit] += 1
                    continue
                if ready <= now:
                    del ready_at[line]
                    hist[hb_hit] += 1
                    continue
                c_early.value += 1
                latency = ready + hit_latency - now
            else:
                other = (line & -16) | (p & 15)
                completion, level = scalar_read_tail(line, other, now)
                if level == lvl1:
                    n_hits += 1
                else:
                    n_misses += 1
                latency = completion - now
            hist[latency.bit_length()] += 1
            if latency > pipelined:
                heappush(window, now + latency)
                n_tracked += 1
                while len(window) > window_size:
                    earliest = heappop(window)
                    if earliest > now:
                        stalled += earliest - now
                        now = earliest
        elif mode == 1:  # scalar write (posted; never stalls the core)
            slot = slots_get(line)
            offset = p & 7
            other = (line & -16) | (p & 15)
            if slot is not None and slots_get(other) is None:
                n_probes += 2
                n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                    | (256 << offset) | (stamp << 16)
                hist[hb_sw] += 1
                continue
            completion, level = scalar_write_tail(
                line, other, 1 << offset, 1 << (line & 7), now)
            if level == lvl1:
                n_hits += 1
            else:
                n_misses += 1
            hist[(completion - now).bit_length()] += 1
        else:  # vector write (posted)
            slot = slots_get(line)
            if slot is not None and tile_get((line >> 3) ^ 1) is None:
                n_probes += 9
                n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) | 0xFF00 \
                    | (stamp << 16)
                hist[hb_vw] += 1
                continue
            completion, level = vector_write_tail(line, now)
            if level == lvl1:
                n_hits += 1
            else:
                n_misses += 1
            hist[(completion - now).bit_length()] += 1
    # Fold the inlined-fill accumulators into their shared cells
    # (allocations/fills and the lower level's fetch/probe counts move
    # in lockstep on these paths, so one accumulator serves each pair).
    if n_coal:
        l1.c_mshr_coalesced.value += n_coal
    if n_new_fills:
        l1.c_fills.value += n_new_fills
        l1.c_allocations.value += n_new_fills
    if n_evict:
        l1.c_evictions.value += n_evict
    if n_l2_serves:
        l2.c_fetch_requests.value += n_l2_serves
        l2.c_tag_probes.value += n_l2_serves
    state.now = now
    state.stalled = stalled
    state.n_hits += n_hits
    state.n_misses += n_misses
    state.n_probes += n_probes
    state.n_tracked += n_tracked


def _replay_2l_dyn(engine: KernelEngine, trace, cpu_config,
                   cpu_group) -> int:
    """Fused replay over a dynamic-orientation (1P2L) L1.

    The object path consults the predictor on *every* scalar access —
    hit or miss, before any probe — so the loop trains the flat
    predictor mirror first, swaps the preferred/perpendicular lines
    (and their in-line word offsets) when the prediction overrides the
    static preference, then runs the static loop's fast paths against
    the predicted orientation.  Vector requests never consult the
    predictor and misses drop into the exact (still flat) tail
    methods.  Demand accounting keeps each request's *static*
    attributes: the object path counts demand before predicting.
    """
    l1 = engine.levels[0]
    observe = engine.l1_predictor.observe
    packed, demand = _predecode_2l(trace.words)
    refs = _predecode_refs(trace.words)
    now = 0
    stalled = 0
    window: List[int] = []
    hist = [0] * len(LAT_HIST_KEYS)
    window_size = cpu_config.mlp_window
    issue_cost = cpu_config.cycles_per_op
    cfg = l1.cfg
    pipelined = cfg.hit_latency + 3 * cfg.tag_latency
    hit_latency = l1.hit_latency
    swrite_latency = 2 * l1.tag_latency + l1.data_write_latency
    vwrite_latency = 9 * l1.tag_latency + l1.data_write_latency
    hb_hit = hit_latency.bit_length()
    hb_sw = swrite_latency.bit_length()
    hb_vw = vwrite_latency.bit_length()
    slots_get = l1.slot_of.get
    meta_arr = l1.meta
    ready_at = l1.ready_at
    ready_get = ready_at.get
    tile_get = l1.tile_count.get
    age_cell = l1.age
    age_limit = AGE_LIMIT
    compact = l1._compact_ages
    c_early = l1.c_early_hit_waits
    scalar_read_tail = l1.scalar_read_tail
    scalar_write_tail = l1.scalar_write_tail
    vector_read_tail = l1.vector_read_tail
    vector_write_tail = l1.vector_write_tail
    lvl1 = l1.level_index
    n_hits = n_misses = n_probes = n_tracked = 0
    for p, ref in zip(packed, refs):
        line = p >> 7
        mode = (p >> 4) & 3  # is_write | width << 1
        now += issue_cost
        if mode == 2:  # vector read (static orientation throughout)
            slot = slots_get(line)
            if slot is not None:
                n_probes += 1
                n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                    | (stamp << 16)
                ready = ready_get(line)
                if ready is None:
                    hist[hb_hit] += 1
                    continue
                if ready <= now:
                    del ready_at[line]
                    hist[hb_hit] += 1
                    continue
                c_early.value += 1
                latency = ready + hit_latency - now
            else:
                completion, level = vector_read_tail(line, now)
                if level == lvl1:
                    n_hits += 1
                else:
                    n_misses += 1
                latency = completion - now
            hist[latency.bit_length()] += 1
            if latency > pipelined:
                heappush(window, now + latency)
                n_tracked += 1
                while len(window) > window_size:
                    earliest = heappop(window)
                    if earliest > now:
                        stalled += earliest - now
                        now = earliest
        elif mode == 3:  # vector write (posted)
            slot = slots_get(line)
            if slot is not None and tile_get((line >> 3) ^ 1) is None:
                n_probes += 9
                n_hits += 1
                stamp = age_cell[0]
                if stamp >= age_limit:
                    compact()
                    stamp = age_cell[0]
                age_cell[0] = stamp + 1
                meta_arr[slot] = (meta_arr[slot] & 0xFFFF) | 0xFF00 \
                    | (stamp << 16)
                hist[hb_vw] += 1
                continue
            completion, level = vector_write_tail(line, now)
            if level == lvl1:
                n_hits += 1
            else:
                n_misses += 1
            hist[(completion - now).bit_length()] += 1
        else:
            # Scalar access: train + predict, possibly swapping the
            # probe order.  ``line`` carries the static preference in
            # its orientation bit; ``other`` is the intersecting line.
            static_bit = (line >> 3) & 1
            other = (line & -16) | (p & 15)
            if static_bit:
                predicted = observe(ref, other, line, 1)
            else:
                predicted = observe(ref, line, other, 0)
            if predicted == static_bit:
                pref = line
                oth = other
                pref_offset = p & 7
                oth_offset = line & 7
            else:
                pref = other
                oth = line
                pref_offset = line & 7
                oth_offset = p & 7
            if mode == 0:  # scalar read
                slot = slots_get(pref)
                if slot is not None:
                    n_probes += 1
                    n_hits += 1
                    stamp = age_cell[0]
                    if stamp >= age_limit:
                        compact()
                        stamp = age_cell[0]
                    age_cell[0] = stamp + 1
                    meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                        | (stamp << 16)
                    ready = ready_get(pref)
                    if ready is None:
                        hist[hb_hit] += 1
                        continue
                    if ready <= now:
                        del ready_at[pref]
                        hist[hb_hit] += 1
                        continue
                    c_early.value += 1
                    latency = ready + hit_latency - now
                else:
                    completion, level = scalar_read_tail(pref, oth,
                                                         now)
                    if level == lvl1:
                        n_hits += 1
                    else:
                        n_misses += 1
                    latency = completion - now
                hist[latency.bit_length()] += 1
                if latency > pipelined:
                    heappush(window, now + latency)
                    n_tracked += 1
                    while len(window) > window_size:
                        earliest = heappop(window)
                        if earliest > now:
                            stalled += earliest - now
                            now = earliest
            else:  # scalar write (posted)
                slot = slots_get(pref)
                if slot is not None and slots_get(oth) is None:
                    n_probes += 2
                    n_hits += 1
                    stamp = age_cell[0]
                    if stamp >= age_limit:
                        compact()
                        stamp = age_cell[0]
                    age_cell[0] = stamp + 1
                    meta_arr[slot] = (meta_arr[slot] & 0xFFFF) \
                        | (256 << pref_offset) | (stamp << 16)
                    hist[hb_sw] += 1
                    continue
                completion, level = scalar_write_tail(
                    pref, oth, 1 << pref_offset, 1 << oth_offset, now)
                if level == lvl1:
                    n_hits += 1
                else:
                    n_misses += 1
                hist[(completion - now).bit_length()] += 1
    while window:
        earliest = heappop(window)
        if earliest > now:
            now = earliest
    horizon = engine.hierarchy.finish(now)
    if horizon > now:
        now = horizon
    _flush_shared(cpu_group, l1, len(trace), now, stalled, n_tracked,
                  n_hits, n_misses, n_probes, demand, hist)
    return now


def _replay_1l(engine: KernelEngine, trace, cpu_config,
               cpu_group) -> int:
    """Fused replay over a conventional (1P1L) L1.

    Predecodes, replays the whole trace as one span, then drains the
    outstanding window, runs the hierarchy's posted-write horizon, and
    folds the carried counters into the shared cells.
    """
    l1 = engine.levels[0]
    packed, demand = _predecode_1l(trace.words)
    state = _Span2L()
    _replay_1l_span(engine, packed, 0, len(packed), cpu_config, state)
    now = state.now
    window = state.window
    while window:
        earliest = heappop(window)
        if earliest > now:
            now = earliest
    horizon = engine.hierarchy.finish(now)
    if horizon > now:
        now = horizon
    _flush_shared(cpu_group, l1, len(trace), now, state.stalled,
                  state.n_tracked, state.n_hits, state.n_misses,
                  state.n_probes, demand, state.hist)
    return now


def _replay_1l_span(engine: KernelEngine, packed, start, stop,
                    cpu_config, state) -> None:
    """Replay 1-D predecoded requests ``[start, stop)`` with ``state``.

    The 1P1L counterpart of :func:`_replay_2l_span`: shared counter
    cells are exact after every call, so the vector engine can
    interleave scalar spans with bulk windows against the same engine.
    """
    l1 = engine.levels[0]
    now = state.now
    stalled = state.stalled
    window = state.window
    hist = state.hist
    window_size = cpu_config.mlp_window
    issue_cost = cpu_config.cycles_per_op
    cfg = l1.cfg
    pipelined = cfg.hit_latency + 3 * cfg.tag_latency
    hit_latency = l1.hit_latency
    write_latency = l1.write_latency
    hb_read = hit_latency.bit_length()
    hb_write = write_latency.bit_length()
    slots_get = l1.slot_of.get
    meta_arr = l1.meta
    ready_at = l1.ready_at
    ready_get = ready_at.get
    age_cell = l1.age
    age_limit = AGE_LIMIT
    compact = l1._compact_ages
    c_early = l1.c_early_hit_waits
    get_line_miss = l1.get_line_miss
    lvl1 = l1.level_index
    scalar, vector = _SCALAR, _VECTOR
    n_hits = n_misses = n_probes = n_tracked = 0
    if start == 0 and stop >= len(packed):
        span = packed
    else:
        span = packed[start:stop]
    for p in span:
        line = p >> 5
        mode = (p >> 3) & 3  # is_write | width << 1
        is_write = mode & 1
        now += issue_cost
        n_probes += 1
        slot = slots_get(line)
        if slot is not None:
            n_hits += 1
            if is_write:
                meta_arr[slot] |= 0xFF00 if mode == 3 \
                    else 256 << (p & 7)
                latency = write_latency
                bucket = hb_write
            else:
                latency = hit_latency
                bucket = hb_read
            stamp = age_cell[0]
            if stamp >= age_limit:
                compact()
                stamp = age_cell[0]
            age_cell[0] = stamp + 1
            meta_arr[slot] = (meta_arr[slot] & 0xFFFF) | (stamp << 16)
            ready = ready_get(line)
            if ready is None:
                hist[bucket] += 1
                continue
            if ready <= now:
                del ready_at[line]
                hist[bucket] += 1
                continue
            c_early.value += 1
            latency = ready + latency - now
        else:
            if is_write:
                dirty = 0xFF if mode == 3 else 1 << (p & 7)
            else:
                dirty = 0
            completion, level = get_line_miss(
                line, now, vector if mode & 2 else scalar, dirty)
            if level == lvl1:
                n_hits += 1
            else:
                n_misses += 1
            latency = completion - now
        hist[latency.bit_length()] += 1
        if latency > pipelined and not is_write:
            heappush(window, now + latency)
            n_tracked += 1
            while len(window) > window_size:
                earliest = heappop(window)
                if earliest > now:
                    stalled += earliest - now
                    now = earliest
    state.now = now
    state.stalled = stalled
    state.n_hits += n_hits
    state.n_misses += n_misses
    state.n_probes += n_probes
    state.n_tracked += n_tracked
