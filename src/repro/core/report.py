"""Machine-readable result reporting (JSON).

Turns :class:`RunResult` objects and whole experiment sweeps into plain
dictionaries, so results can be archived, diffed between versions, or
consumed by plotting scripts without touching the simulator.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from ..common.config import SystemConfig
from .energy import EnergyModel
from .simulator import RunResult


def system_to_dict(system: SystemConfig) -> Dict[str, Any]:
    """Describe a system configuration."""
    return {
        "name": system.name,
        "levels": [
            {
                "name": lvl.name,
                "taxonomy": lvl.taxonomy,
                "size_bytes": lvl.size_bytes,
                "assoc": lvl.assoc,
                "mapping": lvl.mapping,
                "sparse_fill": lvl.sparse_fill,
                "prefetch": lvl.prefetcher.enabled,
                "dynamic_orientation": lvl.dynamic_orientation,
            }
            for lvl in system.levels
        ],
        "memory": {
            "channels": system.memory.channels,
            "banks_per_rank": system.memory.banks_per_rank,
            "speed_factor": system.memory.speed_factor,
            "sub_buffers": system.memory.sub_buffers,
        },
        "cpu": {
            "mlp_window": system.cpu.mlp_window,
            "cycles_per_op": system.cpu.cycles_per_op,
        },
    }


def run_to_dict(result: RunResult, include_counters: bool = False,
                include_energy: bool = True) -> Dict[str, Any]:
    """Summarize one run; optionally embed every raw counter."""
    out: Dict[str, Any] = {
        "workload": result.workload,
        "system": system_to_dict(result.system),
        "cycles": result.cycles,
        "ops": result.ops,
        "l1_hit_rate": result.l1_hit_rate(),
        "llc_requests": result.llc_requests(),
        "memory_bytes": result.memory_bytes(),
        "memory_reads": result.memory_reads(),
        "column_buffer_hits": result.column_buffer_hits(),
    }
    if include_energy:
        breakdown = EnergyModel().evaluate(result.stats)
        out["energy_nj"] = breakdown.total_nj
        out["energy_components_nj"] = {
            key: value / 1000.0
            for key, value in breakdown.components.items()
        }
    if include_counters:
        out["counters"] = result.stats.flat()
    return out


def runs_to_json(results: Iterable[RunResult], indent: int = 2,
                 include_counters: bool = False) -> str:
    """JSON array for a batch of runs."""
    payload: List[Dict[str, Any]] = [
        run_to_dict(result, include_counters) for result in results
    ]
    return json.dumps(payload, indent=indent, sort_keys=True)


def comparison_to_dict(baseline: RunResult,
                       contender: RunResult) -> Dict[str, Any]:
    """Normalized head-to-head between two runs on one workload."""
    if baseline.workload != contender.workload:
        raise ValueError("comparing runs of different workloads")

    def ratio(num: float, den: float) -> float:
        return num / den if den else 0.0

    return {
        "workload": baseline.workload,
        "baseline": baseline.system.name,
        "contender": contender.system.name,
        "cycles_ratio": ratio(contender.cycles, baseline.cycles),
        "memory_bytes_ratio": ratio(contender.memory_bytes(),
                                    baseline.memory_bytes()),
        "llc_requests_ratio": ratio(contender.llc_requests(),
                                    baseline.llc_requests()),
        "energy_ratio": ratio(
            EnergyModel().evaluate(contender.stats).total_pj,
            EnergyModel().evaluate(baseline.stats).total_pj),
    }
