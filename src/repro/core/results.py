"""Result post-processing shared by the experiment modules."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def normalized(value: float, baseline: float) -> float:
    """``value / baseline`` with a 0-baseline guard."""
    if baseline == 0:
        return 0.0
    return value / baseline


def reduction_percent(value: float, baseline: float) -> float:
    """Percent reduction of ``value`` relative to ``baseline``."""
    if baseline == 0:
        return 0.0
    return 100.0 * (1.0 - value / baseline)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (0 for an empty input; values must be > 0)."""
    values = [v for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 precision: int = 3) -> str:
    """Fixed-width text table used by every experiment's report."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_by_key(rows: Iterable[Tuple[str, float]]) \
        -> Dict[str, List[float]]:
    """Group (key, value) pairs into per-key value lists."""
    out: Dict[str, List[float]] = {}
    for key, value in rows:
        out.setdefault(key, []).append(value)
    return out
