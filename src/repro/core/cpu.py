"""Trace-driven CPU timing model.

Stands in for the paper's gem5 out-of-order x86 core (Table I).  The
model retires one trace operation per ``cycles_per_op`` and hides miss
latency behind a window of ``mlp_window`` outstanding reads — a
first-order stand-in for the OoO instruction window and load/store
queues:

* an L1 read hit is fully pipelined (no stall beyond issue cost);
* a read miss joins the outstanding window; the core only stalls when
  the window is full, and then only until the *earliest* outstanding
  miss returns;
* writes are posted (store-buffer semantics) and never stall the core,
  though their bandwidth and cache-state effects are fully modeled by
  the hierarchy.

This keeps exactly the quantities the paper's results hinge on — hit
rates, traffic, exposed memory latency, MSHR coalescing — while staying
fast enough to sweep every figure in pure Python.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional

from ..cache.hierarchy import CacheHierarchy
from ..common.config import CpuConfig
from ..common.stats import StatRegistry
from ..common.types import Request

#: Callback invoked as sampler(ops_retired, now_cycles).
Sampler = Callable[[int, int], None]


class TraceDrivenCpu:
    """Drives a request trace through a cache hierarchy."""

    def __init__(self, config: CpuConfig, hierarchy: CacheHierarchy,
                 stats: StatRegistry) -> None:
        self._config = config
        self._hierarchy = hierarchy
        self._stats = stats.group("cpu")

    def run(self, trace: Iterable[Request],
            sampler: Optional[Sampler] = None,
            sample_every: int = 0) -> int:
        """Execute a trace; returns total cycles including drain."""
        now = 0
        ops = 0
        window: List[int] = []  # outstanding read completions (heap)
        window_size = self._config.mlp_window
        issue_cost = self._config.cycles_per_op
        l1_cfg = self._hierarchy.l1.config
        # Reads at or below this latency are considered pipelined (L1
        # hits, including the extra-probe variants); anything slower —
        # a miss, or a "hit" on data still in flight — occupies the
        # outstanding window.
        pipelined = l1_cfg.hit_latency + 3 * l1_cfg.tag_latency
        stalled = 0
        # Hot loop: pre-bind everything touched per request so each
        # iteration pays no attribute chains or counter-key hashing.
        access = self._hierarchy.l1.access
        misses_tracked = self._stats.counter("read_misses_tracked")
        heappush, heappop = heapq.heappush, heapq.heappop
        sampling = sampler is not None and sample_every > 0
        for req in trace:
            now += issue_cost
            result = access(req, now)
            ops += 1
            if result.latency > pipelined and not req.is_write:
                heappush(window, now + result.latency)
                misses_tracked.value += 1
                while len(window) > window_size:
                    earliest = heappop(window)
                    if earliest > now:
                        stalled += earliest - now
                        now = earliest
            if sampling and ops % sample_every == 0:
                sampler(ops, now)
        # Retire everything still in flight and drain posted writes.
        while window:
            now = max(now, heapq.heappop(window))
        now = max(now, self._hierarchy.finish(now))
        self._stats.set("ops", ops)
        self._stats.set("cycles", now)
        self._stats.set("stall_cycles", stalled)
        return now
