"""Trace-driven CPU timing model.

Stands in for the paper's gem5 out-of-order x86 core (Table I).  The
model retires one trace operation per ``cycles_per_op`` and hides miss
latency behind a window of ``mlp_window`` outstanding reads — a
first-order stand-in for the OoO instruction window and load/store
queues:

* an L1 read hit is fully pipelined (no stall beyond issue cost);
* a read miss joins the outstanding window; the core only stalls when
  the window is full, and then only until the *earliest* outstanding
  miss returns;
* writes are posted (store-buffer semantics) and never stall the core,
  though their bandwidth and cache-state effects are fully modeled by
  the hierarchy.

This keeps exactly the quantities the paper's results hinge on — hit
rates, traffic, exposed memory latency, MSHR coalescing — while staying
fast enough to sweep every figure in pure Python.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional

from ..cache.hierarchy import CacheHierarchy
from ..common.config import CpuConfig
from ..common.stats import StatRegistry
from ..common.types import (
    AccessWidth,
    Orientation,
    PackedTrace,
    Request,
    line_words,
)
from . import kernels, vector
from ..common.stats import LAT_HIST_KEYS

#: Callback invoked as sampler(ops_retired, now_cycles).
Sampler = Callable[[int, int], None]

_ORIENTS = (Orientation.ROW, Orientation.COLUMN)
_WIDTHS = (AccessWidth.SCALAR, AccessWidth.VECTOR)
_BOOLS = (False, True)


class _PackedRequestView:
    """Reusable request stand-in for the packed replay loop.

    Presents the exact attribute surface the cache levels read from a
    :class:`Request` (addr, orientation, width, is_write, ref_id,
    line_id, word_id, words()), but as one mutable object rewritten per
    trace word, so replay allocates nothing per request.  Safe because
    no cache level retains the request beyond the ``access`` call; the
    orientation/width fields hold the real enum members the caches
    compare with ``is``.

    ``addr`` and ``word_id`` are read only on the scalar access paths,
    so they decode lazily from the raw trace word instead of costing a
    store per replayed request.
    """

    __slots__ = ("raw", "orientation", "width", "is_write", "ref_id",
                 "line_id")

    @property
    def word_id(self):
        return self.raw >> 19

    @property
    def addr(self):
        return (self.raw >> 19) << 3

    def words(self):
        if self.width is AccessWidth.SCALAR:
            return (self.word_id,)
        return line_words(self.line_id)


class TraceDrivenCpu:
    """Drives a request trace through a cache hierarchy."""

    def __init__(self, config: CpuConfig, hierarchy: CacheHierarchy,
                 stats: StatRegistry) -> None:
        self._config = config
        self._hierarchy = hierarchy
        self._stats = stats.group("cpu")

    def run(self, trace: Iterable[Request],
            sampler: Optional[Sampler] = None,
            sample_every: int = 0) -> int:
        """Execute a trace; returns total cycles including drain.

        A :class:`PackedTrace` is dispatched to :meth:`run_vector`
        when the batched window replay covers the design and the trace
        is long enough to amortize its classification passes
        (``vector.MIN_VECTOR_TRACE``), else to :meth:`run_kernel` when
        the fused flat-store kernel does (and no occupancy sampler
        needs per-request callbacks), else to :meth:`run_packed` — all
        bit-identical to the object path below, which any other
        iterable takes.
        """
        if isinstance(trace, PackedTrace):
            if (sampler is None or sample_every <= 0) \
                    and kernels.supports(self._hierarchy):
                if len(trace) >= vector.MIN_VECTOR_TRACE \
                        and vector.supports(self._hierarchy):
                    return self.run_vector(trace)
                return self.run_kernel(trace)
            return self.run_packed(trace, sampler, sample_every)
        now = 0
        ops = 0
        window: List[int] = []  # outstanding read completions (heap)
        window_size = self._config.mlp_window
        issue_cost = self._config.cycles_per_op
        l1_cfg = self._hierarchy.l1.config
        # Reads at or below this latency are considered pipelined (L1
        # hits, including the extra-probe variants); anything slower —
        # a miss, or a "hit" on data still in flight — occupies the
        # outstanding window.
        pipelined = l1_cfg.hit_latency + 3 * l1_cfg.tag_latency
        stalled = 0
        # Hot loop: pre-bind everything touched per request so each
        # iteration pays no attribute chains or counter-key hashing.
        access = self._hierarchy.l1.access
        misses_tracked = self._stats.counter("read_misses_tracked")
        heappush, heappop = heapq.heappush, heapq.heappop
        sampling = sampler is not None and sample_every > 0
        hist = [0] * len(LAT_HIST_KEYS)
        for req in trace:
            now += issue_cost
            result = access(req, now)
            ops += 1
            hist[result.latency.bit_length()] += 1
            if result.latency > pipelined and not req.is_write:
                heappush(window, now + result.latency)
                misses_tracked.value += 1
                while len(window) > window_size:
                    earliest = heappop(window)
                    if earliest > now:
                        stalled += earliest - now
                        now = earliest
            if sampling and ops % sample_every == 0:
                sampler(ops, now)
        # Retire everything still in flight and drain posted writes.
        while window:
            now = max(now, heapq.heappop(window))
        now = max(now, self._hierarchy.finish(now))
        self._stats.set("ops", ops)
        self._stats.set("cycles", now)
        self._stats.set("stall_cycles", stalled)
        self._flush_latency_histogram(hist)
        return now

    def run_kernel(self, trace: PackedTrace) -> int:
        """Execute a packed trace through the fused flat-store kernel.

        Only valid when :func:`repro.core.kernels.supports` accepts the
        hierarchy; :meth:`run` performs that dispatch.  Statistics
        (counters and latency histograms) are bit-identical to
        :meth:`run_packed` — the kernel shares the object levels'
        counter cells, MSHR files, and memory port.
        """
        engine = kernels.KernelEngine(self._hierarchy)
        return engine.replay(trace, self._config, self._stats)

    def run_vector(self, trace: PackedTrace) -> int:
        """Execute a packed trace through the batched window replay.

        Only valid when :func:`repro.core.vector.supports` accepts the
        hierarchy; :meth:`run` performs that dispatch.  Statistics are
        bit-identical to :meth:`run_kernel` (and hence to the object
        path): hit-dense dependency windows retire through numpy
        scatters, everything else through an exact scalar step.
        """
        engine = vector.VectorEngine(self._hierarchy)
        return engine.replay(trace, self._config, self._stats)

    def _flush_latency_histogram(self, hist: List[int]) -> None:
        """Record per-request latency buckets (bucket = bit_length)."""
        for bucket, count in enumerate(hist):
            if count:
                self._stats.set(LAT_HIST_KEYS[bucket], count)

    def run_packed(self, trace: PackedTrace,
                   sampler: Optional[Sampler] = None,
                   sample_every: int = 0) -> int:
        """Execute a packed trace; bit-identical to :meth:`run`.

        The specialized loop decodes each 64-bit trace word inline into
        one reused :class:`_PackedRequestView` — no per-request object
        allocation, no ``line_id`` property recomputation — and drives
        the same window/stall model as the object path.
        """
        now = 0
        ops = 0
        window: List[int] = []  # outstanding read completions (heap)
        window_size = self._config.mlp_window
        issue_cost = self._config.cycles_per_op
        l1_cfg = self._hierarchy.l1.config
        pipelined = l1_cfg.hit_latency + 3 * l1_cfg.tag_latency
        stalled = 0
        access = self._hierarchy.l1.access
        misses_tracked = self._stats.counter("read_misses_tracked")
        heappush, heappop = heapq.heappush, heapq.heappop
        sampling = sampler is not None and sample_every > 0
        view = _PackedRequestView()
        orients, widths, bools = _ORIENTS, _WIDTHS, _BOOLS
        hist = [0] * len(LAT_HIST_KEYS)
        # Traces are long runs of requests from the same static
        # reference, so the metadata bits (ref_id + flags, the low 19
        # bits) rarely change; decode them only when they do and keep
        # the derived values live across the run.
        last_meta = -1
        orient_bits = 0   # orientation bit positioned for the line id
        index_shift = 22  # shift extracting the in-tile line index
        is_write = False
        for w in trace.words:
            # Decode (see common.types packed layout).  The line id is
            # precomputed here so the caches' line_id reads are plain
            # attribute loads instead of property calls.
            meta = w & 0x7FFFF
            if meta != last_meta:
                last_meta = meta
                orient = (meta >> 18) & 1
                orient_bits = orient << 3
                # Row lines index by the in-tile row (bits 22-24 of w),
                # column lines by the in-tile column (bits 19-21).
                index_shift = 19 if orient else 22
                is_write = bools[(meta >> 16) & 1]
                view.orientation = orients[orient]
                view.width = widths[(meta >> 17) & 1]
                view.is_write = is_write
                view.ref_id = meta & 0xFFFF
            view.raw = w
            view.line_id = ((w >> 25) << 4) | orient_bits \
                | ((w >> index_shift) & 7)
            now += issue_cost
            result = access(view, now)
            ops += 1
            hist[result.latency.bit_length()] += 1
            if result.latency > pipelined and not is_write:
                heappush(window, now + result.latency)
                misses_tracked.value += 1
                while len(window) > window_size:
                    earliest = heappop(window)
                    if earliest > now:
                        stalled += earliest - now
                        now = earliest
            if sampling and ops % sample_every == 0:
                sampler(ops, now)
        while window:
            now = max(now, heapq.heappop(window))
        now = max(now, self._hierarchy.finish(now))
        self._stats.set("ops", ops)
        self._stats.set("cycles", now)
        self._stats.set("stall_cycles", stalled)
        self._flush_latency_histogram(hist)
        return now
