"""Tiny ASCII chart helpers for experiment reports.

Terminal-friendly bar charts and sparklines so the per-figure reports
convey shape at a glance without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_SPARK_LEVELS = " .:-=+*#%@"


def bar_chart(rows: Iterable[Tuple[str, float]], width: int = 40,
              max_value: Optional[float] = None, unit: str = "") -> str:
    """Horizontal bar chart: one ``label  ███··· value`` line per row.

    Args:
        rows: (label, value) pairs; values must be >= 0.
        width: bar width in characters for the largest value.
        max_value: fixed scale; defaults to the largest value.
        unit: suffix appended to the printed value.
    """
    rows = list(rows)
    if not rows:
        return "(no data)"
    for _, value in rows:
        if value < 0:
            raise ValueError("bar_chart values must be >= 0")
    scale = max_value if max_value is not None \
        else max(value for _, value in rows)
    label_width = max(len(label) for label, _ in rows)
    lines: List[str] = []
    for label, value in rows:
        filled = 0 if scale == 0 else round(width * value / scale)
        filled = min(filled, width)
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{label:<{label_width}}  {bar}  "
                     f"{value:.3f}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line sparkline over ``values`` using ASCII density ramp."""
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    top = len(_SPARK_LEVELS) - 1
    chars = []
    for value in values:
        if span == 0:
            level = top // 2
        else:
            level = round(top * (value - lo) / span)
        chars.append(_SPARK_LEVELS[max(0, min(top, level))])
    return "".join(chars)


def grouped_bar_chart(groups: Dict[str, List[Tuple[str, float]]],
                      width: int = 40) -> str:
    """Bar charts per group, under a shared scale."""
    all_values = [value for rows in groups.values()
                  for _, value in rows]
    scale = max(all_values) if all_values else 1.0
    blocks = []
    for title, rows in groups.items():
        blocks.append(f"{title}\n{bar_chart(rows, width, scale)}")
    return "\n\n".join(blocks)
