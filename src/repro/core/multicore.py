"""Multiprogrammed simulation (paper Section IX-B future work).

"While such schemes are very useful for multiprogrammed workloads,
single-application, single thread scenarios are less sensitive.  An
investigation of our techniques on parallel workloads would examine
these approaches in greater detail."

This module provides that investigation harness: N independent
programs, each on its own core with **private L1/L2**, contending for a
**shared LLC and MDA memory**.  Cores interleave in simulated time
(the core with the smallest local clock issues next), so bank, bus,
write-queue, and shared-LLC interference are modeled naturally by the
same absolute-time machinery the single-core path uses.

Per-core private levels get distinct statistic namespaces
(``cache.c<k>.L1`` ...); shared components keep their usual names.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Iterator, List, Sequence

from ..cache.base import CacheLevel, MemoryPort
from ..cache.hierarchy import build_cache_level
from ..common.config import SystemConfig
from ..common.errors import ConfigError
from ..common.stats import StatRegistry
from ..common.types import Request
from ..mem.mda_memory import MdaMemory
from ..sw.layout import make_layout
from ..sw.program import Program
from ..sw.tracegen import generate_trace
from .simulator import RunResult


@dataclass
class CoreResult:
    """Per-core outcome of a multiprogrammed run."""

    core: int
    workload: str
    cycles: int
    ops: int
    l1_hit_rate: float


@dataclass
class MultiProgramResult:
    """Outcome of one multiprogrammed simulation."""

    system: SystemConfig
    cores: List[CoreResult]
    stats: StatRegistry

    @property
    def makespan(self) -> int:
        """Cycles until the last core finishes."""
        return max(core.cycles for core in self.cores)

    @property
    def throughput_weighted_cycles(self) -> float:
        """Sum of per-core cycles (lower = better overall)."""
        return float(sum(core.cycles for core in self.cores))

    def memory_bytes(self) -> int:
        grp = self.stats.group("memory")
        return grp.get("bytes_read") + grp.get("bytes_written")


class _Core:
    """One core's private hierarchy plus its trace cursor."""

    def __init__(self, index: int, levels: List[CacheLevel],
                 trace: Iterator[Request], workload: str,
                 mlp_window: int, issue_cost: int) -> None:
        self.index = index
        self.levels = levels
        self.trace = trace
        self.workload = workload
        self.now = 0
        self.ops = 0
        self.window: List[int] = []
        self.window_size = mlp_window
        self.issue_cost = issue_cost
        l1_cfg = levels[0].config
        self.pipelined = l1_cfg.hit_latency + 3 * l1_cfg.tag_latency
        self.done = False

    def step(self) -> None:
        """Issue one trace operation (mirrors TraceDrivenCpu.run)."""
        try:
            req = next(self.trace)
        except StopIteration:
            while self.window:
                self.now = max(self.now, heapq.heappop(self.window))
            self.done = True
            return
        self.now += self.issue_cost
        result = self.levels[0].access(req, self.now)
        self.ops += 1
        if not req.is_write and result.latency > self.pipelined:
            heapq.heappush(self.window, self.now + result.latency)
            while len(self.window) > self.window_size:
                earliest = heapq.heappop(self.window)
                if earliest > self.now:
                    self.now = earliest


def _private_levels(system: SystemConfig, core: int,
                    stats: StatRegistry) -> List[CacheLevel]:
    """Build this core's private (non-LLC) levels with namespaced
    stats."""
    levels = []
    for idx, cfg in enumerate(system.levels[:-1], start=1):
        named = replace(cfg, name=f"c{core}.{cfg.name}")
        levels.append(build_cache_level(named, idx, stats))
    return levels


def run_multiprogrammed(system: SystemConfig,
                        programs: Sequence[Program],
                        replacement: str = "lru") -> MultiProgramResult:
    """Run one program per core over a shared LLC and memory.

    The layouts of all programs are placed in one shared physical
    address space (disjoint regions), so cores never alias each other's
    data but do contend for every shared resource.
    """
    if len(system.levels) < 2:
        raise ConfigError("multiprogrammed mode needs private levels "
                          "above a shared LLC")
    if not programs:
        raise ConfigError("need at least one program")
    stats = StatRegistry()
    memory = MdaMemory(system.memory, stats)
    port = MemoryPort(memory, stats)
    below = port
    if system.tier.active:
        from ..tier import DieStackedTier
        below = DieStackedTier(system.tier, stats, memory, port,
                               len(system.levels) + 1)
    llc_cfg = system.levels[-1]
    llc = build_cache_level(llc_cfg, len(system.levels), stats,
                            replacement)
    llc.connect(below)

    cores: List[_Core] = []
    base_tile = 0
    for index, program in enumerate(programs):
        levels = _private_levels(system, index, stats)
        for upper, lower in zip(levels, levels[1:]):
            upper.connect(lower)
        levels[-1].connect(llc)
        layout = make_layout(program.arrays, system.logical_dims)
        trace = _offset_trace(
            generate_trace(program, system.logical_dims, layout),
            base_tile)
        # Reserve this program's footprint plus slack before the next.
        base_tile += (layout.footprint_bytes() // 512) + 16
        cores.append(_Core(index, levels, trace, program.name,
                           system.cpu.mlp_window,
                           system.cpu.cycles_per_op))

    pending = list(cores)
    while pending:
        # Fair interleave: the core with the smallest local clock runs.
        core = min(pending, key=lambda c: c.now)
        core.step()
        if core.done:
            pending.remove(core)
    horizon = memory.finish(max(core.now for core in cores))

    results = []
    for core in cores:
        grp = stats.group(f"cache.c{core.index}.L1")
        results.append(CoreResult(
            core=core.index, workload=core.workload,
            cycles=core.now, ops=core.ops,
            l1_hit_rate=grp.ratio("hits", "demand_accesses")))
    _ = horizon
    return MultiProgramResult(system=system, cores=results, stats=stats)


def _offset_trace(trace: Iterator[Request],
                  base_tile: int) -> Iterator[Request]:
    """Relocate a trace by a whole number of tiles."""
    offset = base_tile * 512
    for req in trace:
        yield Request(req.addr + offset, req.orientation, req.width,
                      req.is_write, req.ref_id)


def as_run_result(result: MultiProgramResult) -> RunResult:
    """View a multiprogrammed result through the RunResult lens
    (workload name is the joined core list)."""
    name = "+".join(core.workload for core in result.cores)
    return RunResult(system=result.system, workload=name,
                     cycles=result.makespan,
                     ops=sum(core.ops for core in result.cores),
                     stats=result.stats)
