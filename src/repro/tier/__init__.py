"""Die-stacked tier between the LLC and the MDA main memory.

See :mod:`repro.tier.stacked` for the model and ``docs/DESIGN.md``
("Die-stacked tier") for the architecture discussion.
"""

from .stacked import DieStackedTier

__all__ = ["DieStackedTier"]
